"""Shared scale knobs for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures at a
laptop-friendly scale and prints the exhibit (run pytest with ``-s`` to
see it inline; it is also written to ``benchmarks/out/``).  Environment
variables scale the campaign up to paper scale:

=================  =======  =========================================
variable           default  meaning
=================  =======  =========================================
REPRO_BENCH_DAYS   14       trace horizon in days (paper: 365)
REPRO_BENCH_TRACES 2        random trace replicas per cell (paper: 10)
REPRO_BENCH_WORKERS auto    worker processes for grids
=================  =======  =========================================
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.config import ExperimentConfig
from repro.perf.store import PerfStore
from repro.workload.spec import theta_spec

OUT_DIR = pathlib.Path(__file__).parent / "out"


def out_dir(*parts: str) -> pathlib.Path:
    """The benchmark artifact directory (gitignored), created on demand.

    Every benchmark routes its outputs through this one helper —
    ``out_dir()`` for files, ``out_dir("progress_index")`` for a
    subdirectory — so artifacts never land anywhere CI doesn't upload.
    """
    path = OUT_DIR.joinpath(*parts)
    path.mkdir(parents=True, exist_ok=True)
    return path


def bench_days() -> float:
    return float(os.environ.get("REPRO_BENCH_DAYS", "14"))


def bench_traces() -> int:
    return int(os.environ.get("REPRO_BENCH_TRACES", "2"))


def bench_workers() -> int:
    default = max(1, min(4, (os.cpu_count() or 2) - 1))
    return int(os.environ.get("REPRO_BENCH_WORKERS", str(default)))


@pytest.fixture(scope="session")
def campaign() -> ExperimentConfig:
    """The standard benchmark campaign (Fig. 6 defaults, W5 mix)."""
    return ExperimentConfig(
        spec=theta_spec(days=bench_days()),
        n_traces=bench_traces(),
        workers=bench_workers(),
    )


@pytest.fixture(scope="session")
def emit():
    """Print an exhibit and persist it under benchmarks/out/."""

    def _emit(name: str, text: str) -> None:
        (out_dir() / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _emit


@pytest.fixture(scope="session")
def perf_store() -> PerfStore:
    """The session's perf history (``benchmarks/out/perf_history.jsonl``).

    Every benchmark appends its measurements here through
    :func:`repro.perf.harness.bench`, so one CI run leaves one
    comparable JSONL trajectory instead of scattered prints.
    """
    return PerfStore(out_dir() / "perf_history.jsonl")
