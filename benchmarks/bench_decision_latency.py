"""Observation 10 — scheduler decision latency.

"Current HPC systems typically require a scheduler to respond in 10-30
seconds.  In our experiments, the proposed methods take less than 10
milliseconds to make a decision."

Two measurements:

* the recorded wall-clock latency of every on-demand arrival decision in
  a full campaign (p50 / max printed);
* a microbenchmark of the simulator's full scheduling pass machinery:
  events per second across a complete run.
"""

import statistics

from repro.core.mechanisms import Mechanism
from repro.metrics.report import format_table
from repro.sim.simulator import Simulation
from repro.workload.theta import generate_trace


def test_arrival_decision_latency(benchmark, campaign, emit):
    jobs = generate_trace(campaign.spec, seed=2022)

    def run():
        return Simulation(
            jobs, campaign.sim, Mechanism.parse("CUP&SPAA")
        ).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    lat = result.decision_latency
    assert lat.count, "no on-demand arrivals in the trace"
    emit(
        "decision_latency",
        format_table(
            ["metric", "seconds"],
            [
                ["arrivals", lat.count],
                ["p50", lat.p50_s],
                ["p99", lat.p99_s],
                ["max", lat.max_s],
            ],
            title="Observation 10 — on-demand decision latency (CUP&SPAA)",
        ),
    )
    # the paper's bound, with 10x headroom on the median
    assert lat.p50_s < 0.001
    assert lat.max_s < 0.1


def test_simulator_event_throughput(benchmark, campaign):
    """End-to-end events/second of the full simulator (perf canary)."""
    from repro.workload.trace import clone_jobs

    jobs = generate_trace(campaign.spec, seed=7)

    def run():
        # the simulator mutates jobs in place: fresh clones every round
        return Simulation(
            clone_jobs(jobs), campaign.sim, Mechanism.parse("CUA&SPAA")
        ).run()

    result = benchmark(run)
    assert result.events_processed > len(jobs)
