"""Ablations — design choices DESIGN.md calls out, beyond the paper.

Each ablation flips one knob of the best all-round mechanism (CUA&SPAA)
and reports the same Fig. 6 metrics:

* reserved-node backfill loans on/off (§III-B.1's utilization lever);
* EASY backfilling on/off (the baseline scheduler's key feature);
* malleable flexibility on/off (scheduler-chosen start sizes);
* queue-ordering policy (FCFS vs SJF vs LJF) under the same mechanism;
* malleable minimum-size fraction (20 % default vs 50 %).

All SimConfig/WorkloadSpec ablations run through the campaign engine
against one shared content-addressed store (``benchmarks/out/``), so
re-running the suite — or any single ablation — is pure cache hits for
unchanged cells; the sim/spec knobs land in the cells' override dicts
and hash the variants apart.  The queue-policy ablation stays on direct
simulation: a policy object is code, not a JSON-shaped campaign axis.
"""

import pathlib
from dataclasses import replace

from repro.campaign.executor import run_campaign
from repro.campaign.store import ResultStore
from repro.core.mechanisms import Mechanism
from repro.metrics.report import format_summary_rows, format_table
from repro.sched.fcfs import FcfsPolicy, LjfPolicy, SjfPolicy
from repro.sim.simulator import Simulation
from repro.metrics.summary import average_summaries, summarize
from repro.workload.theta import generate_trace
from repro.workload.trace import clone_jobs

MECH = Mechanism.parse("CUA&SPAA")

#: one shared cell pool for every ablation variant (content-addressed,
#: so variants never collide and identical cells are computed once)
CACHE_DIR = pathlib.Path(__file__).parent / "out" / "ablation_campaign"


def _grid_row(campaign, sim=None, spec=None):
    """Averaged CUA&SPAA summary for one ablation variant, via campaign."""
    config = campaign
    if spec is not None:
        config = config.with_spec(spec)
    if sim is not None:
        config = config.with_sim(sim)
    config = replace(config, mechanisms=[MECH])
    run = run_campaign(
        config.to_campaign_spec(name="ablations"),
        store=ResultStore(CACHE_DIR),
        workers=campaign.workers,
    )
    if run.n_failed:
        failed = [r for r in run.records if not r.ok]
        raise RuntimeError(
            f"{run.n_failed} ablation cells failed; first error:\n"
            f"{failed[0].error}"
        )
    return average_summaries([r.summary_metrics() for r in run.ok_records])


def test_ablation_reserved_loans(benchmark, campaign, emit):
    """Reserved-idle nodes loaned to backfill vs held strictly idle."""

    def run():
        on = _grid_row(campaign, replace(campaign.sim, allow_reserved_loans=True))
        off = _grid_row(campaign, replace(campaign.sim, allow_reserved_loans=False))
        return on, off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_reserved_loans",
        format_table(
            ["loans", "util", "turnaround[h]", "instant"],
            [
                ["on", on.system_utilization, on.avg_turnaround_h, on.instant_start_rate],
                ["off", off.system_utilization, off.avg_turnaround_h, off.instant_start_rate],
            ],
            title="Ablation — backfilling onto reserved nodes",
        ),
    )
    # loans exist to claw back the reservations' idle cost
    assert on.system_utilization >= off.system_utilization - 0.02
    assert on.instant_start_rate > 0.9 and off.instant_start_rate > 0.9


def test_ablation_backfill(benchmark, campaign, emit):
    """EASY backfilling on/off under the hybrid mechanism."""

    def run():
        on = _grid_row(campaign, replace(campaign.sim, backfill_enabled=True))
        off = _grid_row(campaign, replace(campaign.sim, backfill_enabled=False))
        return on, off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_backfill",
        format_table(
            ["backfill", "util", "turnaround[h]"],
            [
                ["on", on.system_utilization, on.avg_turnaround_h],
                ["off", off.system_utilization, off.avg_turnaround_h],
            ],
            title="Ablation — EASY backfilling",
        ),
    )
    assert on.system_utilization >= off.system_utilization - 0.02
    assert on.avg_turnaround_h <= off.avg_turnaround_h * 1.3


def test_ablation_malleable_flexibility(benchmark, campaign, emit):
    """Scheduler-chosen malleable start sizes vs rigid-like fixed sizes."""

    def run():
        flex = _grid_row(campaign, replace(campaign.sim, flexible_malleable=True))
        stiff = _grid_row(campaign, replace(campaign.sim, flexible_malleable=False))
        return flex, stiff

    flex, stiff = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_malleable_flex",
        format_table(
            ["malleable", "turnaround[h]", "malleable[h]", "util"],
            [
                ["flexible", flex.avg_turnaround_h, flex.avg_turnaround_malleable_h, flex.system_utilization],
                ["fixed", stiff.avg_turnaround_h, stiff.avg_turnaround_malleable_h, stiff.system_utilization],
            ],
            title="Ablation — malleable start-size flexibility",
        ),
    )
    # flexibility is the malleable incentive: it must not hurt them
    assert (
        flex.avg_turnaround_malleable_h
        <= stiff.avg_turnaround_malleable_h * 1.1
    )


def test_ablation_ordering_policy(benchmark, campaign, emit):
    """The mechanisms compose with any queue-ordering policy (§III)."""

    def run_policy(policy):
        summaries = []
        for seed in campaign.seeds():
            jobs = generate_trace(campaign.spec, seed=seed)
            result = Simulation(
                clone_jobs(jobs), campaign.sim, MECH, policy=policy
            ).run()
            summaries.append(summarize(result))
        return average_summaries(summaries)

    def run():
        return {
            "fcfs": run_policy(FcfsPolicy()),
            "sjf": run_policy(SjfPolicy()),
            "ljf": run_policy(LjfPolicy()),
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_policy",
        format_table(
            ["policy", "turnaround[h]", "util", "instant"],
            [
                [name, s.avg_turnaround_h, s.system_utilization, s.instant_start_rate]
                for name, s in rows.items()
            ],
            title="Ablation — queue ordering policy under CUA&SPAA",
        ),
    )
    # instant start is mechanism-driven, not policy-driven
    for s in rows.values():
        assert s.instant_start_rate > 0.9


def test_ablation_malleable_min_size(benchmark, campaign, emit):
    """Deeper shrinkability (smaller min sizes) gives SPAA more supply."""

    def run():
        out = {}
        for frac in (0.2, 0.5):
            spec = replace(campaign.spec, malleable_min_size_frac=frac)
            out[frac] = _grid_row(campaign, spec=spec)
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_min_size",
        format_summary_rows(
            list(rows.values()),
            title="Ablation — malleable min size 20% vs 50% (CUA&SPAA)",
        ),
    )
    # shallower shrink (50%) forces more malleable preemptions
    assert (
        rows[0.2].preemption_ratio_malleable
        <= rows[0.5].preemption_ratio_malleable + 0.05
    )
