"""Extension benchmarks — features beyond the paper's experiments.

* **Failure injection** (`repro.sim.failures`): checkpoint-frequency
  behaviour in the regime Daly's formula actually assumes, and in the
  mixed failure+preemption regime of a hybrid machine.
* **Conservative backfilling** vs EASY under the mechanisms.
* **On-demand no-shows** (§III-B.4): how much do phantom reservations
  cost the rest of the workload?
"""

from dataclasses import replace

from repro.core.mechanisms import Mechanism
from repro.experiments.runner import run_mechanism_grid
from repro.metrics.report import format_table
from repro.sim.failures import FailureModel
from repro.util.timeconst import DAY

MECH = Mechanism.parse("CUA&SPAA")


def test_failures_vs_checkpoint_frequency(benchmark, campaign, emit):
    """Lost compute vs checkpoint frequency, with failures injected.

    With an aggressive node MTBF (0.5 year) failures interrupt rigid jobs
    often; more frequent checkpoints must bound the rolled-back compute.
    """

    def run():
        out = {}
        for mult in (0.5, 1.0, 2.0):
            sim = replace(
                campaign.sim,
                checkpoint=campaign.sim.checkpoint.with_multiplier(mult),
                failures=FailureModel(enabled=True, node_mtbf_s=0.5 * 365 * DAY),
            )
            grid = run_mechanism_grid(
                campaign.spec, [MECH], campaign.seeds(), sim=sim,
                workers=campaign.workers,
            )
            out[mult] = grid[MECH.name]
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "extension_failures",
        format_table(
            ["ckpt interval", "lost compute", "ckpt overhead", "util", "turnaround[h]"],
            [
                [
                    f"x{mult:g}",
                    s.lost_compute_frac,
                    s.checkpoint_frac,
                    s.system_utilization,
                    s.avg_turnaround_h,
                ]
                for mult, s in rows.items()
            ],
            title="Extension — checkpointing under injected failures "
            "(node MTBF 0.5 y, CUA&SPAA)",
        ),
    )
    # Daly's regime: sparser checkpoints lose more compute to failures
    assert rows[0.5].lost_compute_frac <= rows[2.0].lost_compute_frac + 1e-4


def test_conservative_vs_easy(benchmark, campaign, emit):
    """The mechanisms on top of conservative instead of EASY backfilling."""

    def run():
        easy = run_mechanism_grid(
            campaign.spec, [MECH], campaign.seeds(),
            sim=replace(campaign.sim, backfill_mode="easy"),
            workers=campaign.workers,
        )[MECH.name]
        conservative = run_mechanism_grid(
            campaign.spec, [MECH], campaign.seeds(),
            sim=replace(campaign.sim, backfill_mode="conservative"),
            workers=campaign.workers,
        )[MECH.name]
        return easy, conservative

    easy, conservative = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "extension_conservative",
        format_table(
            ["backfilling", "util", "turnaround[h]", "instant"],
            [
                ["easy", easy.system_utilization, easy.avg_turnaround_h,
                 easy.instant_start_rate],
                ["conservative", conservative.system_utilization,
                 conservative.avg_turnaround_h,
                 conservative.instant_start_rate],
            ],
            title="Extension — EASY vs conservative backfilling (CUA&SPAA)",
        ),
    )
    # instant start is mechanism-driven, independent of the backfill flavour
    assert easy.instant_start_rate > 0.9
    assert conservative.instant_start_rate > 0.9


def test_noshow_sensitivity(benchmark, campaign, emit):
    """Phantom on-demand notices: reserved-then-released node cost."""

    def run():
        out = {}
        for frac in (0.0, 0.3):
            spec = replace(campaign.spec, ondemand_noshow_frac=frac)
            grid = run_mechanism_grid(
                spec, [MECH], campaign.seeds(), sim=campaign.sim,
                workers=campaign.workers,
            )
            out[frac] = grid[MECH.name]
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "extension_noshow",
        format_table(
            ["no-show frac", "util", "reserved idle", "instant", "noshows"],
            [
                [
                    f"{frac:.0%}",
                    s.system_utilization,
                    s.reserved_idle_frac,
                    s.instant_start_rate,
                    s.n_noshow,
                ]
                for frac, s in rows.items()
            ],
            title="Extension — on-demand no-shows under CUA&SPAA",
        ),
    )
    assert rows[0.3].n_noshow > 0
    # arrived jobs keep their responsiveness despite the phantoms
    assert rows[0.3].instant_start_rate > 0.9
