"""Progress-index effectiveness: warm completion scans must be >=10x cold.

The quadratic-scan problem the index solves: every worker pass used to
re-read and re-parse *every* results/shard line to compute the known-key
set, so a 10k-cell grid paid O(total results) per completion check.
With the index, a warm check stats the files, sees nothing appended, and
reads zero bytes; appending a handful of cells costs exactly their
bytes.

This benchmark builds a 10k-cell store (8k merged results + 4 worker
shards of 500 each), then measures:

* **cold scan** — a fresh index reading every byte (what the first pass
  after a restart pays, and what *every* pass paid before the index);
* **warm scan, idle** — nothing appended since the last pass;
* **warm scan, +10 cells** — the steady-state worker-loop check.

Asserts the ISSUE's floor: cold / warm >= 10x (typically it is far
higher — a warm idle scan is just a few stat calls).
"""

import json
import shutil
import time

from repro.campaign import CellRecord, ProgressIndex
from repro.campaign.distrib.worker import known_keys
from repro.perf.harness import measure
from repro.perf.record import PerfRecord, current_git_sha

from conftest import emit, out_dir, perf_store  # noqa: F401 - fixtures

N_RESULTS = 8_000
N_SHARDS = 4
N_PER_SHARD = 500
N_TOTAL = N_RESULTS + N_SHARDS * N_PER_SHARD


def _record(i: int) -> CellRecord:
    return CellRecord(
        key=f"{i:016x}",
        config={"days": 365.0, "mechanism": "CUA&SPAA", "seed": i},
        status="ok",
        summary={"avg_turnaround_h": 12.5 + i % 7,
                 "system_utilization": 0.84},
        elapsed_s=30.0,
    )


def _build_store(directory) -> None:
    directory.mkdir(parents=True)
    with (directory / "results.jsonl").open("w", encoding="utf-8") as fh:
        for i in range(N_RESULTS):
            fh.write(_record(i).to_json() + "\n")
    shards = directory / "shards"
    shards.mkdir()
    for s in range(N_SHARDS):
        with (shards / f"w{s}.jsonl").open("w", encoding="utf-8") as fh:
            base = N_RESULTS + s * N_PER_SHARD
            for i in range(base, base + N_PER_SHARD):
                fh.write(_record(i).to_json() + "\n")


def _best_of(n, fn):
    """min-of-n wall clock via the shared perf harness."""
    return measure(fn, warmup=0, repeat=n).wall_time_s


def test_progress_index_warm_scan_speedup(emit, perf_store):  # noqa: F811
    directory = out_dir() / "progress_index"
    shutil.rmtree(directory, ignore_errors=True)
    _build_store(directory)

    # cold: fresh in-memory state AND no persisted index file
    def cold_scan():
        index = ProgressIndex(directory, name="bench-cold", autosave=False)
        index.refresh()
        assert len(index.keys()) == N_TOTAL

    cold_s = _best_of(3, cold_scan)

    # the persisted index a long-lived fleet (or a fresh process) reuses
    ProgressIndex(directory).refresh()

    def warm_idle():
        keys = known_keys(directory)  # loads index/progress.json
        assert len(keys) == N_TOTAL

    warm_idle_s = _best_of(5, warm_idle)

    appended = {"n": 0}

    def warm_append():
        base = N_TOTAL + appended["n"]
        with (directory / "shards" / "w0.jsonl").open(
            "a", encoding="utf-8"
        ) as fh:
            for i in range(base, base + 10):
                fh.write(_record(i).to_json() + "\n")
        appended["n"] += 10
        keys = known_keys(directory)
        assert len(keys) == base + 10

    warm_append_s = _best_of(5, warm_append)

    # the steady-state worker loop holds its index in memory across
    # passes — no reload of the persisted file at all
    held = ProgressIndex(directory)
    held.refresh()

    def warm_held():
        held.refresh()
        assert len(held.keys()) == N_TOTAL + appended["n"]

    warm_held_s = _best_of(5, warm_held)

    speedup_idle = cold_s / warm_idle_s
    speedup_append = cold_s / warm_append_s
    speedup_held = cold_s / warm_held_s
    perf_store.append(
        PerfRecord(
            scenario="progress_index",
            params={"n_cells": N_TOTAL},
            metrics={
                "wall_time_s": cold_s,
                "warm_idle_s": warm_idle_s,
                "warm_append_s": warm_append_s,
                "warm_held_s": warm_held_s,
                "cells_per_s": N_TOTAL / cold_s,
            },
            git_sha=current_git_sha(),
            recorded_unix=time.time(),
        )
    )
    emit(
        "bench_progress_index",
        "\n".join(
            [
                f"progress index scan, {N_TOTAL} cells "
                f"({N_RESULTS} merged + {N_SHARDS}x{N_PER_SHARD} shard):",
                f"  cold full scan        {cold_s * 1e3:9.2f} ms",
                f"  warm scan, idle       {warm_idle_s * 1e3:9.2f} ms  "
                f"({speedup_idle:.0f}x)",
                f"  warm scan, +10 cells  {warm_append_s * 1e3:9.2f} ms  "
                f"({speedup_append:.0f}x)",
                f"  warm scan, held index {warm_held_s * 1e3:9.2f} ms  "
                f"({speedup_held:.0f}x)",
            ]
        ),
    )
    assert speedup_idle >= 10.0, (cold_s, warm_idle_s)
    assert speedup_append >= 10.0, (cold_s, warm_append_s)
    assert speedup_held >= 10.0, (cold_s, warm_held_s)


def test_index_agrees_with_full_scan(emit):  # noqa: F811
    """The speedup is only meaningful if warm and cold scans agree."""
    directory = out_dir() / "progress_index"
    if not directory.exists():  # bench files can run standalone
        _build_store(directory)
    cold = ProgressIndex(directory, name="bench-verify", autosave=False)
    cold.refresh()
    warm = ProgressIndex(directory)
    warm.refresh()
    assert cold.keys() == warm.keys()
    index_file = directory / "index" / "progress.json"
    data = json.loads(index_file.read_text("utf-8"))
    assert set(data["files"]) == {"results.jsonl"} | {
        f"shards/w{s}.jsonl" for s in range(N_SHARDS)
    }
    emit(
        "bench_progress_index_verify",
        f"warm/cold key sets agree on {len(cold.keys())} cells; "
        f"index tracks {len(data['files'])} files",
    )
