"""Fig. 3 — jobs (outer ring) and core-hours (inner ring) by size range.

The paper's shape: small jobs (128-256 nodes) dominate the job count
while mid/large jobs take a disproportionate share of core-hours.
"""

from repro.experiments.figures import fig3_size_mix


def test_fig3(benchmark, campaign, emit):
    out = benchmark.pedantic(
        lambda: fig3_size_mix(campaign), rounds=1, iterations=1
    )
    emit("fig3_size_mix", out["text"])
    buckets = out["buckets"]
    counts = [b[1] for b in buckets]
    core_hours = [b[2] for b in buckets]
    # job counts are dominated by the smallest bucket ...
    assert counts[0] == max(counts)
    # ... while core-hours shift toward larger jobs (Fig. 3's contrast)
    small_ch_share = core_hours[0] / sum(core_hours)
    small_job_share = counts[0] / sum(counts)
    assert small_ch_share < small_job_share
