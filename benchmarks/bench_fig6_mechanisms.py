"""Fig. 6 — the headline grid: six mechanisms x five notice mixes (W1-W5).

Regenerates, for every workload of Table III, the paper's per-mechanism
panels: average turnaround (all/rigid/malleable), system utilization,
on-demand instant start rate, and the rigid/malleable preemption ratios.

Shape checks encode the paper's Observations 1, 3, 5, 6, 8 and 9; the
full paper-vs-measured record lives in EXPERIMENTS.md.
"""

import statistics

from repro.experiments.figures import fig6_mechanisms


def test_fig6(benchmark, campaign, emit):
    out = benchmark.pedantic(
        lambda: fig6_mechanisms(campaign), rounds=1, iterations=1
    )
    emit("fig6_mechanisms", out["text"])
    sweep = out["sweep"]

    # O9: every mechanism starts nearly all on-demand jobs instantly,
    # under every notice-accuracy mix.
    for mix, grid in sweep.items():
        for name, s in grid.items():
            assert s.instant_start_rate > 0.9, (mix, name, s.instant_start_rate)

    # O8: malleable preemption ratio >= rigid preemption ratio.
    for mix, grid in sweep.items():
        for name, s in grid.items():
            assert s.preemption_ratio_malleable >= s.preemption_ratio_rigid, (
                mix,
                name,
            )

    # O3: averaged over mixes, SPAA preempts fewer malleable jobs than PAA.
    def mean_over_mixes(name, field):
        return statistics.mean(
            getattr(sweep[m][name], field) for m in sweep
        )

    for notice in ("N", "CUA", "CUP"):
        paa = mean_over_mixes(f"{notice}&PAA", "preemption_ratio_malleable")
        spaa = mean_over_mixes(f"{notice}&SPAA", "preemption_ratio_malleable")
        assert spaa <= paa + 0.02, (notice, paa, spaa)

    # O6: CUA/CUP mechanisms give malleable jobs the turnaround incentive.
    for name in ("CUA&PAA", "CUA&SPAA", "CUP&PAA", "CUP&SPAA"):
        rigid_t = mean_over_mixes(name, "avg_turnaround_rigid_h")
        mall_t = mean_over_mixes(name, "avg_turnaround_malleable_h")
        assert mall_t < rigid_t, (name, mall_t, rigid_t)

    # O10: decisions stay far under the 10-30 s scheduler budget.
    for mix, grid in sweep.items():
        for name, s in grid.items():
            assert s.decision_latency_max_s < 0.1
