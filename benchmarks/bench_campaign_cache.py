"""Campaign result-store effectiveness: warm re-runs must be >=10x cold.

A campaign's second, identical invocation should do no simulation work
at all — every cell is a content-addressed cache hit served from the
JSONL store. This benchmark runs a small (mechanism x seed) grid cold,
re-runs it warm against the same directory, and asserts the speedup the
README/ISSUE promise. Resume-after-interruption is exercised too, by
truncating the store and re-running only the lost half.
"""

import shutil
import time

from repro.campaign import CampaignSpec, ResultStore, run_campaign
from repro.perf.harness import measure
from repro.perf.record import PerfRecord, current_git_sha

from conftest import bench_days, bench_workers, out_dir, perf_store  # noqa: F401


def _spec() -> CampaignSpec:
    return CampaignSpec.from_dict(
        {
            "name": "bench-cache",
            "days": min(bench_days(), 7.0),
            "target_load": 0.7,
            "system_size": 1024,
            "mechanism": [None, "N&PAA", "CUA&SPAA"],
            "seeds": [1, 2],
        }
    )


def test_campaign_cache(benchmark, emit, perf_store):
    directory = out_dir() / "campaign_cache"
    shutil.rmtree(directory, ignore_errors=True)
    spec = _spec()
    workers = bench_workers()

    holder = {}

    def cold_run():
        holder["r"] = run_campaign(
            spec, directory=directory, workers=workers
        )

    cold_s = measure(cold_run, warmup=0, repeat=1).wall_time_s
    cold = holder["r"]
    assert cold.n_ran == cold.n_total and cold.n_failed == 0

    warm = benchmark.pedantic(
        lambda: run_campaign(spec, directory=directory, workers=workers),
        rounds=3,
        iterations=1,
    )
    assert warm.n_cached == warm.n_total and warm.n_ran == 0

    warm_s = max(
        measure(
            lambda: run_campaign(spec, directory=directory, workers=workers),
            warmup=0,
            repeat=1,
        ).wall_time_s,
        1e-9,
    )
    perf_store.append(
        PerfRecord(
            scenario="campaign_cache",
            params={"days": spec.days[0], "n_cells": cold.n_total},
            metrics={
                "wall_time_s": cold_s,
                "warm_s": warm_s,
                "cells_per_s": cold.n_total / cold_s,
            },
            git_sha=current_git_sha(),
            recorded_unix=time.time(),
        )
    )

    # interruption: drop half the store, the re-run completes only the rest
    results = ResultStore(directory).results_path
    lines = results.read_text().splitlines()
    results.write_text("\n".join(lines[: len(lines) // 2]) + "\n")
    resumed = run_campaign(spec, directory=directory, workers=workers)
    assert resumed.n_cached == len(lines) // 2
    assert resumed.n_ran == resumed.n_total - len(lines) // 2

    speedup = cold_s / warm_s
    emit(
        "campaign_cache",
        f"campaign cache: {cold.n_total} cells cold {cold_s:.2f}s, "
        f"warm {warm_s:.3f}s -> {speedup:.0f}x speedup\n"
        f"resume: {resumed.n_ran} of {resumed.n_total} cells re-run "
        f"after losing half the store",
    )
    assert speedup >= 10.0, f"warm cache only {speedup:.1f}x faster"
