"""Campaign cell throughput: streamed + trace-cached vs materialized.

The streaming campaign pipeline (generator-backed cells, the process-
wide :class:`~repro.workload.trace_cache.TraceCache`, per-worker
``SimScratch`` reuse, and trace-affine execution order) exists to make
many-small-cell grids cheap: every cell of a mechanism x checkpoint
sweep used to regenerate the identical ``(spec, seed)`` trace from
scratch.  This benchmark runs the ``campaign_throughput`` scenario —
a fig6/fig7-shaped grid of baseline + six mechanisms crossed with
three checkpoint multipliers, 21 cells per generated trace — both
streamed (``stream=1``) and through the pre-PR materialized path
(``stream=0``), and asserts the ISSUE floors:

* **>= 2x cells/min** streamed over materialized on a >= 2k-cell grid
  (measured ~2.4x serially; the win is cache + streaming + scratch,
  not parallelism);
* **per-worker memory independent of per-cell trace length**: one
  streamed 100k-job cell routed through
  :func:`~repro.experiments.runner.run_one` stays under the same
  64 MiB absolute tracemalloc ceiling the simulator-core streaming
  benches assert.

``REPRO_BENCH_CAMPAIGN_CELLS`` scales the speedup grid (default 2016
cells, ~4 s for both arms together).  Timings land in the session
:class:`~repro.perf.store.PerfStore` under the same scenario hashes as
``repro-hybrid perf run --scenario campaign_throughput``.
"""

import os

from repro.perf.harness import bench
from repro.perf.scenarios import (
    bench_sim_config as _config,
    make_campaign_throughput,
    stream_synth_jobs,
)
from repro.workload.trace_cache import reset_trace_cache

from conftest import emit, perf_store  # noqa: F401 - fixtures

#: speedup-grid size; 2016 = 96 seeds x (7 mechanisms x 3 checkpoints)
CAMPAIGN_CELLS = int(os.environ.get("REPRO_BENCH_CAMPAIGN_CELLS", "2016"))
#: the ISSUE floor: streamed cells/min over the materialized path
CELLS_PER_MIN_SPEEDUP_FLOOR = 2.0
#: a streamed cell's worker-side heap must not scale with its trace —
#: same absolute bound as bench_sim_core's streamed scenarios
CELL_MEMORY_CEILING_BYTES = 64 * 2**20
CELL_MEMORY_JOBS = 100_000


def test_campaign_throughput_speedup(emit, perf_store):  # noqa: F811
    """Streamed campaign >= 2x materialized cells/min at >= 2k cells."""
    rates = {}
    for stream in (1, 0):
        params = {"n_cells": CAMPAIGN_CELLS, "stream": stream}
        record = bench(
            "campaign_throughput",
            params,
            make_campaign_throughput(params),
            store=perf_store,
            warmup=0,
            repeat=1,
        )
        rates[stream] = record.metrics["cells_per_min"]
    speedup = rates[1] / rates[0]
    emit(
        "bench_campaign_throughput",
        (
            f"campaign throughput, {CAMPAIGN_CELLS} cells: streamed "
            f"{rates[1]:.0f} cells/min vs materialized {rates[0]:.0f} "
            f"cells/min — {speedup:.2f}x "
            f"(floor {CELLS_PER_MIN_SPEEDUP_FLOOR:.1f}x, serial)"
        ),
    )
    assert speedup >= CELLS_PER_MIN_SPEEDUP_FLOOR, (
        f"streamed campaign at {rates[1]:.0f} cells/min is only "
        f"{speedup:.2f}x the materialized path's {rates[0]:.0f} — "
        f"below the {CELLS_PER_MIN_SPEEDUP_FLOOR:.1f}x floor; the "
        "trace cache or trace-affine ordering is not amortizing"
    )


def test_streamed_cell_memory_ceiling(emit, perf_store):  # noqa: F811
    """One 100k-job streamed cell stays under the absolute worker
    heap ceiling — peak memory is O(in-flight), not O(trace).

    The jobs are handed to :func:`run_one` as a bare generator, which
    also exercises the any-submit-ordered-iterable contract (coerced
    via ``as_stream``) on the campaign workers' exact entry point.
    """
    from repro.experiments.runner import run_one
    from repro.perf.scenarios import SYSTEM
    from repro.workload.spec import theta_spec

    reset_trace_cache()
    spec = theta_spec(days=1.0, system_size=SYSTEM, min_size=128)
    config = _config()

    def once():
        run_one(
            spec,
            0,
            None,
            config,
            jobs=iter(stream_synth_jobs(CELL_MEMORY_JOBS)),
        )
        return {"jobs_processed": float(CELL_MEMORY_JOBS)}

    record = bench(
        "campaign_cell_memory",
        {"n_jobs": CELL_MEMORY_JOBS},
        once,
        store=perf_store,
        warmup=0,
        repeat=1,
        memory=True,
    )
    peak = record.metrics["tracemalloc_peak_bytes"]
    emit(
        "bench_campaign_cell_memory",
        (
            f"streamed cell memory, {CELL_MEMORY_JOBS} jobs: "
            f"tracemalloc peak {peak / 2**20:.1f} MiB "
            f"(ceiling {CELL_MEMORY_CEILING_BYTES / 2**20:.0f} MiB "
            f"absolute), wall {record.metrics['wall_time_s']:.1f}s"
        ),
    )
    assert peak < CELL_MEMORY_CEILING_BYTES, (
        f"streamed cell peak {peak / 2**20:.1f} MiB exceeds the "
        f"{CELL_MEMORY_CEILING_BYTES / 2**20:.0f} MiB ceiling at "
        f"{CELL_MEMORY_JOBS} jobs — a campaign worker's memory is "
        "scaling with its cell's trace length"
    )
