"""Fig. 7 — impact of rigid jobs' checkpointing frequency.

"50% means rigid jobs make checkpoints twice as frequent as the optimal
checkpointing frequency."  Observation 13: checkpointing *more* often
than Daly's optimum reduces rigid turnaround and improves utilization,
because preemptions (for on-demand jobs) are far more frequent than the
failures Daly's formula assumes.
"""

import statistics

from repro.experiments.figures import fig7_checkpointing

MULTIPLIERS = (0.5, 1.0, 2.0)  # 200%, 100%, 50% of the optimal frequency


def test_fig7(benchmark, campaign, emit):
    out = benchmark.pedantic(
        lambda: fig7_checkpointing(campaign, multipliers=MULTIPLIERS),
        rounds=1,
        iterations=1,
    )
    emit("fig7_checkpoint", out["text"])
    results = out["results"]

    def mean(mult, field):
        return statistics.mean(
            getattr(s, field) for s in results[mult].values()
        )

    # O13 (direction): more frequent checkpoints lose less compute to
    # preemption than less frequent ones.
    lost_frequent = mean(0.5, "lost_compute_frac")
    lost_sparse = mean(2.0, "lost_compute_frac")
    assert lost_frequent <= lost_sparse + 1e-4, (lost_frequent, lost_sparse)

    # instant start is insensitive to the checkpoint interval
    for mult in MULTIPLIERS:
        assert mean(mult, "instant_start_rate") > 0.9
