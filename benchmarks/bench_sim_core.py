"""Simulator-core throughput: incremental scheduling vs full replanning.

The incremental core (PR 5) keeps a shared availability timeline updated
through the simulator's mutation funnel and skips scheduling passes that
provably cannot change a decision; ``SimConfig.force_full_replan=True``
restores the seed behaviour (re-derive every planner input from scratch
inside every pass, never skip).  This benchmark runs synthetic
1k/5k/10k-job scenarios — a near-saturated 4096-node machine packed
with small jobs, so the running set (and therefore the per-pass rebuild
the seed paid for) is large — across mechanisms and both backfill
planners, and asserts the ISSUE floor:

* **>= 3x wall-clock speedup** over ``force_full_replan=True`` at 10k
  jobs (aggregated over the EASY scenarios; typically it is >20x);
* **byte-identical metrics** between the two modes for every scenario
  (``replan_invariant_view`` masks only wall-clock fields and the
  executed/skipped pass counters).

All timings route through :mod:`repro.perf.harness` and land in the
session :class:`~repro.perf.store.PerfStore`
(``benchmarks/out/perf_history.jsonl``), so every CI run extends one
comparable trajectory.  The workload itself
(:func:`repro.perf.scenarios.synth_jobs`) is shared with the
``repro-hybrid perf`` CLI — one definition, one scenario hash.

``REPRO_BENCH_PROFILE=0`` skips the cProfile artifact of the 10k run;
``REPRO_BENCH_MEMORY_JOBS`` scales the materialized memory-ceiling
scenario (default 100k jobs, ~1 min with the tracemalloc pass);
``REPRO_BENCH_STREAM_JOBS`` scales the streamed one (default 1M jobs,
~8 min — the generator-backed path's headline scale).
"""

import cProfile
import os
import pstats
import time

from repro.core.mechanisms import Mechanism
from repro.metrics.breakdown import ondemand_by_notice_class, waste_by_type
from repro.metrics.report import format_table
from repro.metrics.summary import (
    deterministic_view,
    replan_invariant_view,
    summarize,
)
from repro.perf.harness import bench, measure
from repro.perf.record import PerfRecord, canonical_json, current_git_sha
from repro.perf.scenarios import (
    SYSTEM,
    bench_sim_config as _config,
    make_sim_core,
    stream_synth_jobs,
    synth_jobs,
)
from repro.sim.simulator import Simulation
from repro.workload.trace import clone_jobs

from conftest import emit, out_dir, perf_store  # noqa: F401 - fixtures

SIZES = (1_000, 5_000, 10_000)
ASSERT_AT = 10_000
SPEEDUP_FLOOR = 3.0
#: EASY scenarios timed at every size (the assertion set)
MECHANISMS = (None, "CUA&SPAA")

#: memory-ceiling scenario scale (the ROADMAP streaming item's floor)
MEMORY_JOBS = int(os.environ.get("REPRO_BENCH_MEMORY_JOBS", "100000"))
#: asserted python-heap ceiling: ~1.3 KiB/job — measured peak is
#: ~0.6 KiB/job (59 MiB at 100k), so this is ~2x headroom, tight
#: enough to catch a per-job copy sneaking into the hot loop
MEMORY_CEILING_BYTES_PER_JOB = 1280
MEMORY_CEILING_FLOOR_BYTES = 16 * 1024 * 1024

#: streamed (generator-backed) scenario scale — the million-job target
STREAM_JOBS = int(os.environ.get("REPRO_BENCH_STREAM_JOBS", "1000000"))
#: *absolute* heap ceiling for streamed runs, independent of trace
#: length: memory is O(in-flight jobs), and the near-saturated synth
#: stream keeps ~2k jobs in flight regardless of n_jobs.  Measured
#: peak is ~4.3 MiB at 100k and ~5.4 MiB at 1M — flat, with >10x
#: headroom under the 64 MiB bound the ROADMAP item asks for.
STREAM_MEMORY_CEILING_BYTES = 64 * 2**20
#: time floor for the streamed path — the laziness must not cost
#: throughput (measured ~24k events/s; CI runners get wide headroom)
STREAM_EVENTS_PER_S_FLOOR = 4_000.0


def _run(jobs, config, mech_name):
    """One timed simulation; returns (measurement, result)."""
    mech = Mechanism.parse(mech_name) if mech_name else None
    holder = {}

    def once():
        result = holder["result"] = Simulation(
            clone_jobs(jobs), config, mech
        ).run()
        return {
            "events_processed": float(result.events_processed),
            "schedule_passes": float(result.schedule_passes),
            "passes_skipped": float(result.passes_skipped),
        }

    m = measure(once, warmup=0, repeat=1)
    return m, holder["result"]


def test_incremental_core_speedup(emit, perf_store):  # noqa: F811
    rows = []
    totals = {}  # n_jobs -> [inc_total, full_total]
    git_sha = current_git_sha()
    for n_jobs in SIZES:
        jobs = synth_jobs(n_jobs)
        for mech_name in MECHANISMS:
            inc_m, inc = _run(jobs, _config(False), mech_name)
            full_m, full = _run(jobs, _config(True), mech_name)
            assert replan_invariant_view(summarize(inc)) == (
                replan_invariant_view(summarize(full))
            ), f"metric drift at n={n_jobs} mech={mech_name}"
            for full_replan, m in ((0, inc_m), (1, full_m)):
                perf_store.append(
                    PerfRecord(
                        scenario="sim_core",
                        params={
                            "n_jobs": n_jobs,
                            "mechanism": mech_name or "",
                            "full_replan": full_replan,
                        },
                        metrics=m.metrics(),
                        git_sha=git_sha,
                        recorded_unix=time.time(),
                    )
                )
            inc_s, full_s = inc_m.wall_time_s, full_m.wall_time_s
            tot = totals.setdefault(n_jobs, [0.0, 0.0])
            tot[0] += inc_s
            tot[1] += full_s
            rows.append(
                [
                    n_jobs,
                    mech_name or "baseline",
                    f"{full_s:.2f}",
                    f"{inc_s:.2f}",
                    f"{full_s / inc_s:.1f}x",
                    inc.schedule_passes,
                    inc.passes_skipped,
                ]
            )
    speedups = {n: t[1] / t[0] for n, t in totals.items()}
    emit(
        "bench_sim_core",
        format_table(
            [
                "jobs",
                "mechanism",
                "full replan s",
                "incremental s",
                "speedup",
                "passes",
                "skipped",
            ],
            rows,
            title=(
                "Simulator core: incremental availability profile + pass "
                f"skipping vs force_full_replan (speedup@10k="
                f"{speedups.get(ASSERT_AT, float('nan')):.1f}x)"
            ),
        ),
    )
    (out_dir() / "bench_sim_core.json").write_text(
        canonical_json(
            {
                "system_size": SYSTEM,
                "speedups": {str(k): v for k, v in speedups.items()},
                "rows": rows,
            }
        )
        + "\n"
    )
    assert speedups[ASSERT_AT] >= SPEEDUP_FLOOR, (
        f"incremental core only {speedups[ASSERT_AT]:.2f}x faster than "
        f"full replanning at {ASSERT_AT} jobs (floor {SPEEDUP_FLOOR}x)"
    )


def test_conservative_planner_speedup(emit, perf_store):  # noqa: F811
    """Conservative backfilling builds its per-pass working profile from
    the shared timeline without sorting; smaller win, same equivalence."""
    jobs = synth_jobs(1_000)
    inc_m, inc = _run(jobs, _config(False, "conservative"), None)
    full_m, full = _run(jobs, _config(True, "conservative"), None)
    inc_s, full_s = inc_m.wall_time_s, full_m.wall_time_s
    assert replan_invariant_view(summarize(inc)) == (
        replan_invariant_view(summarize(full))
    )
    perf_store.append(
        PerfRecord(
            scenario="sim_core",
            params={"n_jobs": 1000, "backfill": "conservative"},
            metrics=inc_m.metrics(),
            git_sha=current_git_sha(),
            recorded_unix=time.time(),
        )
    )
    emit(
        "bench_sim_core_conservative",
        f"conservative backfill, 1k jobs: full={full_s:.2f}s "
        f"incremental={inc_s:.2f}s ({full_s / inc_s:.1f}x)",
    )
    assert inc_s <= full_s * 1.10, (
        "incremental conservative planning slower than full replan: "
        f"{inc_s:.2f}s vs {full_s:.2f}s"
    )


def test_policy_zoo_throughput(emit, perf_store):  # noqa: F811
    """Every registered dispatcher on the 1k-job scenario.

    PRB/EWT and the score policy land in the perf observatory next to
    the legacy orderings: one record per policy under the content-
    addressed ``{"n_jobs": 1000, "policy": <name>}`` params, so each
    policy gets its own trend line.  Also asserts the aging policy's
    cost stays sane — ``prb_ewt`` disables the time-invariance skip,
    so it bounds how much a pass-per-batch policy may cost relative
    to FCFS (generous 10x: CI runners are noisy; the point is to
    catch an accidentally quadratic policy, not 20% drift).
    """
    from repro.sched.registry import policy_names

    rows = []
    walls = {}
    for name in policy_names():
        params = {"n_jobs": 1000, "policy": name}
        record = bench(
            "sim_core",
            params,
            make_sim_core(params),
            store=perf_store,
            warmup=0,
            repeat=1,
        )
        walls[name] = record.metrics["wall_time_s"]
        rows.append(
            [
                name,
                f"{record.metrics['wall_time_s']:.2f}",
                int(record.metrics["schedule_passes"]),
                int(record.metrics["passes_skipped"]),
                f"{record.metrics.get('events_per_s', 0.0):.0f}",
            ]
        )
    emit(
        "bench_sim_core_policy_zoo",
        format_table(
            ["policy", "wall s", "passes", "skipped", "events/s"],
            rows,
            title="Policy zoo at 1k jobs (one perf trend line each)",
        ),
    )
    assert walls["prb_ewt"] <= max(walls["fcfs"], 0.5) * 10.0, (
        f"prb_ewt at {walls['prb_ewt']:.2f}s vs fcfs "
        f"{walls['fcfs']:.2f}s — aging policy cost blew past 10x"
    )


def test_obs_overhead(emit):  # noqa: F811
    """Instrumentation overhead budget on the 10k-job scenario.

    The :mod:`repro.obs` hooks — metric objects, spans, and the
    MemoryProbe's no-op sections — are wired into the simulator
    permanently, so the budget is asserted two ways:

    * **disabled < 2%**: the per-hit cost of the shared no-op metric,
      span, and memory-section objects is microbenchmarked, multiplied
      by the *actual* hook hit counts of the 10k run (taken from an
      enabled run's own counters — an overestimate, since bulk-flushed
      counters are charged per event and every span is charged a
      memory section too), and compared against the run's wall time;
    * **enabled < 10%**: best-of-three wall clock with a live registry
      + tracer vs best-of-three with the disabled default, interleaved
      so machine drift lands on both modes equally.

    Also exports the enabled run's trace + ``obs summary`` text to
    ``benchmarks/out/`` — the CI ``obs-bench`` job uploads both.
    """
    from repro.obs import disable, enabled_obs, get_obs
    from repro.obs.export import render_summary, trace_data, write_trace_data

    jobs = synth_jobs(ASSERT_AT)
    config = _config(False)

    def run_once():
        t0 = time.perf_counter()
        Simulation(clone_jobs(jobs), config, None).run()
        return time.perf_counter() - t0

    run_once()  # warm caches so round 1 is comparable to round 3
    # interleave D/E/D/E so machine drift hits both modes equally
    disabled_times, enabled_times = [], []
    doc = spans_started = None
    for _round in range(3):
        disable()
        disabled_times.append(run_once())
        with enabled_obs() as obs:
            enabled_times.append(run_once())
            spans_started = obs.tracer.n_started
            doc = trace_data(obs, process_name="bench-sim-core-10k")
    disabled_s = min(disabled_times)
    enabled_s = min(enabled_times)

    write_trace_data(out_dir() / "bench_sim_core_10k.trace.json", doc)
    (out_dir() / "bench_sim_core_10k_obs_summary.txt").write_text(
        render_summary(doc) + "\n"
    )

    # null-hook microbenchmark: the only cost the disabled path pays
    null_obs = get_obs()  # disable() above left the DISABLED bundle
    assert not null_obs.enabled
    assert not null_obs.memory.enabled
    n = 200_000
    counter = null_obs.counter("bench.noop")
    t0 = time.perf_counter()
    for _ in range(n):
        counter.inc()
    per_inc_s = (time.perf_counter() - t0) / n
    span = null_obs.span
    t0 = time.perf_counter()
    for _ in range(n):
        with span("bench.noop"):
            pass
    per_span_s = (time.perf_counter() - t0) / n
    section = null_obs.memory.section
    t0 = time.perf_counter()
    for _ in range(n):
        with section("bench.noop"):
            pass
    per_msection_s = (time.perf_counter() - t0) / n

    metrics = doc["otherData"]["metrics"]
    counter_hits = sum(metrics["counters"].values())
    hist_hits = sum(h["count"] for h in metrics["histograms"].values())
    # memory sections fire once per sim.run, but charge one per span
    # as a deliberate overestimate
    disabled_cost_s = (
        (counter_hits + hist_hits) * per_inc_s
        + spans_started * (per_span_s + per_msection_s)
    )
    disabled_frac = disabled_cost_s / disabled_s
    enabled_frac = enabled_s / disabled_s - 1.0
    emit(
        "bench_sim_core_obs_overhead",
        (
            f"obs overhead, 10k jobs: disabled hooks "
            f"{disabled_cost_s * 1e3:.1f}ms of {disabled_s:.2f}s "
            f"({disabled_frac * 100:.2f}%, {counter_hits + hist_hits} "
            f"metric hits + {spans_started} spans incl. null memory "
            f"sections); enabled run "
            f"{enabled_s:.2f}s ({enabled_frac * 100:+.1f}%)"
        ),
    )
    assert disabled_frac < 0.02, (
        f"disabled-path hook cost {disabled_frac * 100:.2f}% of the 10k "
        "run (budget 2%)"
    )
    assert enabled_s <= disabled_s * 1.10, (
        f"enabled instrumentation cost {enabled_frac * 100:.1f}% "
        f"({enabled_s:.2f}s vs {disabled_s:.2f}s; budget 10%)"
    )


def test_memory_ceiling_100k(emit, perf_store):  # noqa: F811
    """The near-saturated stream at 100k jobs stays under the asserted
    python-heap ceiling (first concrete step on the ROADMAP streaming
    item: million-job traces need O(active) memory, not O(trace)).

    The harness times the run untraced, then repeats it once under a
    :class:`~repro.obs.memory.MemoryProbe` (tracemalloc) for the peak.
    """
    params = {"n_jobs": MEMORY_JOBS}
    record = bench(
        "sim_core",
        params,
        make_sim_core(params),
        store=perf_store,
        warmup=0,
        repeat=1,
        memory=True,
    )
    peak = record.metrics["tracemalloc_peak_bytes"]
    ceiling = max(
        MEMORY_CEILING_FLOOR_BYTES,
        MEMORY_JOBS * MEMORY_CEILING_BYTES_PER_JOB,
    )
    emit(
        "bench_sim_core_memory",
        (
            f"memory ceiling, {MEMORY_JOBS} jobs: tracemalloc peak "
            f"{peak / 2**20:.1f} MiB (ceiling {ceiling / 2**20:.0f} MiB, "
            f"{peak / MEMORY_JOBS:.0f} B/job), "
            f"peak RSS {record.metrics['peak_rss_bytes'] / 2**20:.0f} MiB, "
            f"wall {record.metrics['wall_time_s']:.1f}s, "
            f"{record.metrics.get('events_per_s', 0.0):.0f} events/s"
        ),
    )
    assert peak < ceiling, (
        f"python-heap peak {peak / 2**20:.1f} MiB exceeds the "
        f"{ceiling / 2**20:.0f} MiB ceiling at {MEMORY_JOBS} jobs — "
        "something started scaling with the trace, not the active set"
    )


def test_streamed_differential_10k(emit):  # noqa: F811
    """Streamed == materialized, byte for byte, at 10k jobs.

    The generator-backed path retires jobs at completion and keeps only
    the streaming accumulator; this asserts that the summaries (and the
    notice-class / waste breakdowns) it produces are *byte-identical*
    to a materialized run of the same workload — same canonical JSON,
    not merely close — for the baseline and the full CUA&SPAA stack.
    """
    config = _config(False)
    rows = []
    for mech_name in MECHANISMS:
        mech = Mechanism.parse(mech_name) if mech_name else None
        mat = Simulation(
            synth_jobs(ASSERT_AT), config, mech
        ).run()
        st = Simulation(
            stream_synth_jobs(ASSERT_AT), config, mech
        ).run()
        assert st.jobs == [], "streamed run must not retain the trace"

        def view(result):
            return canonical_json(
                {
                    "summary": deterministic_view(summarize(result)),
                    "by_notice": [
                        vars(o) for o in ondemand_by_notice_class(result)
                    ],
                    "waste": waste_by_type(result),
                }
            ).encode()

        mat_bytes, st_bytes = view(mat), view(st)
        assert mat_bytes == st_bytes, (
            f"streamed summary diverged from materialized at "
            f"{ASSERT_AT} jobs, mech={mech_name or 'baseline'}"
        )
        rows.append(
            [mech_name or "baseline", len(mat_bytes), "identical"]
        )
    emit(
        "bench_sim_core_streamed_differential",
        format_table(
            ["mechanism", "summary bytes", "streamed vs materialized"],
            rows,
            title=f"Streamed differential at {ASSERT_AT} jobs",
        ),
    )


def _streamed_memory_run(n_jobs, emit, perf_store, label):
    params = {"n_jobs": n_jobs, "stream": 1}
    record = bench(
        "sim_core",
        params,
        make_sim_core(params),
        store=perf_store,
        warmup=0,
        repeat=1,
        memory=True,
    )
    peak = record.metrics["tracemalloc_peak_bytes"]
    rate = record.metrics.get("events_per_s", 0.0)
    emit(
        label,
        (
            f"streamed memory ceiling, {n_jobs} jobs: tracemalloc peak "
            f"{peak / 2**20:.1f} MiB "
            f"(ceiling {STREAM_MEMORY_CEILING_BYTES / 2**20:.0f} MiB "
            f"absolute — O(in-flight), not O(trace)), "
            f"peak RSS {record.metrics['peak_rss_bytes'] / 2**20:.0f} MiB, "
            f"wall {record.metrics['wall_time_s']:.1f}s, "
            f"{rate:.0f} events/s (floor {STREAM_EVENTS_PER_S_FLOOR:.0f})"
        ),
    )
    assert peak < STREAM_MEMORY_CEILING_BYTES, (
        f"streamed python-heap peak {peak / 2**20:.1f} MiB exceeds the "
        f"{STREAM_MEMORY_CEILING_BYTES / 2**20:.0f} MiB absolute ceiling "
        f"at {n_jobs} jobs — something is scaling with the trace"
    )
    assert rate >= STREAM_EVENTS_PER_S_FLOOR, (
        f"streamed run at {rate:.0f} events/s is below the "
        f"{STREAM_EVENTS_PER_S_FLOOR:.0f}/s floor at {n_jobs} jobs"
    )


def test_streamed_memory_ceiling_100k(emit, perf_store):  # noqa: F811
    """Streamed 100k: absolute ceiling, not per-job — unlike the
    materialized scenario above, the bound must not grow with n_jobs."""
    _streamed_memory_run(
        100_000, emit, perf_store, "bench_sim_core_streamed_100k"
    )


def test_streamed_memory_ceiling_1m(emit, perf_store):  # noqa: F811
    """The million-job scenario: the same absolute ceiling at 10x the
    trace length (REPRO_BENCH_STREAM_JOBS scales it for smoke runs)."""
    _streamed_memory_run(
        STREAM_JOBS, emit, perf_store, "bench_sim_core_streamed_1m"
    )


def test_profile_artifact(emit):  # noqa: F811
    """cProfile of the 10k-job incremental run (uploaded by CI)."""
    if os.environ.get("REPRO_BENCH_PROFILE", "1") == "0":
        return
    jobs = synth_jobs(ASSERT_AT)
    config = _config(False)
    profiler = cProfile.Profile()
    profiler.enable()
    result = Simulation(clone_jobs(jobs), config, None).run()
    profiler.disable()
    prof_path = out_dir() / "bench_sim_core_10k.prof"
    profiler.dump_stats(prof_path)
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    with open(out_dir() / "bench_sim_core_10k_profile.txt", "w") as fh:
        stats.stream = fh
        fh.write(
            f"cProfile, incremental 10k-job run "
            f"(events={result.events_processed}, "
            f"passes={result.schedule_passes}, "
            f"skipped={result.passes_skipped})\n"
        )
        stats.print_stats(30)
    emit(
        "bench_sim_core_profile",
        f"cProfile written to {prof_path} "
        f"({result.events_processed} events, "
        f"{result.schedule_passes} passes, "
        f"{result.passes_skipped} skipped)",
    )
