"""Simulator-core throughput: incremental scheduling vs full replanning.

The incremental core (PR 5) keeps a shared availability timeline updated
through the simulator's mutation funnel and skips scheduling passes that
provably cannot change a decision; ``SimConfig.force_full_replan=True``
restores the seed behaviour (re-derive every planner input from scratch
inside every pass, never skip).  This benchmark runs synthetic
1k/5k/10k-job scenarios — a near-saturated 4096-node machine packed
with small jobs, so the running set (and therefore the per-pass rebuild
the seed paid for) is large — across mechanisms and both backfill
planners, and asserts the ISSUE floor:

* **>= 3x wall-clock speedup** over ``force_full_replan=True`` at 10k
  jobs (aggregated over the EASY scenarios; typically it is >20x);
* **byte-identical metrics** between the two modes for every scenario
  (``replan_invariant_view`` masks only wall-clock fields and the
  executed/skipped pass counters).

``REPRO_BENCH_PROFILE=0`` skips the cProfile artifact of the 10k run
(written to ``benchmarks/out/bench_sim_core_10k.prof`` + a readable
top-function listing for the CI artifact upload).
"""

import cProfile
import json
import os
import pstats
import time

from repro.core.mechanisms import Mechanism
from repro.jobs.checkpoint import CheckpointModel
from repro.jobs.job import Job, JobType, NoticeClass
from repro.metrics.report import format_table
from repro.metrics.summary import replan_invariant_view, summarize
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulation
from repro.util.rng import RngStreams
from repro.workload.trace import clone_jobs

from conftest import OUT_DIR, emit  # noqa: F401 - fixture re-export

SYSTEM = 4096
SIZES = (1_000, 5_000, 10_000)
ASSERT_AT = 10_000
SPEEDUP_FLOOR = 3.0
#: EASY scenarios timed at every size (the assertion set)
MECHANISMS = (None, "CUA&SPAA")


def synth_jobs(n_jobs: int, seed: int = 2022, load: float = 0.95):
    """A near-saturated stream of small jobs (big running set).

    Sizes 1-3 on 4096 nodes with ~2.5 h runtimes keep thousands of jobs
    running at once: exactly the regime where the seed's per-pass
    rebuild (O(running log running) sort per event batch) dominated.
    5% of jobs are on-demand with accurate advance notice, 15%
    malleable — so reservations, loans, shrinks, and the resulting
    stale events all appear at scale.
    """
    rng = RngStreams(seed).get("bench-sim-core")
    avg_size, avg_runtime = 2.0, 9000.0
    rate = load * SYSTEM / (avg_size * avg_runtime)
    jobs, t = [], 0.0
    for i in range(n_jobs):
        t += float(rng.exponential(1.0 / rate))
        u = float(rng.uniform())
        size = int(rng.integers(1, 4))
        runtime = float(rng.uniform(6_000.0, 12_000.0))
        estimate = runtime * float(rng.uniform(1.0, 1.5))
        if u < 0.05:
            lead = float(rng.uniform(900.0, 1_800.0))
            jobs.append(
                Job(
                    job_id=i,
                    job_type=JobType.ONDEMAND,
                    submit_time=t,
                    size=min(size * 4, 64),
                    runtime=runtime / 10,
                    estimate=estimate / 10,
                    notice_class=NoticeClass.ACCURATE,
                    notice_time=max(0.0, t - lead),
                    estimated_arrival=t,
                )
            )
        elif u < 0.20:
            jobs.append(
                Job(
                    job_id=i,
                    job_type=JobType.MALLEABLE,
                    submit_time=t,
                    size=size,
                    min_size=1,
                    runtime=runtime,
                    estimate=estimate,
                )
            )
        else:
            jobs.append(
                Job(
                    job_id=i,
                    job_type=JobType.RIGID,
                    submit_time=t,
                    size=size,
                    runtime=runtime,
                    estimate=estimate,
                )
            )
    return jobs


def _config(force_full_replan: bool, backfill_mode: str = "easy") -> SimConfig:
    return SimConfig(
        system_size=SYSTEM,
        checkpoint=CheckpointModel.disabled(),
        backfill_mode=backfill_mode,
        backfill_depth=16,
        force_full_replan=force_full_replan,
    )


def _run(jobs, config, mech_name):
    mech = Mechanism.parse(mech_name) if mech_name else None
    t0 = time.perf_counter()
    result = Simulation(clone_jobs(jobs), config, mech).run()
    return time.perf_counter() - t0, result


def test_incremental_core_speedup(emit):  # noqa: F811
    rows = []
    totals = {}  # n_jobs -> [inc_total, full_total]
    for n_jobs in SIZES:
        jobs = synth_jobs(n_jobs)
        for mech_name in MECHANISMS:
            inc_s, inc = _run(jobs, _config(False), mech_name)
            full_s, full = _run(jobs, _config(True), mech_name)
            assert replan_invariant_view(summarize(inc)) == (
                replan_invariant_view(summarize(full))
            ), f"metric drift at n={n_jobs} mech={mech_name}"
            tot = totals.setdefault(n_jobs, [0.0, 0.0])
            tot[0] += inc_s
            tot[1] += full_s
            rows.append(
                [
                    n_jobs,
                    mech_name or "baseline",
                    f"{full_s:.2f}",
                    f"{inc_s:.2f}",
                    f"{full_s / inc_s:.1f}x",
                    inc.schedule_passes,
                    inc.passes_skipped,
                ]
            )
    speedups = {n: t[1] / t[0] for n, t in totals.items()}
    emit(
        "bench_sim_core",
        format_table(
            [
                "jobs",
                "mechanism",
                "full replan s",
                "incremental s",
                "speedup",
                "passes",
                "skipped",
            ],
            rows,
            title=(
                "Simulator core: incremental availability profile + pass "
                f"skipping vs force_full_replan (speedup@10k="
                f"{speedups.get(ASSERT_AT, float('nan')):.1f}x)"
            ),
        ),
    )
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "bench_sim_core.json").write_text(
        json.dumps(
            {
                "system_size": SYSTEM,
                "speedups": {str(k): v for k, v in speedups.items()},
                "rows": rows,
            },
            indent=2,
        )
        + "\n"
    )
    assert speedups[ASSERT_AT] >= SPEEDUP_FLOOR, (
        f"incremental core only {speedups[ASSERT_AT]:.2f}x faster than "
        f"full replanning at {ASSERT_AT} jobs (floor {SPEEDUP_FLOOR}x)"
    )


def test_conservative_planner_speedup(emit):  # noqa: F811
    """Conservative backfilling builds its per-pass working profile from
    the shared timeline without sorting; smaller win, same equivalence."""
    jobs = synth_jobs(1_000)
    inc_s, inc = _run(jobs, _config(False, "conservative"), None)
    full_s, full = _run(jobs, _config(True, "conservative"), None)
    assert replan_invariant_view(summarize(inc)) == (
        replan_invariant_view(summarize(full))
    )
    emit(
        "bench_sim_core_conservative",
        f"conservative backfill, 1k jobs: full={full_s:.2f}s "
        f"incremental={inc_s:.2f}s ({full_s / inc_s:.1f}x)",
    )
    assert inc_s <= full_s * 1.10, (
        "incremental conservative planning slower than full replan: "
        f"{inc_s:.2f}s vs {full_s:.2f}s"
    )


def test_obs_overhead(emit):  # noqa: F811
    """Instrumentation overhead budget on the 10k-job scenario.

    The :mod:`repro.obs` hooks are wired into the simulator permanently,
    so the budget is asserted two ways:

    * **disabled < 2%**: the per-hit cost of the shared no-op metric and
      span objects is microbenchmarked, multiplied by the *actual* hook
      hit counts of the 10k run (taken from an enabled run's own
      counters — an overestimate, since bulk-flushed counters are
      charged per event), and compared against the run's wall time;
    * **enabled < 10%**: best-of-three wall clock with a live registry
      + tracer vs best-of-three with the disabled default, interleaved
      so machine drift lands on both modes equally.

    Also exports the enabled run's trace + ``obs summary`` text to
    ``benchmarks/out/`` — the CI ``obs-bench`` job uploads both.
    """
    from repro.obs import disable, enabled_obs, get_obs
    from repro.obs.export import render_summary, trace_data, write_trace_data

    jobs = synth_jobs(ASSERT_AT)
    config = _config(False)

    def run_once():
        t0 = time.perf_counter()
        Simulation(clone_jobs(jobs), config, None).run()
        return time.perf_counter() - t0

    run_once()  # warm caches so round 1 is comparable to round 3
    # interleave D/E/D/E so machine drift hits both modes equally
    disabled_times, enabled_times = [], []
    doc = spans_started = None
    for _round in range(3):
        disable()
        disabled_times.append(run_once())
        with enabled_obs() as obs:
            enabled_times.append(run_once())
            spans_started = obs.tracer.n_started
            doc = trace_data(obs, process_name="bench-sim-core-10k")
    disabled_s = min(disabled_times)
    enabled_s = min(enabled_times)

    OUT_DIR.mkdir(exist_ok=True)
    write_trace_data(OUT_DIR / "bench_sim_core_10k.trace.json", doc)
    (OUT_DIR / "bench_sim_core_10k_obs_summary.txt").write_text(
        render_summary(doc) + "\n"
    )

    # null-hook microbenchmark: the only cost the disabled path pays
    null_obs = get_obs()  # disable() above left the DISABLED bundle
    assert not null_obs.enabled
    n = 200_000
    counter = null_obs.counter("bench.noop")
    t0 = time.perf_counter()
    for _ in range(n):
        counter.inc()
    per_inc_s = (time.perf_counter() - t0) / n
    span = null_obs.span
    t0 = time.perf_counter()
    for _ in range(n):
        with span("bench.noop"):
            pass
    per_span_s = (time.perf_counter() - t0) / n

    metrics = doc["otherData"]["metrics"]
    counter_hits = sum(metrics["counters"].values())
    hist_hits = sum(h["count"] for h in metrics["histograms"].values())
    disabled_cost_s = (
        (counter_hits + hist_hits) * per_inc_s + spans_started * per_span_s
    )
    disabled_frac = disabled_cost_s / disabled_s
    enabled_frac = enabled_s / disabled_s - 1.0
    emit(
        "bench_sim_core_obs_overhead",
        (
            f"obs overhead, 10k jobs: disabled hooks "
            f"{disabled_cost_s * 1e3:.1f}ms of {disabled_s:.2f}s "
            f"({disabled_frac * 100:.2f}%, {counter_hits + hist_hits} "
            f"metric hits + {spans_started} spans); enabled run "
            f"{enabled_s:.2f}s ({enabled_frac * 100:+.1f}%)"
        ),
    )
    assert disabled_frac < 0.02, (
        f"disabled-path hook cost {disabled_frac * 100:.2f}% of the 10k "
        "run (budget 2%)"
    )
    assert enabled_s <= disabled_s * 1.10, (
        f"enabled instrumentation cost {enabled_frac * 100:.1f}% "
        f"({enabled_s:.2f}s vs {disabled_s:.2f}s; budget 10%)"
    )


def test_profile_artifact(emit):  # noqa: F811
    """cProfile of the 10k-job incremental run (uploaded by CI)."""
    if os.environ.get("REPRO_BENCH_PROFILE", "1") == "0":
        return
    jobs = synth_jobs(ASSERT_AT)
    config = _config(False)
    profiler = cProfile.Profile()
    profiler.enable()
    result = Simulation(clone_jobs(jobs), config, None).run()
    profiler.disable()
    OUT_DIR.mkdir(exist_ok=True)
    prof_path = OUT_DIR / "bench_sim_core_10k.prof"
    profiler.dump_stats(prof_path)
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    with open(OUT_DIR / "bench_sim_core_10k_profile.txt", "w") as fh:
        stats.stream = fh
        fh.write(
            f"cProfile, incremental 10k-job run "
            f"(events={result.events_processed}, "
            f"passes={result.schedule_passes}, "
            f"skipped={result.passes_skipped})\n"
        )
        stats.print_stats(30)
    emit(
        "bench_sim_core_profile",
        f"cProfile written to {prof_path} "
        f"({result.events_processed} events, "
        f"{result.schedule_passes} passes, "
        f"{result.passes_skipped} skipped)",
    )
