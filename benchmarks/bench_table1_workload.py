"""Table I — synthetic Theta workload summary.

Regenerates the Table I statistics (system size, job count, project
count, size/length bounds) from one generated trace and benchmarks the
trace generator itself.

Paper values (real Theta log, one year): 4,392 KNL nodes, 37,298 jobs,
211 projects, max job length 1 day, min job size 128 nodes.
"""

from repro.experiments.figures import table1_workload
from repro.workload.theta import generate_trace


def test_table1(benchmark, campaign, emit):
    out = benchmark.pedantic(
        lambda: table1_workload(campaign), rounds=1, iterations=1
    )
    emit("table1_workload", out["text"])
    s = out["summary"]
    assert s["compute_nodes"] == 4392
    assert s["min_job_size"] >= 128
    assert s["max_job_length_h"] <= 24.0
    # yearly-equivalent job count in the same decade as Theta's 37.3k
    yearly = s["number_of_jobs"] * 365.0 / campaign.spec.days
    assert 15_000 < yearly < 70_000


def test_trace_generation_throughput(benchmark, campaign):
    """Generator speed: one multi-week Theta-scale trace per call."""
    jobs = benchmark(lambda: generate_trace(campaign.spec, seed=1))
    assert len(jobs) > 100
