"""Table II — baseline FCFS/EASY performance.

Paper values (one-year Theta trace): 15.6 h average turnaround, 83.93 %
system utilization, 22.69 % on-demand instant start rate.

Our shorter synthetic traces are calibrated to land in the same band for
utilization and instant start; turnaround is lower because multi-week
traces accumulate less queue depth than a full year.
"""

from repro.experiments.figures import table2_baseline


def test_table2(benchmark, campaign, emit):
    out = benchmark.pedantic(
        lambda: table2_baseline(campaign), rounds=1, iterations=1
    )
    emit("table2_baseline", out["text"])
    s = out["summary"]
    # paper: 83.93% — accept the surrounding band at reduced scale
    assert 0.70 < s.system_utilization < 0.95
    # paper: 22.69% — without mechanisms most on-demand jobs must queue
    assert s.instant_start_rate < 0.6
    # no special treatment: nothing is ever preempted or shrunk
    assert s.preemption_ratio_rigid == 0.0
    assert s.preemption_ratio_malleable == 0.0
