"""Fig. 5 — weekly on-demand submission counts: the bursty pattern.

The paper shows three sample traces whose weekly on-demand counts swing
heavily ("users tend to submit a bunch of on-demand jobs in a short
period of time").  We regenerate the weekly series and check the swings
via the coefficient of variation.
"""

from dataclasses import replace

from repro.experiments.figures import fig5_burstiness
from repro.workload.ondemand import burstiness_cv


def test_fig5(benchmark, campaign, emit):
    # burstiness needs a few months of weeks to be visible
    config = replace(
        campaign, spec=replace(campaign.spec, days=max(campaign.spec.days, 56))
    )
    out = benchmark.pedantic(
        lambda: fig5_burstiness(config), rounds=1, iterations=1
    )
    emit("fig5_burstiness", out["text"])
    cvs = [burstiness_cv(counts) for counts in out["series"].values()]
    assert max(cvs) > 0.3, f"weekly on-demand counts too smooth: cv={cvs}"
