"""Fig. 4 — job-type distribution (rigid / on-demand / malleable) per trace.

The paper assigns types at project granularity (10% / 60% / 30% of
projects), so the per-trace share of *jobs* varies widely between seeds —
on-demand jobs span roughly 3-15% of jobs across their traces.
"""

from repro.experiments.figures import fig4_type_mix


def test_fig4(benchmark, campaign, emit):
    out = benchmark.pedantic(
        lambda: fig4_type_mix(campaign), rounds=1, iterations=1
    )
    emit("fig4_type_mix", out["text"])
    for shares in out["shares"]:
        assert shares["rigid"] > shares["ondemand"]
        assert 0.0 <= shares["ondemand"] < 0.45
        assert shares["malleable"] > 0.0
