"""HTML report rendering cost: a 10k-record campaign renders in seconds.

The exporter must stay usable on paper-scale campaign directories
(tens of thousands of cells), so this benchmark renders a synthetic
10k-record store — pivot, charts, errors, and a full diff section —
and asserts the render stays under a laptop-friendly wall-clock bound
and is byte-stable across repeated renders (the property the golden
tests pin at small scale).

Records come from :func:`repro.perf.scenarios.synth_campaign_records`
(shared with the ``perf run`` ``html_report`` scenario) and the timing
goes through :mod:`repro.perf.harness` into the session PerfStore.
"""

import time

from repro.campaign.html import render_campaign_html
from repro.perf.harness import measure
from repro.perf.record import PerfRecord, current_git_sha
from repro.perf.scenarios import synth_campaign_records

from conftest import emit, out_dir, perf_store  # noqa: F401 - fixtures

N_RECORDS = 10_000
#: generous CI bound; a laptop renders 10k records in well under this
MAX_RENDER_S = 20.0


def test_html_report_scales(emit, perf_store):  # noqa: F811
    records = synth_campaign_records(N_RECORDS)
    other = synth_campaign_records(N_RECORDS // 2, backfill="conservative")

    holder = {}

    def render():
        holder["doc"] = render_campaign_html(
            records,
            by=("notice_mix", "mechanism"),
            diff_records=other,
            a_name="easy",
            b_name="conservative",
        )

    m = measure(render, warmup=0, repeat=1)
    render_s = m.wall_time_s
    document = holder["doc"]
    render()
    assert document == holder["doc"], "render is not byte-stable"
    assert "<svg" in document and "<h2>Diff" in document

    perf_store.append(
        PerfRecord(
            scenario="html_report",
            params={"n_records": N_RECORDS, "diff": 1},
            metrics={
                "wall_time_s": render_s,
                "html_bytes": float(len(document)),
                "records_per_s": N_RECORDS / render_s,
            },
            git_sha=current_git_sha(),
            recorded_unix=time.time(),
        )
    )
    out = out_dir() / "html_report_10k.html"
    out.write_text(document, encoding="utf-8")
    emit(
        "html_report",
        f"html report: {N_RECORDS} records + {N_RECORDS // 2}-record diff "
        f"rendered in {render_s:.2f}s ({len(document) / 1024:.0f} KiB) "
        f"-> {out}",
    )
    assert render_s < MAX_RENDER_S, (
        f"render took {render_s:.1f}s (> {MAX_RENDER_S}s) on "
        f"{N_RECORDS} records"
    )
