"""HTML report rendering cost: a 10k-record campaign renders in seconds.

The exporter must stay usable on paper-scale campaign directories
(tens of thousands of cells), so this benchmark renders a synthetic
10k-record store — pivot, charts, errors, and a full diff section —
and asserts the render stays under a laptop-friendly wall-clock bound
and is byte-stable across repeated renders (the property the golden
tests pin at small scale).
"""

import time

from repro.campaign.html import render_campaign_html
from repro.campaign.store import CellRecord
from repro.metrics.summary import SummaryMetrics

from conftest import OUT_DIR

N_RECORDS = 10_000
#: generous CI bound; a laptop renders 10k records in well under this
MAX_RENDER_S = 20.0

_SUMMARY = dict(
    mechanism=None, n_jobs=10, n_rigid=5, n_malleable=3, n_ondemand=2,
    n_noshow=0, avg_turnaround_h=4.0, avg_turnaround_rigid_h=5.0,
    avg_turnaround_malleable_h=3.0, avg_turnaround_ondemand_h=1.0,
    instant_start_rate=0.5, avg_ondemand_delay_s=30.0,
    preemption_ratio_rigid=0.1, preemption_ratio_malleable=0.2,
    shrink_ratio_malleable=0.0, system_utilization=0.8,
    allocated_frac=0.8, lost_compute_frac=0.0, wasted_setup_frac=0.0,
    checkpoint_frac=0.0, reserved_idle_frac=0.0,
    decision_latency_p50_s=0.001, decision_latency_max_s=0.01,
    makespan_h=48.0, lease_resumes=0, lease_expands=0,
)

_MECHANISMS = (None, "N&PAA", "N&SPAA", "CUA&PAA", "CUA&SPAA")
_MIXES = ("W1", "W2", "W3", "W4", "W5")


def _records(n: int, backfill: str = "easy"):
    records = []
    for i in range(n):
        mechanism = _MECHANISMS[i % len(_MECHANISMS)]
        summary = SummaryMetrics(
            **{
                **_SUMMARY,
                "mechanism": mechanism,
                "avg_turnaround_h": 4.0 + (i % 97) * 0.01,
                "system_utilization": 0.7 + (i % 29) * 0.01,
            }
        ).to_dict()
        records.append(
            CellRecord(
                key=f"{backfill}-{i:06d}",
                config={
                    "days": float(7 * (1 + i % 3)),
                    "target_load": 0.6,
                    "system_size": 512,
                    "notice_mix": _MIXES[(i // 5) % len(_MIXES)],
                    "mechanism": mechanism,
                    "backfill_mode": backfill,
                    "checkpoint_multiplier": 1.0,
                    "failure_mtbf_days": 0.0,
                    "seed": i // 25,
                    "kind": "sim",
                    "spec_overrides": {},
                    "sim_overrides": {},
                },
                status="ok" if i % 200 else "error",
                summary=summary if i % 200 else None,
                error=None if i % 200 else "Traceback\nValueError: boom",
                elapsed_s=1.0,
            )
        )
    return records


def test_html_report_scales(emit):
    records = _records(N_RECORDS)
    other = _records(N_RECORDS // 2, backfill="conservative")

    t0 = time.perf_counter()
    document = render_campaign_html(
        records,
        by=("notice_mix", "mechanism"),
        diff_records=other,
        a_name="easy",
        b_name="conservative",
    )
    render_s = time.perf_counter() - t0

    again = render_campaign_html(
        records,
        by=("notice_mix", "mechanism"),
        diff_records=other,
        a_name="easy",
        b_name="conservative",
    )
    assert document == again, "render is not byte-stable"
    assert "<svg" in document and "<h2>Diff" in document

    OUT_DIR.mkdir(exist_ok=True)
    out = OUT_DIR / "html_report_10k.html"
    out.write_text(document, encoding="utf-8")
    emit(
        "html_report",
        f"html report: {N_RECORDS} records + {N_RECORDS // 2}-record diff "
        f"rendered in {render_s:.2f}s ({len(document) / 1024:.0f} KiB) "
        f"-> {out}",
    )
    assert render_s < MAX_RENDER_S, (
        f"render took {render_s:.1f}s (> {MAX_RENDER_S}s) on "
        f"{N_RECORDS} records"
    )
