"""Tests for the trace linter."""

import pytest

from repro.jobs.job import Job, JobType, NoticeClass
from repro.workload.spec import theta_spec
from repro.workload.theta import generate_trace
from repro.workload.validate import Finding, assert_valid, validate_trace


def rigid(job_id, submit=0.0, size=10, runtime=100.0, estimate=None):
    return Job(
        job_id=job_id,
        job_type=JobType.RIGID,
        submit_time=submit,
        size=size,
        runtime=runtime,
        estimate=estimate or runtime,
    )


class TestErrors:
    def test_duplicate_ids(self):
        out = validate_trace([rigid(1), rigid(1, submit=1.0)], 100)
        assert any("duplicate" in f.message for f in out)
        assert out[0].severity == "error"

    def test_oversized_job(self):
        out = validate_trace([rigid(1, size=200)], 100)
        assert any("200 nodes" in f.message for f in out)

    def test_clean_trace_has_no_errors(self):
        out = validate_trace(
            [rigid(1), rigid(2, submit=5.0, estimate=200.0)],
            100,
            errors_only=True,
        )
        assert out == []

    def test_assert_valid_raises_with_listing(self):
        with pytest.raises(ValueError, match="duplicate"):
            assert_valid([rigid(1), rigid(1, submit=1.0)], 100)

    def test_assert_valid_passes_clean(self):
        assert_valid([rigid(1, estimate=150.0)], 100)


class TestWarnings:
    def test_unsorted_trace(self):
        out = validate_trace(
            [rigid(1, submit=10.0), rigid(2, submit=5.0)], 100
        )
        assert any("not sorted" in f.message for f in out)

    def test_exact_estimates_flagged(self):
        out = validate_trace([rigid(i) for i in range(10)], 100)
        assert any("estimates equal the runtime" in f.message for f in out)

    def test_unshrinkable_malleable(self):
        j = Job(
            job_id=1,
            job_type=JobType.MALLEABLE,
            submit_time=0.0,
            size=10,
            min_size=10,
            runtime=100.0,
            estimate=150.0,
        )
        out = validate_trace([j], 100)
        assert any("cannot shrink" in f.message for f in out)

    def test_wide_ondemand(self):
        j = Job(
            job_id=1,
            job_type=JobType.ONDEMAND,
            submit_time=0.0,
            size=60,
            runtime=100.0,
            estimate=150.0,
        )
        out = validate_trace([j], 100)
        assert any("half the machine" in f.message for f in out)

    def test_errors_only_hides_warnings(self):
        out = validate_trace(
            [rigid(1, submit=10.0), rigid(2, submit=5.0)],
            100,
            errors_only=True,
        )
        assert out == []

    def test_finding_str(self):
        f = Finding("warning", 3, "something odd")
        assert str(f) == "[warning] job 3: something odd"
        assert str(Finding("error", -1, "x")) == "[error] trace: x"


class TestGeneratedTracesAreClean:
    def test_generator_output_has_no_errors(self):
        spec = theta_spec(days=3, target_load=0.6)
        jobs = generate_trace(spec, seed=1)
        errors = validate_trace(jobs, spec.system_size, errors_only=True)
        assert errors == []
