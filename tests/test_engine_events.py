"""Unit tests for the event queue: ordering, batching, determinism."""

import pytest

from repro.sim.engine import EventQueue
from repro.sim.events import EventType
from repro.util.errors import SimulationError


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(5.0, EventType.JOB_SUBMIT)
        q.push(1.0, EventType.JOB_SUBMIT)
        q.push(3.0, EventType.JOB_SUBMIT)
        assert [q.pop().time for _ in range(3)] == [1.0, 3.0, 5.0]

    def test_same_time_priority_order(self):
        """Finishes before planned preempts before notices before submits."""
        q = EventQueue()
        q.push(10.0, EventType.JOB_SUBMIT, tag="s")
        q.push(10.0, EventType.JOB_FINISH, tag="f")
        q.push(10.0, EventType.RESERVATION_TIMEOUT, tag="t")
        q.push(10.0, EventType.ADVANCE_NOTICE, tag="n")
        q.push(10.0, EventType.PLANNED_PREEMPT, tag="p")
        tags = [q.pop().payload["tag"] for _ in range(5)]
        assert tags == ["f", "p", "n", "s", "t"]

    def test_fifo_within_type(self):
        q = EventQueue()
        q.push(10.0, EventType.JOB_SUBMIT, tag=1)
        q.push(10.0, EventType.JOB_SUBMIT, tag=2)
        q.push(10.0, EventType.JOB_SUBMIT, tag=3)
        assert [q.pop().payload["tag"] for _ in range(3)] == [1, 2, 3]

    def test_clock_advances_on_pop(self):
        q = EventQueue()
        q.push(4.0, EventType.JOB_SUBMIT)
        assert q.now == 0.0
        q.pop()
        assert q.now == 4.0

    def test_push_into_past_rejected(self):
        q = EventQueue()
        q.push(4.0, EventType.JOB_SUBMIT)
        q.pop()
        with pytest.raises(SimulationError):
            q.push(3.0, EventType.JOB_SUBMIT)

    def test_push_at_now_allowed(self):
        q = EventQueue()
        q.push(4.0, EventType.JOB_SUBMIT)
        q.pop()
        q.push(4.0, EventType.JOB_FINISH)
        assert q.pop().type is EventType.JOB_FINISH


class TestBatching:
    def test_batch_same_timestamp(self):
        q = EventQueue()
        q.push(1.0, EventType.JOB_SUBMIT)
        q.push(1.0, EventType.JOB_FINISH)
        q.push(2.0, EventType.JOB_SUBMIT)
        batch = q.pop_batch()
        assert len(batch) == 2
        assert batch[0].type is EventType.JOB_FINISH
        assert len(q) == 1

    def test_batch_empty(self):
        assert EventQueue().pop_batch() == []

    def test_pop_empty_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_counts_by_type(self):
        q = EventQueue()
        q.push(1.0, EventType.JOB_SUBMIT)
        q.push(2.0, EventType.JOB_SUBMIT)
        q.push(3.0, EventType.JOB_FINISH)
        assert q.counts_by_type() == {"JOB_SUBMIT": 2, "JOB_FINISH": 1}

    def test_peek(self):
        q = EventQueue()
        assert q.peek() is None
        q.push(1.0, EventType.JOB_SUBMIT)
        assert q.peek().time == 1.0
        assert len(q) == 1
