"""Tests for on-demand no-shows (§III-B.4 extension).

"An on-demand job may arrive late or even do not show up.  To preempt
deadlock, if an on-demand job has not arrived after a certain period of
time of its estimated arrival time, the scheduler will release the
reserved nodes."
"""

from dataclasses import replace

import pytest

from repro.core.mechanisms import Mechanism
from repro.jobs.checkpoint import CheckpointModel
from repro.jobs.job import Job, JobState, JobType, NoticeClass
from repro.metrics.summary import summarize
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulation
from repro.util.errors import ConfigurationError
from repro.workload.spec import theta_spec
from repro.workload.theta import generate_trace
from repro.workload.trace import clone_jobs, load_trace_csv, save_trace_csv


def noshow_od(job_id=9, notice=1000.0, estimated=2500.0, size=50):
    return Job(
        job_id=job_id,
        job_type=JobType.ONDEMAND,
        submit_time=estimated,
        size=size,
        runtime=1000.0,
        estimate=1000.0,
        notice_class=NoticeClass.ACCURATE,
        notice_time=notice,
        estimated_arrival=estimated,
        no_show=True,
    )


def rigid(job_id, submit, size, runtime):
    return Job(
        job_id=job_id,
        job_type=JobType.RIGID,
        submit_time=submit,
        size=size,
        runtime=runtime,
        estimate=runtime,
    )


def cfg():
    return SimConfig(
        system_size=100,
        checkpoint=CheckpointModel.disabled(),
        validate_invariants=True,
    )


class TestValidation:
    def test_noshow_requires_notice(self):
        with pytest.raises(ConfigurationError):
            Job(
                job_id=1,
                job_type=JobType.ONDEMAND,
                submit_time=100.0,
                size=10,
                runtime=100.0,
                estimate=100.0,
                no_show=True,
            )

    def test_noshow_only_ondemand(self):
        with pytest.raises(ConfigurationError):
            Job(
                job_id=1,
                job_type=JobType.RIGID,
                submit_time=0.0,
                size=10,
                runtime=100.0,
                estimate=100.0,
                no_show=True,
            )


class TestSimulation:
    def test_noshow_never_runs_and_releases_reservation(self):
        trace = [
            rigid(1, 0.0, 100, 2000.0),
            noshow_od(),
            rigid(3, 1500.0, 100, 500.0),
        ]
        res = Simulation(trace, cfg(), Mechanism.parse("CUA&PAA")).run()
        phantom = next(j for j in res.jobs if j.no_show)
        assert phantom.state is JobState.NOTICED
        assert phantom.stats.first_start is None
        # job 3 needs the whole machine; the phantom's holding (collected
        # at job 1's finish, t=2000) blocks it until the grace timeout at
        # estimated + 600 = 3100.
        waiter = next(j for j in res.jobs if j.job_id == 3)
        assert waiter.stats.first_start == pytest.approx(3100.0)

    def test_noshow_with_baseline_is_harmless(self):
        trace = [rigid(1, 0.0, 50, 1000.0), noshow_od()]
        res = Simulation(trace, cfg(), None).run()
        assert next(j for j in res.jobs if j.no_show).state is JobState.NOTICED

    def test_noshow_excluded_from_metrics(self):
        trace = [
            rigid(1, 0.0, 50, 1000.0),
            noshow_od(),
            Job(
                job_id=2,
                job_type=JobType.ONDEMAND,
                submit_time=100.0,
                size=20,
                runtime=300.0,
                estimate=300.0,
            ),
        ]
        res = Simulation(trace, cfg(), Mechanism.parse("N&PAA")).run()
        s = summarize(res)
        assert s.n_noshow == 1
        assert s.n_ondemand == 1  # only the arrived one
        assert s.instant_start_rate == 1.0

    def test_cup_plans_cancelled_by_timeout_without_arrival(self):
        """A CUP reservation for a no-show must not leave ghost holdings."""
        trace = [
            rigid(1, 0.0, 100, 20000.0),
            noshow_od(notice=1000.0, estimated=2500.0),
            rigid(3, 2000.0, 100, 500.0),
        ]
        res = Simulation(trace, cfg(), Mechanism.parse("CUP&PAA")).run()
        assert all(
            j.state is JobState.COMPLETED for j in res.jobs if not j.no_show
        )


class TestGeneratorAndTrace:
    def test_generator_produces_noshows(self):
        spec = theta_spec(days=10, target_load=0.6, ondemand_noshow_frac=0.5)
        jobs = generate_trace(spec, seed=3)
        noticed = [
            j
            for j in jobs
            if j.is_ondemand and j.notice_class is not NoticeClass.NONE
        ]
        phantoms = [j for j in jobs if j.no_show]
        if noticed:
            assert 0 < len(phantoms) <= len(noticed)

    def test_noshow_frac_zero_default(self):
        jobs = generate_trace(theta_spec(days=5, target_load=0.5), seed=1)
        assert not any(j.no_show for j in jobs)

    def test_invalid_frac(self):
        with pytest.raises(ConfigurationError):
            theta_spec(ondemand_noshow_frac=1.5)

    def test_clone_and_csv_preserve_noshow(self, tmp_path):
        trace = [noshow_od()]
        assert clone_jobs(trace)[0].no_show is True
        path = str(tmp_path / "t.csv")
        save_trace_csv(trace, path)
        assert load_trace_csv(path)[0].no_show is True

    def test_full_sim_with_generated_noshows(self):
        spec = theta_spec(
            days=7,
            target_load=0.7,
            ondemand_noshow_frac=0.3,
        )
        jobs = generate_trace(spec, seed=5)
        config = replace(SimConfig(), validate_invariants=True)
        res = Simulation(jobs, config, Mechanism.parse("CUA&SPAA")).run()
        s = summarize(res)
        assert all(
            j.state is JobState.COMPLETED for j in res.jobs if not j.no_show
        )
        # arrived on-demand jobs still start instantly despite phantom
        # reservations competing for collected nodes
        if s.n_ondemand:
            assert s.instant_start_rate > 0.8
