"""Unit tests for repro.util: RNG streams, time helpers, errors."""

import numpy as np
import pytest

from repro.util import (
    DAY,
    HOUR,
    MINUTE,
    WEEK,
    ConfigurationError,
    InvariantViolation,
    ReproError,
    RngStreams,
    SimulationError,
    format_duration,
)


class TestRngStreams:
    def test_same_seed_same_streams(self):
        a = RngStreams(42).get("arrivals").random(10)
        b = RngStreams(42).get("arrivals").random(10)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = RngStreams(1).get("arrivals").random(10)
        b = RngStreams(2).get("arrivals").random(10)
        assert not np.allclose(a, b)

    def test_streams_are_independent_by_name(self):
        s = RngStreams(7)
        a = s.get("a").random(10)
        b = s.get("b").random(10)
        assert not np.allclose(a, b)

    def test_stream_is_singleton(self):
        s = RngStreams(7)
        assert s.get("x") is s.get("x")

    def test_order_independence(self):
        """Requesting streams in different orders yields identical draws."""
        s1 = RngStreams(9)
        _ = s1.get("first").random(5)
        second_1 = s1.get("second").random(5)
        s2 = RngStreams(9)
        second_2 = s2.get("second").random(5)
        assert np.allclose(second_1, second_2)

    def test_spawn_children_differ(self):
        parent = RngStreams(3)
        c0 = parent.spawn(0).get("x").random(5)
        c1 = parent.spawn(1).get("x").random(5)
        assert not np.allclose(c0, c1)

    def test_spawn_deterministic(self):
        a = RngStreams(3).spawn(4).get("x").random(5)
        b = RngStreams(3).spawn(4).get("x").random(5)
        assert np.allclose(a, b)

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            RngStreams(3).spawn(-1)

    def test_non_integer_seed_rejected(self):
        with pytest.raises(TypeError):
            RngStreams(1.5)  # type: ignore[arg-type]

    def test_seed_property_and_names(self):
        s = RngStreams(11)
        s.get("zeta")
        s.get("alpha")
        assert s.seed == 11
        assert list(s.names()) == ["alpha", "zeta"]


class TestTimeConstants:
    def test_relations(self):
        assert MINUTE == 60
        assert HOUR == 60 * MINUTE
        assert DAY == 24 * HOUR
        assert WEEK == 7 * DAY

    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (45, "45s"),
            (0, "0s"),
            (90, "1m30s"),
            (3660, "1h01m"),
            (86400 + 3600, "1d01h"),
            (-45, "-45s"),
        ],
    )
    def test_format_duration(self, seconds, expected):
        assert format_duration(seconds) == expected


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ConfigurationError, ReproError)
        assert issubclass(SimulationError, ReproError)
        assert issubclass(InvariantViolation, SimulationError)
