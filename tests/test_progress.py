"""The incremental progress index and the status/watch dashboard.

Covers the tentpole properties:

* warm refreshes read only appended bytes (never reopening unchanged
  files), across process restarts via the persisted ``index/*.json``;
* torn trailing lines are tolerated — never consumed, warned about
  once, parsed once their newline lands;
* a file that shrinks or is replaced (``compact``, rsync) triggers an
  automatic full rescan of that file only;
* ``compact`` explicitly invalidates every cached index;
* golden snapshots of ``campaign status`` and a ``status --watch``
  frame (shards, live/expired leases, throughput, ETA);
* a kill-and-resume fleet run with the index produces results
  canonically byte-identical to a solo run without it.
"""

import json
import logging
import os
import re
import signal
import time
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignSpec,
    CellRecord,
    IndexKeyView,
    LeaseBoard,
    LocalSubprocessBackend,
    ProgressIndex,
    ResultStore,
    merge_shards,
    plan_campaign,
    run_campaign,
    run_worker,
)
from repro.campaign.distrib.worker import known_keys
from repro.campaign.progress import (
    ThroughputTracker,
    format_duration,
    spec_cell_keys,
    status_report,
    take_snapshot,
    watch_status,
)
from repro.campaign.store import iter_jsonl_records, read_jsonl_since
from repro.util.errors import ConfigurationError

SMALL = {
    "name": "small",
    "days": 2,
    "target_load": 0.6,
    "system_size": 512,
    "mechanism": [None, "N&PAA"],
    "seeds": [1, 2],
}


def record(key, status="ok", elapsed=1.0, payload=None):
    return CellRecord(
        key=key,
        config={"seed": 1},
        status=status,
        payload=payload or {"x": 1},
        error=None if status == "ok" else "boom",
        elapsed_s=elapsed,
    )


def append_records(path: Path, records) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as fh:
        for r in records:
            fh.write(r.to_json() + "\n")


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestReadJsonlSince:
    def test_reads_from_offset_only(self, tmp_path):
        path = tmp_path / "r.jsonl"
        append_records(path, [record("k1"), record("k2")])
        all_records, offset, torn = read_jsonl_since(path, 0)
        assert [r.key for r in all_records] == ["k1", "k2"]
        assert offset == path.stat().st_size and not torn
        append_records(path, [record("k3")])
        new, offset2, torn = read_jsonl_since(path, offset)
        assert [r.key for r in new] == ["k3"] and not torn
        assert offset2 == path.stat().st_size

    def test_torn_tail_not_consumed_then_healed(self, tmp_path):
        path = tmp_path / "r.jsonl"
        append_records(path, [record("k1")])
        boundary = path.stat().st_size
        line = record("k2").to_json()
        with path.open("a", encoding="utf-8") as fh:
            fh.write(line[:10])  # killed mid-append
        records, offset, torn = read_jsonl_since(path, 0)
        assert [r.key for r in records] == ["k1"]
        assert offset == boundary and torn
        # the writer resumes: complete the record in place
        with path.open("a", encoding="utf-8") as fh:
            fh.write(line[10:] + "\n")
        healed, offset2, torn = read_jsonl_since(path, offset)
        assert [r.key for r in healed] == ["k2"] and not torn
        assert offset2 == path.stat().st_size

    def test_unparsable_complete_line_skipped_with_warning(
        self, tmp_path, caplog
    ):
        path = tmp_path / "r.jsonl"
        append_records(path, [record("k1")])
        with path.open("a", encoding="utf-8") as fh:
            fh.write("{this is not json}\n")
        append_records(path, [record("k2")])
        with caplog.at_level(logging.WARNING, "repro.campaign.store"):
            records, offset, torn = read_jsonl_since(path, 0)
        assert [r.key for r in records] == ["k1", "k2"]
        assert offset == path.stat().st_size and not torn
        assert any("unparsable" in m for m in caplog.messages)

    def test_iter_jsonl_records_warns_on_torn_tail(self, tmp_path, caplog):
        """Regression for the crash-tolerance satellite: a truncated
        fixture loses only the torn record, with a warning."""
        path = tmp_path / "shard.jsonl"
        append_records(path, [record("k1"), record("k2")])
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"key": "k3", "config": {}, "sta')  # SIGKILL here
        with caplog.at_level(logging.WARNING, "repro.campaign.store"):
            records = list(iter_jsonl_records(path))
        assert [r.key for r in records] == ["k1", "k2"]
        assert any("torn trailing line" in m for m in caplog.messages)

    def test_missing_file(self, tmp_path):
        records, offset, torn = read_jsonl_since(tmp_path / "no.jsonl", 0)
        assert records == [] and offset == 0 and not torn


class TestProgressIndex:
    def test_cold_then_warm_refresh(self, tmp_path):
        d = tmp_path / "c"
        append_records(d / "results.jsonl", [record("k1")])
        append_records(d / "shards" / "w0.jsonl", [record("k2", "error")])
        index = ProgressIndex(d)
        cold = index.refresh()
        assert cold.n_new_records == 2 and cold.n_rescans == 2
        assert index.keys() == {"k1", "k2"}
        assert index.statuses() == {"k1": "ok", "k2": "error"}
        # warm, unchanged: zero bytes read, zero files rescanned
        warm = index.refresh()
        assert warm.n_bytes_read == 0 and warm.n_new_records == 0
        assert warm.n_rescans == 0
        # append one record: only its bytes are read
        line_len = len(record("k3").to_json()) + 1
        append_records(d / "shards" / "w0.jsonl", [record("k3")])
        delta = index.refresh()
        assert delta.n_bytes_read == line_len
        assert delta.n_new_records == 1 and delta.n_rescans == 0
        assert index.keys() == {"k1", "k2", "k3"}

    def test_persists_across_instances(self, tmp_path):
        d = tmp_path / "c"
        append_records(d / "results.jsonl", [record("k1"), record("k2")])
        ProgressIndex(d).refresh()
        assert (d / "index" / "progress.json").exists()
        again = ProgressIndex(d)  # a different process, later
        assert again.keys() == {"k1", "k2"}  # loaded, pre-refresh
        warm = again.refresh()
        assert warm.n_bytes_read == 0 and warm.n_rescans == 0

    def test_shrunk_file_triggers_full_rescan(self, tmp_path):
        d = tmp_path / "c"
        results = d / "results.jsonl"
        append_records(results, [record("k1"), record("k2")])
        index = ProgressIndex(d)
        index.refresh()
        # truncate to the first record (keep the inode)
        lines = results.read_text().splitlines()
        with results.open("r+", encoding="utf-8") as fh:
            fh.truncate(len(lines[0]) + 1)
        stats = index.refresh()
        assert stats.n_rescans == 1
        assert index.keys() == {"k1"}

    def test_replaced_file_triggers_full_rescan(self, tmp_path):
        d = tmp_path / "c"
        results = d / "results.jsonl"
        append_records(results, [record("k1")])
        index = ProgressIndex(d)
        index.refresh()
        tmp = results.with_name("new.tmp")
        append_records(tmp, [record("k9")])
        os.replace(tmp, results)  # same size, new inode
        stats = index.refresh()
        assert stats.n_rescans == 1
        assert index.keys() == {"k9"}

    def test_vanished_file_dropped(self, tmp_path):
        d = tmp_path / "c"
        shard = d / "shards" / "w0.jsonl"
        append_records(shard, [record("k1")])
        index = ProgressIndex(d)
        index.refresh()
        shard.unlink()
        stats = index.refresh()
        assert stats.n_dropped == 1
        assert index.keys() == set()

    def test_torn_tail_warned_once_then_healed(self, tmp_path, caplog):
        d = tmp_path / "c"
        shard = d / "shards" / "w0.jsonl"
        append_records(shard, [record("k1")])
        line = record("k2").to_json()
        with shard.open("a", encoding="utf-8") as fh:
            fh.write(line[:8])
        index = ProgressIndex(d)
        with caplog.at_level(logging.WARNING, "repro.campaign.progress"):
            first = index.refresh()
            second = index.refresh()
        assert first.n_torn == 1 and second.n_torn == 1
        assert index.keys() == {"k1"}
        torn_warnings = [
            m for m in caplog.messages if "torn trailing line" in m
        ]
        assert len(torn_warnings) == 1  # throttled across refreshes
        with shard.open("a", encoding="utf-8") as fh:
            fh.write(line[8:] + "\n")
        healed = index.refresh()
        assert healed.n_new_records == 1 and healed.n_torn == 0
        assert index.keys() == {"k1", "k2"}

    def test_compact_invalidates_indexes(self, tmp_path):
        d = tmp_path / "c"
        store = ResultStore(d)
        store.put(record("k1", "error"))
        store.put(record("k1", "ok"))
        index = ProgressIndex(d)
        index.refresh()
        assert index.path.exists()
        stats = store.compact()
        assert stats.n_superseded == 1
        assert not index.path.exists()
        # a fresh index rebuilds correctly from the compacted file
        rebuilt = ProgressIndex(d)
        rebuilt.refresh()
        assert rebuilt.statuses() == {"k1": "ok"}

    def test_statuses_ok_beats_error_across_files(self, tmp_path):
        d = tmp_path / "c"
        append_records(d / "shards" / "a.jsonl", [record("k1", "error")])
        append_records(d / "shards" / "b.jsonl", [record("k1")])
        index = ProgressIndex(d)
        index.refresh()
        assert index.statuses() == {"k1": "ok"}

    def test_no_directory_no_side_effects(self, tmp_path):
        d = tmp_path / "nothing"
        index = ProgressIndex(d)
        stats = index.refresh()
        assert stats.n_files == 0
        assert not d.exists()  # scanning nothing creates nothing

    def test_corrupt_index_file_rebuilds(self, tmp_path):
        d = tmp_path / "c"
        append_records(d / "results.jsonl", [record("k1")])
        (d / "index").mkdir()
        (d / "index" / "progress.json").write_text("{torn", "utf-8")
        index = ProgressIndex(d)
        stats = index.refresh()
        assert stats.n_rescans == 1
        assert index.keys() == {"k1"}

    def test_known_keys_parity_with_index(self, tmp_path):
        d = tmp_path / "c"
        append_records(d / "results.jsonl", [record("m1")])
        append_records(d / "shards" / "w0.jsonl", [record("s1", "error")])
        assert known_keys(d) == {"m1", "s1"}
        # and via a held index
        index = ProgressIndex(d)
        assert known_keys(d, index) == {"m1", "s1"}


class TestResultStoreRefresh:
    def test_refresh_folds_appended_records(self, tmp_path):
        d = tmp_path / "c"
        store = ResultStore(d)
        store.put(record("k1"))
        other = ResultStore(d)
        store.put(record("k2"))
        assert "k2" not in other
        assert other.refresh() == 1
        assert "k2" in other and len(other) == 2
        assert other.refresh() == 0

    def test_refresh_reloads_after_rewrite(self, tmp_path):
        d = tmp_path / "c"
        store = ResultStore(d)
        store.put(record("k1", "error"))
        store.put(record("k1"))
        other = ResultStore(d)
        store.compact()
        other.refresh()
        assert len(other) == 1 and other.get("k1").ok

    def test_own_puts_do_not_rescan(self, tmp_path):
        d = tmp_path / "c"
        store = ResultStore(d)
        store.put(record("k1"))
        store.put(record("k2"))
        assert store.refresh() == 0  # offset tracked through puts


class TestIndexKeyView:
    def test_plan_matches_store_backed_plan(self, tmp_path):
        d = tmp_path / "c"
        spec = CampaignSpec.from_dict(SMALL)
        cells = spec.expand()
        append_records(
            d / "results.jsonl",
            [
                record(cells[0].key()),
                record(cells[1].key(), "error"),
            ],
        )
        index = ProgressIndex(d)
        index.refresh()
        view_plan = plan_campaign(spec, IndexKeyView(index))
        store_plan = plan_campaign(spec, ResultStore(d))
        assert {c.key() for c in view_plan.todo} == {
            c.key() for c in store_plan.todo
        }
        assert view_plan.n_cached == store_plan.n_cached == 1

    def test_retry_requires_real_store(self, tmp_path):
        index = ProgressIndex(tmp_path)
        with pytest.raises(ConfigurationError, match="retry"):
            plan_campaign(
                CampaignSpec.from_dict(SMALL),
                IndexKeyView(index),
                retry_failed=True,
            )


KEY_RE = re.compile(r"\b[0-9a-f]{16}\b")


def normalized(text: str) -> str:
    """Replace 16-hex cell keys with stable placeholders, in order of
    first appearance, so golden snapshots survive config hashing."""
    seen = {}

    def sub(match):
        key = match.group(0)
        if key not in seen:
            seen[key] = f"<KEY{len(seen)}>"
        return seen[key]

    return KEY_RE.sub(sub, text)


def build_fixture_dir(tmp_path) -> Path:
    """A deterministic campaign dir: 4-cell spec, 2 ok + 1 error spread
    over two shards (one cell merged into results), 2 leases."""
    d = tmp_path / "c"
    spec = CampaignSpec.from_dict(SMALL)
    ResultStore(d, load=False).write_spec(spec.to_dict())
    cells = spec.expand()
    k0, k1, k2 = cells[0].key(), cells[1].key(), cells[2].key()
    append_records(
        d / "results.jsonl",
        [CellRecord(key=k0, config=cells[0].config(), status="ok",
                    payload={"x": 1}, elapsed_s=2.0)],
    )
    append_records(
        d / "shards" / "w0.jsonl",
        [CellRecord(key=k1, config=cells[1].config(), status="ok",
                    payload={"x": 1}, elapsed_s=3.0)],
    )
    append_records(
        d / "shards" / "w1.jsonl",
        [CellRecord(key=k2, config=cells[2].config(), status="error",
                    error="RuntimeError: boom", elapsed_s=0.5)],
    )
    clock = FakeClock(1000.0)
    live = LeaseBoard(d, owner="host-1-w0", ttl_s=60, clock=clock)
    assert live.acquire(cells[3].key())
    stale = LeaseBoard(d, owner="host-2-w1", ttl_s=60,
                       clock=FakeClock(400.0))
    assert stale.acquire("deadbeefdeadbeef")
    return d


class TestStatusGolden:
    def test_status_report_golden(self, tmp_path):
        d = build_fixture_dir(tmp_path)
        text = status_report(d, clock=FakeClock(1010.0))
        assert normalized(text) == "\n".join(
            [
                "campaign 'small': 2/4 cells done, 1 failed, 1 pending",
                "stored records: 3 (5.5s compute)",
                "shards:",
                "  shard w0: 1 records, 0 errors",
                "  shard w1: 1 records, 1 error",
                "leases: 1 live, 1 expired",
                "  lease <KEY0>: EXPIRED, owner host-2-w1, "
                "heartbeat 610s ago (ttl 60s)",
                "  lease <KEY1>: live, owner host-1-w0, "
                "heartbeat 10s ago (ttl 60s)",
                "  FAILED <KEY2>: RuntimeError: boom",
            ]
        )

    def test_watch_single_frame_golden(self, tmp_path):
        d = build_fixture_dir(tmp_path)
        frames = []
        watch_status(
            d,
            interval_s=30.0,
            frames=1,
            out=frames.append,
            clock=FakeClock(1010.0),
            sleep=lambda _s: pytest.fail("one frame must not sleep"),
        )
        assert len(frames) == 1
        assert normalized(frames[0]) == "\n".join(
            [
                "campaign 'small': 2/4 cells done, 1 failed, 1 pending",
                "stored records: 3 (5.5s compute)",
                "throughput: n/a — ETA n/a",
                "shards:",
                "  shard w0: 1 records, 0 errors",
                "  shard w1: 1 records, 1 error",
                "leases: 1 live, 1 expired",
                "  lease <KEY0>: EXPIRED, owner host-2-w1, "
                "heartbeat 610s ago (ttl 60s)",
                "  lease <KEY1>: live, owner host-1-w0, "
                "heartbeat 10s ago (ttl 60s)",
            ]
        )

    def test_watch_throughput_and_eta(self, tmp_path):
        """Second frame: rates from shard append deltas, ETA from the
        aggregate completion rate."""
        d = build_fixture_dir(tmp_path)
        spec = CampaignSpec.from_dict(SMALL)
        clock = FakeClock(1000.0)
        frames = []

        def advance_and_append(_interval):
            clock.advance(60.0)
            cells = spec.expand()
            append_records(
                d / "shards" / "w1.jsonl",
                [CellRecord(key=cells[3].key(), config=cells[3].config(),
                            status="ok", payload={"x": 1}, elapsed_s=4.0)],
            )

        watch_status(
            d,
            interval_s=60.0,
            frames=2,
            out=frames.append,
            clock=clock,
            sleep=advance_and_append,
        )
        # out() is also called with "" as a frame separator
        frames = [f for f in frames if f]
        assert len(frames) == 2
        second = normalized(frames[1])
        assert "campaign 'small': 3/4 cells done, 1 failed, 0 pending" in second
        # 1 cell completed in 60s -> 1.0 cells/min, 0 pending -> ETA 0s
        assert "throughput: 1.0 cells/min — ETA 0s" in second
        assert "  shard w1: 2 records, 1 error, 1.0 cells/min" in second
        assert "  shard w0: 1 records, 0 errors, 0.0 cells/min" in second

    def test_status_without_spec(self, tmp_path):
        d = tmp_path / "c"
        append_records(d / "results.jsonl", [record("k1")])
        text = status_report(d, clock=FakeClock())
        assert "1 ok / 0 failed records (no campaign.json)" in text

    def test_cli_status_watch_frames(self, tmp_path, capsys):
        from repro.experiments.cli import main as cli_main

        d = build_fixture_dir(tmp_path)
        code = cli_main(
            [
                "campaign", "status", "--dir", str(d),
                "--watch", "--frames", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput:" in out and "cells done" in out


class TestThroughputTracker:
    def _snap(self, t, done, failed=0, shards=()):
        from repro.campaign.progress import ShardStat, StatusSnapshot

        return StatusSnapshot(
            time=t, name="x", n_cells=100, n_done=done, n_failed=failed,
            n_records=done + failed, elapsed_s=0.0,
            shards=tuple(ShardStat(*s) for s in shards),
            leases_live=0, leases_expired=0,
        )

    def test_single_sample_has_no_rate(self):
        tracker = ThroughputTracker()
        tracker.add(self._snap(0.0, 10))
        assert tracker.cells_per_min() is None
        assert tracker.eta_s(self._snap(0.0, 10)) is None

    def test_rate_and_eta(self):
        tracker = ThroughputTracker(window_s=300)
        tracker.add(self._snap(0.0, 10))
        snap = self._snap(60.0, 40)
        tracker.add(snap)
        assert tracker.cells_per_min() == pytest.approx(30.0)
        # 100 - 40 pending at 0.5 cells/s -> 120 s
        assert tracker.eta_s(snap) == pytest.approx(120.0)

    def test_window_prunes_old_samples(self):
        tracker = ThroughputTracker(window_s=100)
        for t, done in [(0, 0), (60, 60), (120, 90), (180, 105)]:
            tracker.add(self._snap(float(t), done))
        # the t=0 and t=60 samples fell out of the 100 s window
        assert tracker.cells_per_min() == pytest.approx(
            60.0 * (105 - 90) / 60.0
        )

    def test_duplicate_executions_do_not_inflate_rate(self):
        tracker = ThroughputTracker()
        tracker.add(self._snap(0.0, 10, shards=[("w0", 10, 0)]))
        # shard grew by 5 records but only 2 new unique cells completed
        tracker.add(self._snap(60.0, 12, shards=[("w0", 15, 0)]))
        assert tracker.cells_per_min() == pytest.approx(2.0)
        assert tracker.shard_cells_per_min("w0") == pytest.approx(5.0)

    def test_format_duration(self):
        assert format_duration(None) == "n/a"
        assert format_duration(42) == "42s"
        assert format_duration(250) == "4m10s"
        assert format_duration(48245) == "13h24m"


class TestKillResumeByteIdentical:
    def test_fleet_kill_resume_matches_solo_canonically(self, tmp_path):
        """Acceptance: a fleet run that loses a worker mid-cell, is
        rescued, and merges through the index yields a results store
        canonically byte-identical to a solo run without any index."""
        spec = CampaignSpec.from_dict(SMALL)
        d = tmp_path / "fleet"
        ResultStore(d, load=False).write_spec(spec.to_dict())
        backend = LocalSubprocessBackend(workers=1)
        (handle,) = backend.launch(str(d), ttl_s=1.0, poll_s=0.1)
        try:
            deadline = time.time() + 60
            leases = d / "leases"
            while time.time() < deadline:
                if leases.exists() and list(leases.glob("*.json")):
                    break
                if handle.proc.poll() is not None:
                    break
                time.sleep(0.02)
            if handle.proc.poll() is None:
                os.kill(handle.proc.pid, signal.SIGKILL)
        finally:
            handle.proc.wait()
        run_worker(d, shard="rescue", ttl_s=1.0, poll_s=0.1)
        merge_shards(d)
        solo = tmp_path / "solo"
        run_campaign(spec, directory=solo)
        fleet_bytes = ResultStore(d).canonical_bytes()
        solo_bytes = ResultStore(solo).canonical_bytes()
        assert fleet_bytes and fleet_bytes == solo_bytes

    def test_canonical_bytes_ignore_wall_clock(self, tmp_path):
        a = ResultStore(tmp_path / "a")
        b = ResultStore(tmp_path / "b")
        a.put(record("k1", elapsed=1.0))
        a.put(record("k2", elapsed=2.0))
        b.put(record("k2", elapsed=9.0))  # different order + timings
        b.put(record("k1", elapsed=7.0))
        assert a.canonical_bytes() == b.canonical_bytes()


class TestSpecCellKeys:
    def test_round_trip(self, tmp_path):
        d = tmp_path / "c"
        spec = CampaignSpec.from_dict(SMALL)
        ResultStore(d, load=False).write_spec(spec.to_dict())
        name, keys = spec_cell_keys(d)
        assert name == "small"
        assert keys == {c.key() for c in spec.expand()}

    def test_missing_spec(self, tmp_path):
        assert spec_cell_keys(tmp_path) == (None, None)

    def test_take_snapshot_without_spec(self, tmp_path):
        d = tmp_path / "c"
        append_records(d / "results.jsonl", [record("k1"),
                                             record("k2", "error")])
        index = ProgressIndex(d)
        snap = take_snapshot(d, index, clock=FakeClock())
        assert snap.n_cells is None and snap.n_pending is None
        assert snap.n_done == 1 and snap.n_failed == 1
