"""Unit tests for the checkpoint cost/interval model (Daly)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.jobs.checkpoint import (
    LARGE_JOB_CHECKPOINT_COST_S,
    LARGE_JOB_THRESHOLD_NODES,
    SMALL_JOB_CHECKPOINT_COST_S,
    CheckpointModel,
)
from repro.util.errors import ConfigurationError


class TestCost:
    def test_small_job_cost(self):
        m = CheckpointModel()
        assert m.cost(128) == SMALL_JOB_CHECKPOINT_COST_S
        assert m.cost(LARGE_JOB_THRESHOLD_NODES - 1) == SMALL_JOB_CHECKPOINT_COST_S

    def test_large_job_cost(self):
        m = CheckpointModel()
        assert m.cost(LARGE_JOB_THRESHOLD_NODES) == LARGE_JOB_CHECKPOINT_COST_S
        assert m.cost(4392) == LARGE_JOB_CHECKPOINT_COST_S

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            CheckpointModel().cost(0)


class TestDaly:
    def test_formula(self):
        m = CheckpointModel()
        # tau = sqrt(2*C*M) - C
        assert m.daly_interval(600.0, 3.6e6) == pytest.approx(
            math.sqrt(2 * 600 * 3.6e6) - 600
        )

    def test_min_clamp(self):
        m = CheckpointModel(min_interval_s=500.0)
        # Tiny MTBF drives the formula negative; the clamp holds.
        assert m.daly_interval(600.0, 10.0) == 500.0

    def test_interval_decreases_with_job_size(self):
        """Wider jobs fail more often -> checkpoint more often."""
        m = CheckpointModel()
        assert m.interval(2048) < m.interval(256)

    def test_multiplier_scales_interval(self):
        m = CheckpointModel()
        half = m.with_multiplier(0.5)
        assert half.interval(256) == pytest.approx(0.5 * m.interval(256))

    def test_disabled_is_infinite(self):
        assert math.isinf(CheckpointModel.disabled().interval(256))

    def test_job_mtbf_series_system(self):
        m = CheckpointModel(node_mtbf_s=1e6)
        assert m.job_mtbf(100) == pytest.approx(1e4)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"node_mtbf_s": 0},
            {"node_mtbf_s": -1},
            {"interval_multiplier": 0},
            {"min_interval_s": 0},
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigurationError):
            CheckpointModel(**kwargs)

    def test_invalid_daly_args(self):
        m = CheckpointModel()
        with pytest.raises(ValueError):
            m.daly_interval(-1.0, 100.0)
        with pytest.raises(ValueError):
            m.daly_interval(600.0, 0.0)
        with pytest.raises(ValueError):
            m.job_mtbf(0)

    @given(
        nodes=st.integers(min_value=1, max_value=10000),
        mult=st.floats(min_value=0.1, max_value=10.0),
    )
    def test_interval_always_at_least_min(self, nodes, mult):
        m = CheckpointModel(interval_multiplier=mult)
        assert m.interval(nodes) >= m.min_interval_s
