"""Unit tests for the reservation book: holdings, loans, earmarks, plans."""

import pytest

from repro.core.reservation import PlannedPreemption, ReservationBook
from repro.util.errors import InvariantViolation


def make_res(book, od_id=100, need=50, notice=0.0, arrival=1800.0, collecting=True):
    return book.create(
        od_job_id=od_id,
        need=need,
        notice_time=notice,
        estimated_arrival=arrival,
        expiry_time=arrival + 600.0,
        collecting=collecting,
    )


class TestHoldings:
    def test_grab_free_caps_at_deficit(self):
        book = ReservationBook()
        res = make_res(book, need=50)
        assert book.grab_free(res, 200) == 50
        assert res.held == 50
        assert res.deficit == 0
        assert book.total_held == 50

    def test_grab_free_limited_by_pool(self):
        book = ReservationBook()
        res = make_res(book, need=50)
        assert book.grab_free(res, 30) == 30
        assert res.deficit == 20

    def test_duplicate_active_reservation_rejected(self):
        book = ReservationBook()
        make_res(book, od_id=7)
        with pytest.raises(InvariantViolation):
            make_res(book, od_id=7)

    def test_recreate_after_deactivate(self):
        book = ReservationBook()
        make_res(book, od_id=7)
        book.deactivate(7)
        make_res(book, od_id=7)  # allowed

    def test_deactivate_returns_held(self):
        book = ReservationBook()
        res = make_res(book)
        book.grab_free(res, 50)
        assert book.deactivate(res.od_job_id) == 50
        assert book.total_held == 0
        assert book.get(res.od_job_id) is None

    def test_deactivate_unknown_is_noop(self):
        assert ReservationBook().deactivate(123) == 0


class TestLoans:
    def test_loan_and_return(self):
        book = ReservationBook()
        res = make_res(book, need=50)
        book.grab_free(res, 50)
        book.loan_out(res, borrower_job_id=5, nodes=20)
        assert res.held == 30
        assert res.secured == 50  # loans still count as secured
        assert book.total_held == 30
        # borrower releases 25 nodes (20 borrowed + 5 own)
        book.on_job_release(5, 25)
        assert res.held == 50
        assert res.loans == {}

    def test_loan_exceeding_held_rejected(self):
        book = ReservationBook()
        res = make_res(book, need=50)
        book.grab_free(res, 10)
        with pytest.raises(InvariantViolation):
            book.loan_out(res, 5, 20)

    def test_release_smaller_than_loan_is_a_bug(self):
        book = ReservationBook()
        res = make_res(book, need=50)
        book.grab_free(res, 50)
        book.loan_out(res, 5, 20)
        with pytest.raises(InvariantViolation):
            book.on_job_release(5, 10)

    def test_loans_on(self):
        book = ReservationBook()
        r1 = make_res(book, od_id=1, need=50)
        r2 = make_res(book, od_id=2, need=50, notice=1.0)
        book.grab_free(r1, 30)
        book.grab_free(r2, 30)
        book.loan_out(r1, 5, 10)
        book.loan_out(r2, 5, 7)
        assert book.loans_on(5) == 17


class TestTargetedClaims:
    def test_claim_for_caps_at_deficit(self):
        book = ReservationBook()
        res = make_res(book, need=50)
        book.grab_free(res, 20)
        claimed = book.on_job_release(99, 100, claim_for=res.od_job_id)
        assert claimed == 30
        assert res.held == 50

    def test_claim_for_inactive_reservation(self):
        book = ReservationBook()
        res = make_res(book)
        book.deactivate(res.od_job_id)
        assert book.on_job_release(99, 100, claim_for=res.od_job_id) == 0

    def test_loans_return_before_claim(self):
        book = ReservationBook()
        lender = make_res(book, od_id=1, need=30, notice=0.0)
        claimer = make_res(book, od_id=2, need=40, notice=1.0)
        book.grab_free(lender, 30)
        book.loan_out(lender, 5, 30)
        # job 5 releases 35 nodes; 30 go back to the lender's holding first
        claimed = book.on_job_release(5, 35, claim_for=2)
        assert lender.held == 30
        assert claimed == 5


class TestEarmarks:
    def test_earmark_honored_on_release(self):
        book = ReservationBook()
        res = make_res(book, need=50, collecting=False)
        book.add_earmark(res, job_id=5, pledge=40)
        book.on_job_release(5, 60)
        assert res.held == 40

    def test_earmark_capped_by_deficit(self):
        book = ReservationBook()
        res = make_res(book, need=50, collecting=False)
        book.grab_free(res, 30)
        book.add_earmark(res, 5, 40)
        book.on_job_release(5, 60)
        assert res.held == 50  # only 20 taken despite a 40 pledge

    def test_earmark_priority_by_notice_time(self):
        book = ReservationBook()
        late = make_res(book, od_id=2, need=50, notice=10.0, collecting=False)
        early = make_res(book, od_id=1, need=50, notice=0.0, collecting=False)
        book.add_earmark(late, 5, 50)
        book.add_earmark(early, 5, 50)
        book.on_job_release(5, 60)
        assert early.held == 50
        assert late.held == 10

    def test_pledged_on_counts_earmarks_and_plans(self):
        book = ReservationBook()
        res = make_res(book, collecting=False)
        book.add_earmark(res, 5, 10)
        book.add_planned(res, PlannedPreemption(victim_job_id=6, fire_time=100.0, pledge=20))
        assert book.pledged_on(5) == 10
        assert book.pledged_on(6) == 20
        book.cancel_plans(res)
        assert book.pledged_on(5) == 0
        assert book.pledged_on(6) == 0

    def test_duplicate_plan_rejected(self):
        book = ReservationBook()
        res = make_res(book)
        book.add_planned(res, PlannedPreemption(6, 100.0, 20))
        with pytest.raises(InvariantViolation):
            book.add_planned(res, PlannedPreemption(6, 200.0, 10))


class TestAbsorb:
    def test_collecting_reservations_absorb_in_notice_order(self):
        book = ReservationBook()
        r2 = make_res(book, od_id=2, need=40, notice=5.0)
        r1 = make_res(book, od_id=1, need=40, notice=1.0)
        absorbed = book.absorb_free(50)
        assert absorbed == 50
        assert r1.held == 40
        assert r2.held == 10

    def test_non_collecting_ignored(self):
        book = ReservationBook()
        res = make_res(book, collecting=False)
        assert book.absorb_free(50) == 0
        assert res.held == 0

    def test_absorb_zero_budget(self):
        book = ReservationBook()
        make_res(book)
        assert book.absorb_free(0) == 0


class TestValidateAndIntegral:
    def test_validate_catches_drift(self):
        book = ReservationBook()
        res = make_res(book)
        book.grab_free(res, 20)
        book.validate(cluster_free=100)  # fine
        res.held += 1  # corrupt
        with pytest.raises(InvariantViolation):
            book.validate(cluster_free=100)

    def test_validate_catches_over_free(self):
        book = ReservationBook()
        res = make_res(book)
        book.grab_free(res, 50)
        with pytest.raises(InvariantViolation):
            book.validate(cluster_free=10)

    def test_held_node_seconds_integral(self):
        book = ReservationBook()
        res = make_res(book)
        book.advance(10.0)
        book.grab_free(res, 20)
        book.advance(30.0)
        assert book.held_node_seconds == pytest.approx(20 * 20.0)
