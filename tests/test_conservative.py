"""Tests for conservative backfilling and the availability profile."""

import pytest

from repro.jobs.checkpoint import CheckpointModel
from repro.jobs.job import Job, JobState, JobType
from repro.sched.conservative import (
    AvailabilityProfile,
    ConservativeBackfillPlanner,
)
from repro.sched.profile import ProfileView
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulation
from repro.util.errors import ConfigurationError


def rigid(job_id, size, estimate=1000.0, submit=0.0):
    return Job(
        job_id=job_id,
        job_type=JobType.RIGID,
        submit_time=submit,
        size=size,
        runtime=estimate,
        estimate=estimate,
    )


def flat_wall(job, nodes):
    return job.estimate


class TestAvailabilityProfile:
    def test_immediate_fit(self):
        p = AvailabilityProfile(0.0, 50, [])
        assert p.earliest_start(30, 100.0) == 0.0

    def test_waits_for_release(self):
        p = AvailabilityProfile(0.0, 10, [(500.0, 40)])
        assert p.earliest_start(30, 100.0) == 500.0

    def test_window_must_be_sustained(self):
        # 50 free now, but a reservation dip [200, 300) to 20 nodes:
        # a 250 s window starting now would overlap the dip
        p = AvailabilityProfile(0.0, 50, [])
        p.reserve(200.0, 100.0, 30)
        assert p.earliest_start(30, 250.0) == 300.0
        # a window that ends before the dip still starts immediately
        assert p.earliest_start(30, 150.0) == 0.0

    def test_multiple_releases_accumulate(self):
        p = AvailabilityProfile(0.0, 0, [(100.0, 20), (200.0, 20)])
        assert p.earliest_start(40, 50.0) == 200.0

    def test_reserve_then_fit_behind(self):
        p = AvailabilityProfile(0.0, 100, [])
        p.reserve(0.0, 1000.0, 80)
        assert p.earliest_start(30, 10.0) == 1000.0
        assert p.earliest_start(20, 10.0) == 0.0

    def test_negative_reservation_caught(self):
        p = AvailabilityProfile(0.0, 10, [])
        with pytest.raises(AssertionError):
            p.reserve(0.0, 10.0, 20)


class TestPlanner:
    def plan(self, queue, free, blocks=()):
        planner = ConservativeBackfillPlanner()
        return planner.plan(
            profile=ProfileView.from_blocks(0.0, free, list(blocks)),
            ordered_queue=queue,
            loanable=[],
            predict_wall=flat_wall,
        )

    def test_in_order_starts(self):
        ds = self.plan([rigid(1, 30), rigid(2, 40)], free=80)
        assert [d.job.job_id for d in ds] == [1, 2]
        assert not any(d.backfilled for d in ds)

    def test_backfill_cannot_delay_any_reservation(self):
        # head (100) reserved at t=2000; second job (90) reserved behind it
        # at 2000+?; a 30-node job that would push either is rejected.
        queue = [
            rigid(1, 100, estimate=5000.0),
            rigid(2, 90, estimate=1000.0),
            rigid(3, 30, estimate=3000.0),
        ]
        ds = self.plan(queue, free=40, blocks=[(2000.0, 80)])
        # job3 fits now (40 free) and ends at 3000 > 2000 — EASY would
        # reject it too; but conservative also protects job2's reservation.
        # job2 reserved at t=2000..? job2 needs 90: avail hits 90 only
        # after job1's reservation ends (2000+5000). Within [0,7000) the
        # profile floor for job3: starting now ends 3000, overlapping
        # job1's reservation [2000, 7000) which uses 100 of 120 -> only 20
        # free: job3 must wait.
        assert [d.job.job_id for d in ds] == []

    def test_harmless_backfill_allowed(self):
        queue = [
            rigid(1, 100, estimate=5000.0),
            rigid(2, 20, estimate=1000.0),
        ]
        ds = self.plan(queue, free=40, blocks=[(2000.0, 80)])
        # job1 reserved at 2000 (40+80=120 >= 100); job2 (20 nodes, ends
        # 1000) fits in the 40 free now and leaves 20 <= extra at 2000.
        assert [d.job.job_id for d in ds] == [2]
        assert ds[0].backfilled

    def test_no_loans_used(self):
        queue = [rigid(1, 50, estimate=1000.0)]
        ds = self.plan(queue, free=50)
        assert ds[0].loans == {}


class TestSimulationIntegration:
    def test_config_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            SimConfig(backfill_mode="optimistic")

    def run(self, jobs, mode):
        config = SimConfig(
            system_size=100,
            checkpoint=CheckpointModel.disabled(),
            backfill_mode=mode,
            validate_invariants=True,
        )
        return Simulation(jobs, config).run()

    def test_conservative_completes_trace(self):
        jobs = [rigid(i, 30 + i, submit=i * 10.0, estimate=500.0) for i in range(8)]
        res = self.run(jobs, "conservative")
        assert all(j.state is JobState.COMPLETED for j in res.jobs)

    def test_conservative_protects_second_in_queue(self):
        """EASY lets job3 delay job2 (non-head); conservative does not."""
        jobs = [
            rigid(1, 60, estimate=5000.0, submit=0.0),
            rigid(2, 100, estimate=1000.0, submit=10.0),
            rigid(3, 90, estimate=1000.0, submit=20.0),
            rigid(4, 40, estimate=20000.0, submit=30.0),
        ]
        easy = self.run([Job(**{f: getattr(j, f) for f in (
            'job_id', 'job_type', 'submit_time', 'size', 'runtime', 'estimate')})
            for j in jobs], "easy")
        conservative = self.run(jobs, "conservative")

        def start(res, jid):
            return next(j.stats.first_start for j in res.jobs if j.job_id == jid)

        # under EASY, job4 (40 nodes, long) backfills on extra nodes and
        # delays job3 (which is not the head); conservative refuses.
        assert start(conservative, 3) <= start(easy, 3)

    @pytest.mark.parametrize("seed", [0, 11, 42, 99, 123, 500])
    def test_conservative_random_traces_complete(self, seed):
        import sys
        sys.path.insert(0, "tests")
        from test_simulator_invariants import random_trace

        jobs = [j for j in random_trace(seed, 25)]
        config = SimConfig(
            system_size=64,
            checkpoint=CheckpointModel.disabled(),
            backfill_mode="conservative",
            validate_invariants=True,
        )
        res = Simulation(jobs, config).run()
        assert all(j.state is JobState.COMPLETED for j in res.jobs)
