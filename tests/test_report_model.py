"""Report model layer: typed pivots, diffs, error listings, series.

These tests drive :mod:`repro.campaign.report` with hand-built records
(no simulation), so they pin down the model semantics — grouping,
seed-averaging, diff joining, regression classification, and the
error-only edge cases — independently of the renderers.
"""

import math

import pytest

from repro.campaign.report import (
    DEFAULT_METRICS,
    METRIC_DIRECTIONS,
    DiffRow,
    build_diff,
    build_errors,
    build_pivot,
    build_series,
    diff_text,
    report_text,
)
from repro.campaign.store import CellRecord
from repro.metrics.summary import SummaryMetrics

_SUMMARY_DEFAULTS = dict(
    mechanism=None,
    n_jobs=10,
    n_rigid=5,
    n_malleable=3,
    n_ondemand=2,
    n_noshow=0,
    avg_turnaround_h=4.0,
    avg_turnaround_rigid_h=5.0,
    avg_turnaround_malleable_h=3.0,
    avg_turnaround_ondemand_h=1.0,
    instant_start_rate=0.5,
    avg_ondemand_delay_s=30.0,
    preemption_ratio_rigid=0.1,
    preemption_ratio_malleable=0.2,
    shrink_ratio_malleable=0.0,
    system_utilization=0.8,
    allocated_frac=0.8,
    lost_compute_frac=0.0,
    wasted_setup_frac=0.0,
    checkpoint_frac=0.0,
    reserved_idle_frac=0.0,
    decision_latency_p50_s=0.001,
    decision_latency_max_s=0.01,
    makespan_h=48.0,
    lease_resumes=0,
    lease_expands=0,
)


def summary_dict(**overrides) -> dict:
    return SummaryMetrics(**{**_SUMMARY_DEFAULTS, **overrides}).to_dict()


def ok_record(key, mechanism="N&PAA", seed=1, backfill="easy", **metrics):
    config = {
        "days": 2.0,
        "target_load": 0.6,
        "system_size": 512,
        "notice_mix": "W5",
        "mechanism": mechanism,
        "backfill_mode": backfill,
        "checkpoint_multiplier": 1.0,
        "failure_mtbf_days": 0.0,
        "seed": seed,
        "kind": "sim",
        "spec_overrides": {},
        "sim_overrides": {},
    }
    return CellRecord(
        key=key,
        config=config,
        status="ok",
        summary=summary_dict(mechanism=mechanism, **metrics),
        elapsed_s=1.0,
    )


def error_record(key, mechanism="N&PAA", seed=1):
    config = dict(ok_record("x", mechanism=mechanism, seed=seed).config)
    return CellRecord(
        key=key,
        config=config,
        status="error",
        error="Traceback (most recent call last):\nValueError: boom",
        elapsed_s=0.5,
    )


class TestBuildPivot:
    def test_groups_and_averages_over_seeds(self):
        records = [
            ok_record("a", seed=1, avg_turnaround_h=4.0),
            ok_record("b", seed=2, avg_turnaround_h=6.0),
            ok_record("c", mechanism=None, seed=1, avg_turnaround_h=8.0),
        ]
        pivot = build_pivot(records, by=("mechanism",))
        assert [r.group for r in pivot.rows] == [("N&PAA",), ("baseline",)]
        assert pivot.rows[0].n_cells == 2
        assert pivot.rows[0].values["avg_turnaround_h"] == pytest.approx(5.0)
        assert pivot.rows[1].values["avg_turnaround_h"] == pytest.approx(8.0)
        assert pivot.n_ok == 3 and pivot.n_error == 0

    def test_errors_counted_not_grouped(self):
        records = [ok_record("a"), error_record("e")]
        pivot = build_pivot(records, by=("mechanism",))
        assert len(pivot.rows) == 1
        assert pivot.n_error == 1

    def test_unknown_metric_rejected(self):
        """A typo'd metric fails loudly instead of rendering blanks."""
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="no_such_metric"):
            build_pivot([ok_record("a")], metrics=("no_such_metric",))
        with pytest.raises(ConfigurationError, match="avg_turnaroud_h"):
            build_diff(
                [ok_record("a")],
                [ok_record("b")],
                metrics=("avg_turnaroud_h",),
            )

    def test_report_text_roundtrip(self):
        text = report_text([ok_record("a")], by=("mechanism",))
        assert "N&PAA" in text and "avg_turnaround_h" in text
        assert report_text([]) == "(no completed simulation cells)"


class TestBuildDiff:
    def test_deltas_and_directions(self):
        a = [ok_record("a", avg_turnaround_h=4.0, system_utilization=0.8)]
        b = [ok_record("b", avg_turnaround_h=5.0, system_utilization=0.9)]
        diff = build_diff(a, b)
        rows = {r.metric: r for r in diff.rows}
        turnaround = rows["avg_turnaround_h"]
        assert turnaround.delta == pytest.approx(1.0)
        assert turnaround.pct == pytest.approx(0.25)
        # turnaround went up and lower-is-better: a regression
        assert turnaround.regression and not turnaround.improvement
        util = rows["system_utilization"]
        assert util.improvement and not util.regression
        assert diff.n_regressions >= 1 and diff.n_improvements >= 1

    def test_small_changes_are_noise(self):
        a = [ok_record("a", avg_turnaround_h=4.000)]
        b = [ok_record("b", avg_turnaround_h=4.001)]
        diff = build_diff(a, b)
        row = {r.metric: r for r in diff.rows}["avg_turnaround_h"]
        assert not row.regression and not row.improvement

    def test_varying_axis_detected_and_joined(self):
        a = [ok_record("a", backfill="easy")]
        b = [ok_record("b", backfill="conservative")]
        diff = build_diff(a, b)
        assert diff.varying == ("backfill_mode",)
        assert diff.comparable

    def test_every_direction_is_a_summary_metric(self):
        fields = set(SummaryMetrics.__dataclass_fields__)
        assert set(METRIC_DIRECTIONS) <= fields
        assert set(DEFAULT_METRICS) <= set(METRIC_DIRECTIONS)

    def test_nan_values_never_classify(self):
        row = DiffRow(
            label="x",
            metric="avg_turnaround_h",
            a=math.nan,
            b=math.nan,
            delta=math.nan,
            pct=None,
            direction=-1,
        )
        assert not row.regression and not row.improvement


class TestDiffErrorOnly:
    """Regression: error-only campaign directories must diff gracefully
    ("no comparable cells"), never crash — in every direction."""

    def _check(self, a, b):
        diff = build_diff(a, b, a_name="A", b_name="B")
        assert not diff.comparable
        assert diff.rows == ()
        text = diff_text(a, b)
        assert "no comparable cells" in text
        return diff

    def test_both_error_only(self):
        diff = self._check([error_record("e1")], [error_record("e2")])
        assert diff.n_a_errors == 1 and diff.n_b_errors == 1
        assert diff.varying == ()

    def test_a_error_only(self):
        diff = self._check([error_record("e1")], [ok_record("b")])
        assert diff.n_b_ok == 1

    def test_b_error_only(self):
        diff = self._check([ok_record("a")], [error_record("e1")])
        assert diff.n_a_ok == 1

    def test_both_empty(self):
        self._check([], [])

    def test_colliding_short_labels_still_start_blocks(self):
        """Two joined cells whose short labels render identically (they
        differ only in a field the label omits) must each print their
        label — block position, not label equality, decides."""
        a1 = ok_record("a1", seed=1)
        a2_cfg = {**dict(a1.config), "target_load": 0.9}
        a2 = CellRecord(
            key="a2", config=a2_cfg, status="ok", summary=a1.summary
        )
        text = diff_text(
            [a1, a2],
            [a1, a2],
            metrics=("avg_turnaround_h",),
        )
        # one labeled row per cell, even though the labels are equal
        assert text.count("N&PAA mix=W5 d=2") == 2

    def test_error_only_text_reports_counts(self):
        text = diff_text([error_record("e1")], [error_record("e2")])
        assert "1 error records" in text

    def test_cli_report_diff_error_only_dirs(self, tmp_path, capsys):
        """End-to-end through ``campaign report --diff`` on directories
        holding only error records (the originally-reported crash)."""
        from repro.campaign.executor import run_campaign
        from repro.campaign.spec import CampaignSpec
        from repro.experiments.cli import campaign_main

        bad = CampaignSpec.from_dict(
            {
                "name": "bad",
                "days": 2,
                "target_load": 0.6,
                "system_size": 512,
                "seeds": [1],
                "spec_overrides": {"min_size": 100_000},
            }
        )
        for sub in ("a", "b"):
            result = run_campaign(bad, directory=str(tmp_path / sub))
            assert result.n_failed == result.n_total
        code = campaign_main(
            [
                "report",
                "--dir",
                str(tmp_path / "a"),
                "--diff",
                str(tmp_path / "b"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "no comparable cells" in out


class TestBuildErrors:
    def test_entries_capture_traceback(self):
        entries = build_errors([ok_record("a"), error_record("e")])
        assert len(entries) == 1
        entry = entries[0]
        assert entry.key == "e"
        assert entry.last_line == "ValueError: boom"
        assert "Traceback" in entry.error
        assert "N&PAA" in entry.label

    def test_empty_error_text(self):
        record = CellRecord(
            key="e", config={"mechanism": None, "seed": 1}, status="error"
        )
        entry = build_errors([record])[0]
        assert entry.last_line == "?"


class TestBuildSeries:
    def _grid(self):
        records = []
        key = 0
        for mech in ("N&PAA", None):
            for seed in (1, 2):
                for days, turnaround in ((2.0, 4.0), (3.0, 6.0)):
                    r = ok_record(
                        f"k{key}",
                        mechanism=mech,
                        seed=seed,
                        avg_turnaround_h=turnaround + seed,
                    )
                    config = dict(r.config)
                    config["days"] = days
                    records.append(
                        CellRecord(
                            key=r.key,
                            config=config,
                            status="ok",
                            summary=r.summary,
                            elapsed_s=1.0,
                        )
                    )
                    key += 1
        return records

    def test_series_over_numeric_axis(self):
        charted = build_series(
            self._grid(),
            x="days",
            by=("mechanism",),
            metrics=("avg_turnaround_h",),
        )
        assert len(charted) == 1
        ms = charted[0]
        assert ms.x_values == (2.0, 3.0)
        assert ms.numeric_x
        names = [name for name, _vals in ms.series]
        assert names == ["N&PAA", "baseline"]
        # seed-averaged: ((4+1) + (4+2))/2 = 5.5 at days=2
        assert ms.series[0][1][0] == pytest.approx(5.5)
        assert ms.series[0][1][1] == pytest.approx(7.5)

    def test_x_field_removed_from_grouping(self):
        charted = build_series(
            self._grid(),
            x="mechanism",
            by=("mechanism",),
            metrics=("avg_turnaround_h",),
        )
        ms = charted[0]
        assert ms.x_values == ("N&PAA", "baseline")
        assert len(ms.series) == 1
        assert ms.series[0][0] == ""

    def test_unknown_x_axis_rejected(self):
        """A typo'd --x (e.g. 'load' for 'target_load') fails loudly
        instead of collapsing every chart onto one x position."""
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="target_load"):
            build_series(
                [ok_record("a")],
                x="load",
                metrics=("avg_turnaround_h",),
            )
        # error-only records: nothing to chart, nothing to validate
        assert build_series(
            [error_record("e")], x="load", metrics=("avg_turnaround_h",)
        )[0].x_values == ()

    def test_absent_cells_are_none(self):
        records = [ok_record("a", mechanism="N&PAA")]
        records.append(
            CellRecord(
                key="b",
                config={**dict(records[0].config), "days": 9.0},
                status="error",
                error="x",
            )
        )
        ms = build_series(
            records, x="days", by=(), metrics=("avg_turnaround_h",)
        )[0]
        assert ms.x_values == (2.0,)
        assert ms.series[0][1] == (pytest.approx(4.0),)
