"""Unit tests for the HybridCoordinator against a stub simulator.

The integration scenarios (test_simulator_scenarios) cover the end-to-end
paths; these tests pin down coordinator-local decisions — what gets
reserved, earmarked, planned, and in what order — without running a full
simulation.
"""

from typing import Dict, List, Optional

import pytest

from repro.core.coordinator import HybridCoordinator
from repro.core.ledger import LeaseKind
from repro.core.mechanisms import Mechanism
from repro.jobs.job import Job, JobState, JobType, NoticeClass


class StubView:
    """Minimal running-job view the coordinator consumes."""

    def __init__(self, job, nodes, pred_finish, loss=0.0, last_ckpt=None):
        self.job = job
        self.nodes = nodes
        self._pred = pred_finish
        self._loss = loss
        self._last_ckpt = last_ckpt

    def predicted_finish(self):
        return self._pred

    def preemption_loss(self, t):
        return self._loss

    def last_checkpoint_completion_at_or_before(self, t):
        if self._last_ckpt is None or self._last_ckpt > t:
            return None
        return self._last_ckpt


class StubOps:
    """Scriptable SimulatorOps double recording every coordinator call."""

    def __init__(self, now=0.0, free=0):
        self._now = now
        #: models the cluster free pool (reserved holdings live inside it)
        self.free = free
        self.book = None  # attached by make(); needed for usable_free
        self.views: List[StubView] = []
        self.jobs: Dict[int, Job] = {}
        self.preempted: List[int] = []
        self.shrunk: List[tuple] = []
        self.expanded: List[tuple] = []
        self.started: List[int] = []
        self.resumed: List[tuple] = []
        self.planned_events: List[tuple] = []
        self.timeouts: List[tuple] = []

    # --- SimulatorOps surface ---
    @property
    def now(self):
        return self._now

    def usable_free(self):
        held = self.book.total_held if self.book is not None else 0
        return self.free - held

    def running_views(self):
        return list(self.views)

    def lookup_job(self, job_id):
        return self.jobs[job_id]

    def preempt_running_job(self, job_id, reason):
        self.preempted.append(job_id)
        view = next(v for v in self.views if v.job.job_id == job_id)
        self.views.remove(view)
        view.job.state = JobState.QUEUED
        view.job.stats.preemptions += 1
        self.free += view.nodes
        return view.nodes

    def shrink_running_malleable(self, job_id, take):
        self.shrunk.append((job_id, take))
        view = next(v for v in self.views if v.job.job_id == job_id)
        view.nodes -= take
        self.free += take
        return take

    def expand_running_malleable(self, job_id, give):
        self.expanded.append((job_id, give))
        self.free -= give
        return give

    def start_od_job(self, job):
        self.started.append(job.job_id)
        self.free -= job.size

    def resume_from_queue(self, job, nodes):
        self.resumed.append((job.job_id, nodes))
        self.free -= nodes

    def push_planned_preempt(self, fire, od_id, victim_id):
        self.planned_events.append((fire, od_id, victim_id))

    def push_reservation_timeout(self, fire, od_id):
        self.timeouts.append((fire, od_id))

    def mark_sched_dirty(self):
        pass


def od_job(job_id=100, size=50, submit=3000.0, notice=1500.0, estimated=3000.0):
    job = Job(
        job_id=job_id,
        job_type=JobType.ONDEMAND,
        submit_time=submit,
        size=size,
        runtime=600.0,
        estimate=600.0,
        notice_class=NoticeClass.ACCURATE,
        notice_time=notice,
        estimated_arrival=estimated,
    )
    return job


def rigid_job(job_id, size, setup=100.0):
    return Job(
        job_id=job_id,
        job_type=JobType.RIGID,
        submit_time=0.0,
        size=size,
        runtime=10000.0,
        estimate=10000.0,
        setup_time=setup,
    )


def malleable_job(job_id, size, min_size):
    return Job(
        job_id=job_id,
        job_type=JobType.MALLEABLE,
        submit_time=0.0,
        size=size,
        min_size=min_size,
        runtime=10000.0,
        estimate=10000.0,
    )


def make(mechanism: Optional[str], now=1500.0, free=0):
    ops = StubOps(now=now, free=free)
    coord = HybridCoordinator(
        Mechanism.parse(mechanism) if mechanism else None, ops
    )
    ops.book = coord.book  # usable_free = cluster free - reserved holdings
    return coord, ops


class TestAdvanceNotice:
    def test_baseline_ignores_notice(self):
        coord, ops = make(None, free=100)
        coord.on_advance_notice(od_job())
        assert coord.book.get(100) is None
        assert ops.timeouts == []

    def test_n_strategy_ignores_notice(self):
        coord, ops = make("N&PAA", free=100)
        coord.on_advance_notice(od_job())
        assert coord.book.get(100) is None

    def test_cua_reserves_free_and_arms_timeout(self):
        coord, ops = make("CUA&PAA", free=30)
        coord.on_advance_notice(od_job(size=50))
        res = coord.book.get(100)
        assert res.held == 30
        assert res.collecting is True
        # timeout at estimated arrival + 10 min grace
        assert ops.timeouts == [(3000.0 + 600.0, 100)]

    def test_cup_earmarks_enders_before_planning(self):
        coord, ops = make("CUP&PAA", free=0)
        ender = rigid_job(1, 30)
        ender.state = JobState.RUNNING
        stayer = rigid_job(2, 100)
        stayer.state = JobState.RUNNING
        ops.views = [
            StubView(ender, 30, pred_finish=2500.0),
            StubView(stayer, 100, pred_finish=99999.0, last_ckpt=2700.0),
        ]
        ops.jobs = {1: ender, 2: stayer}
        coord.on_advance_notice(od_job(size=50))
        res = coord.book.get(100)
        assert res.earmarks == {1: 30}
        # remaining 20 nodes planned from the stayer, firing at its last
        # checkpoint completion before the arrival
        assert res.planned[2].pledge == 20
        assert ops.planned_events == [(2700.0, 100, 2)]

    def test_cup_malleable_victim_fires_at_arrival(self):
        coord, ops = make("CUP&SPAA", free=0)
        stayer = malleable_job(2, 100, 20)
        stayer.state = JobState.RUNNING
        ops.views = [StubView(stayer, 100, pred_finish=99999.0)]
        ops.jobs = {2: stayer}
        coord.on_advance_notice(od_job(size=50))
        assert ops.planned_events == [(3000.0, 100, 2)]

    def test_cup_never_double_pledges(self):
        coord, ops = make("CUP&PAA", free=0)
        stayer = rigid_job(2, 60)
        stayer.state = JobState.RUNNING
        ops.views = [StubView(stayer, 60, pred_finish=99999.0)]
        ops.jobs = {2: stayer}
        coord.on_advance_notice(od_job(job_id=100, size=50))
        coord.on_advance_notice(od_job(job_id=101, size=50))
        pledged = coord.book.pledged_on(2)
        assert pledged <= 60


class TestArrival:
    def test_instant_from_free_pool(self):
        coord, ops = make("N&PAA", now=3000.0, free=80)
        job = od_job(size=50)
        assert coord.on_od_arrival(job) is True
        assert ops.started == [100]
        assert ops.preempted == []

    def test_paa_preempts_cheapest_first(self):
        coord, ops = make("N&PAA", now=3000.0, free=0)
        cheap = rigid_job(1, 30)
        cheap.state = JobState.RUNNING
        pricey = rigid_job(2, 30)
        pricey.state = JobState.RUNNING
        ops.views = [
            StubView(pricey, 30, 9e9, loss=5000.0),
            StubView(cheap, 30, 9e9, loss=10.0),
        ]
        ops.jobs = {1: cheap, 2: pricey}
        assert coord.on_od_arrival(od_job(size=50)) is True
        assert ops.preempted == [1, 2]
        leases = coord.ledger.settle(100)
        assert [(l.lender_job_id, l.nodes) for l in leases] == [(1, 30), (2, 20)]

    def test_spaa_shrinks_evenly_without_preempting(self):
        coord, ops = make("N&SPAA", now=3000.0, free=0)
        m1 = malleable_job(1, 60, 10)
        m2 = malleable_job(2, 60, 10)
        m1.state = m2.state = JobState.RUNNING
        ops.views = [StubView(m1, 60, 9e9), StubView(m2, 60, 9e9)]
        ops.jobs = {1: m1, 2: m2}
        assert coord.on_od_arrival(od_job(size=50)) is True
        assert ops.preempted == []
        assert dict(ops.shrunk) == {1: 25, 2: 25}
        assert all(l.kind is LeaseKind.SHRUNK for l in coord.ledger.outstanding(100))

    def test_spaa_falls_back_to_paa(self):
        coord, ops = make("N&SPAA", now=3000.0, free=0)
        m1 = malleable_job(1, 60, 55)  # only 5 shrinkable
        m1.state = JobState.RUNNING
        ops.views = [StubView(m1, 60, 9e9, loss=1.0)]
        ops.jobs = {1: m1}
        assert coord.on_od_arrival(od_job(size=50)) is True
        assert ops.shrunk == []
        assert ops.preempted == [1]

    def test_insufficient_leaves_job_queued_with_collector(self):
        coord, ops = make("N&PAA", now=3000.0, free=10)
        assert coord.on_od_arrival(od_job(size=50)) is False
        res = coord.book.get(100)
        assert res is not None and res.collecting
        assert res.held == 10

    def test_arrival_cancels_cup_plans(self):
        coord, ops = make("CUP&PAA", free=0)
        stayer = rigid_job(2, 100)
        stayer.state = JobState.RUNNING
        ops.views = [StubView(stayer, 100, 9e9, loss=1.0, last_ckpt=2700.0)]
        ops.jobs = {2: stayer}
        job = od_job(size=50)
        coord.on_advance_notice(job)
        ops._now = 2000.0  # arrives early
        coord.on_od_arrival(job)
        res = coord.book._by_od[100]
        assert all(p.cancelled for p in res.planned.values())
        # the cancelled plan must not fire afterwards
        before = list(ops.preempted)
        coord.on_planned_preempt(100, 2)
        assert ops.preempted == before


class TestCompletion:
    def test_preempted_lender_resumes(self):
        coord, ops = make("N&PAA", now=5000.0, free=0)
        victim = rigid_job(1, 30)
        victim.state = JobState.RUNNING
        ops.views = [StubView(victim, 30, 9e9, loss=1.0)]
        ops.jobs = {1: victim}
        job = od_job(size=20, submit=5000.0)
        coord.on_od_arrival(job)
        assert ops.preempted == [1]
        # od completes; its 20 nodes return; victim needs 30: 20 lease +
        # 10 free that appeared meanwhile
        ops.free += job.size + 10
        coord.on_od_completion(job)
        assert ops.resumed == [(1, 30)]
        assert coord.lease_resumes == 1

    def test_shrunk_lender_expands(self):
        coord, ops = make("N&SPAA", now=5000.0, free=0)
        m1 = malleable_job(1, 60, 10)
        m1.state = JobState.RUNNING
        ops.views = [StubView(m1, 60, 9e9)]
        ops.jobs = {1: m1}
        job = od_job(size=40, submit=5000.0)
        coord.on_od_arrival(job)
        assert dict(ops.shrunk) == {1: 40}
        ops.free += job.size  # od released its nodes
        coord.on_od_completion(job)
        assert ops.expanded == [(1, 40)]
        assert coord.lease_expands == 1

    def test_finished_lender_gets_nothing(self):
        coord, ops = make("N&PAA", now=5000.0, free=0)
        victim = rigid_job(1, 30)
        victim.state = JobState.RUNNING
        ops.views = [StubView(victim, 30, 9e9, loss=1.0)]
        ops.jobs = {1: victim}
        job = od_job(size=20, submit=5000.0)
        coord.on_od_arrival(job)
        victim.state = JobState.COMPLETED  # finished some other way
        ops.free += job.size
        coord.on_od_completion(job)
        assert ops.resumed == []


class TestTimeout:
    def test_timeout_releases_holding(self):
        coord, ops = make("CUA&PAA", free=50)
        job = od_job(size=50)
        coord.on_advance_notice(job)
        assert coord.book.total_held == 50
        coord.on_reservation_timeout(100)
        assert coord.book.total_held == 0
        assert coord.book.get(100) is None

    def test_timeout_after_arrival_is_noop(self):
        coord, ops = make("CUA&PAA", now=3000.0, free=100)
        job = od_job(size=50)
        coord.on_advance_notice(job)
        coord.on_od_arrival(job)
        coord.on_reservation_timeout(100)  # must not blow up
        assert ops.started == [100]
