"""Tests for the campaign engine: spec expansion, store, executor, report."""

import json

import pytest

from repro.campaign import (
    CampaignCell,
    CampaignSpec,
    CellRecord,
    ResultStore,
    diff_text,
    report_text,
    run_campaign,
    status_text,
)
from repro.experiments.cli import main as cli_main
from repro.experiments.config import ExperimentConfig
from repro.sim.config import SimConfig
from repro.util.errors import ConfigurationError
from repro.workload.spec import theta_spec

#: small-but-real grid: 2 mechanisms x 2 seeds on a tiny machine
SMALL = {
    "name": "small",
    "days": 2,
    "target_load": 0.6,
    "system_size": 512,
    "mechanism": [None, "N&PAA"],
    "seeds": [1, 2],
}


def small_spec(**overrides) -> CampaignSpec:
    return CampaignSpec.from_dict({**SMALL, **overrides})


class TestSpecExpansion:
    def test_axes_cross_product(self):
        spec = small_spec(backfill_mode=["easy", "conservative"])
        assert spec.n_cells == 2 * 2 * 2
        assert len(spec.expand()) == spec.n_cells

    def test_expansion_deterministic(self):
        a = [c.key() for c in small_spec().expand()]
        b = [c.key() for c in small_spec().expand()]
        assert a == b
        assert len(set(a)) == len(a)

    def test_hashes_order_independent(self):
        """Permuting axis order changes cell order, never cell identity."""
        fwd = small_spec(mechanism=[None, "N&PAA"], seeds=[1, 2])
        rev = small_spec(mechanism=["N&PAA", None], seeds=[2, 1])
        assert [c.key() for c in fwd.expand()] != [
            c.key() for c in rev.expand()
        ]
        assert {c.key() for c in fwd.expand()} == {
            c.key() for c in rev.expand()
        }

    def test_key_covers_every_axis(self):
        base = small_spec().expand()[0]
        for field, other in [
            ("days", 3.0),
            ("target_load", 0.7),
            ("system_size", 1024),
            ("notice_mix", "W1"),
            ("mechanism", "CUA&SPAA"),
            ("backfill_mode", "conservative"),
            ("checkpoint_multiplier", 2.0),
            ("failure_mtbf_days", 30.0),
            ("seed", 99),
            ("kind", "trace"),
            ("trace_file", "some.swf"),
        ]:
            from dataclasses import replace

            assert replace(base, **{field: other}).key() != base.key(), field

    def test_cell_config_round_trip(self):
        cell = small_spec().expand()[-1]
        again = CampaignCell.from_config(
            json.loads(json.dumps(cell.config()))
        )
        assert again == cell
        assert again.key() == cell.key()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec.from_dict({**SMALL, "bogus_axis": [1]})

    def test_from_dict_rejects_bad_mechanism_and_mix(self):
        with pytest.raises(ConfigurationError):
            small_spec(mechanism=["NOPE&PAA"])
        with pytest.raises(ConfigurationError):
            small_spec(notice_mix=["W9"])

    def test_mechanism_all_shorthand(self):
        assert len(small_spec(mechanism="all").mechanism) == 6
        spec = small_spec(mechanism="all+baseline")
        assert spec.mechanism[0] is None and len(spec.mechanism) == 7

    def test_cell_materializes_spec_and_sim(self):
        cell = small_spec(
            backfill_mode="conservative",
            checkpoint_multiplier=2.0,
            failure_mtbf_days=30.0,
            spec_overrides={"n_projects": 17},
        ).expand()[0]
        wspec, sim = cell.workload_spec(), cell.sim_config()
        assert wspec.system_size == sim.system_size == 512
        assert wspec.n_projects == 17
        assert sim.backfill_mode == "conservative"
        assert sim.checkpoint.interval_multiplier == 2.0
        assert sim.failures.enabled


class TestStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "c")
        record = CellRecord(
            key="abc", config={"seed": 1}, status="ok", summary=None,
            payload={"x": 1}, elapsed_s=0.5,
        )
        store.put(record)
        again = ResultStore(tmp_path / "c")
        assert again.get("abc").payload == {"x": 1}
        assert "abc" in again and len(again) == 1

    def test_torn_tail_line_dropped(self, tmp_path):
        store = ResultStore(tmp_path / "c")
        store.put(CellRecord(key="k1", config={}, status="ok"))
        with (tmp_path / "c" / "results.jsonl").open("a") as fh:
            fh.write('{"key": "k2", "config": {}, "st')  # torn write
        again = ResultStore(tmp_path / "c")
        assert "k1" in again and "k2" not in again

    def test_spec_conflict_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "c")
        store.write_spec(small_spec().to_dict())
        store.write_spec(small_spec().to_dict())  # idempotent
        with pytest.raises(ConfigurationError):
            store.write_spec(small_spec(name="other").to_dict())


class TestExecutor:
    def test_cold_run_then_full_cache_hit(self, tmp_path):
        spec = small_spec()
        first = run_campaign(spec, directory=tmp_path / "c")
        assert (first.n_cached, first.n_ran, first.n_failed) == (0, 4, 0)
        second = run_campaign(spec, directory=tmp_path / "c")
        assert (second.n_cached, second.n_ran) == (4, 0)
        a = first.records[0].summary_metrics()
        b = second.records[0].summary_metrics()
        assert a == b

    def test_resume_after_interruption(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, directory=tmp_path / "c")
        results = tmp_path / "c" / "results.jsonl"
        lines = results.read_text().splitlines()
        results.write_text("\n".join(lines[:2]) + "\n")  # lose 2 of 4 cells
        resumed = run_campaign(spec, directory=tmp_path / "c")
        assert (resumed.n_cached, resumed.n_ran) == (2, 2)
        assert len(resumed.records) == 4

    def test_parallel_matches_serial(self, tmp_path):
        spec = small_spec()
        serial = run_campaign(spec, directory=tmp_path / "s")
        parallel = run_campaign(spec, directory=tmp_path / "p", workers=2)
        for r_s, r_p in zip(serial.records, parallel.records):
            assert r_s.key == r_p.key
            from repro.metrics.summary import deterministic_view

            assert deterministic_view(dict(r_s.summary)) == (
                deterministic_view(dict(r_p.summary))
            )

    def test_failed_cell_does_not_kill_campaign(self, tmp_path):
        # min_size > system_size passes spec validation only at
        # materialization time, so the worker raises inside the cell
        spec = small_spec(spec_overrides={"min_size": 100_000})
        result = run_campaign(spec, directory=tmp_path / "c")
        assert result.n_failed == result.n_total == 4
        assert all(not r.ok and r.error for r in result.records)

    def test_failed_cells_cached_then_retried(self, tmp_path):
        bad = small_spec(spec_overrides={"min_size": 100_000})
        first = run_campaign(bad, directory=tmp_path / "c")
        assert first.n_failed == 4
        second = run_campaign(bad, directory=tmp_path / "c")
        assert second.n_ran == 0  # failures are remembered, not re-run
        third = run_campaign(
            bad, directory=tmp_path / "c", retry_failed=True
        )
        assert third.n_ran == 4 and third.n_failed == 4

    def test_trace_kind_produces_payload(self, tmp_path):
        spec = small_spec(kind="trace", mechanism=[None])
        result = run_campaign(spec, directory=tmp_path / "c")
        assert result.n_failed == 0
        for record in result.records:
            assert record.summary is None
            assert record.payload["n_jobs"] > 0
            assert isinstance(record.payload["weekly_ondemand"], list)

    def test_content_addressing_shares_cells_across_campaigns(
        self, tmp_path
    ):
        store_dir = tmp_path / "shared"
        run_campaign(small_spec(), directory=store_dir)
        grown = small_spec(seeds=[1, 2, 3])  # superset grid, same store
        result = run_campaign(grown, directory=store_dir, store=ResultStore(store_dir))
        assert (result.n_cached, result.n_ran) == (4, 2)

    def test_grow_in_place(self, tmp_path):
        d = tmp_path / "c"
        run_campaign(small_spec(), directory=d)
        grown = small_spec(seeds=[1, 2, 3])
        with pytest.raises(ConfigurationError):
            run_campaign(grown, directory=d)  # guard still on by default
        result = run_campaign(grown, directory=d, allow_spec_update=True)
        assert (result.n_cached, result.n_ran) == (4, 2)
        # the stored spec now reflects the grown grid
        assert ResultStore(d).read_spec()["seeds"] == [1, 2, 3]

    def test_duplicate_cells_run_once(self, tmp_path):
        spec = small_spec(mechanism=[None, None], seeds=[1, 1])
        result = run_campaign(spec, directory=tmp_path / "c")
        assert result.n_total == 1
        assert result.n_ran == 1
        assert len(result.records) == 1


class TestRetryFilter:
    BAD = {"spec_overrides": {"min_size": 100_000}}

    def test_filter_narrows_retry(self, tmp_path):
        bad = small_spec(**self.BAD)
        first = run_campaign(bad, directory=tmp_path / "c")
        assert first.n_failed == 4
        # retry only the N&PAA failures: 2 of the 4 cells re-run
        result = run_campaign(
            bad,
            directory=tmp_path / "c",
            retry_failed=True,
            retry_filter={"mechanism": "N&PAA"},
        )
        assert result.n_ran == 2

    def test_filter_by_seed(self, tmp_path):
        bad = small_spec(**self.BAD)
        run_campaign(bad, directory=tmp_path / "c")
        result = run_campaign(
            bad,
            directory=tmp_path / "c",
            retry_failed=True,
            retry_filter={"seed": 1},
        )
        assert result.n_ran == 2

    def test_unmatched_filter_retries_nothing(self, tmp_path):
        bad = small_spec(**self.BAD)
        run_campaign(bad, directory=tmp_path / "c")
        result = run_campaign(
            bad,
            directory=tmp_path / "c",
            retry_failed=True,
            retry_filter={"mechanism": "CUP&SPAA"},
        )
        assert result.n_ran == 0

    def test_filter_cli_parsing(self):
        from repro.experiments.cli import _parse_filters

        parsed = _parse_filters(["mechanism=N&PAA", "seed=2", "x=y"])
        assert parsed == {"mechanism": "N&PAA", "seed": 2, "x": "y"}
        assert _parse_filters(["mechanism=baseline"]) == {"mechanism": None}
        assert _parse_filters(None) is None
        with pytest.raises(SystemExit):
            _parse_filters(["no-equals-sign"])


class TestGc:
    def test_compact_drops_superseded_lines(self, tmp_path):
        d = tmp_path / "c"
        bad = small_spec(spec_overrides={"min_size": 100_000})
        run_campaign(bad, directory=d)
        run_campaign(bad, directory=d, retry_failed=True)
        results = d / "results.jsonl"
        assert len(results.read_text().splitlines()) == 8  # 4 + 4 retries
        stats = ResultStore(d).compact()
        assert (stats.n_kept, stats.n_superseded) == (4, 4)
        assert len(results.read_text().splitlines()) == 4
        # still a loadable store with the same records
        assert len(ResultStore(d)) == 4

    def test_compact_drop_errors_makes_cells_rerun(self, tmp_path):
        d = tmp_path / "c"
        bad = small_spec(spec_overrides={"min_size": 100_000})
        run_campaign(bad, directory=d)
        stats = ResultStore(d).compact(drop_errors=True)
        assert stats.n_errors_dropped == 4 and stats.n_kept == 0
        # the healthy grid now recomputes everything
        result = run_campaign(
            small_spec(), directory=d, allow_spec_update=True
        )
        assert result.n_ran == 4 and result.n_failed == 0

    def test_compact_memory_store(self):
        store = ResultStore()
        store.put(CellRecord(key="k", config={}, status="error", error="x"))
        stats = store.compact(drop_errors=True)
        assert stats.n_errors_dropped == 1 and len(store) == 0

    def test_gc_cli(self, tmp_path, capsys):
        d = str(tmp_path / "c")
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SMALL))
        assert cli_main(["campaign", "run", "--spec", str(spec_path), "--dir", d]) == 0
        capsys.readouterr()
        assert cli_main(["campaign", "gc", "--dir", d]) == 0
        out = capsys.readouterr().out
        assert "kept 4 records" in out


def write_demo_swf(path, n_jobs=60, n_groups=6):
    """A tiny plausible SWF log (one line per job, 18 fields)."""
    lines = ["; demo SWF for tests"]
    t = 0.0
    for i in range(1, n_jobs + 1):
        t += 120.0 + (i % 7) * 60.0
        runtime = 600.0 + (i % 5) * 900.0
        procs = [64, 128, 256][i % 3]
        group = i % n_groups
        lines.append(
            f"{i} {t:.0f} 1 {runtime:.0f} {procs} -1 -1 {procs} "
            f"{runtime * 1.5:.0f} -1 1 {group + 100} -1 {group} -1 -1 -1 -1"
        )
    path.write_text("\n".join(lines) + "\n")


class TestTraceFileAxis:
    def spec(self, tmp_path, **overrides):
        swf = tmp_path / "demo.swf"
        write_demo_swf(swf)
        # the WorkloadSpec still materializes for SWF cells (it carries
        # the §IV-A retype fractions), so system_size must satisfy its
        # validation (>= the generator's default 128-node size floor)
        # even though no synthetic jobs are drawn
        return small_spec(
            trace_file=str(swf),
            trace_options={"cores_per_node": 64},
            system_size=256,
            **overrides,
        )

    def test_swf_cells_simulate(self, tmp_path):
        spec = self.spec(tmp_path, seeds=[1], mechanism=[None, "N&PAA"])
        result = run_campaign(spec, directory=tmp_path / "c")
        assert result.n_failed == 0 and result.n_total == 2
        for record in result.records:
            assert record.config["trace_file"].endswith("demo.swf")
            assert record.summary_metrics().n_jobs > 0

    def test_swf_cells_deterministic_across_runs(self, tmp_path):
        spec = self.spec(tmp_path, seeds=[1], mechanism=[None])
        a = run_campaign(spec, directory=tmp_path / "a")
        b = run_campaign(spec, directory=tmp_path / "b")
        from repro.metrics.summary import deterministic_view

        # decision latency is wall-clock measurement, not simulation state
        assert deterministic_view(a.records[0].summary) == (
            deterministic_view(b.records[0].summary)
        )

    def test_swf_axis_alongside_synthetic(self, tmp_path):
        """trace_file is an axis: None and a log path sweep together."""
        swf = tmp_path / "demo.swf"
        write_demo_swf(swf)
        spec = small_spec(
            trace_file=[None, str(swf)], seeds=[1], mechanism=[None]
        )
        cells = spec.expand()
        assert spec.n_cells == 2
        assert {c.trace_file for c in cells} == {None, str(swf)}
        # synthetic cell hashes exactly as a spec without the axis
        legacy = small_spec(seeds=[1], mechanism=[None]).expand()[0]
        synth = next(c for c in cells if c.trace_file is None)
        assert synth.key() == legacy.key()

    def test_swf_trace_kind_characterizes(self, tmp_path):
        spec = self.spec(tmp_path, kind="trace", seeds=[1], mechanism=[None])
        result = run_campaign(spec, directory=tmp_path / "c")
        assert result.n_failed == 0
        payload = result.records[0].payload
        assert payload["n_jobs"] == 60
        assert sum(payload["type_shares"].values()) == pytest.approx(1.0)

    def test_trace_options_require_trace_file(self):
        with pytest.raises(ConfigurationError, match="trace_options"):
            small_spec(trace_options={"cores_per_node": 64})

    def test_trace_file_cli(self, tmp_path, capsys):
        swf = tmp_path / "demo.swf"
        write_demo_swf(swf)
        d = str(tmp_path / "c")
        assert (
            cli_main(
                [
                    "campaign", "run", "--dir", d, "--nodes", "256",
                    "--mechanisms", "baseline", "--seeds", "1",
                    "--trace-file", str(swf), "--cores-per-node", "64",
                ]
            )
            == 0
        )
        assert "1 ran" in capsys.readouterr().out


class TestFig7Campaign:
    def config(self):
        from repro.core.mechanisms import ALL_MECHANISMS

        return ExperimentConfig(
            spec=theta_spec(days=2, system_size=512, target_load=0.6),
            sim=SimConfig(system_size=512),
            mechanisms=[ALL_MECHANISMS[0]],
            n_traces=1,
        )

    def test_fig7_runs_on_campaign_engine(self, tmp_path):
        from repro.experiments import figures

        config = self.config()
        out = figures.fig7_checkpointing(
            config, multipliers=(0.5, 2.0), campaign_dir=tmp_path / "f7"
        )
        assert set(out["results"]) == {0.5, 2.0}
        # a second invocation is pure cache hits
        cspec = config.to_campaign_spec(name="fig7")
        from dataclasses import replace as dreplace

        cspec = dreplace(cspec, checkpoint_multiplier=(0.5, 2.0))
        again = run_campaign(cspec, directory=tmp_path / "f7", store=ResultStore(tmp_path / "f7"))
        assert again.n_ran == 0 and again.n_cached == again.n_total == 2

    def test_fig7_multiplier_axis_beats_checkpoint_override(self):
        """The checkpoint_multiplier axis scales even when sim_overrides
        carries the other checkpoint knobs."""
        from dataclasses import replace as dreplace

        from repro.jobs.checkpoint import CheckpointModel

        config = self.config()
        config = config.with_sim(
            dreplace(
                config.sim,
                checkpoint=CheckpointModel(min_interval_s=120.0),
            )
        )
        cspec = config.to_campaign_spec(name="x")
        cspec = dreplace(cspec, checkpoint_multiplier=(2.0,))
        sim = cspec.expand()[0].sim_config()
        assert sim.checkpoint.interval_multiplier == 2.0
        assert sim.checkpoint.min_interval_s == 120.0


class TestReport:
    def test_status_and_report_text(self, tmp_path):
        spec = small_spec()
        run_campaign(spec, directory=tmp_path / "c")
        store = ResultStore(tmp_path / "c")
        status = status_text(store.read_spec(), store.records())
        assert "4/4 cells done" in status
        report = report_text(store.records())
        assert "N&PAA" in report and "baseline" in report

    def test_diff_detects_varying_axis(self, tmp_path):
        run_campaign(small_spec(), directory=tmp_path / "easy")
        run_campaign(
            small_spec(backfill_mode="conservative"),
            directory=tmp_path / "cons",
        )
        a = ResultStore(tmp_path / "easy").records()
        b = ResultStore(tmp_path / "cons").records()
        text = diff_text(a, b, a_name="easy", b_name="cons")
        assert "varying: backfill_mode" in text
        assert "delta" in text and "N&PAA" in text

    def test_status_counts_only_current_spec_cells(self, tmp_path):
        d = tmp_path / "c"
        bad = small_spec(spec_overrides={"min_size": 100_000})
        assert run_campaign(bad, directory=d).n_failed == 4
        # grow into a healthy grid: the 4 stale error records must not
        # leak into the new spec's pending/failed counts
        good = small_spec()
        run_campaign(good, directory=d, allow_spec_update=True)
        store = ResultStore(d)
        status = status_text(store.read_spec(), store.records())
        assert "4/4 cells done, 0 failed, 0 pending" in status

    def test_fig6_raises_on_failed_cells(self, monkeypatch):
        import repro.campaign.executor as executor_mod
        from repro.core.mechanisms import ALL_MECHANISMS
        from repro.experiments import figures
        from repro.workload.spec import W5

        def boom(*args, **kwargs):
            raise ValueError("boom")

        monkeypatch.setattr(executor_mod, "run_one", boom)
        config = ExperimentConfig(
            spec=theta_spec(days=2, system_size=512, target_load=0.6),
            sim=SimConfig(system_size=512),
            mechanisms=[ALL_MECHANISMS[0]],
            n_traces=1,
        )
        with pytest.raises(RuntimeError, match="cells failed"):
            figures.fig6_mechanisms(config, mixes=[W5])

    def test_diff_no_overlap(self, tmp_path):
        run_campaign(small_spec(), directory=tmp_path / "a")
        run_campaign(
            small_spec(days=3, backfill_mode="conservative"),
            directory=tmp_path / "b",
        )
        a = ResultStore(tmp_path / "a").records()
        b = ResultStore(tmp_path / "b").records()
        # both days and backfill vary jointly -> still comparable
        assert diff_text(a, b)


class TestExperimentConfigBridge:
    def test_to_campaign_spec_round_trips_overrides(self):
        config = ExperimentConfig(
            spec=theta_spec(
                days=2, system_size=512, target_load=0.6, n_projects=13
            ),
            sim=SimConfig(system_size=512, allow_reserved_loans=False),
            n_traces=2,
        )
        cspec = config.to_campaign_spec(name="bridge")
        cell = cspec.expand()[0]
        assert cell.workload_spec() == config.spec
        assert cell.sim_config() == config.sim

    def test_fig6_runs_on_campaign_engine(self, tmp_path):
        from repro.core.mechanisms import ALL_MECHANISMS
        from repro.experiments import figures
        from repro.workload.spec import W5

        config = ExperimentConfig(
            spec=theta_spec(days=2, system_size=512, target_load=0.6),
            sim=SimConfig(system_size=512),
            mechanisms=[ALL_MECHANISMS[0]],
            n_traces=1,
        )
        out = figures.fig6_mechanisms(
            config, mixes=[W5], campaign_dir=tmp_path / "fig6"
        )
        assert "W5" in out["sweep"]
        # second invocation is served from the store
        result = run_campaign(
            config.to_campaign_spec(name="fig6", mixes=[W5]),
            directory=tmp_path / "fig6",
        )
        assert result.n_ran == 0 and result.n_cached == result.n_total

    def test_fig5_runs_on_campaign_engine(self, tmp_path):
        from repro.experiments import figures

        config = ExperimentConfig(
            spec=theta_spec(days=2, system_size=512, target_load=0.6),
            sim=SimConfig(system_size=512),
            n_traces=2,
        )
        out = figures.fig5_burstiness(config, campaign_dir=tmp_path / "f5")
        assert set(out["series"]) == set(config.seeds()[:3])


class TestCampaignCli:
    ARGS = [
        "campaign", "run", "--days", "2", "--load", "0.6", "--nodes",
        "512", "--mechanisms", "baseline", "N&PAA", "--seeds", "1", "2",
    ]

    def test_run_status_report(self, tmp_path, capsys):
        d = str(tmp_path / "c")
        assert cli_main([*self.ARGS, "--dir", d]) == 0
        out = capsys.readouterr().out
        assert "0 cached, 4 ran" in out
        assert cli_main([*self.ARGS, "--dir", d]) == 0
        assert "4 cached, 0 ran" in capsys.readouterr().out
        assert cli_main(["campaign", "status", "--dir", d]) == 0
        assert "4/4 cells done" in capsys.readouterr().out
        assert cli_main(["campaign", "report", "--dir", d]) == 0
        assert "N&PAA" in capsys.readouterr().out

    def test_run_from_spec_file(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(SMALL))
        d = str(tmp_path / "c")
        assert cli_main(["campaign", "run", "--spec", str(path), "--dir", d]) == 0
        assert "4 ran" in capsys.readouterr().out

    def test_diff_cli(self, tmp_path, capsys):
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        assert cli_main([*self.ARGS, "--dir", a]) == 0
        assert (
            cli_main(
                [*self.ARGS, "--dir", b, "--backfill", "conservative"]
            )
            == 0
        )
        capsys.readouterr()
        assert cli_main(["campaign", "report", "--dir", a, "--diff", b]) == 0
        assert "varying: backfill_mode" in capsys.readouterr().out
