"""Tests for the fine-grained metric breakdowns."""

import pytest

from repro.core.mechanisms import Mechanism
from repro.jobs.checkpoint import CheckpointModel
from repro.jobs.job import Job, JobType, NoticeClass
from repro.metrics.breakdown import (
    ondemand_by_notice_class,
    utilization_series,
    utilization_sparkline,
    waste_by_type,
)
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulation
from repro.util.timeconst import HOUR


def cfg():
    return SimConfig(
        system_size=100,
        checkpoint=CheckpointModel.disabled(),
        validate_invariants=True,
    )


def trace():
    return [
        Job(job_id=1, job_type=JobType.RIGID, submit_time=0.0, size=100,
            runtime=2 * HOUR, estimate=2 * HOUR),
        Job(job_id=2, job_type=JobType.ONDEMAND, submit_time=HOUR, size=40,
            runtime=HOUR, estimate=HOUR),
        Job(job_id=3, job_type=JobType.ONDEMAND, submit_time=1.5 * HOUR,
            size=20, runtime=0.5 * HOUR, estimate=0.5 * HOUR,
            notice_class=NoticeClass.ACCURATE, notice_time=HOUR,
            estimated_arrival=1.5 * HOUR),
    ]


@pytest.fixture(scope="module")
def result():
    return Simulation(trace(), cfg(), Mechanism.parse("N&PAA")).run()


class TestNoticeClassBreakdown:
    def test_groups_cover_all_classes(self, result):
        rows = ondemand_by_notice_class(result)
        assert {r.notice_class for r in rows} == {
            "none", "accurate", "early", "late"
        }

    def test_counts(self, result):
        rows = {r.notice_class: r for r in ondemand_by_notice_class(result)}
        assert rows["none"].count == 1
        assert rows["accurate"].count == 1
        assert rows["early"].count == 0

    def test_instant_rates(self, result):
        rows = {r.notice_class: r for r in ondemand_by_notice_class(result)}
        assert rows["none"].instant_rate == 1.0
        assert rows["accurate"].instant_rate == 1.0


class TestWasteByType:
    def test_victim_type_carries_waste(self, result):
        w = waste_by_type(result)
        assert w["rigid"]["preemptions"] >= 1
        assert w["rigid"]["lost_compute_node_h"] > 0
        assert w["ondemand"]["lost_compute_node_h"] == 0.0


class TestUtilizationSeries:
    def test_series_bounds(self, result):
        series = utilization_series(result, bin_s=HOUR)
        assert series
        assert all(0.0 <= u <= 1.0 for u in series)

    def test_first_hour_fully_used(self, result):
        series = utilization_series(result, bin_s=HOUR)
        # the rigid job holds the whole machine in hour 0
        assert series[0] > 0.9

    def test_sparkline_renders(self, result):
        line = utilization_sparkline(result, bin_s=HOUR)
        assert isinstance(line, str)
        assert len(line) == len(utilization_series(result, bin_s=HOUR))

    def test_sparkline_width_cap(self, result):
        line = utilization_sparkline(result, bin_s=HOUR / 6, width=10)
        assert len(line) <= 10
