"""Qualitative reproduction of the paper's observations (§V).

These are the *shape* claims of the evaluation — who wins, in which
direction — checked on a reduced-scale campaign (14-day traces, 2 seeds,
calibrated offered load).  Absolute numbers differ from the paper (their
substrate was a year-long real trace); EXPERIMENTS.md records both.
"""

import statistics

import pytest

from repro.core.mechanisms import ALL_MECHANISMS
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_mechanism_grid
from repro.workload.spec import theta_spec

SPAA_NAMES = ["N&SPAA", "CUA&SPAA", "CUP&SPAA"]
PAA_NAMES = ["N&PAA", "CUA&PAA", "CUP&PAA"]


@pytest.fixture(scope="module")
def grid():
    """Baseline + six mechanisms, averaged over two 14-day traces."""
    config = ExperimentConfig(
        spec=theta_spec(days=14, target_load=0.82),
        n_traces=2,
        base_seed=2022,
    )
    return run_mechanism_grid(
        config.spec,
        [None, *ALL_MECHANISMS],
        config.seeds(),
        sim=config.sim,
    )


def mech_values(grid, field):
    return {
        name: getattr(s, field)
        for name, s in grid.items()
        if name is not None
    }


class TestObservation1:
    """Mechanisms boost instant start dramatically over FCFS/EASY."""

    def test_baseline_instant_rate_low(self, grid):
        assert grid[None].instant_start_rate < 0.6

    def test_mechanisms_instant_rate_near_one(self, grid):
        for name, rate in mech_values(grid, "instant_start_rate").items():
            assert rate > 0.9, f"{name}: instant rate {rate}"

    def test_mechanisms_beat_baseline(self, grid):
        base = grid[None].instant_start_rate
        for rate in mech_values(grid, "instant_start_rate").values():
            assert rate > base


class TestObservation3:
    """SPAA reduces malleable preemption ratio relative to PAA."""

    @pytest.mark.parametrize("notice", ["N", "CUA", "CUP"])
    def test_spaa_lower_malleable_preemption(self, grid, notice):
        paa = grid[f"{notice}&PAA"].preemption_ratio_malleable
        spaa = grid[f"{notice}&SPAA"].preemption_ratio_malleable
        assert spaa <= paa + 0.02, f"{notice}: SPAA {spaa} vs PAA {paa}"

    def test_spaa_average_strictly_lower(self, grid):
        paa = statistics.mean(
            grid[n].preemption_ratio_malleable for n in PAA_NAMES
        )
        spaa = statistics.mean(
            grid[n].preemption_ratio_malleable for n in SPAA_NAMES
        )
        assert spaa < paa

    def test_some_malleable_jobs_shrunk_under_spaa(self, grid):
        assert any(
            grid[n].shrink_ratio_malleable > 0 for n in SPAA_NAMES
        )


class TestObservation5:
    """CUA performs at least as well as CUP in most cases."""

    def test_cua_turnaround_not_worse(self, grid):
        for arrival in ("PAA", "SPAA"):
            cua = grid[f"CUA&{arrival}"].avg_turnaround_h
            cup = grid[f"CUP&{arrival}"].avg_turnaround_h
            assert cua <= cup * 1.1, f"{arrival}: CUA {cua} vs CUP {cup}"


class TestObservation6:
    """CUA/CUP mechanisms give malleable jobs better turnaround than rigid
    — the incentive for declaring malleability."""

    @pytest.mark.parametrize(
        "name", ["CUA&PAA", "CUA&SPAA", "CUP&PAA", "CUP&SPAA"]
    )
    def test_malleable_beats_rigid(self, grid, name):
        s = grid[name]
        assert s.avg_turnaround_malleable_h < s.avg_turnaround_rigid_h


class TestObservation8:
    """Malleable jobs are preempted more often than rigid jobs (cheaper
    victims sort first), yet still do better on turnaround."""

    def test_malleable_preempted_more(self, grid):
        for name, s in grid.items():
            if name is None:
                continue
            assert (
                s.preemption_ratio_malleable >= s.preemption_ratio_rigid
            ), name


class TestObservation9:
    """No significant instant-rate differences among the six mechanisms."""

    def test_spread_is_small(self, grid):
        rates = list(mech_values(grid, "instant_start_rate").values())
        assert max(rates) - min(rates) < 0.1


class TestObservation10:
    """Decision latency far below the 10-30 s scheduler budget."""

    def test_latency_under_ten_milliseconds(self, grid):
        for name, s in grid.items():
            if name is None:
                continue
            assert s.decision_latency_max_s < 0.1, (
                f"{name}: max decision latency {s.decision_latency_max_s}s"
            )
            assert s.decision_latency_p50_s < 0.01


class TestWasteAccounting:
    """Preemption waste shows up in the utilization decomposition."""

    def test_baseline_has_no_preemption_waste(self, grid):
        assert grid[None].lost_compute_frac == 0.0
        assert grid[None].wasted_setup_frac == 0.0

    def test_mechanisms_pay_some_waste(self, grid):
        assert any(
            s.lost_compute_frac + s.wasted_setup_frac > 0
            for name, s in grid.items()
            if name is not None
        )

    def test_utilization_in_sane_band(self, grid):
        for name, s in grid.items():
            assert 0.6 < s.system_utilization <= 1.0, (name, s.system_utilization)


class TestLeaseMechanics:
    """The §III-B.3 fairness machinery actually fires at scale."""

    def test_leases_settled(self, grid):
        total_resumes = sum(
            s.lease_resumes for n, s in grid.items() if n is not None
        )
        assert total_resumes > 0

    def test_spaa_expansions_happen(self, grid):
        assert any(grid[n].lease_expands > 0 for n in SPAA_NAMES)
