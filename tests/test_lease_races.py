"""Seeded-random property tests for the lease protocol under churn.

Each round drives N concurrent claimer threads over a shared campaign
directory.  Claimers follow the worker loop's discipline — completion
check (through the shared :class:`ProgressIndex`), acquire, post-acquire
re-check, execute, append to a private shard, release — but a seeded
RNG injects kill points: a claimer may "die" (stop without releasing,
exactly what SIGKILL leaves behind) right after acquiring, or after
executing but before releasing.

Properties asserted, per the protocol's contract:

* **at-most-once while leases are live** — phase 1 runs under a frozen
  fake clock, so no lease can expire: every cell executes at most once
  no matter the interleaving;
* **eventual completion after TTL eviction** — phase 2 advances the
  clock past the TTL and sends in rescue claimers: every cell ends up
  executed, and the only possible duplicates are cells whose first
  executor died *between* executing and releasing (at-least-once, the
  documented merge-dedupes case).
"""

import random
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.campaign import CellRecord, LeaseBoard, ProgressIndex, ResultStore
from repro.campaign.distrib.worker import known_keys

N_KEYS = 8
N_CLAIMERS = 4
TTL_S = 10.0

# kill points a claimer can hit, per cell, chosen by the seeded RNG
ALIVE = "alive"
DIE_AFTER_ACQUIRE = "die-after-acquire"
DIE_AFTER_EXECUTE = "die-after-execute"


class FakeClock:
    """Thread-shared monotonic-ish clock; only the test advances it."""

    def __init__(self, now=1000.0):
        self.now = now
        self._lock = threading.Lock()

    def __call__(self):
        with self._lock:
            return self.now

    def advance(self, dt):
        with self._lock:
            self.now += dt


class Ledger:
    """Every execution that actually happened, with its executor."""

    def __init__(self):
        self._lock = threading.Lock()
        self.executions = []

    def note(self, key, owner):
        with self._lock:
            self.executions.append((key, owner))

    def per_key(self):
        counts = {}
        for key, _owner in self.executions:
            counts[key] = counts.get(key, 0) + 1
        return counts


def chaos_claimer(directory, owner, keys, clock, rng, ledger, die_frac):
    """One worker-loop pass with seeded kill injection.

    Returns the set of keys this claimer died on (empty if it survived
    the pass).  Mirrors ``run_worker``'s structure: shared index scan,
    acquire, post-acquire re-check, execute, shard append, release.
    """
    board = LeaseBoard(directory, owner=owner, ttl_s=TTL_S, clock=clock)
    index = ProgressIndex(directory)
    shard = ResultStore(directory, results_file=f"shards/{owner}.jsonl")
    order = list(keys)
    rng.shuffle(order)
    for key in order:
        index.refresh()
        if key in index.keys():
            continue
        if not board.acquire(key):
            continue
        index.refresh()
        if key in index.keys():
            board.release(key)
            continue
        fate = (
            rng.choice([DIE_AFTER_ACQUIRE, DIE_AFTER_EXECUTE])
            if rng.random() < die_frac
            else ALIVE
        )
        if fate == DIE_AFTER_ACQUIRE:
            return {key}  # lease stranded, nothing executed
        ledger.note(key, owner)
        shard.put(
            CellRecord(key=key, config={"cell": key}, status="ok",
                       payload={"by": owner})
        )
        if fate == DIE_AFTER_EXECUTE:
            return {key}  # record written, lease stranded
        board.release(key)
    return set()


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_at_most_once_live_then_eventual_completion(tmp_path, seed):
    master = random.Random(seed)
    clock = FakeClock()
    ledger = Ledger()
    keys = [f"cell{i:02d}" for i in range(N_KEYS)]
    claimer_rngs = [
        random.Random(master.randrange(2**32)) for _ in range(N_CLAIMERS)
    ]

    # --- phase 1: frozen clock, injected deaths ------------------------
    with ThreadPoolExecutor(N_CLAIMERS) as pool:
        died_on = pool.map(
            lambda args: chaos_claimer(
                tmp_path, f"w{args[0]}", keys, clock, args[1], ledger,
                die_frac=0.4,
            ),
            list(enumerate(claimer_rngs)),
        )
        stranded_after_execute = set()
        stranded_any = set()
        for rng_died in died_on:
            stranded_any |= rng_died
        phase1 = ledger.per_key()
    executed_then_died = {
        k for k in stranded_any if k in phase1
    }
    stranded_after_execute |= executed_then_died

    # at-most-once while no lease can expire: the frozen clock means
    # every acquire raced only live leases and completion records
    assert all(count == 1 for count in phase1.values()), phase1

    # stranded leases really are still on disk for keys that died
    # pre-execution (nothing else could claim them in phase 1)
    board = LeaseBoard(tmp_path, owner="observer", ttl_s=TTL_S, clock=clock)
    leased_keys = {lease.key for lease in board.active()}
    assert (stranded_any - executed_then_died) <= leased_keys

    # --- phase 2: TTL expiry, rescue claimers --------------------------
    clock.advance(TTL_S + 1.0)
    for attempt in range(10):
        rescue_rng = random.Random(master.randrange(2**32))
        chaos_claimer(
            tmp_path, f"rescue{attempt}", keys, clock, rescue_rng, ledger,
            die_frac=0.0,
        )
        if set(known_keys(tmp_path)) >= set(keys):
            break
    final = ledger.per_key()

    # eventual completion: every cell has a record
    assert set(known_keys(tmp_path)) >= set(keys)
    assert set(final) == set(keys)
    for key, count in final.items():
        if key in stranded_after_execute:
            # record landed but the lease stranded: a rescuer saw the
            # record (index) and skipped, OR the eviction raced the
            # append — at most one duplicate either way
            assert count <= 2, (key, count)
        else:
            assert count == 1, (key, count)


@pytest.mark.parametrize("seed", [10, 11])
def test_no_deaths_means_exactly_once(tmp_path, seed):
    """Control experiment: without kill injection, concurrency alone
    never produces a duplicate (the lease + re-check discipline)."""
    master = random.Random(seed)
    clock = FakeClock()
    ledger = Ledger()
    keys = [f"cell{i:02d}" for i in range(N_KEYS)]
    with ThreadPoolExecutor(N_CLAIMERS) as pool:
        list(
            pool.map(
                lambda i: chaos_claimer(
                    tmp_path, f"w{i}", keys, clock,
                    random.Random(master.randrange(2**32)), ledger,
                    die_frac=0.0,
                ),
                range(N_CLAIMERS),
            )
        )
    counts = ledger.per_key()
    assert counts == {key: 1 for key in keys}
    # no leases left behind by a clean pass
    board = LeaseBoard(tmp_path, owner="observer", ttl_s=TTL_S, clock=clock)
    assert board.active() == []
