"""Merge idempotency under adversarial shard contents and orders.

The merge's contract: given any arrangement of shard files — shuffled
record orders, duplicated records (lease-expiry races), error records
later healed by an ``ok`` elsewhere — ``results.jsonl`` must

* be **byte-identical across re-merges** of the same directory, warm
  (index remembers everything) or cold (fresh index re-reads all
  shards and dedupes everything); and
* reach the same **canonical** state regardless of how the records
  were distributed and ordered across shards.

Records for a given key carry identical payloads (cells are
deterministic — that is exactly why conflicting shards are harmless).
"""

import json
import random

import pytest

from repro.campaign import CellRecord, ProgressIndex, ResultStore, merge_shards


def make_record(key, status):
    # identical content per (key, status): what deterministic cells give
    return CellRecord(
        key=key,
        config={"cell": key, "seed": 7},
        status=status,
        payload={"value": int(key[4:], 10) * 3} if status == "ok" else None,
        error=None if status == "ok" else f"RuntimeError: {key} failed",
        elapsed_s=1.0,
    )


def adversarial_records(rng, n_keys):
    """A multiset of records: every key ok at least once, ~1/3 of keys
    also carry error records (error-then-ok healing), ~1/3 duplicated
    (two workers executed the cell during a lease-expiry race)."""
    records = []
    for i in range(n_keys):
        key = f"cell{i:04d}"
        records.append(make_record(key, "ok"))
        if rng.random() < 0.33:
            records.append(make_record(key, "error"))
        if rng.random() < 0.33:
            records.append(make_record(key, "ok"))
    rng.shuffle(records)
    return records


def scatter_into_shards(directory, records, rng, n_shards):
    for i, rec in enumerate(records):
        shard = rng.randrange(n_shards)
        store = ResultStore(
            directory, results_file=f"shards/s{shard:02d}.jsonl"
        )
        store.put(rec)


def canonical_state(directory):
    return ResultStore(directory).canonical_bytes()


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_remerge_byte_identical_warm_and_cold(tmp_path, seed):
    rng = random.Random(seed)
    d = tmp_path / "c"
    records = adversarial_records(rng, n_keys=30)
    scatter_into_shards(d, records, rng, n_shards=4)

    first = merge_shards(d)
    assert first.changed
    merged_bytes = (d / "results.jsonl").read_bytes()

    # warm re-merge: nothing examined, file untouched
    warm = merge_shards(d)
    assert not warm.changed and warm.n_shard_records == 0
    assert (d / "results.jsonl").read_bytes() == merged_bytes

    # cold re-merge (fresh index): every shard record re-examined and
    # every one deduped — still byte-identical
    cold = merge_shards(d, index=ProgressIndex(d, name="cold"))
    assert not cold.changed
    assert cold.n_shard_records == len(records)
    assert cold.n_duplicate == len(records)
    assert (d / "results.jsonl").read_bytes() == merged_bytes

    # and a third pass over the already-merged state: same bytes again
    merge_shards(d, index=ProgressIndex(d, name="cold2"))
    assert (d / "results.jsonl").read_bytes() == merged_bytes


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_error_then_ok_heals_to_ok_everywhere(tmp_path, seed):
    rng = random.Random(seed)
    d = tmp_path / "c"
    scatter_into_shards(
        d, adversarial_records(rng, n_keys=25), rng, n_shards=3
    )
    merge_shards(d)
    store = ResultStore(d)
    assert len(store) == 25
    assert store.failed_keys() == frozenset()  # every key had an ok


def test_error_only_keys_stay_error_until_healed(tmp_path):
    d = tmp_path / "c"
    ResultStore(d, results_file="shards/a.jsonl").put(
        make_record("cell0001", "error")
    )
    merge_shards(d)
    assert not ResultStore(d).get("cell0001").ok
    # the healing record arrives later in another shard
    ResultStore(d, results_file="shards/b.jsonl").put(
        make_record("cell0001", "ok")
    )
    stats = merge_shards(d)
    assert stats.n_upgraded == 1
    assert ResultStore(d).get("cell0001").ok
    # the superseded error line is still in the history until gc
    lines = (d / "results.jsonl").read_text().strip().splitlines()
    assert len(lines) == 2


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_distribution_independent_canonical_state(tmp_path, seed):
    """However the same record multiset is scattered and ordered across
    shards, the merged store reaches the same canonical state."""
    rng_a = random.Random(seed)
    rng_b = random.Random(seed + 1000)
    records = adversarial_records(random.Random(seed), n_keys=20)

    d_a, d_b = tmp_path / "a", tmp_path / "b"
    scatter_into_shards(d_a, list(records), rng_a, n_shards=2)
    shuffled = list(records)
    rng_b.shuffle(shuffled)
    scatter_into_shards(d_b, shuffled, rng_b, n_shards=5)

    merge_shards(d_a)
    merge_shards(d_b)
    assert canonical_state(d_a) == canonical_state(d_b)


class RacingIndex(ProgressIndex):
    """A merge index whose first refresh is immediately followed by a
    concurrent worker appending — the mid-fleet merge race: records the
    index consumes after the merge's first scan must still be merged,
    not silently marked consumed."""

    def __init__(self, directory, late_records):
        super().__init__(directory, name="merge", autosave=False)
        self._late = list(late_records)

    def refresh(self, on_record=None):
        stats = super().refresh(on_record)
        if self._late:
            store = ResultStore(
                self.directory, results_file="shards/late.jsonl"
            )
            store.put(self._late.pop(0))
        return stats


def test_records_appended_during_merge_are_not_lost(tmp_path):
    d = tmp_path / "c"
    ResultStore(d, results_file="shards/early.jsonl").put(
        make_record("cell0001", "ok")
    )
    late = [make_record("cell0002", "ok"), make_record("cell0003", "ok")]
    stats = merge_shards(d, index=RacingIndex(d, late))
    # the merge chased the concurrent appends to quiescence
    assert stats.n_new == 3
    assert set(ResultStore(d).keys()) == {
        "cell0001", "cell0002", "cell0003",
    }
    # and a later plain merge (fresh default index) agrees nothing is
    # missing — the consumed-but-unmerged bug would strand cells here
    again = merge_shards(d)
    assert not again.changed
    assert set(ResultStore(d).keys()) == {
        "cell0001", "cell0002", "cell0003",
    }


def test_noop_merge_does_not_rewrite_index(tmp_path):
    d = tmp_path / "c"
    ResultStore(d, results_file="shards/a.jsonl").put(
        make_record("cell0001", "ok")
    )
    merge_shards(d)
    index_file = d / "index" / "merge.json"
    assert index_file.exists()
    stamp = index_file.stat().st_mtime_ns
    merge_shards(d)  # warm no-op: must not pay the O(key-map) rewrite
    assert index_file.stat().st_mtime_ns == stamp


def test_index_save_failure_is_tolerated(tmp_path, monkeypatch, caplog):
    """A read-only campaign mount: status/scan paths keep working with
    in-memory state instead of crashing on the cache write."""
    import logging

    d = tmp_path / "c"
    ResultStore(d, results_file="shards/a.jsonl").put(
        make_record("cell0001", "ok")
    )

    def deny(_src, _dst):
        raise PermissionError("read-only file system")

    monkeypatch.setattr("repro.campaign.progress.os.replace", deny)
    with caplog.at_level(logging.INFO, "repro.campaign.progress"):
        index = ProgressIndex(d)
        index.refresh()
    assert index.keys() == {"cell0001"}
    assert not (d / "index" / "progress.json").exists()
    assert any("not persisted" in m for m in caplog.messages)


def test_gc_after_merge_keeps_one_line_per_key(tmp_path):
    rng = random.Random(42)
    d = tmp_path / "c"
    records = adversarial_records(rng, n_keys=15)
    scatter_into_shards(d, records, rng, n_shards=3)
    merge_shards(d)
    before = canonical_state(d)
    stats = ResultStore(d).compact()
    assert stats.n_kept == 15
    lines = (d / "results.jsonl").read_text().strip().splitlines()
    assert len(lines) == 15
    assert {json.loads(l)["key"] for l in lines} == {
        f"cell{i:04d}" for i in range(15)
    }
    assert canonical_state(d) == before
    # compact invalidated the merge index; a cold merge re-examines
    # everything and still changes nothing
    again = merge_shards(d)
    assert not again.changed
    assert again.n_shard_records == len(records)
    assert canonical_state(d) == before
