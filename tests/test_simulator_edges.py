"""Edge-case and configuration-propagation tests for the simulator."""

import pytest

from repro.core.mechanisms import Mechanism
from repro.jobs.checkpoint import CheckpointModel
from repro.jobs.job import Job, JobState, JobType
from repro.sched.fcfs import LjfPolicy, SjfPolicy
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulation
from repro.util.errors import ConfigurationError


def rigid(job_id, submit=0.0, size=10, runtime=100.0, estimate=None):
    return Job(
        job_id=job_id,
        job_type=JobType.RIGID,
        submit_time=submit,
        size=size,
        runtime=runtime,
        estimate=estimate or runtime,
    )


def cfg(**kw):
    base = dict(
        system_size=100,
        checkpoint=CheckpointModel.disabled(),
        validate_invariants=True,
    )
    base.update(kw)
    return SimConfig(**base)


class TestValidation:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            Simulation([rigid(1), rigid(1)], cfg())

    def test_oversized_job_rejected(self):
        with pytest.raises(ConfigurationError):
            Simulation([rigid(1, size=101)], cfg())

    def test_stale_jobs_rejected(self):
        jobs = [rigid(1)]
        Simulation(jobs, cfg()).run()
        with pytest.raises(ConfigurationError):
            Simulation(jobs, cfg())

    def test_empty_trace_runs(self):
        res = Simulation([], cfg()).run()
        assert res.jobs == []
        assert res.makespan == 0.0


class TestConfigPropagation:
    def test_backfill_disabled_serialises_queue(self):
        jobs = [
            rigid(1, 0.0, size=60, runtime=5000.0),
            rigid(2, 10.0, size=100, runtime=1000.0),
            rigid(3, 20.0, size=30, runtime=100.0),
        ]
        res = Simulation(jobs, cfg(backfill_enabled=False)).run()
        j3 = next(j for j in res.jobs if j.job_id == 3)
        # without backfilling, job3 waits behind the blocked head
        assert j3.stats.first_start >= 5000.0

    def test_backfill_depth_zero_equals_disabled(self):
        jobs = [
            rigid(1, 0.0, size=60, runtime=5000.0),
            rigid(2, 10.0, size=100, runtime=1000.0),
            rigid(3, 20.0, size=30, runtime=100.0),
        ]
        res = Simulation(jobs, cfg(backfill_depth=0)).run()
        j3 = next(j for j in res.jobs if j.job_id == 3)
        assert j3.stats.first_start >= 5000.0

    def test_instant_threshold_affects_metric_only(self):
        from repro.metrics.summary import summarize

        jobs = [
            rigid(1, 0.0, size=100, runtime=1000.0),
            Job(job_id=2, job_type=JobType.ONDEMAND, submit_time=500.0,
                size=10, runtime=100.0, estimate=100.0),
        ]
        res = Simulation(jobs, cfg(), None).run()
        od = next(j for j in res.jobs if j.is_ondemand)
        assert od.start_delay == pytest.approx(500.0)
        assert summarize(res, instant_threshold_s=60.0).instant_start_rate == 0.0
        assert summarize(res, instant_threshold_s=600.0).instant_start_rate == 1.0


class TestPolicyPlugin:
    def test_sjf_reorders_queue(self):
        # both queued behind a blocker; SJF runs the short one first
        jobs = [
            rigid(1, 0.0, size=100, runtime=1000.0),
            rigid(2, 10.0, size=100, runtime=5000.0),
            rigid(3, 20.0, size=100, runtime=100.0),
        ]
        res = Simulation(jobs, cfg(), policy=SjfPolicy()).run()
        j2 = next(j for j in res.jobs if j.job_id == 2)
        j3 = next(j for j in res.jobs if j.job_id == 3)
        assert j3.stats.first_start < j2.stats.first_start

    def test_ljf_reorders_queue(self):
        jobs = [
            rigid(1, 0.0, size=100, runtime=1000.0),
            rigid(2, 10.0, size=20, runtime=500.0),
            rigid(3, 20.0, size=90, runtime=500.0),
        ]
        res = Simulation(jobs, cfg(backfill_enabled=False), policy=LjfPolicy()).run()
        j2 = next(j for j in res.jobs if j.job_id == 2)
        j3 = next(j for j in res.jobs if j.job_id == 3)
        assert j3.stats.first_start < j2.stats.first_start

    def test_mechanisms_compose_with_sjf(self):
        jobs = [
            rigid(1, 0.0, size=100, runtime=10000.0),
            Job(job_id=2, job_type=JobType.ONDEMAND, submit_time=500.0,
                size=10, runtime=100.0, estimate=100.0),
        ]
        res = Simulation(
            jobs, cfg(), Mechanism.parse("N&PAA"), policy=SjfPolicy()
        ).run()
        od = next(j for j in res.jobs if j.is_ondemand)
        assert od.start_delay == pytest.approx(0.0)
        assert res.policy == "sjf"


class TestResultRecord:
    def test_result_fields(self):
        res = Simulation([rigid(1, submit=5.0)], cfg()).run()
        assert res.system_size == 100
        assert res.policy == "fcfs"
        assert res.mechanism is None
        assert res.wall_time_s > 0
        assert res.first_submit == 5.0

    def test_segment_records_cover_allocated(self):
        res = Simulation([rigid(1, runtime=500.0, size=20)], cfg()).run()
        j = res.jobs[0]
        seg_total = sum(
            (end - start) * nodes for start, end, nodes in j.stats.segment_records
        )
        assert seg_total == pytest.approx(j.stats.allocated_node_seconds)


class TestCliExtensions:
    def test_cli_conservative_and_failures(self, capsys):
        from repro.experiments.cli import main as cli_main

        rc = cli_main(
            [
                "compare",
                "--days", "2",
                "--traces", "1",
                "--load", "0.5",
                "--mechanisms", "N&PAA",
                "--backfill", "conservative",
                "--failure-mtbf-days", "300",
                "--noshow-frac", "0.2",
            ]
        )
        assert rc == 0
        assert "N&PAA" in capsys.readouterr().out
