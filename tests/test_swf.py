"""Tests for the Standard Workload Format reader and re-typing layer."""

import numpy as np
import pytest

from repro.jobs.job import JobType, NoticeClass
from repro.util.errors import ConfigurationError
from repro.workload.spec import W5
from repro.workload.swf import load_swf, retype_jobs

#: a tiny synthetic SWF fragment: 18 fields per line
SWF_TEXT = """\
; Version: 2.2
; Computer: TestMachine
; MaxNodes: 100
1  100  5 3600 64  -1 -1 64 7200 -1 1 10 -1 2 -1 -1 -1 -1
2  200  1 1800 128 -1 -1 128 3600 -1 1 11 -1 3 -1 -1 -1 -1
3  300 10 -1   64  -1 -1 64 7200 -1 0 10 -1 2 -1 -1 -1 -1
4  400  2 900  32  -1 -1 32 -1   -1 1 12 -1 -1 -1 -1 -1 -1
5  500  0 600  0   -1 -1 0  1200 -1 1 13 -1 4 -1 -1 -1 -1
"""


@pytest.fixture()
def swf_path(tmp_path):
    p = tmp_path / "test.swf"
    p.write_text(SWF_TEXT)
    return str(p)


class TestLoadSwf:
    def test_parses_valid_jobs(self, swf_path):
        jobs = load_swf(swf_path)
        # job 3 (runtime -1) and job 5 (0 procs) are skipped
        assert len(jobs) == 3
        assert all(j.job_type is JobType.RIGID for j in jobs)

    def test_fields_mapped(self, swf_path):
        jobs = load_swf(swf_path)
        first = jobs[0]
        assert first.submit_time == 0.0  # rebased to the first submission
        assert first.runtime == 3600.0
        assert first.size == 64
        assert first.estimate == 7200.0
        assert first.project == 2

    def test_submit_rebasing(self, swf_path):
        jobs = load_swf(swf_path)
        assert [j.submit_time for j in jobs] == [0.0, 100.0, 300.0]

    def test_cores_per_node_division(self, swf_path):
        jobs = load_swf(swf_path, cores_per_node=64)
        assert jobs[0].size == 1
        assert jobs[1].size == 2

    def test_missing_estimate_falls_back_to_runtime(self, swf_path):
        jobs = load_swf(swf_path)
        j4 = [j for j in jobs if j.runtime == 900.0][0]
        assert j4.estimate == 900.0

    def test_max_jobs(self, swf_path):
        assert len(load_swf(swf_path, max_jobs=1)) == 1

    def test_short_line_rejected(self, tmp_path):
        p = tmp_path / "bad.swf"
        p.write_text("1 2 3\n")
        with pytest.raises(ConfigurationError):
            load_swf(str(p))


class TestRetype:
    def test_retype_produces_all_classes(self, swf_path):
        jobs = load_swf(swf_path)
        rng = np.random.default_rng(0)
        out = retype_jobs(
            jobs,
            frac_projects_ondemand=0.4,
            frac_projects_rigid=0.3,
            notice_mix=W5,
            rng=rng,
            system_size=1000,
        )
        assert len(out) == len(jobs)
        types = {j.job_type for j in out}
        assert JobType.MALLEABLE in types or JobType.ONDEMAND in types

    def test_retype_preserves_shapes(self, swf_path):
        jobs = load_swf(swf_path)
        rng = np.random.default_rng(0)
        out = retype_jobs(jobs, 0.0, 1.0, W5, rng, system_size=1000)
        assert all(j.job_type is JobType.RIGID for j in out)
        assert sorted(j.runtime for j in out) == sorted(j.runtime for j in jobs)

    def test_retype_malleable_fields(self, swf_path):
        jobs = load_swf(swf_path)
        rng = np.random.default_rng(1)
        out = retype_jobs(jobs, 0.0, 0.0, W5, rng, system_size=1000)
        for j in out:
            assert j.job_type is JobType.MALLEABLE
            assert j.min_size == max(1, int(np.ceil(0.2 * j.size)))

    def test_retype_ondemand_notice_fields(self, swf_path):
        jobs = load_swf(swf_path)
        rng = np.random.default_rng(2)
        out = retype_jobs(jobs, 1.0, 0.0, W5, rng, system_size=1000)
        for j in out:
            assert j.job_type is JobType.ONDEMAND
            if j.notice_class is not NoticeClass.NONE:
                assert j.notice_time is not None
