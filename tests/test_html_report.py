"""HTML/SVG report rendering: golden files, stability, self-containment.

The golden files under ``tests/golden/`` pin the exact bytes of the
HTML report and one SVG chart for a fixed synthetic record set (fixed
``elapsed_s``, no wall-clock content).  Regenerate them after an
intentional rendering change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_html_report.py

and review the diff like any other code change.
"""

import os
import pathlib
import re

import pytest

from repro.campaign.html import render_campaign_html, render_exhibit_html
from repro.campaign.svg import (
    MAX_SERIES,
    bar_chart,
    fmt_value,
    line_chart,
    nice_ticks,
)
from test_report_model import error_record, ok_record

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def golden_records():
    """A deterministic record set covering pivot, charts, and errors."""
    records = []
    key = 0
    for mechanism in (None, "N&PAA", "CUA&SPAA"):
        for seed in (1, 2):
            records.append(
                ok_record(
                    f"cell{key:02d}",
                    mechanism=mechanism,
                    seed=seed,
                    avg_turnaround_h=4.0 + key * 0.25,
                    system_utilization=0.80 + key * 0.01,
                    instant_start_rate=0.5 + key * 0.05,
                )
            )
            key += 1
    records.append(error_record("cellerr", mechanism="CUP&PAA", seed=1))
    return records


def golden_diff_records():
    return [
        ok_record(
            f"other{i}",
            mechanism=mechanism,
            seed=1,
            backfill="conservative",
            avg_turnaround_h=5.0 + i,
            system_utilization=0.70,
        )
        for i, mechanism in enumerate((None, "N&PAA", "CUA&SPAA"))
    ]


GOLDEN_SPEC = {
    "name": "golden",
    "days": [2.0],
    "target_load": [0.6],
    "system_size": [512],
    "notice_mix": ["W5"],
    "mechanism": [None, "N&PAA", "CUA&SPAA", "CUP&PAA"],
    "backfill_mode": ["easy"],
    "checkpoint_multiplier": [1.0],
    "failure_mtbf_days": [0.0],
    "seeds": [1, 2],
}


def render_golden() -> str:
    return render_campaign_html(
        golden_records(),
        spec_dict=GOLDEN_SPEC,
        diff_records=golden_diff_records(),
        a_name="easy",
        b_name="conservative",
    )


def _check_golden(name: str, content: str):
    path = GOLDEN_DIR / name
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        path.parent.mkdir(exist_ok=True)
        path.write_text(content, encoding="utf-8")
        pytest.skip(f"golden file {name} regenerated")
    assert path.exists(), (
        f"golden file {name} missing — run with REPRO_UPDATE_GOLDEN=1"
    )
    assert content == path.read_text(encoding="utf-8"), (
        f"{name} drifted from the golden bytes; if the rendering change "
        "is intentional, regenerate with REPRO_UPDATE_GOLDEN=1 and "
        "review the diff"
    )


class TestGolden:
    def test_campaign_report_matches_golden(self):
        _check_golden("campaign_report.html", render_golden())

    def test_bar_chart_matches_golden(self):
        chart = bar_chart(
            ["W1", "W5"],
            [("N&PAA", [4.0, 5.0]), ("baseline", [6.0, None])],
            title="golden bars",
            x_label="notice mix",
        )
        _check_golden("bar_chart.svg", chart + "\n")

    def test_line_chart_matches_golden(self):
        chart = line_chart(
            [0.5, 1.0, 2.0],
            [("N&PAA", [4.0, 4.5, 5.0]), ("baseline", [6.0, 6.5, 7.0])],
            title="golden lines",
            x_label="multiplier",
        )
        _check_golden("line_chart.svg", chart + "\n")


class TestStability:
    def test_render_is_byte_stable(self):
        assert render_golden() == render_golden()

    def test_record_order_within_group_does_not_reorder_rows(self):
        records = golden_records()
        doc_a = render_campaign_html(records, spec_dict=GOLDEN_SPEC)
        # group order is first-seen: keep it, permute only within seeds
        swapped = list(records)
        swapped[0], swapped[1] = swapped[1], swapped[0]
        doc_b = render_campaign_html(swapped, spec_dict=GOLDEN_SPEC)
        rows = re.findall(r"<tbody>.*?</tbody>", doc_a, re.DOTALL)
        rows_b = re.findall(r"<tbody>.*?</tbody>", doc_b, re.DOTALL)
        assert rows == rows_b


class TestSelfContained:
    def test_no_external_resources(self):
        doc = render_golden()
        # no external fetches of any kind: scripts, styles, images, fonts
        assert not re.search(r'<script[^>]+src=', doc)
        assert not re.search(r'<link[^>]+href=', doc)
        assert not re.search(r"<img", doc)
        assert "@import" in doc or True  # (no @import emitted at all)
        assert not re.search(r"url\(", doc)
        assert "https://" not in doc
        assert "http://" not in doc.replace("http://www.w3.org/2000/svg", "")

    def test_single_document(self):
        doc = render_golden()
        assert doc.startswith("<!DOCTYPE html>")
        assert doc.count("<html") == doc.count("</html>") == 1

    def test_sections_present(self):
        doc = render_golden()
        assert "<h2>Pivot" in doc
        assert "<h2>Charts" in doc
        assert "<h2>Errors" in doc
        assert "<h2>Diff" in doc
        assert doc.count("<svg") == 5  # one chart per default metric
        assert "sortable" in doc and "<script>" in doc

    def test_error_traceback_escaped_inside_details(self):
        doc = render_golden()
        assert "<details>" in doc
        assert "ValueError: boom" in doc

    def test_diff_regressions_marked(self):
        doc = render_golden()
        # conservative side is worse on turnaround and utilization
        assert "▼ regression" in doc
        assert 'class="delta-reg"' in doc


class TestDiffSectionEdgeCases:
    def test_error_only_diff_renders_message(self):
        doc = render_campaign_html(
            [error_record("e1")],
            diff_records=[error_record("e2")],
            a_name="a",
            b_name="b",
        )
        assert "no comparable cells" in doc
        assert "1 error records" in doc


class TestChartPrimitives:
    def test_series_cap_announced(self):
        many = [(f"s{i}", [float(i)]) for i in range(MAX_SERIES + 3)]
        chart = bar_chart(["only"], many)
        assert "+3 series omitted" in chart
        assert f"--series-{MAX_SERIES}" in chart
        assert f"--series-{MAX_SERIES + 1}" not in chart

    def test_single_series_has_no_legend(self):
        chart = bar_chart(["a", "b"], [("solo", [1.0, 2.0])])
        assert 'rx="2"' not in chart  # no legend swatch

    def test_two_series_have_legend(self):
        chart = bar_chart(
            ["a"], [("one", [1.0]), ("two", [2.0])]
        )
        assert chart.count('rx="2"') == 2

    def test_empty_chart_says_no_data(self):
        assert "(no data)" in bar_chart([], [])
        assert "(no data)" in line_chart([], [])

    def test_tooltips_on_marks(self):
        chart = bar_chart(["W5"], [("N&PAA", [4.0])])
        assert "<title>N&amp;PAA · W5: 4</title>" in chart

    def test_markup_is_escaped(self):
        chart = bar_chart(
            ['<x>&"'], [("<series>", [1.0])], title='<t>&'
        )
        assert "<x>" not in chart and "<series>" not in chart
        assert "&lt;x&gt;" in chart

    def test_nice_ticks_clean_steps(self):
        ticks = nice_ticks(0.0, 0.87)
        assert ticks[0] == 0.0
        assert ticks[-1] >= 0.87  # the top of the data is always covered
        assert all(t == pytest.approx(round(t, 10)) for t in ticks)
        degenerate = nice_ticks(0.0, 0.0)
        assert degenerate[0] == 0.0 and degenerate[-1] >= 0.0
        assert nice_ticks(5.0, 5.0)[0] <= 5.0 <= nice_ticks(5.0, 5.0)[-1]
        assert nice_ticks(float("nan"), 1.0) == [0.0, 1.0]

    def test_fmt_value(self):
        assert fmt_value(None) == "-"
        assert fmt_value(float("nan")) == "-"
        assert fmt_value(float("inf")) == "inf"
        assert fmt_value(float("-inf")) == "-inf"
        assert fmt_value(4.0) == "4"
        assert fmt_value(4.632) == "4.63"
        assert fmt_value(0.1234) == "0.1234"
        assert fmt_value(123.4) == "123"

    def test_infinite_metrics_render(self):
        """Stores are NaN/inf-safe, so the HTML renderer must be too —
        an inf summary value must not crash the report."""
        records = [
            ok_record("inf", avg_turnaround_h=float("inf")),
            ok_record("nan", seed=2, avg_turnaround_h=float("nan")),
        ]
        doc = render_campaign_html(
            records, diff_records=[ok_record("b", seed=3)]
        )
        assert "inf" in doc

    def test_line_chart_numeric_positions_proportional(self):
        chart = line_chart(
            [0.0, 1.0, 3.0], [("s", [1.0, 2.0, 3.0])]
        )
        xs = [
            float(m)
            for m in re.findall(r'<circle cx="([\d.]+)"', chart)
        ]
        assert len(xs) == 3
        # x=1 sits a third of the way between x=0 and x=3
        assert (xs[1] - xs[0]) / (xs[2] - xs[0]) == pytest.approx(1 / 3)


class TestExhibitHtml:
    def test_wraps_charts_and_text(self):
        doc = render_exhibit_html(
            "repro-hybrid fig6",
            charts=[("metric", bar_chart(["W5"], [("m", [1.0])]))],
            text="aligned | table",
        )
        assert doc.startswith("<!DOCTYPE html>")
        assert "<svg" in doc and "aligned | table" in doc

    def test_chart_stylesheet_not_duplicated_per_svg(self):
        charts = [
            (f"m{i}", bar_chart(["W5"], [("m", [1.0])])) for i in range(3)
        ]
        doc = render_exhibit_html("x", charts=charts)
        # one page-level copy only; the per-SVG copies are stripped
        assert doc.count(".viz-surface") == 1

    def test_fig5_driver_emits_chart(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.figures import fig5_burstiness
        from repro.sim.config import SimConfig
        from repro.workload.spec import theta_spec

        config = ExperimentConfig(
            spec=theta_spec(days=2, system_size=512, target_load=0.6),
            sim=SimConfig(system_size=512),
            n_traces=2,
        )
        out = fig5_burstiness(config)
        assert out["charts"], "fig5 should emit an SVG chart"
        heading, svg = out["charts"][0]
        assert "<svg" in svg and "seed-" in svg


class TestCliHtml:
    def test_report_html_written_and_self_contained(self, tmp_path, capsys):
        from repro.campaign.executor import run_campaign
        from repro.campaign.spec import CampaignSpec
        from repro.experiments.cli import campaign_main

        spec = CampaignSpec.from_dict(
            {
                "name": "tiny",
                "days": 2,
                "target_load": 0.6,
                "system_size": 512,
                "mechanism": [None, "N&PAA"],
                "seeds": [1],
            }
        )
        run_campaign(spec, directory=str(tmp_path / "c"))
        out_file = tmp_path / "report.html"
        code = campaign_main(
            [
                "report",
                "--dir",
                str(tmp_path / "c"),
                "--html",
                str(out_file),
                "--by",
                "mechanism",
                "--x",
                "mechanism",
            ]
        )
        assert code == 0
        doc = out_file.read_text(encoding="utf-8")
        assert "<h2>Pivot" in doc and "<svg" in doc
        assert "https://" not in doc
        # byte-stable across re-runs on the same campaign dir
        campaign_main(
            ["report", "--dir", str(tmp_path / "c"),
             "--html", str(tmp_path / "again.html")]
        )
        again = (tmp_path / "again.html").read_text(encoding="utf-8")
        by_default = campaign_main(
            ["report", "--dir", str(tmp_path / "c"),
             "--html", str(out_file)]
        )
        assert by_default == 0
        assert out_file.read_text(encoding="utf-8") == again

    def test_open_without_html_rejected(self, tmp_path):
        from repro.experiments.cli import campaign_main

        with pytest.raises(SystemExit, match="--open requires"):
            campaign_main(
                ["report", "--dir", str(tmp_path), "--open"]
            )
