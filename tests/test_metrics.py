"""Tests for metric summarisation and report formatting."""

import math

import pytest

from repro.core.mechanisms import Mechanism
from repro.jobs.checkpoint import CheckpointModel
from repro.jobs.job import Job, JobType
from repro.metrics.report import format_summary_rows, format_table
from repro.metrics.summary import average_summaries, summarize
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulation
from repro.util.timeconst import HOUR


def run_small(mechanism=None):
    jobs = [
        Job(job_id=1, job_type=JobType.RIGID, submit_time=0.0, size=50,
            runtime=1000.0, estimate=1000.0),
        Job(job_id=2, job_type=JobType.MALLEABLE, submit_time=0.0, size=50,
            min_size=10, runtime=1000.0, estimate=1000.0),
        Job(job_id=3, job_type=JobType.ONDEMAND, submit_time=100.0, size=100,
            runtime=500.0, estimate=500.0),
    ]
    config = SimConfig(
        system_size=100,
        checkpoint=CheckpointModel.disabled(),
        validate_invariants=True,
    )
    return Simulation(jobs, config, mechanism).run()


class TestSummarize:
    def test_counts(self):
        s = summarize(run_small())
        assert s.n_jobs == 3
        assert s.n_rigid == 1
        assert s.n_malleable == 1
        assert s.n_ondemand == 1

    def test_turnaround_values(self):
        s = summarize(run_small())
        # rigid and malleable run [0, 1000]; od waits until 1000, ends 1500
        assert s.avg_turnaround_rigid_h == pytest.approx(1000.0 / HOUR)
        assert s.avg_turnaround_ondemand_h == pytest.approx(1400.0 / HOUR)

    def test_instant_rate_baseline_zero(self):
        s = summarize(run_small())
        assert s.instant_start_rate == 0.0

    def test_instant_rate_with_mechanism(self):
        s = summarize(run_small(Mechanism.parse("N&PAA")))
        assert s.instant_start_rate == 1.0
        assert s.preemption_ratio_rigid + s.preemption_ratio_malleable > 0

    def test_utilization_bounds(self):
        s = summarize(run_small())
        assert 0.0 < s.system_utilization <= 1.0
        assert s.allocated_frac >= s.system_utilization

    def test_utilization_exact_no_waste(self):
        s = summarize(run_small())
        # capacity = 100 nodes * 1500 s; work = 2*50*1000 + 100*500
        assert s.system_utilization == pytest.approx(150000.0 / 150000.0)

    def test_decision_latency_fields(self):
        s = summarize(run_small(Mechanism.parse("N&PAA")))
        assert s.decision_latency_max_s >= s.decision_latency_p50_s >= 0.0

    def test_as_dict(self):
        d = summarize(run_small()).as_dict()
        assert "system_utilization" in d
        assert d["n_jobs"] == 3


class TestAverage:
    def test_average_summaries(self):
        s1 = summarize(run_small())
        s2 = summarize(run_small(Mechanism.parse("N&PAA")))
        avg = average_summaries([s1, s2])
        assert avg.instant_start_rate == pytest.approx(0.5)
        assert avg.n_jobs == 3

    def test_average_empty_rejected(self):
        with pytest.raises(ValueError):
            average_summaries([])

    def test_average_ignores_nan(self):
        s1 = summarize(run_small())
        avg = average_summaries([s1, s1])
        assert not math.isnan(avg.avg_turnaround_h)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xx", 0.123456]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "0.1235" in text

    def test_format_table_title_and_nan(self):
        text = format_table(["x"], [[float("nan")]], title="T")
        assert text.splitlines()[0] == "T"
        assert "-" in text.splitlines()[-1]

    def test_format_summary_rows(self):
        s = summarize(run_small())
        text = format_summary_rows([s], title="demo")
        assert "baseline" in text
        assert "turnaround[h]" in text

    def test_format_summary_rows_mechanism_name(self):
        s = summarize(run_small(Mechanism.parse("CUA&SPAA")))
        assert "CUA&SPAA" in format_summary_rows([s])


class TestSummaryDictRoundTrip:
    """to_dict()/from_dict() must be lossless through strict JSON."""

    @staticmethod
    def _fields_equal(a, b):
        for name in a.__dataclass_fields__:
            va, vb = getattr(a, name), getattr(b, name)
            if isinstance(va, float) and math.isnan(va):
                assert isinstance(vb, float) and math.isnan(vb), name
            else:
                assert va == vb, name
                assert type(va) is type(vb), name

    def test_real_summary_round_trips(self):
        import json

        from repro.metrics.summary import SummaryMetrics

        s = summarize(run_small(Mechanism.parse("CUA&SPAA")))
        encoded = json.dumps(s.to_dict(), allow_nan=False)
        self._fields_equal(s, SummaryMetrics.from_dict(json.loads(encoded)))

    @pytest.mark.parametrize(
        "mechanism,special",
        [
            (None, float("nan")),
            ("CUA&SPAA", float("inf")),
            ("N&PAA", float("-inf")),
            ("NaN", 0.0),  # a pathological name must not decode as a float
            (None, 1.5),
        ],
    )
    def test_edge_values_round_trip(self, mechanism, special):
        import json

        from repro.metrics.summary import SummaryMetrics

        base = summarize(run_small())
        fields = base.as_dict()
        fields["mechanism"] = mechanism
        for name in fields:
            if isinstance(fields[name], float):
                fields[name] = special
        s = SummaryMetrics(**fields)
        encoded = json.dumps(s.to_dict(), allow_nan=False)
        self._fields_equal(s, SummaryMetrics.from_dict(json.loads(encoded)))

    def test_property_random_floats_round_trip(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.metrics.summary import SummaryMetrics

        base = summarize(run_small()).as_dict()
        float_fields = [k for k, v in base.items() if isinstance(v, float)]

        @settings(max_examples=50, deadline=None)
        @given(
            st.lists(
                st.floats(allow_nan=True, allow_infinity=True),
                min_size=len(float_fields),
                max_size=len(float_fields),
            )
        )
        def check(values):
            import json

            fields = dict(base)
            fields.update(zip(float_fields, values))
            s = SummaryMetrics(**fields)
            encoded = json.dumps(s.to_dict(), allow_nan=False)
            self._fields_equal(
                s, SummaryMetrics.from_dict(json.loads(encoded))
            )

        check()
