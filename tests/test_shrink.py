"""Unit + property tests for SPAA's even water-filling shrink planner."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.shrink import ShrinkCandidate, plan_even_shrink


def cand(job_id, current, minimum):
    return ShrinkCandidate(job_id=job_id, current=current, minimum=minimum)


class TestBasics:
    def test_zero_deficit(self):
        assert plan_even_shrink([cand(1, 100, 20)], 0) == {}

    def test_insufficient_supply_returns_none(self):
        assert plan_even_shrink([cand(1, 100, 90)], 20) is None

    def test_no_candidates(self):
        assert plan_even_shrink([], 5) is None

    def test_exact_supply(self):
        plan = plan_even_shrink([cand(1, 100, 20)], 80)
        assert plan == {1: 80}

    def test_single_job_partial(self):
        plan = plan_even_shrink([cand(1, 100, 20)], 30)
        assert plan == {1: 30}

    def test_even_levels(self):
        """Two equal jobs share the burden equally."""
        plan = plan_even_shrink([cand(1, 100, 10), cand(2, 100, 10)], 40)
        assert plan == {1: 20, 2: 20}

    def test_larger_job_gives_more(self):
        """Water-filling takes from the tallest job first."""
        plan = plan_even_shrink([cand(1, 200, 10), cand(2, 100, 10)], 100)
        assert plan[1] == 100
        assert 2 not in plan  # level settles at 100; job 2 untouched

    def test_minimum_respected(self):
        plan = plan_even_shrink([cand(1, 100, 80), cand(2, 100, 10)], 60)
        assert plan[1] <= 20
        assert plan[1] + plan[2] == 60

    def test_surplus_redistribution_deterministic(self):
        # Supply at level L may overshoot; surplus returns to lowest ids.
        plan1 = plan_even_shrink([cand(1, 10, 1), cand(2, 10, 1), cand(3, 10, 1)], 7)
        plan2 = plan_even_shrink([cand(1, 10, 1), cand(2, 10, 1), cand(3, 10, 1)], 7)
        assert plan1 == plan2
        assert sum(plan1.values()) == 7

    def test_invalid_candidate(self):
        with pytest.raises(ValueError):
            cand(1, 10, 20)
        with pytest.raises(ValueError):
            cand(1, 10, 0)


@settings(max_examples=300, deadline=None)
@given(
    data=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=500),  # minimum
            st.integers(min_value=0, max_value=500),  # headroom above min
        ),
        min_size=1,
        max_size=12,
    ),
    deficit_frac=st.floats(min_value=0.0, max_value=1.2),
)
def test_water_fill_properties(data, deficit_frac):
    cands = [
        cand(i, minimum + headroom, minimum)
        for i, (minimum, headroom) in enumerate(data)
    ]
    supply = sum(c.current - c.minimum for c in cands)
    deficit = int(deficit_frac * supply)
    plan = plan_even_shrink(cands, deficit)
    if deficit > supply:
        assert plan is None
        return
    assert plan is not None
    # exact total
    assert sum(plan.values()) == deficit
    by_id = {c.job_id: c for c in cands}
    levels = {}
    for job_id, take in plan.items():
        c = by_id[job_id]
        assert 0 < take <= c.current - c.minimum
        levels[job_id] = c.current - take
    # evenness: every shrunk job sits within 1 node of the common level
    # unless pinned at its own minimum
    if plan:
        active = [
            lvl
            for job_id, lvl in levels.items()
            if lvl > by_id[job_id].minimum
        ]
        if active:
            assert max(active) - min(active) <= 1
