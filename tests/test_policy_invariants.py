"""Registry-driven invariant harness: every registered policy must obey
the simulator's safety properties, discovered via ``policy_names()``
alone — a newly registered policy is picked up with zero test edits.

Set ``REPRO_POLICY=<name>`` to restrict the module to one policy (the
CI policy-matrix job runs one shard per registered name).

Invariants checked per policy:

* the fuzz-trace battery from ``test_simulator_invariants.check_run``
  (completion, work conservation, allocation decomposition, timeline
  sanity, capacity) across mechanisms and seeds;
* decision-log replay: no job starts before submit, and the replayed
  allocation never oversubscribes the machine at any instant;
* work conservation on an idle machine: a lone job starts instantly no
  matter how the policy orders the (singleton) queue;
* reservations honored: an accurate-notice on-demand job under a
  reservation mechanism starts by its estimated arrival even when an
  aging policy would love to run something else.
"""

import os
import sys

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

sys.path.insert(0, "tests")
from test_simulator_invariants import (  # noqa: E402
    SYSTEM,
    check_run,
    random_trace,
)

from repro.core.mechanisms import Mechanism
from repro.jobs.checkpoint import CheckpointModel
from repro.jobs.job import Job, JobType, NoticeClass
from repro.sched.registry import policy_names
from repro.sim.config import SimConfig
from repro.sim.schedlog import LogKind
from repro.sim.simulator import Simulation

ALL_POLICIES = policy_names()
_ONLY = os.environ.get("REPRO_POLICY")
if _ONLY and _ONLY not in ALL_POLICIES:
    raise RuntimeError(
        f"REPRO_POLICY={_ONLY!r} is not registered; "
        f"known policies: {', '.join(ALL_POLICIES)}"
    )
POLICIES = tuple(n for n in ALL_POLICIES if not _ONLY or n == _ONLY)

MECHANISMS = [None, "N&PAA", "CUA&SPAA"]


def _mech(name):
    return Mechanism.parse(name) if name else None


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("mechanism", MECHANISMS,
                         ids=lambda m: m or "baseline")
@pytest.mark.parametrize("seed", [1, 8])
def test_fuzz_traces_every_policy(policy, mechanism, seed):
    jobs = random_trace(seed, n_jobs=50)
    check_run(jobs, _mech(mechanism), policy=policy)


# ----------------------------------------------------------------------
# Decision-log replay: submit ordering and machine capacity
# ----------------------------------------------------------------------
def _replay_log(entries, submit_times, system_size):
    """Replay a decision log, asserting per-event sanity; returns the
    peak concurrent allocation seen."""
    alloc = {}
    peak = 0
    for e in entries:
        if e.kind is LogKind.START:
            assert e.time >= submit_times[e.job_id] - 1e-6, (
                f"job {e.job_id} started at {e.time} before submit "
                f"{submit_times[e.job_id]}"
            )
            alloc[e.job_id] = alloc.get(e.job_id, 0) + e.nodes
        elif e.kind in (LogKind.FINISH, LogKind.PREEMPT):
            alloc[e.job_id] = alloc.get(e.job_id, 0) - e.nodes
        elif e.kind is LogKind.SHRINK:
            alloc[e.job_id] = alloc.get(e.job_id, 0) - e.nodes
        elif e.kind is LogKind.EXPAND:
            alloc[e.job_id] = alloc.get(e.job_id, 0) + e.nodes
        # FAILURE keeps the allocation: the job restarts in place
        assert all(v >= 0 for v in alloc.values()), (
            f"negative allocation after {e.to_json_line()}"
        )
        total = sum(alloc.values())
        assert total <= system_size, (
            f"oversubscribed: {total} > {system_size} nodes "
            f"after {e.to_json_line()}"
        )
        peak = max(peak, total)
    assert all(v == 0 for v in alloc.values()), (
        f"allocation leaked at end of log: {alloc}"
    )
    return peak


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("mechanism", MECHANISMS,
                         ids=lambda m: m or "baseline")
def test_log_replay_no_oversubscription(policy, mechanism):
    jobs = random_trace(17, n_jobs=60)
    submit_times = {j.job_id: j.submit_time for j in jobs}
    config = SimConfig(
        system_size=SYSTEM,
        checkpoint=CheckpointModel.disabled(),
        log_decisions=True,
        validate_invariants=True,
        policy=policy,
    )
    result = Simulation(jobs, config, _mech(mechanism)).run()
    peak = _replay_log(result.log.entries, submit_times, SYSTEM)
    assert peak > 0, "the trace should actually allocate nodes"


# ----------------------------------------------------------------------
# Work conservation: an idle machine never makes a lone job wait
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", POLICIES)
def test_idle_machine_starts_instantly(policy):
    jobs = [
        Job(
            job_id=0,
            job_type=JobType.RIGID,
            submit_time=123.0,
            size=SYSTEM // 2,
            runtime=500.0,
            estimate=700.0,
        )
    ]
    config = SimConfig(
        system_size=SYSTEM,
        checkpoint=CheckpointModel.disabled(),
        policy=policy,
    )
    result = Simulation(jobs, config, None).run()
    (job,) = result.jobs
    assert job.stats.first_start == pytest.approx(123.0, abs=1e-6)


# ----------------------------------------------------------------------
# Reservations honored under every ordering
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", POLICIES)
def test_reservation_honored(policy):
    """An accurate-notice on-demand job under SPAA must start by its
    estimated arrival regardless of how the policy orders the queue."""
    jobs = [
        Job(
            job_id=0,
            job_type=JobType.MALLEABLE,
            submit_time=0.0,
            size=SYSTEM,
            min_size=8,
            runtime=40_000.0,
            estimate=60_000.0,
        ),
        Job(
            job_id=1,
            job_type=JobType.ONDEMAND,
            submit_time=6_000.0,
            size=16,
            runtime=1_000.0,
            estimate=2_000.0,
            notice_class=NoticeClass.ACCURATE,
            notice_time=4_000.0,
            estimated_arrival=6_000.0,
        ),
    ]
    config = SimConfig(
        system_size=SYSTEM,
        checkpoint=CheckpointModel.disabled(),
        validate_invariants=True,
        policy=policy,
    )
    result = Simulation(jobs, config, Mechanism.parse("N&SPAA")).run()
    od = next(j for j in result.jobs if j.is_ondemand)
    assert od.stats.first_start == pytest.approx(6_000.0, abs=1.0), (
        f"policy {policy!r} delayed a reserved on-demand job to "
        f"{od.stats.first_start}"
    )


# ----------------------------------------------------------------------
# Hypothesis fuzz across the whole zoo
# ----------------------------------------------------------------------
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_jobs=st.integers(min_value=5, max_value=35),
    policy_idx=st.integers(min_value=0, max_value=len(POLICIES) - 1),
    mech_idx=st.integers(min_value=0, max_value=len(MECHANISMS) - 1),
)
def test_hypothesis_fuzz_policy_zoo(seed, n_jobs, policy_idx, mech_idx):
    jobs = random_trace(seed, n_jobs=n_jobs)
    check_run(jobs, _mech(MECHANISMS[mech_idx]), policy=POLICIES[policy_idx])
