"""Unit tests for cluster node accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cluster import Cluster
from repro.util.errors import InvariantViolation


class TestAllocation:
    def test_start_and_end(self):
        c = Cluster(100)
        c.start_job(1, 30)
        assert c.free == 70
        assert c.allocation(1) == 30
        assert c.used == 30
        assert c.end_job(1) == 30
        assert c.free == 100

    def test_over_allocation_rejected(self):
        c = Cluster(100)
        with pytest.raises(InvariantViolation):
            c.start_job(1, 101)

    def test_double_start_rejected(self):
        c = Cluster(100)
        c.start_job(1, 10)
        with pytest.raises(InvariantViolation):
            c.start_job(1, 10)

    def test_end_unknown_rejected(self):
        with pytest.raises(InvariantViolation):
            Cluster(100).end_job(9)

    def test_zero_nodes_rejected(self):
        with pytest.raises(InvariantViolation):
            Cluster(100).start_job(1, 0)

    def test_bad_total(self):
        with pytest.raises(ValueError):
            Cluster(0)


class TestResize:
    def test_shrink_and_expand(self):
        c = Cluster(100)
        c.start_job(1, 50)
        assert c.resize_job(1, 30) == -20
        assert c.free == 70
        assert c.resize_job(1, 60) == 30
        assert c.free == 40

    def test_expand_beyond_free_rejected(self):
        c = Cluster(100)
        c.start_job(1, 50)
        c.start_job(2, 50)
        with pytest.raises(InvariantViolation):
            c.resize_job(1, 60)

    def test_resize_to_zero_rejected(self):
        c = Cluster(100)
        c.start_job(1, 50)
        with pytest.raises(InvariantViolation):
            c.resize_job(1, 0)

    def test_resize_unknown_rejected(self):
        with pytest.raises(InvariantViolation):
            Cluster(100).resize_job(7, 10)


class TestTimeIntegral:
    def test_free_node_seconds(self):
        c = Cluster(100)
        c.advance(10.0)  # 100 free * 10s
        c.start_job(1, 40)
        c.advance(20.0)  # 60 free * 10s
        assert c.free_node_seconds == pytest.approx(1000.0 + 600.0)

    def test_clock_backwards_rejected(self):
        c = Cluster(10)
        c.advance(5.0)
        with pytest.raises(InvariantViolation):
            c.advance(4.0)


@settings(max_examples=100, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["start", "end", "resize"]),
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=1, max_value=40),
        ),
        max_size=40,
    )
)
def test_conservation_under_random_ops(ops):
    """free + sum(allocations) == total holds through any legal op sequence."""
    c = Cluster(100)
    for op, job_id, nodes in ops:
        try:
            if op == "start":
                c.start_job(job_id, nodes)
            elif op == "end":
                c.end_job(job_id)
            else:
                c.resize_job(job_id, nodes)
        except InvariantViolation:
            pass  # illegal op correctly refused; state must stay consistent
        assert c.free + sum(c.running.values()) == c.total
        assert c.free >= 0
