"""Tests for mechanism naming/parsing."""

import pytest

from repro.core.mechanisms import (
    ALL_MECHANISMS,
    ArrivalStrategy,
    Mechanism,
    NoticeStrategy,
)
from repro.util.errors import ConfigurationError


class TestMechanism:
    def test_six_mechanisms(self):
        assert len(ALL_MECHANISMS) == 6
        names = [m.name for m in ALL_MECHANISMS]
        assert names == [
            "N&PAA",
            "N&SPAA",
            "CUA&PAA",
            "CUA&SPAA",
            "CUP&PAA",
            "CUP&SPAA",
        ]

    @pytest.mark.parametrize("name", [m.name for m in ALL_MECHANISMS])
    def test_parse_roundtrip(self, name):
        assert Mechanism.parse(name).name == name

    def test_parse_case_insensitive(self):
        m = Mechanism.parse("cua&spaa")
        assert m.notice is NoticeStrategy.COLLECT_UNTIL_ACTUAL
        assert m.arrival is ArrivalStrategy.SHRINK_PREEMPT

    def test_parse_with_spaces(self):
        assert Mechanism.parse(" CUP & PAA ").name == "CUP&PAA"

    @pytest.mark.parametrize("bad", ["", "CUA", "CUA&XYZ", "FOO&PAA", "A&B&C"])
    def test_parse_invalid(self, bad):
        with pytest.raises(ConfigurationError):
            Mechanism.parse(bad)

    def test_str(self):
        assert str(ALL_MECHANISMS[0]) == "N&PAA"

    def test_frozen_and_hashable(self):
        assert len({*ALL_MECHANISMS}) == 6
