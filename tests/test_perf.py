"""Tests for the continuous performance observatory (:mod:`repro.perf`).

Covers the record schema (hashing, NaN/inf round-trips), the JSONL
store (atomic appends, torn tails, bad lines), the measurement harness,
the regression engine's edge cases (missing baseline, single-sample
history, non-finite metrics, machine-fingerprint mismatch), the
``repro-hybrid perf`` CLI end to end — including the acceptance
scenario: a deliberately injected 2x slowdown must exit non-zero and
name the regression, while an identical re-run passes clean — and the
memory-profiling hooks in :mod:`repro.obs.memory`.

The perf-trend dashboard is pinned by a golden file; regenerate after
an intentional rendering change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_perf.py

and review the diff like any other code change.
"""

import json
import math
import os
import pathlib
import tracemalloc

import pytest

from repro.perf.harness import Measurement, bench, measure
from repro.perf.record import (
    PerfRecord,
    current_git_sha,
    decode_metrics,
    encode_metrics,
    machine_fingerprint,
    scenario_hash,
)
from repro.perf.regress import (
    Verdict,
    compare_latest,
    compare_record,
    metric_direction,
    render_verdicts,
)
from repro.perf.report import render_perf_html
from repro.perf.store import PerfStore

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: a fixed fingerprint so store/regress tests are machine-independent
MACHINE_A = {"cpu_count": 8, "python": "3.11", "platform": "Linux-x86_64"}
MACHINE_B = {"cpu_count": 64, "python": "3.12", "platform": "Linux-aarch64"}


def rec(
    wall=1.0,
    scenario="sim_core",
    params=None,
    machine=MACHINE_A,
    git_sha="c0ffee1",
    **metrics,
):
    metrics.setdefault("wall_time_s", wall)
    return PerfRecord(
        scenario=scenario,
        params=params if params is not None else {"n_jobs": 1000},
        metrics=metrics,
        machine=dict(machine),
        git_sha=git_sha,
        recorded_unix=0.0,
    )


class TestRecord:
    def test_scenario_hash_is_content_addressed(self):
        a = scenario_hash("sim_core", {"n_jobs": 1000})
        assert a == scenario_hash("sim_core", {"n_jobs": 1000})
        assert a != scenario_hash("sim_core", {"n_jobs": 2000})
        assert a != scenario_hash("sim_corex", {"n_jobs": 1000})
        # key order must not matter
        assert scenario_hash("s", {"a": 1, "b": 2}) == scenario_hash(
            "s", {"b": 2, "a": 1}
        )

    def test_round_trip(self):
        record = rec(wall=1.5, events_per_s=2000.0)
        back = PerfRecord.from_dict(record.to_dict())
        assert back == record

    def test_post_init_fills_hash(self):
        record = rec()
        assert record.scenario_hash == scenario_hash(
            "sim_core", {"n_jobs": 1000}
        )

    def test_nan_inf_encode_as_strings(self):
        encoded = encode_metrics(
            {"a": float("nan"), "b": float("inf"), "c": float("-inf"), "d": 1}
        )
        assert encoded == {"a": "nan", "b": "inf", "c": "-inf", "d": 1.0}
        # the encoded form survives strict (allow_nan=False) JSON
        strict = json.dumps(encoded, allow_nan=False)
        decoded = decode_metrics(json.loads(strict))
        assert math.isnan(decoded["a"])
        assert decoded["b"] == float("inf")
        assert decoded["c"] == float("-inf")
        assert decoded["d"] == 1.0

    def test_machine_fingerprint_fields(self):
        fp = machine_fingerprint()
        assert set(fp) == {"cpu_count", "python", "platform"}
        assert fp["cpu_count"] >= 1

    def test_current_git_sha_in_repo(self):
        sha = current_git_sha(str(pathlib.Path(__file__).parent.parent))
        assert sha != "unknown" and len(sha) >= 7


class TestStore:
    def test_append_load_round_trip(self, tmp_path):
        store = PerfStore(tmp_path / "perf.jsonl")
        assert store.load() == []  # missing file is an empty history
        r1, r2 = rec(wall=1.0), rec(wall=2.0, git_sha="c0ffee2")
        store.append(r1)
        store.append(r2)
        loaded = store.load()
        assert loaded == [r1, r2]

    def test_nan_record_survives_the_store(self, tmp_path):
        store = PerfStore(tmp_path / "perf.jsonl")
        store.append(rec(wall=float("nan"), peak=float("inf")))
        (loaded,) = store.load()
        assert math.isnan(loaded.metrics["wall_time_s"])
        assert loaded.metrics["peak"] == float("inf")

    def test_bad_interior_line_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "perf.jsonl"
        store = PerfStore(path)
        store.append(rec(wall=1.0))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{this is not json\n")
        store.append(rec(wall=2.0))
        loaded = store.load()
        assert [r.metrics["wall_time_s"] for r in loaded] == [1.0, 2.0]
        assert store.n_bad_lines == 1

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "perf.jsonl"
        store = PerfStore(path)
        store.append(rec(wall=1.0))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"scenario": "half')  # no newline: torn append
        loaded = store.load()
        assert len(loaded) == 1
        assert store.n_bad_lines == 0  # a torn tail is not corruption

    def test_filter_and_latest_baseline(self, tmp_path):
        store = PerfStore(tmp_path / "perf.jsonl")
        for i in range(8):
            store.append(rec(wall=float(i), git_sha=f"sha{i}"))
        store.append(rec(wall=9.0, params={"n_jobs": 77}))
        store.append(rec(wall=9.0, scenario="html_report", params={}))
        assert len(store.filter(scenario="sim_core")) == 9
        h = scenario_hash("sim_core", {"n_jobs": 1000})
        assert len(store.filter(scenario_hash=h)) == 8
        window = store.latest_baseline(h, n=3)
        assert [r.metrics["wall_time_s"] for r in window] == [5.0, 6.0, 7.0]
        assert store.latest_baseline(h, n=3, machine=MACHINE_B) == []

    def test_concurrent_style_interleaving(self, tmp_path):
        # two stores on the same path (as two processes would be)
        path = tmp_path / "perf.jsonl"
        a, b = PerfStore(path), PerfStore(path)
        a.append(rec(wall=1.0))
        b.append(rec(wall=2.0))
        a.append(rec(wall=3.0))
        assert [r.metrics["wall_time_s"] for r in PerfStore(path).load()] == [
            1.0, 2.0, 3.0,
        ]


class TestHarness:
    def test_measure_counts_and_min(self):
        calls = []

        def fn():
            calls.append(1)
            return {"events_processed": 100, "note": "ignored-non-numeric"}

        m = measure(fn, warmup=2, repeat=3)
        assert len(calls) == 5
        assert len(m.times_s) == 3
        assert m.wall_time_s == min(m.times_s)
        assert m.extra == {"events_processed": 100.0}
        metrics = m.metrics()
        assert metrics["events_per_s"] == pytest.approx(
            100.0 / m.wall_time_s
        )

    def test_measure_rejects_zero_repeat(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeat=0)

    def test_memory_rep_is_untimed_and_restores_tracemalloc(self):
        assert not tracemalloc.is_tracing()
        timed_calls = []

        def fn():
            timed_calls.append(tracemalloc.is_tracing())
            blob = [0] * 50_000
            return {"n": len(blob)}

        m = measure(fn, warmup=0, repeat=2, memory=True)
        # the two timed reps ran untraced; only the extra rep traced
        assert timed_calls[:2] == [False, False]
        assert timed_calls[2] is True
        assert not tracemalloc.is_tracing()
        assert m.memory["tracemalloc_peak_bytes"] > 50_000 * 8 * 0.9
        assert m.memory["peak_rss_bytes"] > 0

    def test_bench_appends_a_record(self, tmp_path):
        store = PerfStore(tmp_path / "perf.jsonl")
        record = bench(
            "toy", {"k": 1}, lambda: {"events_processed": 10},
            store=store, warmup=0, repeat=1,
        )
        assert record.scenario_hash == scenario_hash("toy", {"k": 1})
        assert record.git_sha == current_git_sha()
        assert record.recorded_unix > 0
        (loaded,) = store.load()
        assert loaded.scenario_hash == record.scenario_hash
        assert "wall_time_s" in loaded.metrics


class TestRegress:
    def history(self, *walls, **kw):
        return [rec(wall=w, git_sha=f"sha{i}", **kw)
                for i, w in enumerate(walls)]

    def wall_verdict(self, verdicts):
        (v,) = [v for v in verdicts if v.metric == "wall_time_s"]
        return v

    def test_directions(self):
        assert metric_direction("wall_time_s") == "lower"
        assert metric_direction("tracemalloc_peak_bytes") == "lower"
        assert metric_direction("events_per_s") == "higher"

    def test_ok_within_tolerance(self):
        v = self.wall_verdict(
            compare_record(rec(wall=1.1), self.history(1.0, 1.0, 1.0))
        )
        assert v.status == "ok" and not v.failed

    def test_2x_slowdown_is_a_regression(self):
        v = self.wall_verdict(
            compare_record(rec(wall=2.0), self.history(1.0, 1.0, 1.0))
        )
        assert v.status == "regression" and v.failed
        assert v.ratio == pytest.approx(2.0)

    def test_higher_is_better_direction(self):
        history = self.history(1.0, events_per_s=1000.0)
        v = [
            v for v in compare_record(
                rec(wall=1.0, events_per_s=400.0), history
            )
            if v.metric == "events_per_s"
        ][0]
        assert v.status == "regression"
        improved = [
            v for v in compare_record(
                rec(wall=1.0, events_per_s=2000.0), history
            )
            if v.metric == "events_per_s"
        ][0]
        assert improved.status == "improvement" and not improved.failed

    def test_missing_baseline_is_not_a_failure(self):
        verdicts = compare_record(rec(wall=1.0), [])
        assert all(v.status == "no-baseline" for v in verdicts)
        assert not any(v.failed for v in verdicts)

    def test_single_sample_history_still_judges(self):
        v = self.wall_verdict(
            compare_record(rec(wall=2.0), self.history(1.0))
        )
        assert v.status == "regression" and v.n_baseline == 1

    def test_rolling_median_ignores_one_outlier(self):
        # one noisy 10s baseline among honest 1s ones must not move the bar
        v = self.wall_verdict(
            compare_record(rec(wall=1.1), self.history(1.0, 10.0, 1.0, 1.0))
        )
        assert v.status == "ok" and v.baseline == 1.0

    def test_nan_current_reports_not_finite(self):
        v = self.wall_verdict(
            compare_record(rec(wall=float("nan")), self.history(1.0))
        )
        assert v.status == "not-finite" and not v.failed

    def test_nonfinite_baselines_are_dropped_from_the_window(self):
        history = self.history(1.0, float("inf"), float("nan"), 1.0)
        v = self.wall_verdict(compare_record(rec(wall=1.05), history))
        assert v.status == "ok" and v.n_baseline == 2

    def test_machine_mismatch_skips_with_warning_not_crash(self):
        history = self.history(1.0, 1.0, machine=MACHINE_B)
        verdicts = compare_record(rec(wall=9.0, machine=MACHINE_A), history)
        assert all(v.status == "machine-mismatch" for v in verdicts)
        assert not any(v.failed for v in verdicts)
        assert "different machine" in verdicts[0].note

    def test_ignore_machine_judges_anyway(self):
        history = self.history(1.0, 1.0, machine=MACHINE_B)
        v = self.wall_verdict(
            compare_record(
                rec(wall=9.0, machine=MACHINE_A), history,
                ignore_machine=True,
            )
        )
        assert v.status == "regression"

    def test_mixed_machines_prefer_same_fingerprint(self):
        history = self.history(9.0, 9.0, machine=MACHINE_B) + self.history(
            1.0, 1.0, machine=MACHINE_A
        )
        v = self.wall_verdict(
            compare_record(rec(wall=1.0, machine=MACHINE_A), history)
        )
        assert v.status == "ok" and v.baseline == 1.0

    def test_compare_latest_judges_only_the_newest_per_scenario(self):
        current = self.history(5.0, 1.0)  # older slow record superseded
        verdicts = compare_latest(current, self.history(1.0, 1.0))
        assert not any(v.failed for v in verdicts)

    def test_render_verdicts_tally(self):
        verdicts = compare_record(rec(wall=2.0), self.history(1.0))
        text = render_verdicts(verdicts)
        assert "FAIL" in text and "regression=1" in text
        ok_text = render_verdicts(compare_record(rec(1.0), self.history(1.0)))
        assert ok_text.splitlines()[-1].startswith("PASS")


class TestPerfCli:
    def run_cli(self, argv, capsys):
        from repro.experiments.cli import main

        code = main(argv)
        return code, capsys.readouterr().out

    def seed_baseline(self, path, wall=1.0, n=3):
        store = PerfStore(path)
        fp = machine_fingerprint()
        for i in range(n):
            store.append(
                rec(wall=wall, events_per_s=1000.0 / wall,
                    machine=fp, git_sha=f"base{i}")
            )
        return store

    def test_injected_2x_slowdown_fails_and_names_the_regression(
        self, tmp_path, capsys
    ):
        baseline = tmp_path / "baseline.jsonl"
        history = tmp_path / "history.jsonl"
        self.seed_baseline(baseline, wall=1.0)
        # the deliberately injected 2x slowdown
        PerfStore(history).append(
            rec(wall=2.0, events_per_s=500.0, machine=machine_fingerprint())
        )
        code, out = self.run_cli(
            ["perf", "compare", "--history", str(history),
             "--baseline", str(baseline)],
            capsys,
        )
        assert code == 1
        assert "regression" in out
        assert "sim_core" in out and "wall_time_s" in out
        assert "FAIL" in out

    def test_identical_rerun_passes_clean(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.jsonl"
        history = tmp_path / "history.jsonl"
        self.seed_baseline(baseline, wall=1.0)
        PerfStore(history).append(
            rec(wall=1.0, events_per_s=1000.0, machine=machine_fingerprint())
        )
        for _ in range(2):  # identical re-runs stay green
            code, out = self.run_cli(
                ["perf", "compare", "--history", str(history),
                 "--baseline", str(baseline)],
                capsys,
            )
            assert code == 0
            assert "PASS" in out

    def test_machine_mismatch_warns_but_exits_zero(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.jsonl"
        history = tmp_path / "history.jsonl"
        store = PerfStore(baseline)
        store.append(rec(wall=1.0, machine=MACHINE_B))
        PerfStore(history).append(rec(wall=9.0, machine=MACHINE_A))
        code, out = self.run_cli(
            ["perf", "compare", "--history", str(history),
             "--baseline", str(baseline)],
            capsys,
        )
        assert code == 0
        assert "machine-mismatch" in out
        # and --ignore-machine turns the same data into a failure
        code, out = self.run_cli(
            ["perf", "compare", "--history", str(history),
             "--baseline", str(baseline), "--ignore-machine"],
            capsys,
        )
        assert code == 1

    def test_perf_run_records_and_compares_end_to_end(
        self, tmp_path, capsys
    ):
        history = tmp_path / "history.jsonl"
        argv = [
            "perf", "run", "--scenario", "sim_core",
            "-p", "n_jobs=120", "--warmup", "0", "--repeat", "1",
            "--history", str(history),
        ]
        code, out = self.run_cli(argv, capsys)
        assert code == 0 and "sim_core" in out
        (record,) = PerfStore(history).load()
        assert record.metrics["events_processed"] > 0
        assert record.scenario_hash == scenario_hash(
            "sim_core", {"n_jobs": 120}
        )
        # compare a fresh identical run against it: clean pass
        code, out = self.run_cli(argv, capsys)
        assert code == 0
        code, out = self.run_cli(
            ["perf", "compare", "--history", str(history),
             "--baseline", str(history)],
            capsys,
        )
        assert code == 0 and "PASS" in out

    def test_perf_record_guards_existing_baseline(
        self, tmp_path, capsys, monkeypatch
    ):
        baseline = tmp_path / "smoke.jsonl"
        monkeypatch.delenv("REPRO_UPDATE_BASELINE", raising=False)
        argv = [
            "perf", "record", "--scenario", "sim_core",
            "-p", "n_jobs=60", "--warmup", "0", "--repeat", "1",
            "--baseline", str(baseline),
        ]
        code, _out = self.run_cli(argv, capsys)
        assert code == 0 and len(PerfStore(baseline).load()) == 1
        with pytest.raises(SystemExit, match="REPRO_UPDATE_BASELINE"):
            self.run_cli(argv, capsys)
        monkeypatch.setenv("REPRO_UPDATE_BASELINE", "1")
        code, _out = self.run_cli(argv, capsys)
        assert code == 0 and len(PerfStore(baseline).load()) == 2

    def test_perf_report_html_and_text(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        self.seed_baseline(history, wall=1.0)
        out_html = tmp_path / "trend.html"
        code, out = self.run_cli(
            ["perf", "report", "--history", str(history),
             "--html", str(out_html)],
            capsys,
        )
        assert code == 0 and out_html.exists()
        doc = out_html.read_text(encoding="utf-8")
        assert "<svg" in doc and "https://" not in doc
        code, out = self.run_cli(
            ["perf", "report", "--history", str(history)], capsys
        )
        assert code == 0 and "sim_core" in out


def golden_history():
    """A fixed two-scenario history: byte-stable inputs only."""
    records = []
    for i, wall in enumerate((1.00, 1.05, 0.95, 1.02, 2.10)):
        records.append(
            PerfRecord(
                scenario="sim_core",
                params={"n_jobs": 1000},
                metrics={
                    "wall_time_s": wall,
                    "events_per_s": 2000.0 / wall,
                    "tracemalloc_peak_bytes": 6.0e6 + i * 1e5,
                    "schedule_passes": 1000.0,
                },
                machine=dict(MACHINE_A),
                git_sha=f"c00000{i}",
                recorded_unix=0.0,
            )
        )
    for i, wall in enumerate((0.40, float("nan"), 0.42)):
        records.append(
            PerfRecord(
                scenario="html_report",
                params={"n_records": 2000},
                metrics={"wall_time_s": wall, "html_bytes": 180000.0},
                machine=dict(MACHINE_A),
                git_sha=f"d00000{i}",
                recorded_unix=0.0,
            )
        )
    return records


class TestTrendDashboard:
    def render(self):
        records = golden_history()
        verdicts = compare_latest(records, records[:-1])
        return render_perf_html(records, verdicts=verdicts)

    def test_matches_golden(self):
        content = self.render()
        path = GOLDEN_DIR / "perf_trend.html"
        if os.environ.get("REPRO_UPDATE_GOLDEN"):
            path.parent.mkdir(exist_ok=True)
            path.write_text(content, encoding="utf-8")
            pytest.skip("golden file perf_trend.html regenerated")
        assert path.exists(), (
            "golden file perf_trend.html missing — run with "
            "REPRO_UPDATE_GOLDEN=1"
        )
        assert content == path.read_text(encoding="utf-8"), (
            "perf_trend.html drifted from the golden bytes; if the "
            "rendering change is intentional, regenerate with "
            "REPRO_UPDATE_GOLDEN=1 and review the diff"
        )

    def test_render_is_stable_and_self_contained(self):
        doc = self.render()
        assert doc == self.render()
        assert "https://" not in doc and "http://" not in doc.replace(
            "http://www.w3.org", ""
        )
        assert "sim_core" in doc and "html_report" in doc
        # commit shas label the x axis; the regression shows up red
        assert "c000004" in doc and "delta-reg" in doc

    def test_empty_history_renders(self):
        doc = render_perf_html([])
        assert "empty history" in doc


class TestMemoryProbe:
    def test_null_probe_is_free_and_shared(self):
        from repro.obs import DISABLED, get_obs
        from repro.obs.memory import NULL_MEMORY_PROBE

        assert DISABLED.memory is NULL_MEMORY_PROBE
        assert get_obs().memory.sample() == {}
        s1 = NULL_MEMORY_PROBE.section("a")
        s2 = NULL_MEMORY_PROBE.section("b")
        assert s1 is s2  # one shared no-op context manager
        with s1:
            pass

    def test_enabled_obs_memory_sections_and_gauges(self):
        from repro.obs import enabled_obs

        assert not tracemalloc.is_tracing()
        with enabled_obs(memory=True) as obs:
            assert obs.memory.enabled and obs.memory.tracing
            with obs.memory.section("test.blob"):
                blob = [0] * 30_000
            assert len(blob) == 30_000
            snap = obs.snapshot()
        assert not tracemalloc.is_tracing()  # state restored on exit
        gauges = snap["gauges"]
        assert gauges["process.rss_bytes"] > 0
        assert gauges["gc.collections"] >= 0
        assert gauges["mem.tracemalloc.peak_bytes"] > 0
        hist = snap["histograms"]["mem.section.test.blob.peak_bytes"]
        assert hist["count"] == 1 and hist["max"] >= 30_000 * 8 * 0.9

    def test_enabled_obs_without_memory_keeps_null_probe(self):
        from repro.obs import enabled_obs
        from repro.obs.memory import NULL_MEMORY_PROBE

        with enabled_obs() as obs:
            assert obs.memory is NULL_MEMORY_PROBE
            assert not tracemalloc.is_tracing()

    def test_probe_does_not_stop_foreign_tracemalloc(self):
        from repro.obs.memory import MemoryProbe
        from repro.obs.registry import MetricsRegistry

        tracemalloc.start()
        try:
            probe = MemoryProbe(MetricsRegistry())
            probe.close()  # not the owner: must leave tracing on
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()

    def test_sim_run_has_a_memory_section(self):
        from repro.obs import enabled_obs
        from repro.perf.scenarios import make_sim_core

        with enabled_obs(memory=True) as obs:
            make_sim_core({"n_jobs": 60})()
            snap = obs.snapshot()
        assert "mem.section.sim.run.peak_bytes" in snap["histograms"]

    def test_trace_export_carries_process_gauges(self):
        from repro.obs import enabled_obs
        from repro.obs.export import render_summary, trace_data

        with enabled_obs() as obs:
            obs.counter("demo.hits").inc()
            doc = trace_data(obs)
        gauges = doc["otherData"]["metrics"]["gauges"]
        assert gauges["process.rss_bytes"] > 0
        assert "gc.collections" in gauges
        summary = render_summary(doc)
        assert "Gauges" in summary and "process.rss_bytes" in summary
