"""Distributed campaign execution: leases, workers, merging, fleets.

The acceptance properties under test:

* concurrent workers never double-execute a cell (lease exclusivity plus
  the post-acquire completion re-check);
* a worker killed mid-cell strands nothing — its lease expires after the
  TTL and another worker reclaims the cell;
* ``merge_shards`` is idempotent under re-merge and deterministic under
  conflicting shards, with ok-beats-error healing;
* a fleet of local-subprocess workers produces a merged ``results.jsonl``
  cell-for-cell equal to a single-process ``run_campaign``.
"""

import json
import os
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignSpec,
    CellRecord,
    LeaseBoard,
    LocalSubprocessBackend,
    ResultStore,
    SSHBackend,
    merge_shards,
    run_campaign,
    run_fleet,
    run_worker,
)
from repro.campaign.distrib.lease import Lease
from repro.campaign.distrib.worker import known_keys, shard_path
from repro.metrics.summary import deterministic_view
from repro.util.errors import ConfigurationError

#: 2 mechanisms x 2 seeds on a tiny machine — the same grid the campaign
#: tests use, so cells take a fraction of a second each
SMALL = {
    "name": "small",
    "days": 2,
    "target_load": 0.6,
    "system_size": 512,
    "mechanism": [None, "N&PAA"],
    "seeds": [1, 2],
}


def small_spec(**overrides) -> CampaignSpec:
    return CampaignSpec.from_dict({**SMALL, **overrides})


def write_spec(directory) -> CampaignSpec:
    spec = small_spec()
    store = ResultStore(directory)
    store.write_spec(spec.to_dict())
    return spec


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestLeaseBoard:
    def test_acquire_is_exclusive(self, tmp_path):
        a = LeaseBoard(tmp_path, owner="a", ttl_s=60)
        b = LeaseBoard(tmp_path, owner="b", ttl_s=60)
        assert a.acquire("cell1")
        assert not b.acquire("cell1")
        assert b.acquire("cell2")  # different cell is free

    def test_release_allows_reacquire(self, tmp_path):
        a = LeaseBoard(tmp_path, owner="a")
        b = LeaseBoard(tmp_path, owner="b")
        assert a.acquire("k")
        assert a.release("k")
        assert b.acquire("k")
        # a no longer holds it
        assert not a.release("k")
        assert not a.heartbeat("k")

    def test_expired_lease_is_reclaimed(self, tmp_path):
        clock = FakeClock()
        a = LeaseBoard(tmp_path, owner="a", ttl_s=10, clock=clock)
        b = LeaseBoard(tmp_path, owner="b", ttl_s=10, clock=clock)
        assert a.acquire("k")
        clock.advance(9)
        assert not b.acquire("k")  # still live
        clock.advance(2)  # heartbeat now 11s old > ttl
        assert b.acquire("k")
        # the evicted owner notices on its next heartbeat
        assert not a.heartbeat("k")

    def test_heartbeat_extends_lease(self, tmp_path):
        clock = FakeClock()
        a = LeaseBoard(tmp_path, owner="a", ttl_s=10, clock=clock)
        b = LeaseBoard(tmp_path, owner="b", ttl_s=10, clock=clock)
        assert a.acquire("k")
        for _ in range(5):
            clock.advance(8)
            assert a.heartbeat("k")
            assert not b.acquire("k")

    def test_evict_does_not_steal_freshly_reacquired_lease(self, tmp_path):
        """Two contenders race to evict the same expired lease; the loser
        must not evict the winner's fresh lease (at-most-once while
        heartbeating)."""
        clock = FakeClock()
        a = LeaseBoard(tmp_path, owner="a", ttl_s=10, clock=clock)
        b = LeaseBoard(tmp_path, owner="b", ttl_s=10, clock=clock)
        dead = LeaseBoard(tmp_path, owner="dead", ttl_s=10, clock=clock)
        assert dead.acquire("k")
        clock.advance(11)
        # b observed the expired lease, then stalled; a evicts + acquires
        assert a.acquire("k")
        # b resumes its eviction attempt against a's now-live lease
        b._evict(b.path("k"))
        assert not b.acquire("k")
        assert a.heartbeat("k")  # a still owns the cell

    def test_corrupt_lease_is_reclaimed(self, tmp_path):
        b = LeaseBoard(tmp_path, owner="b", ttl_s=10)
        b.directory.mkdir(parents=True)
        (b.directory / "k.json").write_text("{torn", encoding="utf-8")
        assert b.acquire("k")

    def test_concurrent_acquire_single_winner(self, tmp_path):
        keys = [f"cell{i}" for i in range(20)]
        boards = [
            LeaseBoard(tmp_path, owner=f"w{i}", ttl_s=60) for i in range(8)
        ]

        def claim(board):
            return {key for key in keys if board.acquire(key)}

        with ThreadPoolExecutor(len(boards)) as pool:
            wins = list(pool.map(claim, boards))
        claimed = [key for w in wins for key in w]
        # every key claimed exactly once across all contenders
        assert sorted(claimed) == sorted(keys)

    def test_active_lists_leases(self, tmp_path):
        clock = FakeClock()
        a = LeaseBoard(tmp_path, owner="a", ttl_s=10, clock=clock)
        a.acquire("k1")
        a.acquire("k2")
        leases = a.active()
        assert [l.key for l in leases] == ["k1", "k2"]
        assert all(isinstance(l, Lease) for l in leases)

    def test_prune_completed_and_debris(self, tmp_path):
        clock = FakeClock()
        a = LeaseBoard(tmp_path, owner="a", ttl_s=10, clock=clock)
        a.acquire("done-cell")
        a.acquire("live-cell")
        old = a.directory / "k.json.evicted-dead"
        old.write_text("{torn")
        os.utime(old, (clock() - 600, clock() - 600))  # long-dead debris
        fresh = a.directory / "x.json.new-inflight"
        fresh.write_text("")  # a create staged right now
        os.utime(fresh, (clock() - 1, clock() - 1))
        assert a.prune(["done-cell"]) == 2
        assert [l.key for l in a.active()] == ["live-cell"]
        assert fresh.exists()  # in-flight temp survives pruning


class TestWorker:
    def test_requires_spec(self, tmp_path):
        with pytest.raises(ConfigurationError, match="campaign"):
            run_worker(tmp_path / "nowhere", shard="w0")

    def test_single_worker_completes_grid(self, tmp_path):
        d = tmp_path / "c"
        spec = write_spec(d)
        summary = run_worker(d, shard="w0", ttl_s=30, poll_s=0.05)
        assert summary.n_executed == 4 and summary.n_failed == 0
        assert len(known_keys(d)) == 4
        stats = merge_shards(d)
        assert stats.n_new == 4
        # merged results equal a fresh single-process run, cell for cell
        # (modulo wall-clock decision-latency measurements)
        solo = run_campaign(spec, directory=tmp_path / "solo")
        merged = ResultStore(d)
        for record in solo.records:
            assert deterministic_view(
                merged.get(record.key).summary
            ) == deterministic_view(record.summary)

    def test_worker_skips_cells_already_in_results(self, tmp_path):
        d = tmp_path / "c"
        spec = small_spec()
        run_campaign(spec, directory=d)
        summary = run_worker(d, shard="w0", poll_s=0.05)
        assert summary.n_executed == 0

    def test_two_concurrent_workers_never_double_execute(self, tmp_path):
        d = tmp_path / "c"
        write_spec(d)
        with ThreadPoolExecutor(2) as pool:
            futures = [
                pool.submit(
                    run_worker, d, shard=f"w{i}", ttl_s=30, poll_s=0.05
                )
                for i in range(2)
            ]
            summaries = [f.result(timeout=300) for f in futures]
        # each cell executed exactly once across the fleet
        assert sum(s.n_executed for s in summaries) == 4
        n_shard_records = sum(
            1
            for i in range(2)
            for _ in (shard_path(d, f"w{i}").read_text().splitlines())
            if _
        )
        assert n_shard_records == 4
        assert merge_shards(d).n_new == 4

    def test_stale_lease_reclaimed_and_grid_completes(self, tmp_path):
        """A lease left by a dead worker never strands its cell."""
        d = tmp_path / "c"
        spec = write_spec(d)
        key = spec.expand()[0].key()
        dead = LeaseBoard(d, owner="dead-worker", ttl_s=0.2)
        assert dead.acquire(key)
        # the worker waits out the dead lease's TTL, then reclaims
        summary = run_worker(d, shard="w0", ttl_s=0.2, poll_s=0.05)
        assert summary.n_executed == 4
        merge_shards(d)
        store = ResultStore(d)
        assert len(store) == 4 and not store.failed_keys()

    def test_max_cells_stops_early(self, tmp_path):
        d = tmp_path / "c"
        write_spec(d)
        summary = run_worker(d, shard="w0", max_cells=1, poll_s=0.05)
        assert summary.n_executed == 1
        assert len(known_keys(d)) == 1

    def test_no_wait_returns_when_all_leased(self, tmp_path):
        d = tmp_path / "c"
        spec = write_spec(d)
        other = LeaseBoard(d, owner="other", ttl_s=300)
        for cell in spec.expand():
            assert other.acquire(cell.key())
        summary = run_worker(d, shard="w0", wait=False, poll_s=0.05)
        assert summary.n_executed == 0


class TestMerge:
    def _record(self, key, status="ok", turnaround=1.0):
        return CellRecord(
            key=key,
            config={"seed": 1},
            status=status,
            payload={"turnaround": turnaround},
            error=None if status == "ok" else "boom",
        )

    def _shard(self, directory, name, records):
        store = ResultStore(directory, results_file=f"shards/{name}.jsonl")
        for record in records:
            store.put(record)

    def test_merge_then_remerge_is_noop(self, tmp_path):
        d = tmp_path / "c"
        self._shard(d, "a", [self._record("k1"), self._record("k2")])
        first = merge_shards(d)
        assert first.n_new == 2 and first.changed
        before = (d / "results.jsonl").read_bytes()
        # warm re-merge: the index remembers the shard offsets, so the
        # pass examines nothing at all
        second = merge_shards(d)
        assert not second.changed and second.n_shard_records == 0
        assert (d / "results.jsonl").read_bytes() == before
        # cold re-merge (fresh index): every record re-examined, all
        # deduped, file untouched
        from repro.campaign.progress import ProgressIndex

        cold = merge_shards(
            d, index=ProgressIndex(d, name="merge-cold")
        )
        assert not cold.changed and cold.n_duplicate == 2
        assert (d / "results.jsonl").read_bytes() == before

    def test_ok_beats_error_across_shards(self, tmp_path):
        d = tmp_path / "c"
        self._shard(d, "a", [self._record("k1", status="error")])
        self._shard(d, "b", [self._record("k1", status="ok")])
        stats = merge_shards(d)
        assert stats.n_new == 1 and stats.n_upgraded == 1
        assert ResultStore(d).get("k1").ok

    def test_ok_in_results_not_downgraded(self, tmp_path):
        d = tmp_path / "c"
        ResultStore(d).put(self._record("k1", status="ok"))
        self._shard(d, "a", [self._record("k1", status="error")])
        stats = merge_shards(d)
        assert stats.n_duplicate == 1 and not stats.changed
        assert ResultStore(d).get("k1").ok

    def test_conflicting_ok_shards_first_name_wins(self, tmp_path):
        d = tmp_path / "c"
        self._shard(d, "zz", [self._record("k1", turnaround=9.0)])
        self._shard(d, "aa", [self._record("k1", turnaround=3.0)])
        merge_shards(d)
        assert ResultStore(d).get("k1").payload["turnaround"] == 3.0

    def test_merge_prunes_leases_of_merged_cells(self, tmp_path):
        d = tmp_path / "c"
        self._shard(d, "a", [self._record("k1")])
        board = LeaseBoard(d, owner="w")
        board.acquire("k1")
        board.acquire("other")
        stats = merge_shards(d)
        assert stats.n_leases_pruned == 1
        assert [l.key for l in board.active()] == ["other"]

    def test_merge_empty_dir(self, tmp_path):
        stats = merge_shards(tmp_path / "nothing")
        assert stats.n_shards == 0 and not stats.changed


class TestBackends:
    def test_ssh_command_construction(self):
        backend = SSHBackend(
            ["node1"],
            python="python3.11",
            remote_dir="/shared/c",
            pythonpath="/opt/repro/src",
        )
        cmd = backend.command("node1", "s0", "/local/c", 60.0, 1.0)
        assert cmd[:4] == ["ssh", "-o", "BatchMode=yes", "node1"]
        remote = cmd[-1]
        assert "PYTHONPATH=/opt/repro/src" in remote
        assert "python3.11 -m repro.experiments.cli campaign worker" in remote
        assert "--dir /shared/c" in remote and "--shard s0" in remote

    def test_ssh_backend_requires_hosts(self):
        with pytest.raises(ConfigurationError):
            SSHBackend([])

    def test_local_backend_requires_workers(self):
        with pytest.raises(ConfigurationError):
            LocalSubprocessBackend(workers=0)

    def test_fleet_e2e_two_local_workers_match_single_process(
        self, tmp_path
    ):
        """The headline acceptance test: a 2-worker local-subprocess
        fleet produces results.jsonl cell-for-cell equal to a plain
        single-process run, and the merge is idempotent."""
        spec = small_spec()
        fleet = run_fleet(
            spec,
            directory=tmp_path / "fleet",
            backend=LocalSubprocessBackend(workers=2),
            ttl_s=30,
            poll_s=0.1,
        )
        assert fleet.ok, fleet.exit_codes
        assert fleet.run.n_failed == 0
        assert fleet.merge.n_new == 4
        solo = run_campaign(spec, directory=tmp_path / "solo")
        merged = {
            r.key: deterministic_view(r.summary) for r in fleet.run.records
        }
        for record in solo.records:
            assert merged[record.key] == deterministic_view(record.summary)
        assert len(merged) == len(solo.records) == 4
        # re-merge is a no-op
        again = merge_shards(tmp_path / "fleet")
        assert not again.changed

    def test_fleet_reuses_cached_cells(self, tmp_path):
        d = tmp_path / "c"
        spec = small_spec()
        run_campaign(spec, directory=d)
        fleet = run_fleet(
            spec,
            directory=d,
            backend=LocalSubprocessBackend(workers=2),
            ttl_s=30,
            poll_s=0.1,
        )
        assert fleet.ok
        assert fleet.run.n_cached == 4
        assert fleet.merge.n_new == 0


class TestKilledWorkerRecovery:
    def test_sigkilled_worker_leaves_no_stranded_cells(self, tmp_path):
        """Kill a worker subprocess, then finish the grid with a second
        worker: every cell present exactly once after merge."""
        d = tmp_path / "c"
        write_spec(d)
        backend = LocalSubprocessBackend(workers=1)
        (handle,) = backend.launch(str(d), ttl_s=1.0, poll_s=0.1)
        try:
            deadline = time.time() + 60
            leases = Path(d) / "leases"
            # wait until it is actually working a cell, then kill -9
            while time.time() < deadline:
                if leases.exists() and list(leases.glob("*.json")):
                    break
                if handle.proc.poll() is not None:
                    break  # finished before we could kill: still fine
                time.sleep(0.02)
            if handle.proc.poll() is None:
                os.kill(handle.proc.pid, signal.SIGKILL)
        finally:
            handle.proc.wait()
        # a second worker must complete the remainder, waiting out any
        # stranded lease (ttl 1s)
        summary = run_worker(d, shard="rescue", ttl_s=1.0, poll_s=0.1)
        merge_shards(d)
        store = ResultStore(d)
        assert len(store) == 4
        assert not store.failed_keys()
        # exactly-once in the merged store: 4 unique keys, and the merged
        # file holds exactly one line per key
        lines = (d / "results.jsonl").read_text().strip().splitlines()
        assert len(lines) == 4

    def test_mid_cell_death_simulated_by_stale_lease(self, tmp_path):
        """The deterministic version: a lease whose owner never returns
        is reclaimed after TTL and the cell re-runs elsewhere."""
        d = tmp_path / "c"
        spec = write_spec(d)
        victim = spec.expand()[2].key()
        dead = LeaseBoard(d, owner="dead", ttl_s=0.3)
        assert dead.acquire(victim)
        start = time.time()
        summary = run_worker(d, shard="w0", ttl_s=0.3, poll_s=0.05)
        assert summary.n_executed == 4
        # it had to wait for the stale lease to expire, not skip the cell
        assert time.time() - start >= 0.3


class TestWorkerCli:
    def test_worker_and_merge_cli(self, tmp_path, capsys):
        from repro.experiments.cli import main as cli_main

        d = str(tmp_path / "c")
        write_spec(d)
        assert (
            cli_main(
                [
                    "campaign", "worker", "--dir", d, "--shard", "w0",
                    "--ttl", "30", "--poll", "0.05",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "4 cells executed" in out
        assert cli_main(["campaign", "merge", "--dir", d]) == 0
        assert "4 new" in capsys.readouterr().out
        assert cli_main(["campaign", "status", "--dir", d]) == 0
        assert "4/4 cells done" in capsys.readouterr().out

    def test_worker_exits_nonzero_on_failed_cells(self, tmp_path, capsys):
        from repro.experiments.cli import main as cli_main

        d = tmp_path / "c"
        bad = small_spec(spec_overrides={"min_size": 100_000})
        ResultStore(d).write_spec(bad.to_dict())
        code = cli_main(
            [
                "campaign", "worker", "--dir", str(d), "--shard", "w0",
                "--poll", "0.05",
            ]
        )
        assert code == 1
        assert "4 failed" in capsys.readouterr().out

    def test_status_shows_unmerged_shards_and_leases(self, tmp_path, capsys):
        from repro.experiments.cli import main as cli_main

        d = str(tmp_path / "c")
        spec = write_spec(d)
        run_worker(d, shard="w0", poll_s=0.05)
        LeaseBoard(d, owner="w1", ttl_s=600).acquire("deadbeef")
        assert cli_main(["campaign", "status", "--dir", d]) == 0
        out = capsys.readouterr().out
        assert "shard w0: 4 records" in out
        assert "lease deadbeef" in out and "live" in out
