"""Unit + property tests for the rigid checkpoint timeline math.

This is the most delicate arithmetic in the simulator: the piecewise
setup -> compute -> checkpoint wall-clock layout, rollback to the last
completed checkpoint, and the node-second accounting identity.
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.jobs.job import Job, JobType
from repro.jobs.rigid_exec import RigidExecution, RigidTimeline
from repro.util.errors import InvariantViolation


def tl(start=0.0, setup=100.0, base=0.0, work=10000.0, interval=3000.0, cost=600.0):
    return RigidTimeline(
        start=start,
        setup=setup,
        base_work=base,
        total_work=work,
        interval=interval,
        cost=cost,
    )


class TestBasicLayout:
    def test_finish_time_no_checkpoints(self):
        t = tl(interval=math.inf)
        assert t.finish_time() == 0.0 + 100.0 + 10000.0

    def test_num_checkpoints(self):
        # work 10000, interval 3000: marks at 3000, 6000, 9000 -> 3
        assert tl().num_checkpoints == 3

    def test_num_checkpoints_exact_multiple(self):
        # work 9000, interval 3000: marks at 3000, 6000 (not 9000) -> 2
        assert tl(work=9000.0).num_checkpoints == 2

    def test_num_checkpoints_resumed(self):
        # resumed at base 6000: marks at 9000 -> 1
        assert tl(base=6000.0).num_checkpoints == 1

    def test_finish_time_with_checkpoints(self):
        t = tl()
        assert t.finish_time() == 100.0 + 10000.0 + 3 * 600.0

    def test_checkpoint_completion_times(self):
        t = tl()
        assert t.checkpoint_completion_time(1) == 100.0 + 3000.0 + 600.0
        assert t.checkpoint_completion_time(2) == 100.0 + 2 * 3600.0
        with pytest.raises(ValueError):
            t.checkpoint_completion_time(4)
        with pytest.raises(ValueError):
            t.checkpoint_completion_time(0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            tl(work=0.0)
        with pytest.raises(ValueError):
            tl(base=10000.0)  # base == total
        with pytest.raises(ValueError):
            tl(interval=0.0)
        with pytest.raises(ValueError):
            tl(cost=-1.0)
        with pytest.raises(ValueError):
            tl(setup=-1.0)


class TestProgressAndRetained:
    def test_during_setup(self):
        t = tl()
        assert t.progress_at(50.0) == 0.0
        assert t.retained_at(50.0) == 0.0

    def test_mid_first_chunk(self):
        t = tl()
        # 100 setup + 1000 compute
        assert t.progress_at(1100.0) == pytest.approx(1000.0)
        assert t.retained_at(1100.0) == 0.0  # no checkpoint yet

    def test_during_first_checkpoint(self):
        t = tl()
        # checkpoint 1 spans [3100, 3700)
        assert t.progress_at(3400.0) == pytest.approx(3000.0)
        assert t.completed_checkpoints_at(3400.0) == 0
        assert t.retained_at(3400.0) == 0.0

    def test_at_first_checkpoint_completion(self):
        t = tl()
        done = t.checkpoint_completion_time(1)
        assert t.completed_checkpoints_at(done) == 1
        assert t.retained_at(done) == pytest.approx(3000.0)

    def test_second_chunk(self):
        t = tl()
        # after ckpt1 at 3700, +500 compute
        assert t.progress_at(4200.0) == pytest.approx(3500.0)
        assert t.retained_at(4200.0) == pytest.approx(3000.0)

    def test_at_finish(self):
        t = tl()
        assert t.progress_at(t.finish_time()) == pytest.approx(10000.0)
        assert t.retained_at(t.finish_time()) == pytest.approx(10000.0)

    def test_resumed_base_offsets(self):
        t = tl(base=6000.0)
        assert t.remaining_work == 4000.0
        done = t.checkpoint_completion_time(1)
        assert t.retained_at(done) == pytest.approx(9000.0)

    def test_last_checkpoint_before(self):
        t = tl()
        c1 = t.checkpoint_completion_time(1)
        assert t.last_checkpoint_completion_at_or_before(c1 - 1) is None
        assert t.last_checkpoint_completion_at_or_before(c1) == pytest.approx(c1)
        c3 = t.checkpoint_completion_time(3)
        assert t.last_checkpoint_completion_at_or_before(1e9) == pytest.approx(c3)

    def test_next_checkpoint_after(self):
        t = tl()
        c1 = t.checkpoint_completion_time(1)
        assert t.next_checkpoint_completion_after(0.0) == pytest.approx(c1)
        c3 = t.checkpoint_completion_time(3)
        assert t.next_checkpoint_completion_after(c3) is None


class TestWallForWork:
    def test_matches_finish_time(self):
        t = tl()
        assert t.start + t.wall_for_work(t.total_work) == pytest.approx(
            t.finish_time()
        )

    def test_estimate_never_undershoots(self):
        t = tl()
        assert t.wall_for_work(12000.0) >= t.wall_for_work(10000.0)

    def test_below_base_rejected(self):
        t = tl(base=5000.0)
        with pytest.raises(ValueError):
            t.wall_for_work(4000.0)


class TestAccounting:
    def test_identity_at_many_instants(self):
        t = tl()
        for wall in [0, 50, 100, 1000, 3100, 3400, 3700, 8000, t.finish_time()]:
            acc = t.accounting_until(wall, nodes=7)
            acc.validate()  # raises on mismatch

    def test_full_segment(self):
        t = tl()
        acc = t.accounting_until(t.finish_time(), nodes=2)
        assert acc.retained == pytest.approx(2 * 10000.0)
        assert acc.lost == pytest.approx(0.0)
        assert acc.setup == pytest.approx(2 * 100.0)
        assert acc.checkpoint == pytest.approx(2 * 3 * 600.0)

    def test_preempt_mid_chunk_loses_tail(self):
        t = tl()
        acc = t.accounting_until(4200.0, nodes=1)
        assert acc.retained == pytest.approx(3000.0)
        assert acc.lost == pytest.approx(500.0)


# ----------------------------------------------------------------------
# Property tests
# ----------------------------------------------------------------------
timeline_args = st.tuples(
    st.floats(min_value=0.0, max_value=1e5),  # start
    st.floats(min_value=0.0, max_value=5e3),  # setup
    st.floats(min_value=100.0, max_value=1e5),  # total work
    st.floats(min_value=60.0, max_value=5e4),  # interval
    st.floats(min_value=0.0, max_value=2e3),  # cost
    st.floats(min_value=0.0, max_value=0.99),  # base fraction
)


@settings(max_examples=200, deadline=None)
@given(timeline_args, st.floats(min_value=0.0, max_value=2.0))
def test_timeline_properties(args, frac):
    start, setup, work, interval, cost, base_frac = args
    t = RigidTimeline(
        start=start,
        setup=setup,
        base_work=base_frac * work,
        total_work=work,
        interval=interval,
        cost=cost,
    )
    instant = start + frac * (t.finish_time() - start)
    progress = t.progress_at(instant)
    retained = t.retained_at(instant)
    # retained never exceeds raw progress (beyond base), both bounded by work
    assert retained - t.base_work <= progress + 1e-6
    assert progress <= t.remaining_work + 1e-6
    assert t.base_work - 1e-6 <= retained <= t.total_work + 1e-6
    acc = t.accounting_until(instant, nodes=3)
    acc.validate()


@settings(max_examples=200, deadline=None)
@given(timeline_args, st.floats(min_value=0.01, max_value=0.99))
def test_progress_monotone(args, frac):
    start, setup, work, interval, cost, base_frac = args
    t = RigidTimeline(
        start=start,
        setup=setup,
        base_work=base_frac * work,
        total_work=work,
        interval=interval,
        cost=cost,
    )
    t1 = start + frac * (t.finish_time() - start)
    t2 = t1 + 0.5 * (t.finish_time() - t1)
    assert t.progress_at(t1) <= t.progress_at(t2) + 1e-6
    assert t.retained_at(t1) <= t.retained_at(t2) + 1e-6


def _job(setup=100.0, runtime=10000.0, size=4):
    return Job(
        job_id=1,
        job_type=JobType.RIGID,
        submit_time=0.0,
        size=size,
        runtime=runtime,
        estimate=runtime * 1.5,
        setup_time=setup,
    )


class TestRigidExecution:
    def test_complete_lifecycle(self):
        ex = RigidExecution(_job(), interval=3000.0, cost=600.0)
        ex.start_segment(0.0)
        ft = ex.finish_time()
        acc = ex.complete(ft)
        assert ex.completed_work == 10000.0
        assert acc.retained == pytest.approx(4 * 10000.0)

    def test_preempt_resume_conserves_work(self):
        ex = RigidExecution(_job(), interval=3000.0, cost=600.0)
        ex.start_segment(0.0)
        c2 = ex.timeline.checkpoint_completion_time(2)
        acc1 = ex.preempt(c2 + 100.0)  # mid third chunk: retain 6000
        assert ex.completed_work == pytest.approx(6000.0)
        assert acc1.lost == pytest.approx(4 * 100.0)
        ex.start_segment(20000.0)
        ft = ex.finish_time()
        # remaining 4000 work, one checkpoint at 9000 (mark < 10000)
        assert ft == pytest.approx(20000.0 + 100.0 + 4000.0 + 600.0)
        acc2 = ex.complete(ft)
        total_retained = acc1.retained + acc2.retained
        assert total_retained == pytest.approx(4 * 10000.0)

    def test_preempt_during_setup_retains_nothing(self):
        ex = RigidExecution(_job(), interval=3000.0, cost=600.0)
        ex.start_segment(0.0)
        acc = ex.preempt(50.0)
        assert ex.completed_work == 0.0
        assert acc.setup == pytest.approx(4 * 50.0)
        assert acc.compute == 0.0

    def test_preemption_loss_grows_within_chunk(self):
        ex = RigidExecution(_job(), interval=3000.0, cost=600.0)
        ex.start_segment(0.0)
        early = ex.preemption_loss(200.0)
        later = ex.preemption_loss(2000.0)
        assert later > early

    def test_preemption_loss_resets_at_checkpoint(self):
        ex = RigidExecution(_job(), interval=3000.0, cost=600.0)
        ex.start_segment(0.0)
        c1 = ex.timeline.checkpoint_completion_time(1)
        assert ex.preemption_loss(c1) == pytest.approx(4 * 100.0)  # setup only

    def test_predicted_finish_never_early(self):
        ex = RigidExecution(_job(), interval=3000.0, cost=600.0)
        ex.start_segment(0.0)
        assert ex.predicted_finish() >= ex.finish_time() - 1e-6

    def test_double_start_rejected(self):
        ex = RigidExecution(_job(), interval=3000.0, cost=600.0)
        ex.start_segment(0.0)
        with pytest.raises(InvariantViolation):
            ex.start_segment(1.0)

    def test_ops_require_running(self):
        ex = RigidExecution(_job(), interval=3000.0, cost=600.0)
        with pytest.raises(InvariantViolation):
            ex.finish_time()
        with pytest.raises(InvariantViolation):
            ex.preempt(0.0)
        with pytest.raises(InvariantViolation):
            ex.complete(0.0)

    def test_complete_at_wrong_time_rejected(self):
        ex = RigidExecution(_job(), interval=3000.0, cost=600.0)
        ex.start_segment(0.0)
        with pytest.raises(InvariantViolation):
            ex.complete(ex.finish_time() - 500.0)

    def test_ondemand_mode_no_checkpoints(self):
        ex = RigidExecution(_job(setup=0.0), interval=math.inf, cost=0.0)
        ex.start_segment(0.0)
        assert ex.finish_time() == pytest.approx(10000.0)


@settings(max_examples=100, deadline=None)
@given(
    preempt_fracs=st.lists(
        st.floats(min_value=0.01, max_value=0.99), min_size=0, max_size=4
    ),
    interval=st.floats(min_value=300.0, max_value=20000.0),
    cost=st.floats(min_value=0.0, max_value=1200.0),
    setup=st.floats(min_value=0.0, max_value=1000.0),
)
def test_execution_work_conservation(preempt_fracs, interval, cost, setup):
    """Across arbitrary preempt/resume cycles, total retained node-seconds
    equals the job's work, and per-segment accounting identities hold."""
    job = _job(setup=setup)
    ex = RigidExecution(job, interval=interval, cost=cost)
    t = 0.0
    total_retained = 0.0
    for frac in preempt_fracs:
        ex.start_segment(t)
        ft = ex.finish_time()
        instant = t + frac * (ft - t)
        acc = ex.preempt(instant)
        acc.validate()
        total_retained += acc.retained
        assert acc.retained == pytest.approx(
            (ex.completed_work * job.size) - (total_retained - acc.retained),
            abs=1e-3,
        )
        t = instant + 100.0
    ex.start_segment(t)
    acc = ex.complete(ex.finish_time())
    acc.validate()
    total_retained += acc.retained
    assert total_retained == pytest.approx(job.runtime * job.size, rel=1e-9)
