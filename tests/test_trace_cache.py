"""Tests for the process-wide content-addressed trace cache."""

import os

import pytest

from repro.obs import enabled_obs
from repro.workload.spec import WorkloadSpec
from repro.workload.theta import generate_trace, stream_jobs_from_rows
from repro.workload.trace_cache import (
    TraceCache,
    get_trace_cache,
    reset_trace_cache,
    spec_hash,
)

SWF_TEXT = """\
; Version: 2.2
1  100  5 3600 64  -1 -1 64 7200 -1 1 10 -1 2 -1 -1 -1 -1
2  200  1 1800 128 -1 -1 128 3600 -1 1 11 -1 3 -1 -1 -1 -1
4  400  2 900  32  -1 -1 32 -1   -1 1 12 -1 -1 -1 -1 -1 -1
"""

SPEC = WorkloadSpec(days=0.25, system_size=256, target_load=0.6)


@pytest.fixture()
def swf_path(tmp_path):
    p = tmp_path / "log.swf"
    p.write_text(SWF_TEXT)
    return str(p)


@pytest.fixture(autouse=True)
def fresh_singleton():
    reset_trace_cache()
    yield
    reset_trace_cache()


class TestSwfCache:
    def test_second_lookup_is_a_hit(self, swf_path):
        cache = TraceCache()
        with enabled_obs() as obs:
            first = cache.swf_jobs(swf_path)
            second = cache.swf_jobs(swf_path)
            counters = obs.snapshot()["counters"]
        assert second is first  # shared tuple, parsed once
        assert counters["workload.trace_cache.misses"] == 1
        assert counters["workload.trace_cache.hits"] == 1

    def test_rewriting_the_log_invalidates(self, swf_path):
        cache = TraceCache()
        first = cache.swf_jobs(swf_path)
        with open(swf_path, "a") as fh:
            fh.write("5 500 1 600 16 -1 -1 16 1200 -1 1 13 -1 4 -1 -1 -1 -1\n")
        second = cache.swf_jobs(swf_path)
        assert second is not first
        assert len(second) == len(first) + 1

    def test_touching_mtime_invalidates(self, swf_path):
        cache = TraceCache()
        first = cache.swf_jobs(swf_path)
        st = os.stat(swf_path)
        os.utime(swf_path, ns=(st.st_atime_ns, st.st_mtime_ns + 1))
        assert cache.swf_jobs(swf_path) is not first

    def test_options_are_part_of_the_key(self, swf_path):
        cache = TraceCache()
        plain = cache.swf_jobs(swf_path)
        divided = cache.swf_jobs(swf_path, {"cores_per_node": 64})
        assert divided is not plain
        assert divided[0].size == 1 and plain[0].size == 64

    def test_relative_and_absolute_paths_share_an_entry(self, swf_path):
        cache = TraceCache()
        first = cache.swf_jobs(swf_path)
        rel = os.path.relpath(swf_path)
        assert cache.swf_jobs(rel) is first


class TestThetaRowsCache:
    def test_keyed_by_spec_and_seed(self):
        cache = TraceCache()
        a = cache.theta_rows(SPEC, 0)
        assert cache.theta_rows(SPEC, 0) is a
        assert cache.theta_rows(SPEC, 1) is not a
        other = WorkloadSpec(days=0.5, system_size=256, target_load=0.6)
        assert cache.theta_rows(other, 0) is not a

    def test_equal_specs_share_an_entry(self):
        cache = TraceCache()
        twin = WorkloadSpec(days=0.25, system_size=256, target_load=0.6)
        assert cache.theta_rows(twin, 3) is cache.theta_rows(SPEC, 3)
        assert spec_hash(twin) == spec_hash(SPEC)

    def test_streamed_jobs_off_cached_rows_match_generate(self):
        cache = TraceCache()
        rows = cache.theta_rows(SPEC, 7)
        streamed = list(stream_jobs_from_rows(SPEC, rows))
        materialized = generate_trace(SPEC, seed=7)
        assert len(streamed) == len(materialized)
        for s, m in zip(streamed, materialized):
            assert (s.job_id, s.submit_time, s.size, s.runtime) == (
                m.job_id,
                m.submit_time,
                m.size,
                m.runtime,
            )
            assert s.job_type is m.job_type

    def test_rows_survive_a_simulating_consumer(self):
        # consumers build fresh Jobs; the cached rows must be reusable
        from repro.experiments.runner import run_one
        from repro.metrics.summary import deterministic_view

        cache = get_trace_cache()
        first = run_one(SPEC, 0, None)
        second = run_one(SPEC, 0, None)
        assert deterministic_view(first) == deterministic_view(second)
        assert cache.stats()["row_entries"] == 1


class TestLruAndReset:
    def test_lru_evicts_oldest(self):
        cache = TraceCache(max_entries=2)
        with enabled_obs() as obs:
            cache.theta_rows(SPEC, 0)
            cache.theta_rows(SPEC, 1)
            cache.theta_rows(SPEC, 2)  # evicts seed 0
            counters = obs.snapshot()["counters"]
        assert counters["workload.trace_cache.evictions"] == 1
        assert cache.stats()["row_entries"] == 2
        with enabled_obs() as obs:
            cache.theta_rows(SPEC, 0)  # miss again
            assert obs.snapshot()["counters"][
                "workload.trace_cache.misses"
            ] == 1

    def test_recent_use_refreshes_lru_position(self):
        cache = TraceCache(max_entries=2)
        a = cache.theta_rows(SPEC, 0)
        cache.theta_rows(SPEC, 1)
        cache.theta_rows(SPEC, 0)  # refresh seed 0
        cache.theta_rows(SPEC, 2)  # evicts seed 1, not 0
        assert cache.theta_rows(SPEC, 0) is a

    def test_clear_drops_everything(self, swf_path):
        cache = TraceCache()
        cache.swf_jobs(swf_path)
        cache.theta_rows(SPEC, 0)
        cache.clear()
        assert cache.stats() == {"swf_entries": 0, "row_entries": 0}

    def test_singleton_reset(self):
        first = get_trace_cache()
        assert get_trace_cache() is first
        reset_trace_cache()
        assert get_trace_cache() is not first
