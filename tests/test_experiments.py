"""Tests for the experiment harness: configs, runner, figure drivers, CLI."""

import pytest

from repro.core.mechanisms import ALL_MECHANISMS, Mechanism
from repro.experiments import figures
from repro.experiments.cli import main as cli_main
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    run_mechanism_grid,
    run_one,
    run_workload_sweep,
)
from repro.sim.config import SimConfig
from repro.util.errors import ConfigurationError
from repro.workload.spec import W1, W5, theta_spec

#: tiny-but-nonempty campaign used across these tests
QUICK = ExperimentConfig.quick(days=3, n_traces=2, target_load=0.7)


class TestConfig:
    def test_quick_constructor(self):
        assert QUICK.n_traces == 2
        assert QUICK.spec.days == 3
        assert len(QUICK.mechanisms) == 6

    def test_seeds(self):
        assert QUICK.seeds() == [2022, 2023]

    def test_system_size_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(
                spec=theta_spec(days=2, system_size=100),
                sim=SimConfig(system_size=200),
            )

    @pytest.mark.parametrize("kw", [{"n_traces": 0}, {"workers": 0}])
    def test_invalid_counts(self, kw):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(spec=theta_spec(days=2), **kw)

    def test_with_spec_and_sim(self):
        spec2 = theta_spec(days=5)
        assert QUICK.with_spec(spec2).spec.days == 5
        sim2 = SimConfig(backfill_enabled=False)
        assert QUICK.with_sim(sim2).sim.backfill_enabled is False


class TestRunner:
    def test_run_one_baseline_and_mechanism(self):
        base = run_one(QUICK.spec, 1, None, QUICK.sim)
        mech = run_one(QUICK.spec, 1, Mechanism.parse("N&PAA"), QUICK.sim)
        assert base.mechanism is None
        assert mech.mechanism == "N&PAA"
        assert mech.instant_start_rate >= base.instant_start_rate

    def test_grid_preserves_order_and_averages(self):
        grid = run_mechanism_grid(
            QUICK.spec,
            [None, ALL_MECHANISMS[0]],
            QUICK.seeds(),
            sim=QUICK.sim,
        )
        assert list(grid.keys()) == [None, "N&PAA"]
        assert grid["N&PAA"].n_jobs > 0

    def test_grid_parallel_matches_serial(self):
        serial = run_mechanism_grid(
            QUICK.spec, [ALL_MECHANISMS[2]], QUICK.seeds(), sim=QUICK.sim, workers=1
        )
        parallel = run_mechanism_grid(
            QUICK.spec, [ALL_MECHANISMS[2]], QUICK.seeds(), sim=QUICK.sim, workers=2
        )
        a, b = serial["CUA&PAA"], parallel["CUA&PAA"]
        assert a.system_utilization == pytest.approx(b.system_utilization)
        assert a.avg_turnaround_h == pytest.approx(b.avg_turnaround_h)

    def test_workload_sweep_shape(self):
        sweep = run_workload_sweep(
            QUICK.spec,
            [W1, W5],
            [ALL_MECHANISMS[0]],
            QUICK.seeds()[:1],
            sim=QUICK.sim,
        )
        assert set(sweep) == {"W1", "W5"}
        assert "N&PAA" in sweep["W1"]


class TestFigureDrivers:
    def test_table1(self):
        out = figures.table1_workload(QUICK)
        assert out["summary"]["number_of_jobs"] == len(out["jobs"])
        assert "Table I" in out["text"]

    def test_fig3(self):
        out = figures.fig3_size_mix(QUICK)
        assert len(out["buckets"]) == 5
        assert "size range" in out["text"]

    def test_fig4(self):
        out = figures.fig4_type_mix(QUICK)
        assert len(out["shares"]) == QUICK.n_traces
        for shares in out["shares"]:
            assert shares["rigid"] + shares["ondemand"] + shares["malleable"] == (
                pytest.approx(1.0)
            )

    def test_fig5(self):
        out = figures.fig5_burstiness(QUICK)
        assert out["series"]
        assert "weekly counts" in out["text"]

    def test_table2(self):
        out = figures.table2_baseline(QUICK)
        assert 0.0 < out["summary"].system_utilization <= 1.0
        assert "baseline" in out["text"].lower()

    def test_table3(self):
        out = figures.table3_mixes()
        assert set(out["mixes"]) == {"W1", "W2", "W3", "W4", "W5"}
        assert "W4" in out["text"]

    def test_fig6_single_mix_single_mech(self):
        small = ExperimentConfig(
            spec=QUICK.spec,
            sim=QUICK.sim,
            mechanisms=[ALL_MECHANISMS[0]],
            n_traces=1,
        )
        out = figures.fig6_mechanisms(small, mixes=[W5])
        assert "W5" in out["sweep"]
        assert "Fig. 6" in out["text"]

    def test_fig7_two_multipliers(self):
        small = ExperimentConfig(
            spec=QUICK.spec,
            sim=QUICK.sim,
            mechanisms=[ALL_MECHANISMS[1]],
            n_traces=1,
        )
        out = figures.fig7_checkpointing(small, multipliers=(0.5, 2.0))
        assert set(out["results"]) == {0.5, 2.0}
        assert "Fig. 7" in out["text"]

    def test_headline(self):
        small = ExperimentConfig(
            spec=QUICK.spec,
            sim=QUICK.sim,
            mechanisms=[ALL_MECHANISMS[3]],
            n_traces=1,
        )
        out = figures.headline_comparison(small)
        assert None in out["grid"]
        assert "CUA&SPAA" in out["grid"]


class TestCli:
    def test_table3(self, capsys):
        assert cli_main(["table3"]) == 0
        assert "W1" in capsys.readouterr().out

    def test_table2_tiny(self, capsys):
        rc = cli_main(
            ["table2", "--days", "2", "--traces", "1", "--load", "0.6"]
        )
        assert rc == 0
        assert "System Util." in capsys.readouterr().out

    def test_compare_tiny(self, capsys):
        rc = cli_main(
            [
                "compare",
                "--days",
                "2",
                "--traces",
                "1",
                "--load",
                "0.6",
                "--mechanisms",
                "N&PAA",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "N&PAA" in out and "baseline" in out

    def test_invalid_exhibit_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["nonsense"])
