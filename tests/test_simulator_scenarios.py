"""Integration scenarios with hand-computed timelines.

Each test builds a tiny trace on a 100-node machine, runs the full
simulator, and asserts exact start/finish times and accounting derived by
hand.  Together they exercise every §III-B decision path: instant start
from free nodes, PAA preemption + lease resume, SPAA shrink + expand,
CUA collection + reserved-node backfill loans, CUP planned preemption
right after a checkpoint, early arrival cancelling a CUP plan, reservation
timeout, and the baseline's no-special-treatment behaviour.
"""

import pytest

from repro.core.mechanisms import Mechanism
from repro.jobs.checkpoint import CheckpointModel
from repro.jobs.job import Job, JobState, JobType, NoticeClass
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulation


def rigid(job_id, submit, size, runtime, estimate=None, setup=0.0):
    return Job(
        job_id=job_id,
        job_type=JobType.RIGID,
        submit_time=submit,
        size=size,
        runtime=runtime,
        estimate=estimate if estimate is not None else runtime,
        setup_time=setup,
    )


def malleable(job_id, submit, size, min_size, runtime, estimate=None, setup=0.0):
    return Job(
        job_id=job_id,
        job_type=JobType.MALLEABLE,
        submit_time=submit,
        size=size,
        min_size=min_size,
        runtime=runtime,
        estimate=estimate if estimate is not None else runtime,
        setup_time=setup,
    )


def ondemand(job_id, submit, size, runtime, notice=None, estimated=None, estimate=None):
    cls = NoticeClass.NONE
    if notice is not None:
        if submit == estimated:
            cls = NoticeClass.ACCURATE
        elif submit < estimated:
            cls = NoticeClass.EARLY
        else:
            cls = NoticeClass.LATE
    return Job(
        job_id=job_id,
        job_type=JobType.ONDEMAND,
        submit_time=submit,
        size=size,
        runtime=runtime,
        estimate=estimate if estimate is not None else runtime,
        notice_class=cls,
        notice_time=notice,
        estimated_arrival=estimated,
    )


def cfg(**kw):
    base = dict(
        system_size=100,
        checkpoint=CheckpointModel.disabled(),
        validate_invariants=True,
    )
    base.update(kw)
    return SimConfig(**base)


#: checkpoint model pinned to an exact 2000 s interval via the min clamp
CKPT_2000 = CheckpointModel(node_mtbf_s=1.0, min_interval_s=2000.0)


def run(jobs, mechanism=None, config=None):
    sim = Simulation(jobs, config or cfg(), mechanism)
    return sim.run()


def by_id(result, job_id):
    return next(j for j in result.jobs if j.job_id == job_id)


class TestPlainScheduling:
    def test_single_rigid_job_timeline(self):
        res = run([rigid(1, submit=10.0, size=50, runtime=1000.0, setup=100.0)])
        j = by_id(res, 1)
        assert j.stats.first_start == 10.0
        assert j.stats.end_time == pytest.approx(10.0 + 100.0 + 1000.0)
        assert j.turnaround == pytest.approx(1100.0)

    def test_checkpoint_overhead_extends_runtime(self):
        res = run(
            [rigid(1, 0.0, 100, 10000.0, setup=100.0)],
            config=cfg(checkpoint=CKPT_2000),
        )
        j = by_id(res, 1)
        # 4 checkpoints (marks 2000..8000), 600 s each
        assert j.stats.end_time == pytest.approx(100.0 + 10000.0 + 4 * 600.0)
        assert j.stats.checkpoint_node_seconds == pytest.approx(100 * 2400.0)

    def test_fcfs_second_job_waits(self):
        res = run(
            [rigid(1, 0.0, 80, 1000.0), rigid(2, 10.0, 80, 500.0)]
        )
        assert by_id(res, 2).stats.first_start == pytest.approx(1000.0)

    def test_easy_backfill_jumps_short_narrow_job(self):
        # job2 (wide) blocked behind job1; job3 is short and fits beside 1.
        res = run(
            [
                rigid(1, 0.0, 60, 5000.0),
                rigid(2, 10.0, 100, 1000.0),
                rigid(3, 20.0, 40, 1000.0),
            ]
        )
        assert by_id(res, 3).stats.first_start == pytest.approx(20.0)
        assert by_id(res, 2).stats.first_start == pytest.approx(5000.0)

    def test_backfill_never_delays_head(self):
        # job3 is narrow but too long to finish before job1 ends.
        res = run(
            [
                rigid(1, 0.0, 60, 5000.0),
                rigid(2, 10.0, 100, 1000.0),
                rigid(3, 20.0, 40, 50000.0),
            ]
        )
        assert by_id(res, 2).stats.first_start == pytest.approx(5000.0)
        assert by_id(res, 3).stats.first_start == pytest.approx(6000.0)

    def test_malleable_starts_shrunk_when_pool_small(self):
        res = run(
            [
                rigid(1, 0.0, 70, 1000.0),
                malleable(2, 10.0, size=100, min_size=20, runtime=300.0),
            ]
        )
        j = by_id(res, 2)
        assert j.stats.first_start == pytest.approx(10.0)
        assert j.stats.segment_sizes == [30]
        # linear speedup: work 300*100 node-s on 30 nodes
        assert j.stats.end_time == pytest.approx(10.0 + 1000.0)

    def test_all_jobs_complete_and_states_final(self):
        res = run(
            [rigid(i, i * 5.0, 30, 500.0) for i in range(1, 8)]
        )
        assert all(j.state is JobState.COMPLETED for j in res.jobs)


class TestPaaPreemption:
    def make_trace(self):
        return [
            rigid(1, 0.0, 100, 10000.0, estimate=12000.0, setup=100.0),
            ondemand(2, 5000.0, 40, 1000.0),
        ]

    def test_od_starts_instantly_by_preempting(self):
        res = run(self.make_trace(), Mechanism.parse("N&PAA"))
        od = by_id(res, 2)
        assert od.start_delay == pytest.approx(0.0)
        assert od.stats.end_time == pytest.approx(6000.0)

    def test_victim_rolls_back_without_checkpoints(self):
        res = run(self.make_trace(), Mechanism.parse("N&PAA"))
        victim = by_id(res, 1)
        assert victim.stats.preemptions == 1
        # progress 4900 compute seconds, nothing retained (no checkpoints)
        assert victim.stats.lost_node_seconds == pytest.approx(100 * 4900.0)
        assert victim.stats.wasted_setup_node_seconds == pytest.approx(100 * 100.0)

    def test_victim_resumes_via_lease_on_od_completion(self):
        res = run(self.make_trace(), Mechanism.parse("N&PAA"))
        victim = by_id(res, 1)
        # od ends at 6000; lease (40) + free (60) covers the full resume
        assert victim.stats.last_start == pytest.approx(6000.0)
        assert victim.stats.end_time == pytest.approx(6000.0 + 100.0 + 10000.0)
        assert res.lease_resumes == 1

    def test_od_never_preempted(self):
        res = run(self.make_trace(), Mechanism.parse("N&PAA"))
        assert by_id(res, 2).stats.preemptions == 0

    def test_insufficient_preemptable_queues_od(self):
        # od1 occupies 80 nodes; od2 (50) cannot preempt another od.
        trace = [
            ondemand(1, 0.0, 80, 1000.0),
            rigid(2, 0.0, 20, 2000.0),
            ondemand(3, 100.0, 50, 500.0),
        ]
        res = run(trace, Mechanism.parse("N&PAA"))
        od2 = by_id(res, 3)
        # must wait for od1's finish at 1000 (rigid job alone is not enough)
        assert od2.stats.first_start == pytest.approx(1000.0)
        assert od2.start_delay == pytest.approx(900.0)
        # the rigid job was not pointlessly preempted
        assert by_id(res, 2).stats.preemptions == 0


class TestSpaaShrink:
    def make_trace(self):
        return [
            malleable(1, 0.0, size=100, min_size=20, runtime=2000.0),
            ondemand(2, 500.0, 40, 1000.0),
        ]

    def test_shrink_instead_of_preempt(self):
        res = run(self.make_trace(), Mechanism.parse("N&SPAA"))
        m = by_id(res, 1)
        od = by_id(res, 2)
        assert od.start_delay == pytest.approx(0.0)
        assert m.stats.preemptions == 0
        assert m.stats.shrinks == 1

    def test_expand_on_od_completion_and_exact_finish(self):
        res = run(self.make_trace(), Mechanism.parse("N&SPAA"))
        m = by_id(res, 1)
        assert m.stats.expands == 1
        # work 200000; 50000 done by t=500 at 100 nodes; 60000 more by
        # t=1500 at 60 nodes; remaining 90000 at 100 nodes -> ends 2400
        assert m.stats.end_time == pytest.approx(2400.0)
        assert res.lease_expands == 1

    def test_spaa_falls_back_to_paa_when_supply_short(self):
        trace = [
            malleable(1, 0.0, size=100, min_size=90, runtime=2000.0),
            ondemand(2, 500.0, 40, 1000.0),
        ]
        res = run(trace, Mechanism.parse("N&SPAA"))
        m = by_id(res, 1)
        od = by_id(res, 2)
        # supply = 10 < 40 -> PAA preempts the malleable job entirely
        assert m.stats.preemptions == 1
        assert od.start_delay == pytest.approx(0.0)

    def test_no_compute_lost_on_malleable_preemption(self):
        trace = [
            malleable(1, 0.0, size=100, min_size=90, runtime=2000.0),
            ondemand(2, 500.0, 40, 1000.0),
        ]
        res = run(trace, Mechanism.parse("N&SPAA"))
        assert by_id(res, 1).stats.lost_node_seconds == 0.0


class TestCuaCollection:
    def make_trace(self):
        return [
            rigid(1, 0.0, 40, 1000.0),  # releases 40 nodes at t=1000
            rigid(2, 0.0, 60, 1900.0),  # releases 60 nodes at t=1900
            rigid(3, 1040.0, 100, 400.0),  # wide head, blocks the queue
            rigid(4, 1050.0, 40, 500.0),  # backfills onto reserved nodes
            ondemand(5, 2100.0, 60, 1000.0, notice=600.0, estimated=2100.0),
        ]

    def test_collection_avoids_all_preemption(self):
        res = run(self.make_trace(), Mechanism.parse("CUA&PAA"))
        od = by_id(res, 5)
        assert od.start_delay == pytest.approx(0.0)
        assert all(j.stats.preemptions == 0 for j in res.jobs)

    def test_backfill_borrows_reserved_nodes(self):
        res = run(self.make_trace(), Mechanism.parse("CUA&PAA"))
        d = by_id(res, 4)
        # free pool is empty at t=1050; only the reservation's 40 held
        # nodes (collected from job 1) can host it.
        assert d.stats.first_start == pytest.approx(1050.0)
        assert d.stats.end_time == pytest.approx(1550.0)

    def test_wide_head_starts_after_od(self):
        res = run(self.make_trace(), Mechanism.parse("CUA&PAA"))
        assert by_id(res, 3).stats.first_start == pytest.approx(3100.0)

    def test_without_cua_the_od_preempts(self):
        res = run(self.make_trace(), Mechanism.parse("N&PAA"))
        # nodes were not collected, so the arrival must preempt someone
        assert any(j.stats.preemptions > 0 for j in res.jobs)


class TestCupPlanning:
    def make_trace(self):
        return [
            rigid(1, 0.0, 100, 10000.0, estimate=12000.0, setup=100.0),
            ondemand(2, 3000.0, 50, 1000.0, notice=1500.0, estimated=3000.0),
        ]

    def test_planned_preemption_fires_right_after_checkpoint(self):
        res = run(
            self.make_trace(),
            Mechanism.parse("CUP&PAA"),
            config=cfg(checkpoint=CKPT_2000),
        )
        victim = by_id(res, 1)
        # checkpoint 1 completes at 100 + 2000 + 600 = 2700 (< arrival 3000);
        # CUP preempts exactly there, so no compute is lost.
        assert victim.stats.preemptions == 1
        assert victim.stats.lost_node_seconds == pytest.approx(0.0)

    def test_od_instant_from_planned_nodes(self):
        res = run(
            self.make_trace(),
            Mechanism.parse("CUP&PAA"),
            config=cfg(checkpoint=CKPT_2000),
        )
        od = by_id(res, 2)
        assert od.start_delay == pytest.approx(0.0)
        assert od.stats.end_time == pytest.approx(4000.0)

    def test_victim_resumes_from_checkpoint_after_od(self):
        res = run(
            self.make_trace(),
            Mechanism.parse("CUP&PAA"),
            config=cfg(checkpoint=CKPT_2000),
        )
        victim = by_id(res, 1)
        assert victim.stats.last_start == pytest.approx(4000.0)
        # resumes at compute offset 2000: 8000 left + setup 100 +
        # 3 checkpoints (marks 4000, 6000, 8000) * 600
        assert victim.stats.end_time == pytest.approx(4000.0 + 100.0 + 8000.0 + 1800.0)

    def test_early_arrival_cancels_plan(self):
        trace = [
            rigid(1, 0.0, 100, 10000.0, estimate=12000.0, setup=100.0),
            ondemand(2, 2000.0, 50, 1000.0, notice=1000.0, estimated=4000.0),
        ]
        res = run(
            trace, Mechanism.parse("CUP&PAA"), config=cfg(checkpoint=CKPT_2000)
        )
        victim = by_id(res, 1)
        od = by_id(res, 2)
        assert od.start_delay == pytest.approx(0.0)
        # arrival at 2000 precedes the planned 2700 firing: PAA preempts at
        # 2000 instead, losing the 1900 s of un-checkpointed progress.
        assert victim.stats.preemptions == 1
        assert victim.stats.lost_node_seconds == pytest.approx(100 * 1900.0)


class TestReservationTimeout:
    def test_reserved_nodes_released_after_grace(self):
        trace = [
            rigid(1, 0.0, 100, 2000.0),
            # LATE on-demand: estimated 2500, actual 4000 (> grace 600)
            ondemand(2, 4000.0, 50, 1000.0, notice=1000.0, estimated=2500.0),
            rigid(3, 1500.0, 100, 2000.0),
        ]
        res = run(trace, Mechanism.parse("CUA&PAA"))
        waiter = by_id(res, 3)
        # holding is released at 2500 + 600 = 3100, unblocking job 3
        assert waiter.stats.first_start == pytest.approx(3100.0)
        # the on-demand job still starts instantly at 4000 via PAA —
        # job 3 (running 3100-5100) is preempted from scratch
        od = by_id(res, 2)
        assert od.start_delay == pytest.approx(0.0)
        assert waiter.stats.preemptions == 1


class TestBaseline:
    def test_no_preemption_no_priority(self):
        trace = [
            rigid(1, 0.0, 100, 10000.0),
            ondemand(2, 5000.0, 40, 1000.0),
        ]
        res = run(trace, None)
        od = by_id(res, 2)
        assert by_id(res, 1).stats.preemptions == 0
        assert od.stats.first_start == pytest.approx(10000.0)

    def test_baseline_od_can_start_from_free_pool(self):
        trace = [
            rigid(1, 0.0, 40, 10000.0),
            ondemand(2, 5000.0, 40, 1000.0),
        ]
        res = run(trace, None)
        assert by_id(res, 2).start_delay == pytest.approx(0.0)

    def test_baseline_ignores_notices(self):
        trace = [
            rigid(1, 0.0, 100, 3000.0),
            ondemand(2, 2100.0, 50, 1000.0, notice=600.0, estimated=2100.0),
        ]
        res = run(trace, None)
        # no reservation: od waits for the rigid job to finish
        assert by_id(res, 2).stats.first_start == pytest.approx(3000.0)


class TestResultBookkeeping:
    def test_decision_latency_recorded_per_arrival(self):
        trace = [
            rigid(1, 0.0, 100, 10000.0),
            ondemand(2, 5000.0, 40, 1000.0),
            ondemand(3, 6000.0, 20, 500.0),
        ]
        res = run(trace, Mechanism.parse("N&PAA"))
        assert res.decision_latency.count == 2
        assert res.decision_latency.max_s < 0.01
        assert res.decision_latency.p50_s <= res.decision_latency.p95_s
        assert res.decision_latency.p95_s <= res.decision_latency.max_s

    def test_events_and_passes_counted(self):
        res = run([rigid(1, 0.0, 10, 100.0)])
        assert res.events_processed >= 2
        assert res.schedule_passes >= 1

    def test_pass_skipping_accounted_and_off_under_full_replan(self):
        trace = [rigid(i, i * 10.0, 10, 100.0) for i in range(5)]
        from repro.workload.trace import clone_jobs

        incremental = run(clone_jobs(trace))
        full = run(clone_jobs(trace), config=cfg(force_full_replan=True))
        assert full.passes_skipped == 0
        # every batch runs a pass in full mode; incremental executes no
        # more than that, and skipped + executed covers the same batches
        assert incremental.schedule_passes <= full.schedule_passes
        assert (
            incremental.schedule_passes + incremental.passes_skipped
            == full.schedule_passes
        )

    def test_makespan_and_horizon(self):
        res = run([rigid(1, 5.0, 10, 100.0)])
        assert res.makespan == pytest.approx(105.0)
        assert res.horizon == pytest.approx(100.0)
