"""The streaming simulation core: generator-backed workloads, the O(1)
metrics funnel, and the at-scale correctness fixes that ride along.

Covers the three equivalence contracts the streaming path promises:

* ``iter_jobs()`` / ``iter_swf()`` yield *exactly* the jobs their
  materializing counterparts build — same ids, same fields, same order;
* a streamed simulation produces byte-identical summaries, breakdowns,
  and scheduler decision logs to a materialized run of the same trace,
  for the baseline and every paper mechanism, while retaining no job
  list (``result.jobs == []``);
* the two bugfix satellites: ``EventQueue.pop_batch`` must not split
  same-instant batches at month-scale timestamps (the seed's absolute
  ``1e-9`` tolerance did, past ``t ~ 1e8`` s), and
  ``LatencyStats.from_samples`` percentiles are nearest-rank
  (``int(p*n)`` indexed one past the rank whenever ``p*n`` was
  integral).
"""

import math
import os

import pytest

from repro.core.mechanisms import ALL_MECHANISMS
from repro.sched.registry import policy_names
from repro.metrics.breakdown import (
    ondemand_by_notice_class,
    utilization_series,
    waste_by_type,
)
from repro.metrics.summary import deterministic_view, summarize
from repro.obs.registry import Histogram
from repro.perf.record import canonical_json
from repro.sim.config import SimConfig
from repro.sim.engine import EventQueue
from repro.sim.events import EventType
from repro.sim.simulator import LatencyStats, Simulation
from repro.util.errors import ConfigurationError
from repro.workload.spec import theta_spec
from repro.workload.stream import as_stream
from repro.workload.swf import iter_swf, load_swf, stream_swf
from repro.workload.theta import ThetaWorkloadGenerator

#: small but fully featured: every job type, every notice class, a few
#: hundred jobs — enough for preemptions, loans, and shrinks to occur
SPEC = theta_spec(days=4, target_load=0.85)

_ONLY = os.environ.get("REPRO_POLICY")
STREAM_POLICIES = tuple(
    n for n in policy_names() if not _ONLY or n == _ONLY
)


def _sim_config(**overrides) -> SimConfig:
    return SimConfig(system_size=SPEC.system_size, **overrides)


# ----------------------------------------------------------------------
# Workload producers: lazy == materialized, job for job
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 7, 2022])
def test_iter_jobs_matches_generate(seed):
    materialized = ThetaWorkloadGenerator(SPEC, seed=seed).generate()
    streamed = list(ThetaWorkloadGenerator(SPEC, seed=seed).iter_jobs())
    assert len(materialized) > 100  # non-trivial trace
    assert streamed == materialized  # dataclass equality: every field


def test_iter_jobs_declares_the_spec_notice_horizon():
    gen = ThetaWorkloadGenerator(SPEC, seed=0)
    stream = gen.iter_jobs()
    assert stream.notice_horizon_s == (
        SPEC.notice_lead_range_s[1] + SPEC.late_window_s
    )
    # the declared horizon really bounds submit - notice
    for job in stream:
        if job.notice_time is not None:
            assert (
                job.submit_time - job.notice_time
                <= stream.notice_horizon_s + 1e-9
            )


SWF_TEXT = """\
; SWF header comment
; UnixStartTime: 0

1 1000 10 3600 64 0 0 64 7200 0 1 11 21 31 0 0 0 0
2 1010 -1 -1 32 0 0 32 -1 0 1 12 22 32 0 0 0 0
3 1200 5 30 16 0 0 16 10 0 1 13 23 -1 0 0 0 0
4 1300 0 7200 128 0 0 128 3600 0 1 14 24 34 0 0 0 0
"""


def test_iter_swf_matches_load_swf(tmp_path):
    path = tmp_path / "trace.swf"
    path.write_text(SWF_TEXT)
    materialized = load_swf(str(path))
    streamed = list(iter_swf(str(path)))
    assert streamed == materialized
    # job 2 is cleaned (non-positive runtime); ids stay dense
    assert [j.job_id for j in materialized] == [0, 1, 2]
    # submit times are normalized to the first *kept* job's submit
    assert materialized[0].submit_time == 0.0
    assert materialized[1].submit_time == 200.0
    # job 3's estimate (10 s) undershoots the cleaned runtime
    assert materialized[1].runtime == 60.0  # min_runtime_s clamp
    assert materialized[1].estimate == 60.0
    # group id -1 falls back to the user id
    assert materialized[1].project == 13
    # SWF jobs carry no notices: the stream admits at the event clock
    assert stream_swf(str(path)).notice_horizon_s == 0.0
    assert list(iter_swf(str(path), max_jobs=2)) == materialized[:2]


# ----------------------------------------------------------------------
# Streamed simulation == materialized simulation, byte for byte
# ----------------------------------------------------------------------
def _canonical(result) -> bytes:
    """Everything the metrics layer derives, in canonical JSON bytes."""
    return canonical_json(
        {
            "summary": deterministic_view(summarize(result)),
            "by_notice": [
                vars(o) for o in ondemand_by_notice_class(result)
            ],
            "waste": waste_by_type(result),
        }
    ).encode()


@pytest.mark.parametrize(
    "mechanism",
    [None] + list(ALL_MECHANISMS),
    ids=lambda m: str(m) if m else "baseline",
)
def test_streamed_matches_materialized(mechanism):
    gen = ThetaWorkloadGenerator(SPEC, seed=3)
    config = _sim_config(log_decisions=True)
    mat = Simulation(gen.generate(), config, mechanism).run()
    st = Simulation(
        ThetaWorkloadGenerator(SPEC, seed=3).iter_jobs(), config, mechanism
    ).run()
    assert st.jobs == []  # the stream was never materialized
    assert _canonical(st) == _canonical(mat)
    # the full decision transcript is identical too: same starts, same
    # preemptions, same reservations, in the same order
    assert [e.to_json_line() for e in st.log.entries] == [
        e.to_json_line() for e in mat.log.entries
    ]
    assert (
        st.events_processed,
        st.schedule_passes,
        st.makespan,
        st.first_submit,
        st.last_end,
    ) == (
        mat.events_processed,
        mat.schedule_passes,
        mat.makespan,
        mat.first_submit,
        mat.last_end,
    )


@pytest.mark.parametrize("policy", STREAM_POLICIES)
def test_streamed_matches_materialized_every_policy(policy):
    """Stream == materialized holds for every *registered* policy, new
    entries included automatically — aging policies (time-varying keys)
    exercise the pass-skip interplay hardest."""
    spec = theta_spec(days=2, target_load=0.85)
    config = SimConfig(
        system_size=spec.system_size, log_decisions=True, policy=policy
    )
    mechanism = ALL_MECHANISMS[0]
    mat = Simulation(
        ThetaWorkloadGenerator(spec, seed=9).generate(), config, mechanism
    ).run()
    st = Simulation(
        ThetaWorkloadGenerator(spec, seed=9).iter_jobs(), config, mechanism
    ).run()
    assert st.jobs == []
    assert _canonical(st) == _canonical(mat)
    assert [e.to_json_line() for e in st.log.entries] == [
        e.to_json_line() for e in mat.log.entries
    ]


def test_any_iterable_is_accepted_as_a_stream():
    jobs = ThetaWorkloadGenerator(SPEC, seed=5).generate()
    mat = Simulation(jobs, _sim_config()).run()
    st = Simulation(
        iter(ThetaWorkloadGenerator(SPEC, seed=5).generate()), _sim_config()
    ).run()
    assert st.jobs == []
    assert _canonical(st) == _canonical(mat)


def test_unsorted_stream_is_rejected():
    jobs = ThetaWorkloadGenerator(SPEC, seed=0).generate()
    jobs[10], jobs[40] = jobs[40], jobs[10]
    with pytest.raises(ConfigurationError, match="sorted by submit"):
        Simulation(as_stream(jobs), _sim_config()).run()


def test_streamed_result_rejects_per_job_consumers():
    st = Simulation(
        ThetaWorkloadGenerator(SPEC, seed=0).iter_jobs(), _sim_config()
    ).run()
    # the accumulator was built for the configured threshold; asking for
    # a different one needs the per-job list streamed runs do not keep
    with pytest.raises(ValueError):
        summarize(st, instant_threshold_s=1.0)
    with pytest.raises(ValueError):
        ondemand_by_notice_class(st, instant_threshold_s=1.0)
    with pytest.raises(ValueError):
        utilization_series(st)


def test_materialized_summary_dispatch_matches_legacy_grouping():
    """The accumulator path and the legacy per-job grouping agree on a
    materialized run — the differential that guards ``summarize``'s
    dispatch.  Agreement is to float-summation-order precision: the
    accumulator folds in finish order, the legacy grouping in job-id
    order, so sums can differ by an ULP (exactness is asserted where it
    matters — streamed vs materialized, which share the accumulator).
    """
    result = Simulation(
        ThetaWorkloadGenerator(SPEC, seed=9).generate(),
        _sim_config(),
        ALL_MECHANISMS[0],
    ).run()
    via_acc = deterministic_view(summarize(result))
    result.accumulator = None  # force the legacy per-job path
    via_jobs = deterministic_view(summarize(result))
    assert set(via_acc) == set(via_jobs)
    for key, value in via_jobs.items():
        got = via_acc[key]
        if isinstance(value, float):
            assert got == pytest.approx(value, rel=1e-12, abs=1e-12), key
        else:
            assert got == value, key


# ----------------------------------------------------------------------
# Satellite fix: pop_batch tie tolerance at large timestamps
# ----------------------------------------------------------------------
def test_pop_batch_keeps_ulp_ties_together_at_large_times():
    # a month-scale replay clock: ulp(3e8) ~ 6e-8 > the seed's absolute
    # 1e-9 tolerance, so two same-instant events computed by different
    # float expressions used to land in *separate* batches
    q = EventQueue()
    t = 3.0e8
    q.push(t, EventType.JOB_SUBMIT, job_id=1)
    q.push(math.nextafter(t, math.inf), EventType.JOB_SUBMIT, job_id=2)
    batch = q.pop_batch()
    assert [e.payload["job_id"] for e in batch] == [1, 2]
    assert len(q) == 0


def test_pop_batch_still_splits_genuinely_distinct_times():
    q = EventQueue()
    t = 3.0e8
    q.push(t, EventType.JOB_SUBMIT, job_id=1)
    q.push(t + 1.0, EventType.JOB_SUBMIT, job_id=2)
    assert len(q.pop_batch()) == 1
    assert len(q.pop_batch()) == 1


def test_pop_batch_small_time_tolerance_unchanged():
    # at ordinary trace times the seed's 1e-9 still applies
    q = EventQueue()
    q.push(100.0, EventType.JOB_SUBMIT, job_id=1)
    q.push(100.0 + 5e-10, EventType.JOB_SUBMIT, job_id=2)
    q.push(100.0 + 1e-6, EventType.JOB_SUBMIT, job_id=3)
    assert len(q.pop_batch()) == 2
    assert len(q.pop_batch()) == 1


def test_pop_batch_reuses_the_out_list():
    q = EventQueue()
    q.push(1.0, EventType.JOB_SUBMIT, job_id=1)
    q.push(2.0, EventType.JOB_SUBMIT, job_id=2)
    out = []
    first = q.pop_batch(out)
    assert first is out and len(out) == 1
    second = q.pop_batch(out)
    assert second is out and len(out) == 1
    assert out[0].payload["job_id"] == 2


# ----------------------------------------------------------------------
# Satellite fix: nearest-rank percentiles
# ----------------------------------------------------------------------
def test_latency_percentiles_are_nearest_rank():
    s = LatencyStats.from_samples([1.0, 2.0, 3.0, 4.0])
    # p50 of 4 samples is the 2nd smallest; int(0.5 * 4) indexed the 3rd
    assert s.p50_s == 2.0
    assert s.max_s == 4.0

    s = LatencyStats.from_samples([float(i) for i in range(1, 101)])
    assert (s.p50_s, s.p95_s, s.p99_s) == (50.0, 95.0, 99.0)

    s = LatencyStats.from_samples([7.0])
    assert (s.p50_s, s.p95_s, s.p99_s, s.max_s) == (7.0, 7.0, 7.0, 7.0)


def test_from_histogram_agrees_with_from_samples_on_bucket_bounds():
    # samples that sit exactly on bucket bounds: the two constructors
    # must agree (both are ceil-rank); before the fix from_samples
    # returned the next sample up whenever p*n was integral
    samples = [1.0, 2.0, 3.0, 4.0]
    h = Histogram("t", bounds=(1.0, 2.0, 3.0, 4.0))
    for v in samples:
        h.observe(v)
    exact = LatencyStats.from_samples(samples)
    approx = LatencyStats.from_histogram(h)
    assert approx.count == exact.count
    assert approx.p50_s == exact.p50_s == 2.0
    assert approx.max_s == exact.max_s
    assert approx.mean_s == exact.mean_s
