"""Tests for the unified instrumentation layer (:mod:`repro.obs`).

Covers the three pillars — metrics registry, span tracer, trace
export — plus the wiring contracts that make them trustworthy:

* span nesting depths and ring-buffer truncation (property-tested);
* registry snapshot determinism and exact totals under thread races;
* a golden Perfetto/Chrome trace-event document for a tiny 3-job
  simulation (regenerate with ``REPRO_UPDATE_GOLDEN=1``);
* the ``campaign run --trace`` CLI end-to-end: a 2-cell grid must
  produce a loadable trace whose ``sim.pass`` spans nest under their
  ``campaign.cell`` spans;
* the fleet worker's lease hygiene: a cell that raises mid-heartbeat
  still releases its lease, and a lease evicted out from under a
  worker increments ``distrib.lease.evictions``.
"""

import json
import os
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign.distrib.lease import LeaseBoard
from repro.campaign.distrib.worker import run_worker
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.core.mechanisms import Mechanism
from repro.jobs.checkpoint import CheckpointModel
from repro.jobs.job import Job, JobType, NoticeClass
from repro.obs import (
    DISABLED,
    MetricsRegistry,
    NullRegistry,
    NullTracer,
    Observability,
    Tracer,
    disable,
    enabled_obs,
    get_obs,
)
from repro.obs.export import (
    events_from_schedlog,
    events_from_spans,
    load_trace,
    merge_trace_data,
    render_summary,
    trace_data,
    write_trace_data,
)
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulation

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def cfg():
    return SimConfig(
        system_size=100,
        checkpoint=CheckpointModel.disabled(),
        validate_invariants=True,
    )


def tiny_trace():
    return [
        Job(job_id=1, job_type=JobType.RIGID, submit_time=0.0, size=100,
            runtime=10000.0, estimate=12000.0, setup_time=100.0),
        Job(job_id=2, job_type=JobType.ONDEMAND, submit_time=5000.0, size=40,
            runtime=1000.0, estimate=1000.0,
            notice_class=NoticeClass.ACCURATE, notice_time=3500.0,
            estimated_arrival=5000.0),
        Job(job_id=3, job_type=JobType.MALLEABLE, submit_time=11000.0,
            size=60, min_size=12, runtime=500.0, estimate=500.0),
    ]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_gauge_histogram_basics(self):
        reg = MetricsRegistry()
        reg.counter("a.b.c").inc()
        reg.counter("a.b.c").inc(4)
        reg.gauge("a.g").set(7.5)
        reg.histogram("a.h").observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"a.b.c": 5}
        assert snap["gauges"] == {"a.g": 7.5}
        h = snap["histograms"]["a.h"]
        assert h["count"] == 1 and h["min"] == h["max"] == 0.5

    def test_same_name_shares_object(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")

    def test_snapshot_skips_idle_metrics(self):
        reg = MetricsRegistry()
        reg.counter("never.hit")
        reg.histogram("never.observed")
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["histograms"] == {}

    def test_histogram_bucket_upper_bound_inclusive(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", bounds=[1.0, 10.0])
        for v in (1.0, 10.0, 99.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]  # <=1, <=10, overflow
        d = h.to_dict()
        assert d["buckets"] == {"1": 1, "10": 1, "+inf": 1}
        assert d["p50"] == 10.0  # bucket upper bound
        assert d["max"] == 99.0

    def test_merge_dict_folds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(2)
        b.counter("c").inc(3)
        a.histogram("h").observe(0.01)
        b.histogram("h").observe(0.02)
        a.merge_dict(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["max"] == 0.02

    def test_null_registry_shares_noop_objects(self):
        reg = NullRegistry()
        c = reg.counter("anything")
        assert c is reg.counter("something.else")
        c.inc(10**6)  # no state anywhere
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_threaded_increments_are_exact(self):
        """Snapshot totals are exact under racing writer threads."""
        reg = MetricsRegistry()
        n_threads, n_iter = 8, 2_000

        def work():
            c = reg.counter("t.hits")
            h = reg.histogram("t.lat")
            for _ in range(n_iter):
                c.inc()
                h.observe(0.001)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = reg.snapshot()
        assert snap["counters"]["t.hits"] == n_threads * n_iter
        assert snap["histograms"]["t.lat"]["count"] == n_threads * n_iter
        # determinism: re-snapshotting an unchanged registry is stable
        assert json.dumps(snap, sort_keys=True) == json.dumps(
            reg.snapshot(), sort_keys=True
        )


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_depths(self):
        tr = Tracer()
        with tr.span("outer"):
            assert tr.current_depth() == 1
            with tr.span("inner"):
                assert tr.current_depth() == 2
        depth = {r.name: r.depth for r in tr.records()}
        assert depth == {"inner": 1, "outer": 0}
        # inner completes first (append-on-exit)
        assert [r.name for r in tr.records()] == ["inner", "outer"]

    def test_attrs_and_thread_id(self):
        tr = Tracer()
        with tr.span("s", key="k", n=3):
            pass
        rec = tr.records()[0]
        assert dict(rec.attrs) == {"key": "k", "n": 3}
        assert rec.thread_id == threading.get_ident()

    def test_depth_restored_after_exception(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("boom"):
                raise ValueError
        assert tr.current_depth() == 0
        assert tr.records()[0].name == "boom"

    @settings(max_examples=50, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=64),
        n_spans=st.integers(min_value=0, max_value=200),
    )
    def test_ring_buffer_truncation(self, capacity, n_spans):
        """The ring keeps the newest ``capacity`` spans and accounts for
        every drop — for any (capacity, load) combination."""
        tr = Tracer(capacity=capacity)
        for i in range(n_spans):
            with tr.span(f"s{i}"):
                pass
        kept = tr.records()
        assert len(kept) == min(capacity, n_spans)
        assert tr.n_started == n_spans
        assert tr.n_dropped == max(0, n_spans - capacity)
        # the survivors are exactly the newest spans, oldest first
        expect = [f"s{i}" for i in range(max(0, n_spans - capacity), n_spans)]
        assert [r.name for r in kept] == expect

    def test_null_tracer_is_free_and_empty(self):
        tr = NullTracer()
        with tr.span("x", a=1):
            assert tr.current_depth() == 0
        assert tr.records() == [] and tr.n_dropped == 0


# ----------------------------------------------------------------------
# Global bundle
# ----------------------------------------------------------------------
class TestGlobalBundle:
    def test_default_is_disabled_singleton(self):
        assert get_obs() is DISABLED
        assert not get_obs().enabled

    def test_enabled_obs_scopes_and_restores(self):
        assert get_obs() is DISABLED
        with enabled_obs() as obs:
            assert get_obs() is obs and obs.enabled
            obs.counter("x").inc()
            assert obs.snapshot()["counters"] == {"x": 1}
        assert get_obs() is DISABLED

    def test_enabled_obs_restores_on_raise(self):
        with pytest.raises(RuntimeError):
            with enabled_obs():
                raise RuntimeError
        assert get_obs() is DISABLED

    def test_ingest_absorbs_foreign_events_and_metrics(self):
        obs = Observability()
        obs.ingest(
            [{"name": "s", "ph": "X", "ts": 0, "dur": 1, "pid": 9, "tid": 1}],
            {"counters": {"c": 4}, "gauges": {}, "histograms": {}},
        )
        assert obs.foreign_events[0]["pid"] == 9
        assert obs.snapshot()["counters"]["c"] == 4
        doc = trace_data(obs)
        assert any(e.get("pid") == 9 for e in doc["traceEvents"])


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------
def _normalize(doc):
    """Strip run-dependent fields (timing, pids, tids) for goldening."""
    out = {"displayTimeUnit": doc["displayTimeUnit"], "traceEvents": []}
    for e in sorted(
        doc["traceEvents"],
        key=lambda e: (str(e.get("ph")), float(e.get("ts", 0.0)),
                       str(e.get("name"))),
    ):
        e = dict(e)
        for key in ("ts", "dur"):
            if key in e:
                e[key] = 0
        e["pid"] = 0
        e["tid"] = 0
        out["traceEvents"].append(e)
    metrics = doc["otherData"]["metrics"]
    out["metrics"] = {
        "counters": metrics["counters"],
        # histogram timings vary run to run; keep only the exact counts
        "histogram_counts": {
            name: h["count"] for name, h in metrics["histograms"].items()
        },
    }
    return out


class TestExport:
    def test_events_from_spans_structure(self):
        tr = Tracer()
        with tr.span("sim.pass", t=1.0):
            pass
        events = events_from_spans(tr.records(), pid=7, process_name="p")
        meta, x = events
        assert meta == {
            "name": "process_name", "ph": "M", "pid": 7, "tid": 0,
            "args": {"name": "p"},
        }
        assert x["ph"] == "X" and x["cat"] == "sim"
        assert x["args"] == {"t": 1.0} and x["dur"] >= 0

    def test_write_load_roundtrip_and_bare_array(self, tmp_path):
        doc = {"traceEvents": [{"ph": "X", "name": "a"}],
               "displayTimeUnit": "ms", "otherData": {}}
        path = tmp_path / "sub" / "t.trace.json"  # parent auto-created
        write_trace_data(path, doc)
        assert load_trace(path)["traceEvents"] == doc["traceEvents"]
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(doc["traceEvents"]))
        assert load_trace(bare)["traceEvents"] == doc["traceEvents"]

    def test_merge_adds_counters_and_concatenates_events(self):
        docs = []
        for n in (2, 3):
            reg = MetricsRegistry()
            reg.counter("c").inc(n)
            obs = Observability(reg, Tracer())
            with obs.span("s"):
                pass
            docs.append(trace_data(obs, process_name=f"p{n}"))
        merged = merge_trace_data(docs)
        assert merged["otherData"]["metrics"]["counters"]["c"] == 5
        assert sum(
            1 for e in merged["traceEvents"] if e.get("ph") == "X"
        ) == 2

    def test_schedlog_events_use_sim_time_track(self):
        from repro.sim.schedlog import LogKind, SchedulerLog

        log = SchedulerLog()
        log.add(3600.0, LogKind.START, 7, nodes=64)
        events = events_from_schedlog(log.entries)
        assert events[0]["ph"] == "M"
        inst = events[1]
        assert inst["ph"] == "i" and inst["ts"] == 3600.0
        assert inst["args"]["job_id"] == 7

    def test_render_summary_lists_spans_and_counters(self):
        with enabled_obs() as obs:
            obs.counter("sim.events.processed").inc(3)
            obs.histogram("lat").observe(0.1)
            with obs.span("sim.pass"):
                pass
            doc = trace_data(obs)
        text = render_summary(doc)
        assert "sim.pass" in text
        assert "sim.events.processed" in text and "lat" in text
        assert render_summary({"traceEvents": [], "otherData": {}}).startswith(
            "(empty trace"
        )

    def test_golden_tiny_sim_trace(self):
        """A 3-job simulation exports a byte-stable (normalized) trace."""
        with enabled_obs() as obs:
            Simulation(
                tiny_trace(), cfg(), Mechanism.parse("CUP&SPAA")
            ).run()
            doc = trace_data(obs, process_name="tiny-sim")
        got = json.dumps(_normalize(doc), indent=2, sort_keys=True) + "\n"
        path = os.path.join(GOLDEN_DIR, "tiny_sim.trace.json")
        if os.environ.get("REPRO_UPDATE_GOLDEN"):
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(got)
            pytest.skip("golden tiny_sim.trace.json regenerated")
        assert os.path.exists(path), (
            "golden tiny_sim.trace.json missing — run with "
            "REPRO_UPDATE_GOLDEN=1"
        )
        with open(path, "r", encoding="utf-8") as fh:
            assert got == fh.read(), (
                "normalized trace drifted from golden; if the span/metric "
                "set changed intentionally, REPRO_UPDATE_GOLDEN=1 and "
                "review the diff"
            )


# ----------------------------------------------------------------------
# Simulator wiring
# ----------------------------------------------------------------------
class TestSimWiring:
    def test_disabled_run_records_nothing(self):
        disable()
        result = Simulation(tiny_trace(), cfg(), None).run()
        assert result.events_processed > 0
        assert get_obs().snapshot()["counters"] == {}

    def test_enabled_run_counts_match_result(self):
        with enabled_obs() as obs:
            result = Simulation(tiny_trace(), cfg(), None).run()
            counters = obs.snapshot()["counters"]
        assert counters["sim.events.processed"] == result.events_processed
        assert counters["sim.passes.run"] == result.schedule_passes
        assert counters.get("sim.passes.skipped", 0) == result.passes_skipped
        spans = {r.name for r in obs.tracer.records()}
        assert {"sim.run", "sim.pass"} <= spans

    def test_pass_spans_nest_under_run_span(self):
        with enabled_obs() as obs:
            Simulation(tiny_trace(), cfg(), None).run()
        by_name = {}
        for r in obs.tracer.records():
            by_name.setdefault(r.name, []).append(r)
        (run,) = by_name["sim.run"]
        assert run.depth == 0
        for p in by_name["sim.pass"]:
            assert p.depth == 1
            assert run.start_s <= p.start_s
            assert p.end_s <= run.end_s + 1e-9


# ----------------------------------------------------------------------
# Campaign + fleet wiring
# ----------------------------------------------------------------------
SMALL = {
    "name": "small",
    "days": 2,
    "target_load": 0.6,
    "system_size": 512,
    "mechanism": [None, "N&PAA"],
    "seeds": [1],
}


def small_spec() -> CampaignSpec:
    return CampaignSpec.from_dict(SMALL)


class TestCampaignCLI:
    def test_campaign_run_trace_end_to_end(self, tmp_path, capsys):
        """`campaign run --trace` on a 2-cell grid: the trace loads as a
        Chrome trace-event object and every sim.pass span is contained
        in a campaign.cell span."""
        from repro.experiments.cli import campaign_main

        trace_path = tmp_path / "run.trace.json"
        rc = campaign_main([
            "run", "--dir", str(tmp_path / "grid"),
            "--days", "2", "--nodes", "512", "--load", "0.6",
            "--mechanisms", "baseline", "N&PAA", "--seeds", "1",
            "--trace", str(trace_path),
            "--log-decisions", str(tmp_path / "logs"),
        ])
        disable()  # campaign_main enabled the process-global bundle
        assert rc == 0
        doc = load_trace(trace_path)
        x = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        cells = [e for e in x if e["name"] == "campaign.cell"]
        passes = [e for e in x if e["name"] == "sim.pass"]
        assert len(cells) == 2 and passes
        for p in passes:
            assert any(
                c["pid"] == p["pid"]
                and c["ts"] <= p["ts"] + 1e-6
                and p["ts"] + p["dur"] <= c["ts"] + c["dur"] + 1e-6
                for c in cells
            ), "sim.pass span not nested in any campaign.cell span"
        counters = doc["otherData"]["metrics"]["counters"]
        assert counters["campaign.cells.run"] == 2
        assert counters["sim.passes.run"] > 0
        # --log-decisions wrote one JSONL per simulated cell
        logs = sorted((tmp_path / "logs").glob("*.jsonl"))
        assert len(logs) == 2

    def test_obs_summary_cli(self, tmp_path, capsys):
        from repro.experiments.cli import obs_main

        with enabled_obs() as obs:
            obs.counter("sim.events.processed").inc(9)
            with obs.span("sim.pass"):
                pass
            doc = trace_data(obs)
        path = tmp_path / "t.trace.json"
        write_trace_data(path, doc)
        assert obs_main(["summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "sim.pass" in out and "sim.events.processed" in out

    def test_obs_from_decisions_cli(self, tmp_path, capsys):
        from repro.experiments.cli import obs_main
        from repro.sim.schedlog import LogKind, SchedulerLog

        log = SchedulerLog()
        log.add(10.0, LogKind.SUBMIT, 1)
        log.add(20.0, LogKind.START, 1, nodes=4)
        src = tmp_path / "d.jsonl"
        log.write_jsonl(src)
        out = tmp_path / "d.trace.json"
        assert obs_main(["from-decisions", str(src), "-o", str(out)]) == 0
        doc = load_trace(out)
        inst = [e for e in doc["traceEvents"] if e.get("ph") == "i"]
        assert [e["ts"] for e in inst] == [10.0, 20.0]


class TestWorkerLeaseHygiene:
    def test_lease_released_when_cell_raises(self, tmp_path, monkeypatch):
        """A worker whose cell execution raises still drops its lease in
        the finally, so peers are not stalled for a whole TTL."""
        ResultStore(tmp_path).write_spec(small_spec().to_dict())

        def boom(config, log_dir=None):
            raise OSError("disk full")

        monkeypatch.setattr(
            "repro.campaign.executor.execute_cell", boom
        )
        with pytest.raises(OSError):
            run_worker(str(tmp_path), shard="s0", ttl_s=60, wait=False)
        board = LeaseBoard(tmp_path, owner="probe", ttl_s=60)
        for cell in small_spec().expand():
            assert board.acquire(cell.key()), (
                "lease still held after the worker raised"
            )
            board.release(cell.key())
            break  # the worker raises on its first claimed cell

    def test_eviction_counter_when_release_fails(self, tmp_path, monkeypatch):
        """A lease evicted mid-cell (TTL stall) is counted when the
        worker's final release comes back empty-handed."""
        ResultStore(tmp_path).write_spec(small_spec().to_dict())
        from repro.campaign.executor import execute_cell as real

        def steal_then_run(config, log_dir=None):
            # simulate a peer evicting our expired lease mid-cell
            for lease in (tmp_path / "leases").glob("*"):
                lease.unlink()
            return real(config, log_dir=log_dir)

        monkeypatch.setattr(
            "repro.campaign.executor.execute_cell", steal_then_run
        )
        with enabled_obs() as obs:
            summary = run_worker(
                str(tmp_path), shard="s0", ttl_s=60, wait=False
            )
            evictions = (
                obs.registry.counter("distrib.lease.evictions").value
            )
        assert summary.n_executed == len(list(small_spec().expand()))
        assert evictions == summary.n_executed
