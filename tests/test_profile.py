"""Unit tests for the incremental availability layer (sched/profile)."""

import math

import pytest

from repro.sched.profile import (
    AvailabilityProfile,
    AvailabilityTimeline,
    ProfileView,
)
from repro.util.errors import InvariantViolation
from repro.util.rng import RngStreams


class TestAvailabilityTimeline:
    def test_releases_sorted_by_time_then_nodes(self):
        tl = AvailabilityTimeline()
        tl.set_block(1, 500.0, 30)
        tl.set_block(2, 100.0, 10)
        tl.set_block(3, 500.0, 5)
        assert list(tl.releases()) == [(100.0, 10), (500.0, 5), (500.0, 30)]

    def test_set_block_moves_an_existing_block(self):
        tl = AvailabilityTimeline()
        tl.set_block(1, 500.0, 30)
        tl.set_block(1, 900.0, 20)  # resize + new predicted finish
        assert list(tl.releases()) == [(900.0, 20)]
        assert len(tl) == 1

    def test_remove_block(self):
        tl = AvailabilityTimeline()
        tl.set_block(1, 500.0, 30)
        tl.set_block(2, 700.0, 10)
        tl.remove_block(1)
        assert list(tl.releases()) == [(700.0, 10)]

    def test_remove_unknown_block_raises(self):
        tl = AvailabilityTimeline()
        with pytest.raises(InvariantViolation):
            tl.remove_block(42)

    def test_equal_blocks_from_different_jobs_coexist(self):
        tl = AvailabilityTimeline()
        tl.set_block(1, 500.0, 30)
        tl.set_block(2, 500.0, 30)
        assert list(tl.releases()) == [(500.0, 30), (500.0, 30)]
        tl.remove_block(1)
        assert list(tl.releases()) == [(500.0, 30)]

    def test_validate_against_detects_drift(self):
        tl = AvailabilityTimeline()
        tl.set_block(1, 500.0, 30)
        tl.validate_against({1: (500.0, 30)})
        with pytest.raises(InvariantViolation, match="drifted"):
            tl.validate_against({1: (500.0, 31)})
        with pytest.raises(InvariantViolation, match="missing"):
            tl.validate_against({1: (500.0, 30), 2: (9.0, 1)})
        with pytest.raises(InvariantViolation, match="stale"):
            tl.validate_against({})

    def test_random_op_sequence_matches_rebuild(self):
        """Incremental upkeep == from-scratch sort, for any op sequence."""
        rng = RngStreams(123).get("profile-fuzz")
        tl = AvailabilityTimeline()
        shadow = {}
        for _ in range(500):
            op = rng.choice(["set", "move", "remove"])
            if op == "remove" and shadow:
                key = int(rng.choice(sorted(shadow)))
                del shadow[key]
                tl.remove_block(key)
            elif op == "move" and shadow:
                key = int(rng.choice(sorted(shadow)))
                block = (float(rng.uniform(0, 1e4)), int(rng.integers(1, 64)))
                shadow[key] = block
                tl.set_block(key, *block)
            else:
                key = int(rng.integers(0, 40))
                block = (float(rng.uniform(0, 1e4)), int(rng.integers(1, 64)))
                shadow[key] = block
                tl.set_block(key, *block)
            expected = sorted(
                (t, n, k) for k, (t, n) in shadow.items()
            )
            assert [(t, n) for t, n, _ in expected] == list(tl.releases())
            tl.validate_against(shadow)


class TestProfileView:
    def test_shadow_matches_brute_force(self):
        rng = RngStreams(7).get("shadow-fuzz")
        for _ in range(200):
            n_blocks = int(rng.integers(0, 12))
            blocks = [
                (float(rng.uniform(0, 5e3)), int(rng.integers(1, 50)))
                for _ in range(n_blocks)
            ]
            free = int(rng.integers(0, 60))
            need = int(rng.integers(1, 120))
            now = float(rng.uniform(0, 100))

            # brute force: the seed's _shadow loop
            def brute():
                if need <= free:
                    return now, free - need
                avail = free
                for release, nodes in sorted(blocks):
                    avail += nodes
                    if avail >= need:
                        return max(release, now), avail - need
                return math.inf, avail - need

            tl = AvailabilityTimeline()
            for i, (t, n) in enumerate(blocks):
                tl.set_block(i, t, n)
            for view in (
                ProfileView.from_blocks(now, free, blocks),
                ProfileView(now, free, timeline=tl),
            ):
                info = view.shadow(need)
                assert (info.time, info.extra_nodes) == brute()

    def test_overlay_merges_in_time_nodes_order(self):
        tl = AvailabilityTimeline()
        tl.set_block(1, 100.0, 5)
        tl.set_block(2, 300.0, 10)
        view = ProfileView(
            0.0, 0, timeline=tl, overlay=[(200.0, 7), (300.0, 4)]
        )
        assert list(view.releases()) == [
            (100.0, 5),
            (200.0, 7),
            (300.0, 4),
            (300.0, 10),
        ]

    def test_build_profile_equals_full_constructor(self):
        rng = RngStreams(99).get("profile-build")
        for _ in range(100):
            n_blocks = int(rng.integers(0, 15))
            blocks = [
                (float(rng.uniform(-50, 5e3)), int(rng.integers(1, 50)))
                for _ in range(n_blocks)
            ]
            free = int(rng.integers(0, 60))
            now = float(rng.uniform(0, 100))
            full = AvailabilityProfile(now, free, blocks)
            tl = AvailabilityTimeline()
            for i, (t, n) in enumerate(blocks):
                tl.set_block(i, t, n)
            fast = ProfileView(now, free, timeline=tl).build_profile()
            assert full.times == fast.times
            assert full.avail == fast.avail

    def test_static_view_ignores_timeline(self):
        view = ProfileView.from_blocks(0.0, 10, [(5.0, 3), (1.0, 2)])
        assert list(view.releases()) == [(1.0, 2), (5.0, 3)]


class TestAvailabilityProfileMoved:
    """The step-function profile now lives in sched.profile; the
    conservative module re-exports it (original tests remain in
    test_conservative.py)."""

    def test_reexport_is_same_class(self):
        from repro.sched.conservative import (
            AvailabilityProfile as FromConservative,
        )

        assert FromConservative is AvailabilityProfile

    def test_insert_breakpoint_bisect_semantics(self):
        p = AvailabilityProfile(0.0, 50, [(100.0, 10)])
        p.reserve(50.0, 25.0, 20)  # new breakpoints at 50 and 75
        assert p.times == [0.0, 50.0, 75.0, 100.0]
        assert p.avail == [50, 30, 50, 60]
        # re-reserving on an existing breakpoint adds no duplicate
        p.reserve(50.0, 25.0, 5)
        assert p.times == [0.0, 50.0, 75.0, 100.0]
        assert p.avail == [50, 25, 50, 60]
