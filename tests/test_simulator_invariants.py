"""Fuzz tests: random small traces under every mechanism, with the
simulator's cross-component invariant validation enabled.

These catch node-accounting leaks, event staleness bugs, and work
conservation violations that hand-built scenarios miss.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.mechanisms import ALL_MECHANISMS, Mechanism
from repro.jobs.checkpoint import CheckpointModel
from repro.jobs.job import Job, JobState, JobType, NoticeClass
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulation
from repro.util.rng import RngStreams

SYSTEM = 64


def random_trace(seed: int, n_jobs: int) -> list:
    """A small random mixed trace on a 64-node machine."""
    rng = RngStreams(seed).get("fuzz")
    jobs = []
    t = 0.0
    for i in range(n_jobs):
        t += float(rng.exponential(300.0))
        kind = rng.choice(["rigid", "malleable", "ondemand"], p=[0.5, 0.3, 0.2])
        size = int(rng.integers(1, SYSTEM + 1))
        runtime = float(rng.uniform(60.0, 4000.0))
        estimate = runtime * float(rng.uniform(1.0, 2.0))
        if kind == "rigid":
            jobs.append(
                Job(
                    job_id=i,
                    job_type=JobType.RIGID,
                    submit_time=t,
                    size=size,
                    runtime=runtime,
                    estimate=estimate,
                    setup_time=float(rng.uniform(0, 0.1)) * runtime,
                )
            )
        elif kind == "malleable":
            jobs.append(
                Job(
                    job_id=i,
                    job_type=JobType.MALLEABLE,
                    submit_time=t,
                    size=size,
                    min_size=max(1, int(0.2 * size)),
                    runtime=runtime,
                    estimate=estimate,
                    setup_time=float(rng.uniform(0, 0.05)) * runtime,
                )
            )
        else:
            size = min(size, SYSTEM // 2)
            cls = rng.choice(["none", "accurate", "early", "late"])
            notice = estimated = None
            submit = t
            if cls != "none":
                lead = float(rng.uniform(900.0, 1800.0))
                estimated = t
                notice = max(0.0, estimated - lead)
                if cls == "early":
                    submit = float(rng.uniform(notice, estimated))
                elif cls == "late":
                    submit = estimated + float(rng.uniform(0.0, 1800.0))
            jobs.append(
                Job(
                    job_id=i,
                    job_type=JobType.ONDEMAND,
                    submit_time=submit,
                    size=size,
                    runtime=runtime,
                    estimate=estimate,
                    notice_class=NoticeClass(cls),
                    notice_time=notice,
                    estimated_arrival=estimated,
                )
            )
    return jobs


def check_run(jobs, mechanism, policy=None):
    config = SimConfig(
        system_size=SYSTEM,
        checkpoint=CheckpointModel(node_mtbf_s=1.0, min_interval_s=900.0),
        validate_invariants=True,
    )
    result = Simulation(jobs, config, mechanism, policy=policy).run()

    # 1. every job completed exactly once
    assert all(j.state is JobState.COMPLETED for j in result.jobs)

    # 2. work conservation: retained compute == the job's demand
    for j in result.jobs:
        expected = j.work_node_seconds if j.is_malleable else j.runtime * j.size
        assert j.stats.retained_node_seconds == pytest.approx(expected, rel=1e-6), (
            f"job {j.job_id} ({j.job_type.value}) retained "
            f"{j.stats.retained_node_seconds} != {expected}"
        )

    # 3. allocation decomposition per job
    for j in result.jobs:
        st_ = j.stats
        total = (
            st_.retained_node_seconds
            + st_.lost_node_seconds
            + st_.setup_node_seconds
            + st_.checkpoint_node_seconds
        )
        assert st_.allocated_node_seconds == pytest.approx(total, rel=1e-6, abs=1e-3)

    # 4. on-demand jobs are never preempted or shrunk
    for j in result.jobs:
        if j.is_ondemand:
            assert j.stats.preemptions == 0
            assert j.stats.shrinks == 0

    # 5. timeline sanity
    for j in result.jobs:
        assert j.stats.first_start is not None
        assert j.stats.first_start >= j.submit_time - 1e-6
        assert j.stats.end_time > j.stats.first_start - 1e-6

    # 6. capacity: at no point did allocations exceed the machine — implied
    # by cluster invariants (validate_invariants), plus global node-seconds:
    alloc = sum(j.stats.allocated_node_seconds for j in result.jobs)
    assert alloc <= SYSTEM * result.makespan * (1 + 1e-9)
    return result


@pytest.mark.parametrize("mechanism", [None, *ALL_MECHANISMS],
                         ids=lambda m: m.name if m else "baseline")
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_traces_all_mechanisms(mechanism, seed):
    jobs = random_trace(seed * 7 + 1, n_jobs=60)
    check_run(jobs, mechanism)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    mech_idx=st.integers(min_value=0, max_value=len(ALL_MECHANISMS) - 1),
    n_jobs=st.integers(min_value=5, max_value=40),
)
def test_hypothesis_fuzz(seed, mech_idx, n_jobs):
    jobs = random_trace(seed, n_jobs=n_jobs)
    check_run(jobs, ALL_MECHANISMS[mech_idx])


def test_dense_ondemand_storm():
    """Many overlapping on-demand jobs force queueing + lease churn."""
    rng = RngStreams(99).get("storm")
    jobs = []
    jobs.append(
        Job(
            job_id=0,
            job_type=JobType.MALLEABLE,
            submit_time=0.0,
            size=SYSTEM,
            min_size=8,
            runtime=20000.0,
            estimate=30000.0,
        )
    )
    for i in range(1, 25):
        jobs.append(
            Job(
                job_id=i,
                job_type=JobType.ONDEMAND,
                submit_time=float(rng.uniform(100.0, 5000.0)),
                size=int(rng.integers(8, 40)),
                runtime=float(rng.uniform(100.0, 2000.0)),
                estimate=3000.0,
            )
        )
    for mech in ALL_MECHANISMS:
        check_run([Job(**{f: getattr(j, f) for f in (
            "job_id", "job_type", "submit_time", "size", "runtime",
            "estimate", "setup_time", "min_size", "project",
            "notice_class", "notice_time", "estimated_arrival")})
            for j in jobs], mech)


def test_simultaneous_events_deterministic():
    """Identical traces give bit-identical results across runs."""
    jobs1 = random_trace(5, 50)
    jobs2 = random_trace(5, 50)
    r1 = check_run(jobs1, Mechanism.parse("CUP&SPAA"))
    r2 = check_run(jobs2, Mechanism.parse("CUP&SPAA"))
    for a, b in zip(r1.jobs, r2.jobs):
        assert a.stats.end_time == b.stats.end_time
        assert a.stats.first_start == b.stats.first_start
        assert a.stats.preemptions == b.stats.preemptions


def test_checkpointing_disabled_also_safe():
    jobs = random_trace(11, 40)
    config = SimConfig(
        system_size=SYSTEM,
        checkpoint=CheckpointModel.disabled(),
        validate_invariants=True,
    )
    result = Simulation(jobs, config, Mechanism.parse("CUA&SPAA")).run()
    assert all(j.state is JobState.COMPLETED for j in result.jobs)
    # checkpoint time is zero up to float residue of the accounting algebra
    assert all(j.stats.checkpoint_node_seconds < 1e-6 for j in result.jobs)
