"""Unit + property tests for the malleable linear-speedup execution model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.jobs.job import Job, JobType
from repro.jobs.malleable_exec import MalleableExecution
from repro.util.errors import InvariantViolation


def mjob(size=100, min_size=20, runtime=3600.0, setup=100.0, estimate=None):
    return Job(
        job_id=5,
        job_type=JobType.MALLEABLE,
        submit_time=0.0,
        size=size,
        min_size=min_size,
        runtime=runtime,
        estimate=estimate if estimate is not None else runtime * 1.5,
        setup_time=setup,
    )


class TestBasics:
    def test_only_malleable_accepted(self):
        j = Job(
            job_id=1,
            job_type=JobType.RIGID,
            submit_time=0.0,
            size=10,
            runtime=100.0,
            estimate=100.0,
        )
        with pytest.raises(ValueError):
            MalleableExecution(j)

    def test_finish_time_at_max_size(self):
        ex = MalleableExecution(mjob())
        ex.start_segment(0.0, 100)
        # setup 100 + work 360000/100
        assert ex.finish_time() == pytest.approx(100.0 + 3600.0)

    def test_finish_time_at_min_size(self):
        ex = MalleableExecution(mjob())
        ex.start_segment(0.0, 20)
        assert ex.finish_time() == pytest.approx(100.0 + 3600.0 * 100 / 20)

    def test_start_size_bounds(self):
        ex = MalleableExecution(mjob())
        with pytest.raises(InvariantViolation):
            ex.start_segment(0.0, 10)
        with pytest.raises(InvariantViolation):
            ex.start_segment(0.0, 150)

    def test_complete_lifecycle_accounting(self):
        ex = MalleableExecution(mjob())
        ex.start_segment(0.0, 100)
        acc = ex.complete(ex.finish_time())
        acc.validate()
        assert acc.compute == pytest.approx(360000.0)
        assert acc.setup == pytest.approx(100.0 * 100)

    def test_complete_wrong_time_rejected(self):
        ex = MalleableExecution(mjob())
        ex.start_segment(0.0, 100)
        with pytest.raises(InvariantViolation):
            ex.complete(ex.finish_time() - 50.0)


class TestResize:
    def test_shrink_conserves_work(self):
        ex = MalleableExecution(mjob())
        ex.start_segment(0.0, 100)
        # run 100 setup + 1000s compute at 100 nodes = 100k node-s done
        ex.resize(1100.0, 50)
        assert ex.work_remaining == pytest.approx(360000.0 - 100000.0)
        assert ex.finish_time() == pytest.approx(1100.0 + 260000.0 / 50)

    def test_expand_shortens_finish(self):
        ex = MalleableExecution(mjob(min_size=10))
        ex.start_segment(0.0, 50)
        before = ex.finish_time()
        ex.resize(500.0, 100)
        assert ex.finish_time() < before

    def test_resize_delta_sign(self):
        ex = MalleableExecution(mjob())
        ex.start_segment(0.0, 100)
        assert ex.resize(200.0, 60) == -40
        assert ex.resize(300.0, 80) == 20

    def test_resize_during_setup(self):
        """Setup progress is wall-clock and unaffected by the size change."""
        ex = MalleableExecution(mjob())
        ex.start_segment(0.0, 100)
        ex.resize(50.0, 20)  # mid-setup
        assert ex.setup_remaining == pytest.approx(50.0)
        assert ex.finish_time() == pytest.approx(50.0 + 50.0 + 360000.0 / 20)

    def test_resize_bounds(self):
        ex = MalleableExecution(mjob())
        ex.start_segment(0.0, 100)
        with pytest.raises(InvariantViolation):
            ex.resize(10.0, 10)

    def test_time_backwards_rejected(self):
        ex = MalleableExecution(mjob())
        ex.start_segment(0.0, 100)
        ex.resize(500.0, 50)
        with pytest.raises(InvariantViolation):
            ex.resize(400.0, 60)

    def test_shrinkable_nodes(self):
        ex = MalleableExecution(mjob())
        assert ex.shrinkable_nodes() == 0  # not running
        ex.start_segment(0.0, 100)
        assert ex.shrinkable_nodes() == 80
        ex.resize(10.0, 20)
        assert ex.shrinkable_nodes() == 0


class TestPreemption:
    def test_preempt_loses_no_work(self):
        ex = MalleableExecution(mjob())
        ex.start_segment(0.0, 100)
        acc = ex.preempt(1100.0)  # 1000s of compute done
        acc.validate()
        assert acc.lost_setup == 0.0
        assert ex.work_remaining == pytest.approx(260000.0)
        # resume: full setup again, work continues
        ex.start_segment(5000.0, 50)
        assert ex.finish_time() == pytest.approx(5000.0 + 100.0 + 260000.0 / 50)

    def test_preempt_mid_setup_wastes_partial_setup(self):
        ex = MalleableExecution(mjob())
        ex.start_segment(0.0, 100)
        acc = ex.preempt(40.0)
        assert acc.lost_setup == pytest.approx(40.0 * 100)
        assert ex.work_remaining == pytest.approx(360000.0)

    def test_preemption_loss_key(self):
        ex = MalleableExecution(mjob())
        ex.start_segment(0.0, 100)
        # after setup: loss = setup already spent + setup to re-pay
        assert ex.preemption_loss(1100.0) == pytest.approx(2 * 100.0 * 100)

    def test_ops_require_running(self):
        ex = MalleableExecution(mjob())
        for op in (
            lambda: ex.finish_time(),
            lambda: ex.preempt(0.0),
            lambda: ex.resize(0.0, 50),
            lambda: ex.complete(0.0),
        ):
            with pytest.raises(InvariantViolation):
                op()

    def test_predicted_finish_never_early(self):
        ex = MalleableExecution(mjob())
        ex.start_segment(0.0, 100)
        assert ex.predicted_finish() >= ex.finish_time()
        ex.resize(1000.0, 30)
        assert ex.predicted_finish() >= ex.finish_time()


@settings(max_examples=150, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=20, max_value=100), min_size=1, max_size=6),
    gaps=st.lists(
        st.floats(min_value=1.0, max_value=5000.0), min_size=6, max_size=6
    ),
)
def test_work_conserved_across_resizes_and_preemptions(sizes, gaps):
    """Arbitrary resize/preempt sequences never create or destroy work."""
    job = mjob()
    ex = MalleableExecution(job)
    t = 0.0
    done = 0.0
    ex.start_segment(t, sizes[0])
    for i, size in enumerate(sizes[1:], start=1):
        t += min(gaps[i % len(gaps)], max(1.0, (ex.finish_time() - t) * 0.3))
        if i % 3 == 2:
            acc = ex.preempt(t)
            acc.validate()
            done += acc.compute
            t += 10.0
            ex.start_segment(t, size)
        else:
            ex.resize(t, size)
    ft = ex.finish_time()
    acc = ex.complete(ft)
    acc.validate()
    done += acc.compute
    assert done == pytest.approx(job.work_node_seconds, rel=1e-9)
