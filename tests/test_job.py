"""Unit tests for the Job model: validation, state machine, derived values."""

import math

import pytest

from repro.jobs.job import Job, JobState, JobType, NoticeClass
from repro.util.errors import ConfigurationError


def rigid(job_id=0, **kw):
    base = dict(
        job_id=job_id,
        job_type=JobType.RIGID,
        submit_time=0.0,
        size=128,
        runtime=3600.0,
        estimate=7200.0,
    )
    base.update(kw)
    return Job(**base)


def malleable(job_id=0, **kw):
    base = dict(
        job_id=job_id,
        job_type=JobType.MALLEABLE,
        submit_time=0.0,
        size=100,
        min_size=20,
        runtime=3600.0,
        estimate=7200.0,
    )
    base.update(kw)
    return Job(**base)


def ondemand(job_id=0, **kw):
    base = dict(
        job_id=job_id,
        job_type=JobType.ONDEMAND,
        submit_time=1800.0,
        size=64,
        runtime=600.0,
        estimate=1200.0,
    )
    base.update(kw)
    return Job(**base)


class TestValidation:
    def test_estimate_below_runtime_rejected(self):
        with pytest.raises(ConfigurationError):
            rigid(estimate=100.0, runtime=3600.0)

    def test_estimate_equal_runtime_ok(self):
        assert rigid(estimate=3600.0).estimate == 3600.0

    @pytest.mark.parametrize(
        "kw",
        [
            {"size": 0},
            {"runtime": 0},
            {"runtime": -5},
            {"setup_time": -1},
            {"submit_time": -1},
            {"job_id": -1},
        ],
    )
    def test_bad_scalars(self, kw):
        with pytest.raises(ConfigurationError):
            rigid(**kw)

    def test_malleable_requires_min_size(self):
        with pytest.raises(ConfigurationError):
            malleable(min_size=None)

    @pytest.mark.parametrize("min_size", [0, 101, -1])
    def test_malleable_min_size_bounds(self, min_size):
        with pytest.raises(ConfigurationError):
            malleable(min_size=min_size)

    def test_rigid_with_min_size_rejected(self):
        with pytest.raises(ConfigurationError):
            rigid(min_size=64)

    def test_rigid_min_size_equal_size_tolerated(self):
        assert rigid(min_size=128).smallest_size == 128

    def test_notice_only_for_ondemand(self):
        with pytest.raises(ConfigurationError):
            rigid(notice_class=NoticeClass.ACCURATE)

    def test_od_notice_requires_fields(self):
        with pytest.raises(ConfigurationError):
            ondemand(notice_class=NoticeClass.ACCURATE)

    def test_od_notice_after_arrival_rejected(self):
        with pytest.raises(ConfigurationError):
            ondemand(
                notice_class=NoticeClass.ACCURATE,
                notice_time=2000.0,
                estimated_arrival=1800.0,
            )

    def test_od_valid_notice(self):
        j = ondemand(
            notice_class=NoticeClass.ACCURATE,
            notice_time=900.0,
            estimated_arrival=1800.0,
        )
        assert j.notice_time == 900.0


class TestDerived:
    def test_work_node_seconds(self):
        assert malleable().work_node_seconds == 3600.0 * 100

    def test_runtime_at_linear_speedup(self):
        j = malleable()
        assert j.runtime_at(100) == pytest.approx(3600.0)
        assert j.runtime_at(50) == pytest.approx(7200.0)
        assert j.runtime_at(20) == pytest.approx(18000.0)

    def test_runtime_at_out_of_range(self):
        j = malleable()
        with pytest.raises(ValueError):
            j.runtime_at(10)
        with pytest.raises(ValueError):
            j.runtime_at(200)

    def test_rigid_runtime_at_fixed(self):
        j = rigid()
        assert j.runtime_at(128) == 3600.0
        with pytest.raises(ValueError):
            j.runtime_at(64)

    def test_estimate_at(self):
        j = malleable()
        assert j.estimate_at(50) == pytest.approx(7200.0 * 100 / 50)
        with pytest.raises(ValueError):
            rigid().estimate_at(64)

    def test_smallest_size(self):
        assert rigid().smallest_size == 128
        assert malleable().smallest_size == 20
        assert ondemand().smallest_size == 64

    def test_type_flags(self):
        assert rigid().is_rigid and not rigid().is_malleable
        assert malleable().is_malleable
        assert ondemand().is_ondemand

    def test_turnaround_nan_until_done(self):
        j = rigid()
        assert math.isnan(j.turnaround)
        j.stats.end_time = 5000.0
        assert j.turnaround == 5000.0

    def test_start_delay(self):
        j = ondemand()
        assert math.isnan(j.start_delay)
        j.stats.first_start = 1800.0
        assert j.start_delay == 0.0


class TestStateMachine:
    def test_normal_path(self):
        j = rigid()
        j.set_state(JobState.QUEUED)
        j.set_state(JobState.RUNNING)
        j.set_state(JobState.COMPLETED)

    def test_preemption_cycle(self):
        j = rigid()
        j.set_state(JobState.QUEUED)
        j.set_state(JobState.RUNNING)
        j.set_state(JobState.QUEUED)
        j.set_state(JobState.RUNNING)
        j.set_state(JobState.COMPLETED)

    def test_notice_path(self):
        j = ondemand(
            notice_class=NoticeClass.ACCURATE,
            notice_time=900.0,
            estimated_arrival=1800.0,
        )
        j.set_state(JobState.NOTICED)
        j.set_state(JobState.QUEUED)

    @pytest.mark.parametrize(
        "path",
        [
            [JobState.RUNNING],
            [JobState.COMPLETED],
            [JobState.QUEUED, JobState.COMPLETED],
            [JobState.QUEUED, JobState.RUNNING, JobState.NOTICED],
        ],
    )
    def test_illegal_transitions(self, path):
        j = rigid()
        with pytest.raises(ConfigurationError):
            for state in path:
                j.set_state(state)

    def test_completed_is_terminal(self):
        j = rigid()
        j.set_state(JobState.QUEUED)
        j.set_state(JobState.RUNNING)
        j.set_state(JobState.COMPLETED)
        with pytest.raises(ConfigurationError):
            j.set_state(JobState.QUEUED)


class TestStats:
    def test_waste_accounting(self):
        j = rigid()
        j.stats.lost_node_seconds = 100.0
        j.stats.wasted_setup_node_seconds = 50.0
        assert j.stats.waste_node_seconds == 150.0
