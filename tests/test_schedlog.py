"""Tests for the opt-in scheduler decision log."""

import pytest

from repro.core.mechanisms import Mechanism
from repro.jobs.checkpoint import CheckpointModel
from repro.jobs.job import Job, JobType, NoticeClass
from repro.sim.config import SimConfig
from repro.sim.schedlog import LogKind, SchedulerLog
from repro.sim.simulator import Simulation


def cfg(log=True):
    return SimConfig(
        system_size=100,
        checkpoint=CheckpointModel.disabled(),
        log_decisions=log,
        validate_invariants=True,
    )


def trace():
    return [
        Job(job_id=1, job_type=JobType.RIGID, submit_time=0.0, size=100,
            runtime=10000.0, estimate=12000.0, setup_time=100.0),
        Job(job_id=2, job_type=JobType.ONDEMAND, submit_time=5000.0, size=40,
            runtime=1000.0, estimate=1000.0,
            notice_class=NoticeClass.ACCURATE, notice_time=3500.0,
            estimated_arrival=5000.0),
        Job(job_id=3, job_type=JobType.MALLEABLE, submit_time=11000.0,
            size=60, min_size=12, runtime=500.0, estimate=500.0),
    ]


class TestLogObject:
    def test_disabled_log_records_nothing(self):
        log = SchedulerLog(enabled=False)
        log.add(1.0, LogKind.START, 1)
        assert len(log) == 0

    def test_query_helpers(self):
        log = SchedulerLog()
        log.add(1.0, LogKind.START, 1, nodes=10)
        log.add(2.0, LogKind.FINISH, 1, nodes=10)
        log.add(3.0, LogKind.START, 2, nodes=5)
        assert [e.kind for e in log.for_job(1)] == [LogKind.START, LogKind.FINISH]
        assert len(log.of_kind(LogKind.START)) == 2
        assert len(list(log.between(1.5, 3.5))) == 2

    def test_render(self):
        log = SchedulerLog()
        log.add(3600.0, LogKind.PREEMPT, 7, nodes=64, detail="paa-arrival")
        text = log.render()
        assert "preempt" in text and "job=7" in text and "paa-arrival" in text

    def test_render_limit(self):
        log = SchedulerLog()
        for i in range(10):
            log.add(float(i), LogKind.SUBMIT, i)
        text = log.render(limit=3)
        assert "7 more entries" in text


class TestSimulationLogging:
    def test_off_by_default(self):
        res = Simulation(trace(), cfg(log=False), Mechanism.parse("N&PAA")).run()
        assert res.log is None

    def test_full_lifecycle_recorded(self):
        res = Simulation(trace(), cfg(), Mechanism.parse("N&PAA")).run()
        log = res.log
        assert log is not None
        kinds = {e.kind for e in log.entries}
        assert LogKind.SUBMIT in kinds
        assert LogKind.NOTICE in kinds
        assert LogKind.START in kinds
        assert LogKind.FINISH in kinds
        assert LogKind.PREEMPT in kinds  # od preempts the rigid job

    def test_preempt_reason_recorded(self):
        res = Simulation(trace(), cfg(), Mechanism.parse("N&PAA")).run()
        preempts = res.log.of_kind(LogKind.PREEMPT)
        assert preempts and preempts[0].detail == "paa-arrival"
        assert preempts[0].job_id == 1

    def test_job_history_is_ordered_and_complete(self):
        res = Simulation(trace(), cfg(), Mechanism.parse("N&PAA")).run()
        history = res.log.for_job(1)
        kinds = [e.kind for e in history]
        # submit -> start -> preempt -> start(resume) -> finish
        assert kinds == [
            LogKind.SUBMIT,
            LogKind.START,
            LogKind.PREEMPT,
            LogKind.START,
            LogKind.FINISH,
        ]
        times = [e.time for e in history]
        assert times == sorted(times)
        assert history[3].detail == "resume"

    def test_shrink_expand_logged_under_spaa(self):
        jobs = [
            Job(job_id=1, job_type=JobType.MALLEABLE, submit_time=0.0,
                size=100, min_size=20, runtime=2000.0, estimate=2000.0),
            Job(job_id=2, job_type=JobType.ONDEMAND, submit_time=500.0,
                size=40, runtime=1000.0, estimate=1000.0),
        ]
        res = Simulation(jobs, cfg(), Mechanism.parse("N&SPAA")).run()
        assert res.log.of_kind(LogKind.SHRINK)
        assert res.log.of_kind(LogKind.EXPAND)
        shrink = res.log.of_kind(LogKind.SHRINK)[0]
        assert shrink.job_id == 1 and shrink.nodes == 40
