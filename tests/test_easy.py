"""Unit tests for the EASY backfill planner on hand-built scenarios."""

import math

import pytest

from repro.jobs.job import Job, JobType
from repro.sched.easy import BackfillPlanner
from repro.sched.profile import ProfileView


def rigid(job_id, size, estimate=1000.0, submit=0.0):
    return Job(
        job_id=job_id,
        job_type=JobType.RIGID,
        submit_time=submit,
        size=size,
        runtime=estimate,
        estimate=estimate,
    )


def malleable(job_id, size, min_size, estimate=1000.0):
    return Job(
        job_id=job_id,
        job_type=JobType.MALLEABLE,
        submit_time=0.0,
        size=size,
        min_size=min_size,
        runtime=estimate,
        estimate=estimate,
    )


def flat_wall(job, nodes):
    """Simple wall predictor: estimate scaled by the malleable size."""
    if job.is_malleable:
        return job.estimate * job.size / nodes
    return job.estimate


def plan(queue, free, loanable=(), blocks=(), planner=None, now=0.0):
    planner = planner or BackfillPlanner()
    return planner.plan(
        profile=ProfileView.from_blocks(now, free, list(blocks)),
        ordered_queue=queue,
        loanable=list(loanable),
        predict_wall=flat_wall,
    )


class TestHeadStarts:
    def test_starts_in_order_while_fitting(self):
        ds = plan([rigid(1, 30), rigid(2, 40), rigid(3, 40)], free=80)
        assert [(d.job.job_id, d.nodes) for d in ds] == [(1, 30), (2, 40)]
        assert not ds[0].backfilled

    def test_empty_queue(self):
        assert plan([], free=100) == []

    def test_head_blocks_when_too_big(self):
        ds = plan([rigid(1, 100)], free=50)
        assert ds == []

    def test_malleable_head_starts_at_available(self):
        ds = plan([malleable(1, 100, 20)], free=60)
        assert ds[0].nodes == 60

    def test_malleable_head_capped_at_max(self):
        ds = plan([malleable(1, 100, 20)], free=300)
        assert ds[0].nodes == 100

    def test_malleable_below_min_blocks(self):
        ds = plan([malleable(1, 100, 20)], free=10)
        assert ds == []

    def test_inflexible_malleable_needs_full_size(self):
        planner = BackfillPlanner(flexible_malleable=False)
        ds = plan([malleable(1, 100, 20)], free=60, planner=planner)
        assert ds == []
        ds = plan([malleable(1, 100, 20)], free=100, planner=planner)
        assert ds[0].nodes == 100


class TestBackfill:
    def test_short_job_backfills_within_window(self):
        # Head needs 100; one running job (80 nodes) ends at t=2000.
        queue = [rigid(1, 100, estimate=5000.0), rigid(2, 30, estimate=1000.0)]
        ds = plan(queue, free=40, blocks=[(2000.0, 80)])
        assert [d.job.job_id for d in ds] == [2]
        assert ds[0].backfilled

    def test_long_job_does_not_delay_head(self):
        queue = [rigid(1, 100, estimate=5000.0), rigid(2, 30, estimate=9000.0)]
        ds = plan(queue, free=40, blocks=[(2000.0, 80)])
        # shadow=2000, extra=40+80-100=20 < 30, and 9000 > 2000 -> no fit
        assert ds == []

    def test_long_job_fits_on_extra_nodes(self):
        # free 40, release 80 at t=2000 -> extra = 120-100 = 20
        queue = [rigid(1, 100, estimate=5000.0), rigid(2, 20, estimate=9000.0)]
        ds = plan(queue, free=40, blocks=[(2000.0, 80)])
        assert [d.job.job_id for d in ds] == [2]

    def test_backfill_disabled(self):
        planner = BackfillPlanner(backfill_enabled=False)
        queue = [rigid(1, 100, estimate=5000.0), rigid(2, 30, estimate=1000.0)]
        ds = plan(queue, free=40, blocks=[(2000.0, 80)], planner=planner)
        assert ds == []

    def test_backfill_depth_limits_scan(self):
        planner = BackfillPlanner(backfill_depth=1)
        queue = [
            rigid(1, 100, estimate=5000.0),
            rigid(2, 90, estimate=1000.0),  # depth-1 candidate, too big
            rigid(3, 30, estimate=1000.0),  # would fit but is beyond depth
        ]
        ds = plan(queue, free=40, blocks=[(2000.0, 80)], planner=planner)
        assert ds == []

    def test_multiple_backfills_deplete_free(self):
        queue = [
            rigid(1, 100, estimate=5000.0),
            rigid(2, 20, estimate=1000.0),
            rigid(3, 20, estimate=1000.0),
            rigid(4, 20, estimate=1000.0),
        ]
        ds = plan(queue, free=40, blocks=[(2000.0, 80)])
        assert [d.job.job_id for d in ds] == [2, 3]

    def test_malleable_backfill_sizes_to_window(self):
        # window 2000s; malleable work 1000*100 node-s; at 100 nodes -> 1000s
        queue = [rigid(1, 140, estimate=5000.0), malleable(2, 100, 10, estimate=1000.0)]
        ds = plan(queue, free=100, blocks=[(2000.0, 80)])
        assert ds and ds[0].job.job_id == 2
        assert ds[0].nodes == 100

    def test_shadow_from_now_when_head_fits_later_pool(self):
        """Head fits immediately after accounting -> shadow at now."""
        queue = [rigid(1, 100, estimate=5000.0)]
        ds = plan(queue, free=100)
        assert ds[0].job.job_id == 1


class TestLoans:
    def test_backfill_borrows_reserved_nodes(self):
        queue = [rigid(1, 200, estimate=9000.0), rigid(2, 50, estimate=1000.0)]
        ds = plan(
            queue,
            free=20,
            loanable=[(900, 40)],
            blocks=[(2000.0, 180), (5000.0, 40)],
        )
        assert ds and ds[0].job.job_id == 2
        assert ds[0].free_used == 20
        assert ds[0].loans == {900: 30}

    def test_loans_disabled(self):
        planner = BackfillPlanner(allow_loans=False)
        queue = [rigid(1, 200, estimate=9000.0), rigid(2, 50, estimate=1000.0)]
        ds = plan(
            queue,
            free=20,
            loanable=[(900, 40)],
            blocks=[(2000.0, 180)],
            planner=planner,
        )
        assert ds == []

    def test_loans_never_delay_head(self):
        """A job on loaned nodes with a long runtime must still fit: loans
        are invisible to the shadow."""
        queue = [rigid(1, 200, estimate=5000.0), rigid(2, 40, estimate=99000.0)]
        ds = plan(
            queue,
            free=0,
            loanable=[(900, 40)],
            blocks=[(2000.0, 200)],
        )
        assert ds and ds[0].loans == {900: 40}
        assert ds[0].free_used == 0

    def test_loan_pool_depletes(self):
        queue = [
            rigid(1, 200, estimate=5000.0),
            rigid(2, 30, estimate=99000.0),
            rigid(3, 30, estimate=99000.0),
        ]
        ds = plan(
            queue,
            free=0,
            loanable=[(900, 40)],
            blocks=[(2000.0, 200)],
        )
        assert len(ds) == 1  # only 40 loanable nodes


class TestShadowMath:
    def test_shadow_accumulates_releases(self):
        view = ProfileView.from_blocks(
            0.0, 20, [(500.0, 30), (900.0, 60), (1500.0, 50)]
        )
        info = view.shadow(100)
        assert info.time == 900.0
        assert info.extra_nodes == 10

    def test_shadow_infinite_when_unreachable(self):
        view = ProfileView.from_blocks(0.0, 20, [(500.0, 30)])
        assert math.isinf(view.shadow(100).time)

    def test_shadow_immediate(self):
        info = ProfileView.from_blocks(7.0, 50, []).shadow(10)
        assert info.time == 7.0
        assert info.extra_nodes == 40

    def test_shadow_free_override_after_phase1(self):
        """Phase 1 consumes free nodes; the shadow sees the reduced pool."""
        view = ProfileView.from_blocks(0.0, 50, [(500.0, 80)])
        info = view.shadow(100, free=20)
        assert info.time == 500.0
        assert info.extra_nodes == 0
