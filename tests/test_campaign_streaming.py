"""Streaming campaign pipeline: equivalence, ordering, batched dispatch.

The streamed path (generator-backed cells off the shared
:class:`~repro.workload.trace_cache.TraceCache`, batched pool dispatch,
per-worker scratch reuse) must be a pure execution-strategy change:
every store a campaign produces is **byte-identical** to the
materialized pre-cache path, cell for cell, across mechanisms,
scheduling policies, checkpoint/failure axes, and SWF-backed cells.
"""

import pytest

from repro.campaign import CampaignSpec, ResultStore, run_campaign, run_worker
from repro.campaign.distrib.worker import known_keys
from repro.campaign.executor import (
    _batch_size,
    execute_cell,
    trace_affine_order,
)
from repro.campaign.distrib.merge import merge_shards
from repro.metrics.summary import deterministic_view
from repro.sched.registry import policy_names
from repro.workload.trace_cache import reset_trace_cache

SWF_TEXT = """\
; MaxNodes: 512
1  100  5 3600 64  -1 -1 64 7200 -1 1 10 -1 2 -1 -1 -1 -1
2  200  1 1800 128 -1 -1 128 3600 -1 1 11 -1 3 -1 -1 -1 -1
4  400  2 900  32  -1 -1 32 -1   -1 1 12 -1 -1 -1 -1 -1 -1
"""

SMALL = {
    "name": "streamed",
    "days": 1,
    "target_load": 0.6,
    "system_size": 512,
    "mechanism": [None, "N&PAA"],
    "seeds": [1, 2],
}

ALL_MECHANISMS = (
    None,
    "N&PAA",
    "N&SPAA",
    "CUA&PAA",
    "CUA&SPAA",
    "CUP&PAA",
    "CUP&SPAA",
)


def small_spec(**overrides) -> CampaignSpec:
    return CampaignSpec.from_dict({**SMALL, **overrides})


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_trace_cache()
    yield
    reset_trace_cache()


def stores_for(spec: CampaignSpec):
    """(streamed store bytes, materialized store bytes) for one spec."""
    streamed, materialized = ResultStore(), ResultStore()
    a = run_campaign(spec, store=streamed, stream=True)
    b = run_campaign(spec, store=materialized, stream=False)
    assert a.n_failed == b.n_failed
    return streamed.canonical_bytes(), materialized.canonical_bytes()


class TestStreamedStoreEquivalence:
    def test_small_grid_byte_identical(self):
        streamed, materialized = stores_for(small_spec())
        assert streamed == materialized

    @pytest.mark.parametrize("mechanism", ALL_MECHANISMS)
    def test_every_mechanism(self, mechanism):
        spec = small_spec(mechanism=[mechanism], seeds=[1])
        streamed, materialized = stores_for(spec)
        assert streamed == materialized

    @pytest.mark.parametrize("policy", policy_names())
    def test_every_policy(self, policy):
        spec = small_spec(policy=[policy], mechanism=[None], seeds=[1])
        streamed, materialized = stores_for(spec)
        assert streamed == materialized

    def test_checkpoint_and_failure_axes(self):
        # failure cells exercise the (lazily built) failure RNG on both
        # paths; checkpoint variants share one cached trace when streamed
        spec = small_spec(
            mechanism=["CUP&SPAA"],
            checkpoint_multiplier=[0.5, 2.0],
            failure_mtbf_days=[0.0, 30.0],
            seeds=[1],
        )
        streamed, materialized = stores_for(spec)
        assert streamed == materialized

    def test_swf_backed_cells(self, tmp_path):
        log = tmp_path / "log.swf"
        log.write_text(SWF_TEXT)
        spec = small_spec(trace_file=[str(log)], seeds=[1, 2])
        streamed, materialized = stores_for(spec)
        assert streamed == materialized

    def test_trace_kind_payloads_match(self):
        spec = small_spec(kind="trace", mechanism=[None])
        streamed, materialized = stores_for(spec)
        assert streamed == materialized

    def test_execute_cell_stream_flag_summary(self):
        cell = small_spec().expand()[1]
        on = execute_cell(cell.config(), stream=True)
        off = execute_cell(cell.config(), stream=False)
        assert on.status == off.status == "ok"
        assert deterministic_view(on.summary) == deterministic_view(
            off.summary
        )


class TestRunOneIterable:
    def test_bare_generator_matches_list(self):
        from repro.experiments.runner import run_one
        from repro.workload.spec import WorkloadSpec
        from repro.workload.theta import generate_trace

        spec = WorkloadSpec(days=1.0, system_size=512, target_load=0.6)
        jobs = generate_trace(spec, seed=3)
        as_list = run_one(spec, 3, None, jobs=generate_trace(spec, seed=3))
        as_gen = run_one(spec, 3, None, jobs=iter(jobs))
        assert deterministic_view(as_list) == deterministic_view(as_gen)


class TestTraceAffineOrder:
    def test_preserves_cell_set(self):
        cells = small_spec(
            checkpoint_multiplier=[0.5, 1.0], seeds=[1, 2, 3]
        ).expand()
        ordered = trace_affine_order(cells)
        assert sorted(c.key() for c in ordered) == sorted(
            c.key() for c in cells
        )

    def test_groups_shared_traces_adjacently(self):
        from repro.workload.trace_cache import spec_hash

        cells = small_spec(
            checkpoint_multiplier=[0.5, 1.0], seeds=[1, 2, 3]
        ).expand()
        ordered = trace_affine_order(cells)
        seen = []
        for cell in ordered:
            ident = (spec_hash(cell.workload_spec()), cell.seed)
            if ident in seen:
                # a trace already visited must be the most recent one:
                # each group is contiguous
                assert seen[-1] == ident
            else:
                seen.append(ident)
        # 3 seeds x one workload spec -> 3 groups of 4 cells
        assert len(seen) == 3

    def test_invalid_cells_are_kept_not_raised(self):
        cells = small_spec(
            spec_overrides={"min_size": 100_000}
        ).expand()
        ordered = trace_affine_order(cells)
        assert len(ordered) == len(cells)

    def test_is_deterministic(self):
        cells = small_spec(seeds=[3, 1, 2]).expand()
        assert [c.key() for c in trace_affine_order(cells)] == [
            c.key() for c in trace_affine_order(list(reversed(cells)))
        ]


class TestBatchedDispatch:
    def test_batch_size_bounds(self):
        assert _batch_size(0, 4) == 1
        assert _batch_size(1, 4) == 1
        assert _batch_size(64, 2) == 8  # capped
        assert _batch_size(16, 2) == 2
        assert 1 <= _batch_size(1000, 1) <= 8

    def test_pool_batched_run_matches_serial(self):
        spec = small_spec()
        serial = ResultStore()
        run_campaign(spec, store=serial, workers=1)
        pooled = ResultStore()
        result = run_campaign(
            spec, store=pooled, workers=2, batch_size=2, max_inflight=2
        )
        assert result.n_failed == 0
        assert pooled.canonical_bytes() == serial.canonical_bytes()

    def test_pool_failed_cells_still_isolated(self):
        # an invalid cell inside a batch errors alone; batchmates finish
        spec = small_spec(
            system_size=[512, 1],  # size-1 machine: min_size > system
        )
        store = ResultStore()
        result = run_campaign(spec, store=store, workers=2, batch_size=3)
        assert result.n_failed == 4  # the system_size=1 half
        assert result.n_ran == 8
        ok = [r for r in store.records() if r.status == "ok"]
        assert len(ok) == 4


class TestWorkerClaimBatch:
    def test_claim_batch_worker_matches_solo(self, tmp_path):
        d = tmp_path / "c"
        spec = small_spec()
        ResultStore(d).write_spec(spec.to_dict())
        summary = run_worker(
            d, shard="w0", ttl_s=30, poll_s=0.05, claim_batch=3
        )
        assert summary.n_executed == 4 and summary.n_failed == 0
        assert len(known_keys(d)) == 4
        merge_shards(d)
        solo = run_campaign(spec, store=ResultStore())
        merged = ResultStore(d)
        for record in solo.records:
            assert deterministic_view(
                merged.get(record.key).summary
            ) == deterministic_view(record.summary)

    def test_claim_batch_larger_than_grid(self, tmp_path):
        d = tmp_path / "c"
        spec = small_spec()
        ResultStore(d).write_spec(spec.to_dict())
        summary = run_worker(
            d, shard="w0", ttl_s=30, poll_s=0.05, claim_batch=64
        )
        assert summary.n_executed == 4 and summary.n_failed == 0

    def test_claim_batch_respects_max_cells(self, tmp_path):
        d = tmp_path / "c"
        ResultStore(d).write_spec(small_spec().to_dict())
        summary = run_worker(
            d, shard="w0", poll_s=0.05, claim_batch=8, max_cells=2
        )
        assert summary.n_executed == 2
        assert len(known_keys(d)) == 2
