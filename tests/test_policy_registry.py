"""The policy registry: contents, fail-fast resolution, byte-identical
re-registration of the legacy dispatchers, score-policy degeneracies,
campaign-axis stability, and the seed-frozen golden decision logs for
the two new policy families.

The campaign-hash tests pin content addresses computed *before* the
policy axis existed: if any of them moves, re-running a pre-PR campaign
directory would re-simulate instead of cache-hitting.
"""

import json
import os
import pathlib
import sys

import pytest

sys.path.insert(0, "tests")
from test_simulator_invariants import random_trace  # noqa: E402
from test_replan_equivalence import _config, _job_outcomes  # noqa: E402

from repro.campaign import run_campaign
from repro.campaign.report import report_text
from repro.campaign.spec import CampaignSpec
from repro.core.mechanisms import Mechanism
from repro.sched import FcfsPolicy, LjfPolicy, SjfPolicy
from repro.sched.ewt import EwtPolicy
from repro.sched.registry import (
    Dispatcher,
    get_policy,
    list_policies,
    policy_names,
    register_policy,
)
from repro.sched.score import ScorePolicy
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulation
from repro.util.errors import ConfigurationError
from repro.workload.trace import clone_jobs

GOLDEN = pathlib.Path(__file__).parent / "golden"

BUILTIN = ("easy", "conservative", "fcfs", "sjf", "ljf", "prb_ewt", "score")


# ----------------------------------------------------------------------
# Registry API
# ----------------------------------------------------------------------
class TestRegistryApi:
    def test_builtin_zoo_registered(self):
        names = policy_names()
        assert set(BUILTIN) <= set(names)
        assert names == tuple(sorted(names))
        listing = list_policies()
        assert len(listing) >= 7
        assert all(listing[name] for name in BUILTIN), (
            "every built-in needs a one-line description"
        )

    def test_get_policy_builds_dispatchers(self):
        assert isinstance(get_policy("fcfs").ordering, FcfsPolicy)
        assert isinstance(get_policy("sjf").ordering, SjfPolicy)
        assert isinstance(get_policy("ljf").ordering, LjfPolicy)
        assert isinstance(get_policy("prb_ewt").ordering, EwtPolicy)
        assert isinstance(get_policy("score").ordering, ScorePolicy)
        easy = get_policy("easy")
        assert isinstance(easy, Dispatcher)
        assert isinstance(easy.ordering, FcfsPolicy)
        assert easy.backfill_mode == "easy"
        assert get_policy("conservative").backfill_mode == "conservative"
        assert get_policy("fcfs").backfill_mode is None

    def test_params_reach_the_factory(self):
        d = get_policy("score", wait_weight=0.0, size_weight=2.5)
        assert d.ordering.size_weight == 2.5
        e = get_policy("prb_ewt", long_ewt_s=14400.0)
        assert e.ordering.long_ewt_s == 14400.0

    def test_unknown_name_lists_the_registry(self):
        with pytest.raises(ConfigurationError) as exc:
            get_policy("fcsf")
        message = str(exc.value)
        for name in BUILTIN:
            assert name in message

    def test_bad_params_fail_fast(self):
        with pytest.raises(ConfigurationError, match="score"):
            get_policy("score", bogus_knob=1)
        with pytest.raises(ConfigurationError, match="ondemand_ewt_s"):
            get_policy("prb_ewt", ondemand_ewt_s=-1.0)
        with pytest.raises(ConfigurationError, match="prb_ewt"):
            get_policy("prb_ewt", bogus_knob=1.0)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):

            @register_policy("fcfs")
            def _dup(**params):
                return Dispatcher(ordering=FcfsPolicy())

    def test_aging_policy_declares_time_variance(self):
        assert get_policy("prb_ewt").ordering.time_invariant is False
        # the score policy's key is submit-anchored: time-invariant for
        # any weights (the common now-term is dropped)
        assert get_policy("score", wait_weight=3.0).ordering.time_invariant


# ----------------------------------------------------------------------
# Re-registered legacy dispatchers plan byte-identically
# ----------------------------------------------------------------------
def _decision_log(result):
    return [e.to_json_line() for e in result.log.entries]


LEGACY_CASES = [
    # registered name, legacy config kwargs, legacy explicit policy
    ("easy", {}, None),
    ("conservative", {"backfill_mode": "conservative"}, None),
    ("fcfs", {}, FcfsPolicy),
    ("sjf", {}, SjfPolicy),
    ("ljf", {}, LjfPolicy),
]


@pytest.mark.parametrize(
    "name,legacy_kw,legacy_cls", LEGACY_CASES, ids=[c[0] for c in LEGACY_CASES]
)
def test_reregistered_policies_plan_byte_identically(
    name, legacy_kw, legacy_cls
):
    jobs = random_trace(13, 45)
    mech = Mechanism.parse("N&SPAA")
    legacy = Simulation(
        clone_jobs(jobs),
        _config(log_decisions=True, **legacy_kw),
        mech,
        legacy_cls() if legacy_cls else None,
    ).run()
    via_registry = Simulation(
        clone_jobs(jobs), _config(log_decisions=True, policy=name), mech
    ).run()
    assert _decision_log(via_registry) == _decision_log(legacy)
    assert _job_outcomes(via_registry) == _job_outcomes(legacy)
    assert via_registry.policy == legacy.policy


def test_explicit_policy_instance_still_accepted():
    """The pre-registry call shape — a SchedulingPolicy instance — keeps
    working, and a string arg beats config-level None."""
    jobs = random_trace(3, 20)
    a = Simulation(clone_jobs(jobs), _config(), policy=SjfPolicy()).run()
    b = Simulation(clone_jobs(jobs), _config(), policy="sjf").run()
    assert _job_outcomes(a) == _job_outcomes(b)


# ----------------------------------------------------------------------
# Score-policy degeneracies: FCFS/SJF/LJF as weight configurations
# ----------------------------------------------------------------------
SCORE_CASES = [
    ({"wait_weight": 1.0}, "fcfs"),
    ({"wait_weight": 0.0, "walltime_weight": -1.0}, "sjf"),
    ({"wait_weight": 0.0, "size_weight": 1.0}, "ljf"),
]


@pytest.mark.parametrize(
    "params,classic", SCORE_CASES, ids=[c[1] for c in SCORE_CASES]
)
def test_score_subsumes_classic_orderings(params, classic):
    jobs = random_trace(23, 40)
    mech = Mechanism.parse("N&PAA")
    ref = Simulation(
        clone_jobs(jobs), _config(log_decisions=True, policy=classic), mech
    ).run()
    via_score = Simulation(
        clone_jobs(jobs),
        _config(log_decisions=True, policy="score", policy_params=params),
        mech,
    ).run()
    assert _decision_log(via_score) == _decision_log(ref)
    assert _job_outcomes(via_score) == _job_outcomes(ref)


# ----------------------------------------------------------------------
# Seed-frozen golden decision logs for the new policy families
# ----------------------------------------------------------------------
GOLDEN_CASES = [
    ("prb_ewt", {}),
    (
        "score",
        {
            "wait_weight": 1.0,
            "size_weight": 0.25,
            "walltime_weight": -0.5,
            "notice_weight": 2.0,
        },
    ),
]


@pytest.mark.parametrize(
    "policy,params", GOLDEN_CASES, ids=[c[0] for c in GOLDEN_CASES]
)
def test_golden_decision_log(policy, params):
    jobs = random_trace(2022, 30)
    config = _config(
        log_decisions=True, policy=policy, policy_params=params
    )
    result = Simulation(
        clone_jobs(jobs), config, Mechanism.parse("N&PAA")
    ).run()
    text = "\n".join(e.to_json_line() for e in result.log.entries) + "\n"
    path = GOLDEN / f"policy_{policy}.jsonl"
    if os.environ.get("REPRO_UPDATE_GOLDEN"):
        path.write_text(text)
    assert path.exists(), (
        f"golden file {path.name} missing — run with REPRO_UPDATE_GOLDEN=1"
    )
    assert text == path.read_text(), (
        f"{policy} decision log drifted from {path.name}; if the "
        "ordering change is intentional, regenerate with "
        "REPRO_UPDATE_GOLDEN=1 and review the diff"
    )


# ----------------------------------------------------------------------
# Campaign axis: hash stability and policy sweeps
# ----------------------------------------------------------------------
#: cell keys of a reference pre-policy-axis grid, computed on the
#: commit *before* the policy axis existed
PINNED_KEYS = {
    (None, "easy"): "4fa55294e1ee911c",
    (None, "conservative"): "a3485a32d7ca0940",
    ("N&PAA", "easy"): "e8d2da1573ad5513",
    ("N&PAA", "conservative"): "432477525b80d221",
}

#: the same grid's campaign.json payload, pre-policy-axis — stored-spec
#: comparison is exact dict equality, so this shape must not change
PINNED_SPEC_DICT = {
    "name": "ref",
    "days": [2.0],
    "target_load": [0.6],
    "system_size": [512],
    "notice_mix": ["W5"],
    "mechanism": [None, "N&PAA"],
    "backfill_mode": ["easy", "conservative"],
    "checkpoint_multiplier": [1.0],
    "failure_mtbf_days": [0.0],
    "seeds": [1],
    "kind": "sim",
    "spec_overrides": {},
    "sim_overrides": {},
    "trace_file": [None],
    "trace_options": {},
}


def _ref_spec() -> CampaignSpec:
    return CampaignSpec(
        name="ref",
        days=(2.0,),
        target_load=(0.6,),
        system_size=(512,),
        mechanism=(None, "N&PAA"),
        backfill_mode=("easy", "conservative"),
        seeds=(1,),
    )


class TestCampaignAxis:
    def test_pre_policy_cell_hashes_unchanged(self):
        keys = {
            (c.mechanism, c.backfill_mode): c.key()
            for c in _ref_spec().expand()
        }
        assert keys == PINNED_KEYS

    def test_pre_policy_spec_dict_unchanged(self):
        # exact equality, including JSON round-trip (what write_spec
        # actually compares against a stored campaign.json)
        payload = json.loads(json.dumps(_ref_spec().to_dict()))
        assert payload == PINNED_SPEC_DICT

    def test_policy_cells_hash_on_their_params(self):
        plain = CampaignSpec(seeds=(1,), policy=("score",))
        tuned = CampaignSpec(
            seeds=(1,),
            policy=("score",),
            policy_params={"score": {"wait_weight": 2.0}},
        )
        (a,), (b,) = plain.expand(), tuned.expand()
        assert a.key() != b.key()
        assert "policy" in a.config()
        assert "policy_params" not in a.config()  # omitted when empty
        assert b.config()["policy_params"] == {"wait_weight": 2.0}

    def test_cell_config_roundtrip_with_policy(self):
        from repro.campaign.spec import CampaignCell

        cell = CampaignSpec(
            seeds=(7,),
            policy=("prb_ewt",),
            policy_params={"prb_ewt": {"long_ewt_s": 14400.0}},
        ).expand()[0]
        again = CampaignCell.from_config(cell.config())
        assert again == cell
        assert again.key() == cell.key()
        sim = again.sim_config()
        assert sim.policy == "prb_ewt"
        assert sim.policy_params == {"long_ewt_s": 14400.0}

    def test_typo_policy_axis_errors_at_plan_time(self):
        with pytest.raises(ConfigurationError, match="przewt"):
            CampaignSpec(policy=("przewt",))
        with pytest.raises(ConfigurationError, match="not on"):
            CampaignSpec(
                policy=("score",), policy_params={"fcfs": {}}
            )
        with pytest.raises(ConfigurationError, match="score"):
            CampaignSpec.from_dict(
                {
                    "name": "x",
                    "policy": "score",
                    "policy_params": {"score": {"bogus": 1}},
                }
            )

    def test_policy_axis_sweep_end_to_end(self, tmp_path):
        """prb_ewt/score sweep as first-class grid values: run, cache,
        and report grouped by the policy axis."""
        spec = CampaignSpec.from_dict(
            {
                "name": "zoo",
                "days": 1,
                "target_load": 0.6,
                "system_size": 512,
                "seeds": [1],
                "policy": [None, "prb_ewt", "score"],
                "policy_params": {"score": {"notice_weight": 2.0}},
            }
        )
        first = run_campaign(spec, directory=tmp_path / "zoo")
        assert first.n_ran == 3 and first.n_failed == 0
        second = run_campaign(spec, directory=tmp_path / "zoo")
        assert second.n_cached == 3 and second.n_ran == 0
        records = list(second.records)
        report = report_text(records, by=["policy"])
        assert "prb_ewt" in report and "score" in report
        # the legacy cell hashes exactly as a no-axis campaign would
        legacy_keys = {
            c.key()
            for c in CampaignSpec.from_dict(
                {
                    "name": "zoo",
                    "days": 1,
                    "target_load": 0.6,
                    "system_size": 512,
                    "seeds": [1],
                }
            ).expand()
        }
        assert legacy_keys == {
            r.key for r in records if r.config.get("policy") is None
        }


# ----------------------------------------------------------------------
# Config-level fail-fast
# ----------------------------------------------------------------------
class TestConfigFailFast:
    def test_sim_config_unknown_policy(self):
        with pytest.raises(ConfigurationError) as exc:
            SimConfig(policy="nope")
        assert "fcfs" in str(exc.value)

    def test_sim_config_bad_params(self):
        with pytest.raises(ConfigurationError, match="score"):
            SimConfig(policy="score", policy_params={"bogus": 1})

    def test_sim_config_orphan_params(self):
        with pytest.raises(ConfigurationError, match="without a policy"):
            SimConfig(policy_params={"wait_weight": 1.0})

    def test_campaign_cli_rejects_unknown_policy(self, capsys):
        from repro.experiments.cli import make_campaign_parser

        with pytest.raises(SystemExit):
            make_campaign_parser().parse_args(
                ["run", "--dir", "x", "--policies", "przewt"]
            )
        err = capsys.readouterr().err
        assert "prb_ewt" in err  # argparse lists the valid choices

    def test_campaign_cli_policy_params_shape(self):
        from repro.experiments.cli import _parse_policy_params

        parsed = _parse_policy_params(
            ["score.wait_weight=2", "score.size_weight=0.5",
             "prb_ewt.long_ewt_s=14400"]
        )
        assert parsed == {
            "score": {"wait_weight": 2, "size_weight": 0.5},
            "prb_ewt": {"long_ewt_s": 14400},
        }
        with pytest.raises(SystemExit, match="POLICY.KNOB=VALUE"):
            _parse_policy_params(["wait_weight=2"])

    def test_exhibit_cli_lists_policies(self, capsys):
        from repro.experiments.cli import make_parser

        with pytest.raises(SystemExit):
            make_parser().parse_args(["fig5", "--policy", "typo"])
        assert "prb_ewt" in capsys.readouterr().err

    def test_experiment_config_policy_travels_to_campaign(self):
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig.quick(days=2.0, n_traces=1)
        tuned = config.with_sim(
            SimConfig(
                **{
                    **config.sim.__dict__,
                    "policy": "score",
                    "policy_params": {"size_weight": 1.0},
                }
            )
        )
        spec = tuned.to_campaign_spec("t")
        assert spec.policy == ("score",)
        assert spec.policy_params == {"score": {"size_weight": 1.0}}
        # policy rides the axis, not the override dict: overrides stay
        # hash-compatible with pre-axis campaigns
        assert "policy" not in spec.sim_overrides
        assert "policy_params" not in spec.sim_overrides
        cells = spec.expand()
        assert cells and all(c.policy == "score" for c in cells)
        assert cells[0].sim_config().policy == "score"
        assert cells[0].sim_config().policy_params == {"size_weight": 1.0}
