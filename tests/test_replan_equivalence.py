"""Differential property tests: incremental scheduling == full replan.

The incremental core (shared availability timeline + pass skipping) is a
pure performance refactor: for any workload, any mechanism, and either
backfill planner, a run with the default incremental mode must produce
**byte-identical** simulation outcomes to ``force_full_replan=True`` —
per-job timings and statistics, and every :class:`SummaryMetrics` field
except the explicitly wall-clock/replan-mode ones masked by
:func:`repro.metrics.summary.replan_invariant_view`.

Scenarios come from the invariant suite's seeded random trace generator
(mixed rigid/malleable/on-demand with all notice classes), so every
§III-B decision path — reservations, loans, CUP planned preemptions,
PAA/SPAA arms, timeouts — is crossed with the skip logic.
"""

import json
import os
import sys

import pytest

sys.path.insert(0, "tests")
from test_simulator_invariants import SYSTEM, random_trace  # noqa: E402

from repro.core.mechanisms import ALL_MECHANISMS, Mechanism
from repro.jobs.checkpoint import CheckpointModel
from repro.metrics.summary import replan_invariant_view, summarize
from repro.sched.registry import policy_names
from repro.sim.config import SimConfig
from repro.sim.failures import FailureModel
from repro.sim.simulator import Simulation
from repro.workload.trace import clone_jobs

_ONLY = os.environ.get("REPRO_POLICY")
REGISTRY_POLICIES = tuple(
    n for n in policy_names() if not _ONLY or n == _ONLY
)


def _config(**kw) -> SimConfig:
    base = dict(
        system_size=SYSTEM,
        checkpoint=CheckpointModel(node_mtbf_s=1.0, min_interval_s=900.0),
        validate_invariants=True,
    )
    base.update(kw)
    return SimConfig(**base)


def _job_outcomes(result) -> list:
    """The full per-job simulation outcome (stronger than the summary)."""
    out = []
    for job in sorted(result.jobs, key=lambda j: j.job_id):
        st = job.stats
        out.append(
            (
                job.job_id,
                job.state.value,
                st.first_start,
                st.last_start,
                st.end_time,
                st.preemptions,
                st.shrinks,
                st.expands,
                st.failures,
                tuple(st.segment_sizes),
                round(st.allocated_node_seconds, 6),
                round(st.retained_node_seconds, 6),
                round(st.lost_node_seconds, 6),
            )
        )
    return out


def _run_both(jobs, config, mechanism, policy=None):
    incremental = Simulation(
        clone_jobs(jobs), config, mechanism, policy
    ).run()
    full = Simulation(
        clone_jobs(jobs),
        SimConfig(**{**config.__dict__, "force_full_replan": True}),
        mechanism,
        policy,
    ).run()
    return incremental, full


def assert_equivalent(jobs, config, mechanism, policy=None):
    incremental, full = _run_both(jobs, config, mechanism, policy)
    assert _job_outcomes(incremental) == _job_outcomes(full)
    inc_view = json.dumps(
        replan_invariant_view(summarize(incremental)), sort_keys=True
    )
    full_view = json.dumps(
        replan_invariant_view(summarize(full)), sort_keys=True
    )
    assert inc_view == full_view
    # and the mode split itself behaves as documented
    assert full.passes_skipped == 0
    assert incremental.events_processed == full.events_processed
    assert (
        incremental.schedule_passes + incremental.passes_skipped
        == full.schedule_passes
    )
    return incremental, full


MECHS = [None] + list(ALL_MECHANISMS)


@pytest.mark.parametrize(
    "mech", MECHS, ids=[m.name if m else "baseline" for m in MECHS]
)
@pytest.mark.parametrize("seed", [3, 17, 2022])
def test_easy_all_mechanisms(mech, seed):
    jobs = random_trace(seed, 40)
    assert_equivalent(jobs, _config(), mech)


@pytest.mark.parametrize("mech_name", [None, "N&PAA", "CUP&SPAA"])
@pytest.mark.parametrize("seed", [5, 29])
def test_conservative_backfill(mech_name, seed):
    jobs = random_trace(seed, 30)
    mech = Mechanism.parse(mech_name) if mech_name else None
    assert_equivalent(jobs, _config(backfill_mode="conservative"), mech)


@pytest.mark.parametrize("seed", [11, 47])
def test_with_failure_injection(seed):
    """Failure restarts leave stale finish events behind — the prime
    source of skippable no-op batches; the metrics must not move."""
    jobs = random_trace(seed, 35)
    config = _config(
        failures=FailureModel(enabled=True, node_mtbf_s=2e5),
        failure_seed=seed,
    )
    incremental, _full = assert_equivalent(
        jobs, config, Mechanism.parse("CUA&SPAA")
    )
    assert incremental.failures_injected > 0, "scenario injected nothing"


@pytest.mark.parametrize("policy", REGISTRY_POLICIES)
def test_registry_policies_replan_equivalence(policy):
    """Every registered policy — including time-varying aging ones,
    which disable the stale-batch skip but keep the empty-queue skip —
    must plan identically in incremental and full-replan modes.  New
    registrations are covered automatically via ``policy_names()``."""
    jobs = random_trace(41, 30)
    assert_equivalent(
        jobs, _config(policy=policy), Mechanism.parse("N&SPAA")
    )


def test_backfill_variants():
    jobs = random_trace(59, 30)
    for kw in (
        {"backfill_enabled": False},
        {"backfill_depth": 2},
        {"allow_reserved_loans": False},
        {"flexible_malleable": False},
    ):
        assert_equivalent(jobs, _config(**kw), Mechanism.parse("CUA&PAA"))


def test_no_time_skip_with_clock_tracking_reservation_block():
    """A reservation pseudo-block whose release is clamped to ``now``
    moves with the clock — the stale-batch skip's time-invariance
    argument does not apply and the pass must run.  That happens for
    every *arrived* reservation (release ``now + estimate``) and for a
    pending one past ``estimated_arrival + estimate`` (reachable with
    LATE-notice jobs whose estimate is shorter than their lateness)."""
    jobs = random_trace(3, 10)
    sim = Simulation(clone_jobs(jobs), _config(), Mechanism.parse("CUA&PAA"))
    od = next(j for j in sim.jobs if j.is_ondemand)
    sim.queue.append(sim.jobs[0])  # non-empty queue, clean dirty bit
    sim._sched_dirty = False
    assert sim._can_skip_pass()
    res = sim.coordinator.book.create(
        od_job_id=od.job_id,
        need=8,
        notice_time=0.0,
        estimated_arrival=sim.now + 10_000.0,
        expiry_time=float("inf"),
        collecting=True,
    )
    res.held = 4
    # pending, release (arrival + estimate) far in the future: fixed
    assert sim._can_skip_pass()
    res.arrived = True  # release now tracks the clock
    assert not sim._can_skip_pass()
    res.arrived = False
    res.estimated_arrival = -od.estimate  # overdue: clamped to now
    assert not sim._can_skip_pass()
    res.held = 0  # no held nodes -> no pseudo-block at all
    assert sim._can_skip_pass()


def test_incremental_actually_skips_passes():
    """The equivalence is only interesting if skipping really happens."""
    jobs = random_trace(101, 60)
    incremental, full = _run_both(
        jobs, _config(), Mechanism.parse("CUP&SPAA")
    )
    assert incremental.passes_skipped > 0
    assert incremental.schedule_passes < full.schedule_passes
