"""Tests for the synthetic Theta workload generator and trace utilities."""

import math

import numpy as np
import pytest

from repro.jobs.job import JobType, NoticeClass
from repro.util.errors import ConfigurationError
from repro.util.rng import RngStreams
from repro.util.timeconst import DAY, HOUR, MINUTE
from repro.workload.ondemand import (
    burstiness_cv,
    derive_arrival,
    notice_class_shares,
    ondemand_jobs_per_week,
)
from repro.workload.projects import assign_project_types, zipf_weights
from repro.workload.spec import (
    NOTICE_MIXES,
    NoticeMix,
    W1,
    W2,
    W4,
    W5,
    WorkloadSpec,
    theta_spec,
)
from repro.workload.theta import generate_trace
from repro.workload.trace import (
    characterize_sizes,
    clone_jobs,
    load_trace_csv,
    offered_load,
    save_trace_csv,
    table1_summary,
    type_shares,
)


SPEC = theta_spec(days=14, target_load=0.9)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(SPEC, seed=7)


class TestSpecValidation:
    def test_mix_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            NoticeMix("bad", 0.5, 0.5, 0.5, 0.5)

    def test_mix_no_negative(self):
        with pytest.raises(ConfigurationError):
            NoticeMix("bad", -0.5, 0.5, 0.5, 0.5)

    def test_table3_mixes(self):
        assert W1.none == 0.70 and W1.accurate == 0.10
        assert W2.accurate == 0.70
        assert W4.late == 0.70
        assert W5.as_tuple() == (0.25, 0.25, 0.25, 0.25)
        assert set(NOTICE_MIXES) == {"W1", "W2", "W3", "W4", "W5"}

    @pytest.mark.parametrize(
        "kw",
        [
            {"system_size": 0},
            {"days": 0},
            {"target_load": 0.0},
            {"target_load": 3.0},
            {"min_size": 0},
            {"min_size": 10000},
            {"n_projects": 0},
            {"frac_projects_ondemand": 0.8, "frac_projects_rigid": 0.5},
            {"malleable_min_size_frac": 0.0},
            {"size_bucket_weights": (0.5, 0.5)},
            {"notice_lead_range_s": (100.0, 50.0)},
        ],
    )
    def test_invalid_specs(self, kw):
        with pytest.raises(ConfigurationError):
            theta_spec(**kw)

    def test_with_notice_mix(self):
        assert SPEC.with_notice_mix(W2).notice_mix is W2
        assert SPEC.notice_mix is W5  # original untouched


class TestGeneratorStatistics:
    def test_deterministic(self):
        a = generate_trace(SPEC, seed=3)
        b = generate_trace(SPEC, seed=3)
        assert len(a) == len(b)
        assert all(
            x.submit_time == y.submit_time and x.size == y.size
            for x, y in zip(a, b)
        )

    def test_seed_changes_trace(self):
        a = generate_trace(SPEC, seed=3)
        b = generate_trace(SPEC, seed=4)
        assert any(
            x.submit_time != y.submit_time for x, y in zip(a, b)
        ) or len(a) != len(b)

    def test_offered_load_near_target(self, trace):
        load = offered_load(trace, SPEC.system_size, SPEC.horizon_s)
        assert load == pytest.approx(SPEC.target_load, rel=0.1)

    def test_sizes_within_bounds(self, trace):
        assert all(SPEC.min_size <= j.size <= SPEC.system_size for j in trace)

    def test_runtimes_within_bounds(self, trace):
        assert all(
            SPEC.min_runtime_s <= j.runtime <= SPEC.max_runtime_s for j in trace
        )

    def test_estimates_dominate_runtimes(self, trace):
        assert all(j.estimate >= j.runtime for j in trace)

    def test_estimates_rounded(self, trace):
        gran = SPEC.estimate_granularity_s
        assert all(abs(j.estimate % gran) < 1e-6 for j in trace)

    def test_submit_times_sorted_within_horizon(self, trace):
        times = [j.submit_time for j in trace]
        assert times == sorted(times)
        # only LATE on-demand arrivals may exceed the horizon slightly
        for j in trace:
            if not (j.is_ondemand and j.notice_class is NoticeClass.LATE):
                assert 0 <= j.submit_time <= SPEC.horizon_s

    def test_job_count_scales_with_horizon(self):
        short = generate_trace(theta_spec(days=7, target_load=0.9), seed=1)
        long = generate_trace(theta_spec(days=21, target_load=0.9), seed=1)
        assert 2.0 < len(long) / len(short) < 4.5

    def test_theta_scale_job_count(self):
        """At the paper's defaults, the yearly job count lands near 37.3k."""
        jobs = generate_trace(theta_spec(days=14), seed=0)
        yearly = len(jobs) * 365 / 14
        assert 20_000 < yearly < 60_000

    def test_size_mix_small_jobs_dominate_counts(self, trace):
        buckets = characterize_sizes(trace, SPEC.size_bucket_edges)
        counts = [b[1] for b in buckets]
        assert counts[0] == max(counts)
        assert counts[0] > 0.4 * sum(counts)

    def test_size_mix_large_jobs_dominate_core_hours(self, trace):
        """Fig. 3's contrast: most jobs are small, but big jobs burn a
        disproportionate share of core-hours."""
        buckets = characterize_sizes(trace, SPEC.size_bucket_edges)
        total_jobs = sum(b[1] for b in buckets)
        total_ch = sum(b[2] for b in buckets)
        top = buckets[-2:]  # >=1024 nodes
        job_share = sum(b[1] for b in top) / total_jobs
        ch_share = sum(b[2] for b in top) / total_ch
        assert ch_share > 2 * job_share


class TestTypeAssignment:
    def test_types_constant_within_project(self, trace):
        seen = {}
        for j in trace:
            if j.size > SPEC.ondemand_max_size_frac * SPEC.system_size:
                continue  # large on-demand jobs are reassigned
            seen.setdefault(j.project, set()).add(j.job_type)
        # projects containing a reassigned large job may show two types;
        # everyone else must be uniform
        uniform = [p for p, types in seen.items() if len(types) == 1]
        assert len(uniform) >= 0.9 * len(seen)

    def test_no_oversized_ondemand(self, trace):
        limit = SPEC.ondemand_max_size_frac * SPEC.system_size
        assert all(
            j.size <= limit for j in trace if j.job_type is JobType.ONDEMAND
        )

    def test_all_three_types_present(self, trace):
        shares = type_shares(trace)
        assert shares["rigid"] > 0.3
        assert shares["malleable"] > 0.05
        assert 0.0 < shares["ondemand"] < 0.4

    def test_malleable_min_sizes(self, trace):
        for j in trace:
            if j.job_type is JobType.MALLEABLE:
                assert j.min_size == max(
                    1, math.ceil(SPEC.malleable_min_size_frac * j.size)
                )

    def test_setup_overheads_in_range(self, trace):
        for j in trace:
            frac = j.setup_time / j.runtime
            if j.job_type is JobType.RIGID:
                assert 0.05 - 1e-9 <= frac <= 0.10 + 1e-9
            elif j.job_type is JobType.MALLEABLE:
                assert 0.0 <= frac <= 0.05 + 1e-9
            else:
                assert j.setup_time == 0.0

    def test_assign_project_types_fractions(self):
        rng = np.random.default_rng(0)
        types = assign_project_types(200, 0.10, 0.60, rng)
        counts = {t: sum(1 for v in types.values() if v is t) for t in JobType}
        assert counts[JobType.ONDEMAND] == 20
        assert counts[JobType.RIGID] == 120
        assert counts[JobType.MALLEABLE] == 60

    def test_assign_project_types_at_least_one(self):
        rng = np.random.default_rng(0)
        types = assign_project_types(11, 0.01, 0.5, rng)
        assert sum(1 for v in types.values() if v is JobType.ONDEMAND) >= 1

    def test_zipf_weights_normalised_and_skewed(self):
        rng = np.random.default_rng(0)
        w = zipf_weights(100, 1.4, rng)
        assert w.sum() == pytest.approx(1.0)
        assert w.max() > 10 * np.median(w)


class TestNoticeClasses:
    def test_mix_shares_respected(self):
        spec = theta_spec(days=60, target_load=0.5, notice_mix=W1)
        jobs = generate_trace(spec, seed=5)
        shares = notice_class_shares(jobs)
        if sum(shares.values()) > 0:
            assert shares["none"] > 0.45  # 70% nominal, small-sample slack

    def test_accurate_arrival_equals_estimate(self, trace):
        for j in trace:
            if j.notice_class is NoticeClass.ACCURATE:
                assert j.submit_time == pytest.approx(j.estimated_arrival)

    def test_early_arrival_between_notice_and_estimate(self, trace):
        for j in trace:
            if j.notice_class is NoticeClass.EARLY:
                assert j.notice_time - 1e-9 <= j.submit_time <= j.estimated_arrival

    def test_late_arrival_within_window(self, trace):
        for j in trace:
            if j.notice_class is NoticeClass.LATE:
                assert (
                    j.estimated_arrival
                    <= j.submit_time
                    <= j.estimated_arrival + SPEC.late_window_s + 1e-9
                )

    def test_notice_lead_range(self, trace):
        lo, hi = SPEC.notice_lead_range_s
        for j in trace:
            if j.notice_time is not None and j.notice_time > 0:
                lead = j.estimated_arrival - j.notice_time
                assert lo - 1e-6 <= lead <= hi + 1e-6

    def test_derive_arrival_none(self):
        rng = np.random.default_rng(0)
        actual, notice, est = derive_arrival(
            500.0, NoticeClass.NONE, rng, (900.0, 1800.0), 1800.0
        )
        assert (actual, notice, est) == (500.0, None, None)

    def test_derive_arrival_notice_clamped_at_zero(self):
        rng = np.random.default_rng(0)
        _, notice, _ = derive_arrival(
            60.0, NoticeClass.ACCURATE, rng, (900.0, 1800.0), 1800.0
        )
        assert notice == 0.0


class TestBurstiness:
    def test_weekly_counts_cover_horizon(self, trace):
        counts = ondemand_jobs_per_week(trace, SPEC.horizon_s)
        assert len(counts) == 2  # 14 days
        assert sum(counts) == sum(1 for j in trace if j.is_ondemand)

    def test_bursty_pattern(self):
        """Fig. 5: weekly on-demand counts swing heavily across weeks."""
        spec = theta_spec(days=91, target_load=0.7)
        jobs = generate_trace(spec, seed=2)
        counts = ondemand_jobs_per_week(jobs, spec.horizon_s)
        assert burstiness_cv(counts) > 0.4

    def test_cv_empty(self):
        assert burstiness_cv([]) == 0.0
        assert burstiness_cv([0, 0]) == 0.0


class TestTraceUtilities:
    def test_clone_jobs_fresh_state(self, trace):
        clones = clone_jobs(trace)
        assert len(clones) == len(trace)
        assert clones[0] is not trace[0]
        assert clones[0].stats is not trace[0].stats
        assert clones[0].submit_time == trace[0].submit_time

    def test_csv_roundtrip(self, trace, tmp_path):
        path = str(tmp_path / "trace.csv")
        save_trace_csv(trace, path)
        loaded = load_trace_csv(path)
        assert len(loaded) == len(trace)
        for a, b in zip(trace, loaded):
            assert a.job_id == b.job_id
            assert a.job_type == b.job_type
            assert a.submit_time == b.submit_time
            assert a.runtime == b.runtime
            assert a.min_size == b.min_size
            assert a.notice_class == b.notice_class
            assert a.notice_time == b.notice_time

    def test_csv_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ConfigurationError):
            load_trace_csv(str(path))

    def test_table1_summary(self, trace):
        s = table1_summary(trace, SPEC.system_size)
        assert s["compute_nodes"] == 4392
        assert s["number_of_jobs"] == len(trace)
        assert s["min_job_size"] >= 128
        assert s["max_job_length_h"] <= 24.0
        assert s["number_of_projects"] <= SPEC.n_projects

    def test_table1_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            table1_summary([], 100)

    def test_offered_load_empty(self):
        assert offered_load([], 100) == 0.0
