"""Unit tests for victim selection and the lender ledger."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ledger import Lease, LeaseKind, LenderLedger
from repro.core.preemption import VictimCandidate, select_victims


def vc(job_id, nodes, loss):
    return VictimCandidate(job_id=job_id, nodes=nodes, loss=loss)


class TestSelectVictims:
    def test_zero_deficit(self):
        assert select_victims([vc(1, 10, 5.0)], 0) == []

    def test_insufficient_returns_none(self):
        assert select_victims([vc(1, 10, 5.0)], 11) is None

    def test_cheapest_first(self):
        victims = select_victims(
            [vc(1, 10, 100.0), vc(2, 10, 1.0), vc(3, 10, 50.0)], 15
        )
        assert [v.job_id for v in victims] == [2, 3]

    def test_stops_when_covered(self):
        victims = select_victims([vc(1, 100, 1.0), vc(2, 100, 2.0)], 50)
        assert [v.job_id for v in victims] == [1]

    def test_tie_broken_by_job_id(self):
        victims = select_victims([vc(9, 10, 1.0), vc(3, 10, 1.0)], 5)
        assert victims[0].job_id == 3

    def test_exact_cover(self):
        victims = select_victims([vc(1, 7, 1.0), vc(2, 3, 2.0)], 10)
        assert sum(v.nodes for v in victims) == 10

    @settings(max_examples=200, deadline=None)
    @given(
        cands=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=100),
                st.floats(min_value=0, max_value=1e6),
            ),
            max_size=15,
        ),
        deficit=st.integers(min_value=1, max_value=800),
    )
    def test_properties(self, cands, deficit):
        candidates = [vc(i, n, l) for i, (n, l) in enumerate(cands)]
        total = sum(c.nodes for c in candidates)
        chosen = select_victims(candidates, deficit)
        if total < deficit:
            assert chosen is None
            return
        assert sum(v.nodes for v in chosen) >= deficit
        # minimality: dropping the last victim leaves the deficit uncovered
        assert sum(v.nodes for v in chosen[:-1]) < deficit
        # cheapest-first: chosen losses are a prefix of the sorted losses
        losses = sorted((c.loss, c.job_id) for c in candidates)
        assert [(v.loss, v.job_id) for v in chosen] == losses[: len(chosen)]


class TestLedger:
    def test_add_and_settle(self):
        ledger = LenderLedger()
        ledger.add(Lease(od_job_id=9, lender_job_id=1, nodes=10, kind=LeaseKind.PREEMPTED))
        ledger.add(Lease(od_job_id=9, lender_job_id=2, nodes=5, kind=LeaseKind.SHRUNK))
        assert ledger.total_owed(9) == 15
        leases = ledger.settle(9)
        assert [(l.lender_job_id, l.nodes) for l in leases] == [(1, 10), (2, 5)]
        assert ledger.total_owed(9) == 0
        assert ledger.settle(9) == []

    def test_merge_same_lender_same_kind(self):
        ledger = LenderLedger()
        ledger.add(Lease(9, 1, 10, LeaseKind.SHRUNK))
        ledger.add(Lease(9, 1, 5, LeaseKind.SHRUNK))
        assert len(ledger.outstanding(9)) == 1
        assert ledger.total_owed(9) == 15

    def test_no_merge_across_kinds(self):
        ledger = LenderLedger()
        ledger.add(Lease(9, 1, 10, LeaseKind.SHRUNK))
        ledger.add(Lease(9, 1, 5, LeaseKind.PREEMPTED))
        assert len(ledger.outstanding(9)) == 2

    def test_isolated_by_od_job(self):
        ledger = LenderLedger()
        ledger.add(Lease(9, 1, 10, LeaseKind.PREEMPTED))
        ledger.add(Lease(8, 1, 3, LeaseKind.PREEMPTED))
        assert ledger.total_owed(9) == 10
        assert ledger.total_owed(8) == 3
        assert len(ledger) == 2

    def test_zero_node_lease_rejected(self):
        with pytest.raises(ValueError):
            Lease(9, 1, 0, LeaseKind.PREEMPTED)

    def test_order_preserved(self):
        ledger = LenderLedger()
        for lender in (5, 3, 8):
            ledger.add(Lease(9, lender, 1, LeaseKind.PREEMPTED))
        assert [l.lender_job_id for l in ledger.settle(9)] == [5, 3, 8]
