"""Tests for the node-failure injection extension."""

import pytest

from repro.core.mechanisms import Mechanism
from repro.jobs.checkpoint import CheckpointModel
from repro.jobs.job import Job, JobState, JobType
from repro.sim.config import SimConfig
from repro.sim.failures import FailureModel
from repro.sim.simulator import Simulation
from repro.util.errors import ConfigurationError
from repro.util.timeconst import DAY, HOUR


def rigid(job_id=1, submit=0.0, size=50, runtime=10000.0, setup=100.0):
    return Job(
        job_id=job_id,
        job_type=JobType.RIGID,
        submit_time=submit,
        size=size,
        runtime=runtime,
        estimate=runtime * 1.2,
        setup_time=setup,
    )


def malleable(job_id=2, submit=0.0, size=50, min_size=10, runtime=5000.0):
    return Job(
        job_id=job_id,
        job_type=JobType.MALLEABLE,
        submit_time=submit,
        size=size,
        min_size=min_size,
        runtime=runtime,
        estimate=runtime * 1.2,
        setup_time=50.0,
    )


class TestFailureModel:
    def test_job_mtbf_series(self):
        fm = FailureModel(enabled=True, node_mtbf_s=1e6)
        assert fm.job_mtbf(100) == pytest.approx(1e4)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            FailureModel(node_mtbf_s=0)
        with pytest.raises(ConfigurationError):
            FailureModel(restart_delay_s=-1)

    def test_disabled_factory(self):
        assert FailureModel.disabled().enabled is False

    def test_draw_positive(self):
        import numpy as np

        fm = FailureModel(enabled=True, node_mtbf_s=1e5)
        rng = np.random.default_rng(0)
        draws = [fm.draw_time_to_failure(10, rng) for _ in range(100)]
        assert all(d >= 0 for d in draws)
        # mean of Exp(1e4) over 100 draws lands in a loose band
        assert 2e3 < sum(draws) / len(draws) < 5e4


def run_with_failures(jobs, node_mtbf_s, mechanism=None, ckpt=None, seed=1):
    config = SimConfig(
        system_size=100,
        checkpoint=ckpt or CheckpointModel(node_mtbf_s=1.0, min_interval_s=2000.0),
        failures=FailureModel(enabled=True, node_mtbf_s=node_mtbf_s),
        failure_seed=seed,
        validate_invariants=True,
    )
    return Simulation(jobs, config, mechanism).run()


class TestFailureInjection:
    def test_rigid_job_survives_failures(self):
        """With an aggressive failure rate the job still completes, at a
        wall-clock cost, rolled back to checkpoints."""
        res = run_with_failures([rigid()], node_mtbf_s=50 * 10000.0)
        j = res.jobs[0]
        assert j.state is JobState.COMPLETED
        if res.failures_injected:
            assert j.stats.failures == res.failures_injected
            # restarts pay extra setups, counted as waste
            assert j.stats.wasted_setup_node_seconds > 0
            # and the finish is later than the failure-free timeline
            assert j.stats.end_time > 100.0 + 10000.0

    def test_work_conserved_under_failures(self):
        res = run_with_failures([rigid()], node_mtbf_s=50 * 8000.0)
        j = res.jobs[0]
        assert j.stats.retained_node_seconds == pytest.approx(
            j.runtime * j.size, rel=1e-6
        )

    def test_malleable_loses_no_work_on_failure(self):
        res = run_with_failures([malleable()], node_mtbf_s=50 * 3000.0)
        j = res.jobs[0]
        assert j.state is JobState.COMPLETED
        assert j.stats.lost_node_seconds == pytest.approx(0.0, abs=1e-6)
        assert j.stats.retained_node_seconds == pytest.approx(
            j.work_node_seconds, rel=1e-6
        )

    def test_failures_deterministic_per_seed(self):
        r1 = run_with_failures([rigid()], node_mtbf_s=50 * 8000.0, seed=5)
        r2 = run_with_failures([rigid()], node_mtbf_s=50 * 8000.0, seed=5)
        assert r1.failures_injected == r2.failures_injected
        assert r1.jobs[0].stats.end_time == r2.jobs[0].stats.end_time

    def test_different_seed_different_failures(self):
        ends = {
            run_with_failures(
                [rigid()], node_mtbf_s=50 * 5000.0, seed=s
            ).jobs[0].stats.end_time
            for s in range(6)
        }
        assert len(ends) > 1

    def test_disabled_injects_nothing(self):
        config = SimConfig(
            system_size=100,
            checkpoint=CheckpointModel.disabled(),
            validate_invariants=True,
        )
        res = Simulation([rigid()], config).run()
        assert res.failures_injected == 0
        assert res.jobs[0].stats.failures == 0

    def test_failures_compose_with_mechanisms(self):
        jobs = [
            rigid(job_id=1, size=100, runtime=20000.0),
            Job(
                job_id=2,
                job_type=JobType.ONDEMAND,
                submit_time=5000.0,
                size=40,
                runtime=1000.0,
                estimate=1000.0,
            ),
        ]
        res = run_with_failures(
            jobs, node_mtbf_s=100 * 15000.0, mechanism=Mechanism.parse("N&PAA")
        )
        assert all(j.state is JobState.COMPLETED for j in res.jobs)
        od = next(j for j in res.jobs if j.is_ondemand)
        assert od.start_delay == pytest.approx(0.0)

    def test_frequent_checkpoints_lose_less_under_failures(self):
        """Daly's regime: with failures as the only interruptions, more
        checkpoints means less rolled-back compute."""

        def lost(interval):
            total = 0.0
            for seed in range(8):
                res = run_with_failures(
                    [rigid(runtime=20000.0)],
                    node_mtbf_s=50 * 15000.0,
                    ckpt=CheckpointModel(node_mtbf_s=1.0, min_interval_s=interval),
                    seed=seed,
                )
                total += res.jobs[0].stats.lost_node_seconds
            return total

        assert lost(1000.0) <= lost(16000.0)
