"""Documentation consistency: the README's claims must stay executable."""

import pathlib
import re
import shlex

import pytest

ROOT = pathlib.Path(__file__).parent.parent


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        """Execute the README's Python quickstart block verbatim
        (shrunk horizon so the test stays fast)."""
        readme = (ROOT / "README.md").read_text()
        match = re.search(r"```python\n(.*?)```", readme, re.DOTALL)
        assert match, "README lost its quickstart code block"
        code = match.group(1).replace("days=7", "days=2")
        namespace: dict = {}
        exec(compile(code, "README.quickstart", "exec"), namespace)

    def test_documented_imports_exist(self):
        import repro

        for name in (
            "Mechanism",
            "SimConfig",
            "Simulation",
            "clone_jobs",
            "generate_trace",
            "summarize",
            "theta_spec",
            "FailureModel",
        ):
            assert hasattr(repro, name), f"README documents repro.{name}"

    def test_documented_config_knobs_exist(self):
        from repro.sim.config import SimConfig

        config = SimConfig(
            backfill_mode="conservative", log_decisions=True
        )
        assert config.backfill_mode == "conservative"
        from repro.workload.spec import theta_spec

        assert theta_spec(days=2, ondemand_noshow_frac=0.3).ondemand_noshow_frac == 0.3

    def test_examples_listed_in_readme_exist(self):
        readme = (ROOT / "README.md").read_text()
        # only the examples table rows: "| `script.py` | description |"
        scripts = re.findall(r"^\| `(\w+\.py)` \|", readme, re.MULTILINE)
        assert len(scripts) >= 3, "README lost its examples table"
        for script in scripts:
            assert (ROOT / "examples" / script).exists(), script

    def test_docs_files_exist(self):
        for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
            assert (ROOT / doc).stat().st_size > 1000


def cli_snippets(doc_text: str):
    """Every ``repro-hybrid …`` command inside the doc's bash blocks.

    Continuation backslashes are joined and trailing ``#`` comments
    stripped, so each yielded string is one complete command line.
    """
    commands = []
    for block in re.findall(r"```bash\n(.*?)```", doc_text, re.DOTALL):
        block = block.replace("\\\n", " ")
        for line in block.splitlines():
            line = line.strip()
            if line.startswith("repro-hybrid "):
                commands.append(line)
    return commands


class TestCliSnippetsParse:
    """Every documented CLI invocation must parse against the real
    argparse trees — docs and CLI cannot drift apart silently."""

    @pytest.mark.parametrize("doc", ["README.md", "EXPERIMENTS.md"])
    def test_doc_snippets_parse(self, doc, capsys):
        from repro.experiments.cli import (
            make_campaign_parser,
            make_obs_parser,
            make_parser,
            make_perf_parser,
        )

        snippets = cli_snippets((ROOT / doc).read_text())
        assert snippets, f"{doc} lost all its CLI snippets"
        for command in snippets:
            argv = shlex.split(command, comments=True)[1:]
            try:
                if argv and argv[0] == "campaign":
                    make_campaign_parser().parse_args(argv[1:])
                elif argv and argv[0] == "obs":
                    make_obs_parser().parse_args(argv[1:])
                elif argv and argv[0] == "perf":
                    make_perf_parser().parse_args(argv[1:])
                else:
                    make_parser().parse_args(argv)
            except SystemExit as exc:  # argparse rejected the snippet
                capsys.readouterr()  # keep usage noise out of the report
                raise AssertionError(
                    f"{doc} documents a command the CLI rejects "
                    f"(exit {exc.code}): {command}"
                ) from None

    def test_snippet_extractor_sees_continuations(self):
        text = "```bash\nrepro-hybrid campaign run \\\n    --dir d\n```"
        (snippet,) = cli_snippets(text)
        assert shlex.split(snippet) == [
            "repro-hybrid", "campaign", "run", "--dir", "d",
        ]


class TestDesignInventory:
    def test_every_inventory_module_importable(self):
        """DESIGN.md's system inventory names real modules."""
        import importlib

        for mod in (
            "repro.sim.engine",
            "repro.sim.cluster",
            "repro.sim.simulator",
            "repro.sim.failures",
            "repro.sched.easy",
            "repro.sched.conservative",
            "repro.core.mechanisms",
            "repro.core.reservation",
            "repro.core.preemption",
            "repro.core.shrink",
            "repro.core.coordinator",
            "repro.core.ledger",
            "repro.workload.theta",
            "repro.workload.swf",
            "repro.metrics.breakdown",
            "repro.experiments.figures",
        ):
            importlib.import_module(mod)

    def test_cli_entry_point_matches_pyproject(self):
        pyproject = (ROOT / "pyproject.toml").read_text()
        assert 'repro-hybrid = "repro.experiments.cli:main"' in pyproject
        from repro.experiments.cli import main

        assert callable(main)
