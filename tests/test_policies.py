"""Unit tests for queue-ordering policies."""

from repro.jobs.job import Job, JobType
from repro.sched.fcfs import FcfsPolicy, LjfPolicy, SjfPolicy


def job(job_id, submit=0.0, size=100, runtime=1000.0, estimate=None, jtype=JobType.RIGID):
    return Job(
        job_id=job_id,
        job_type=jtype,
        submit_time=submit,
        size=size,
        runtime=runtime,
        estimate=estimate if estimate is not None else runtime,
    )


class TestFcfs:
    def test_orders_by_submit(self):
        jobs = [job(1, submit=30), job(2, submit=10), job(3, submit=20)]
        ordered = FcfsPolicy().order(jobs, now=100.0)
        assert [j.job_id for j in ordered] == [2, 3, 1]

    def test_job_id_tiebreak(self):
        jobs = [job(5, submit=10), job(2, submit=10)]
        ordered = FcfsPolicy().order(jobs, now=100.0)
        assert [j.job_id for j in ordered] == [2, 5]

    def test_ondemand_retries_first(self):
        """Preempted-or-waiting on-demand jobs go to the front (§III-B.2)."""
        jobs = [
            job(1, submit=10),
            job(2, submit=500, jtype=JobType.ONDEMAND),
        ]
        ordered = FcfsPolicy().order(jobs, now=1000.0)
        assert [j.job_id for j in ordered] == [2, 1]

    def test_baseline_no_ondemand_priority(self):
        jobs = [
            job(1, submit=10),
            job(2, submit=500, jtype=JobType.ONDEMAND),
        ]
        ordered = FcfsPolicy().order(jobs, now=1000.0, prioritize_ondemand=False)
        assert [j.job_id for j in ordered] == [1, 2]

    def test_preempted_job_keeps_original_submit(self):
        """A preempted job resubmitted with its original time sorts early."""
        old = job(1, submit=5)
        newer = job(2, submit=300)
        ordered = FcfsPolicy().order([newer, old], now=1000.0)
        assert ordered[0] is old


class TestSjf:
    def test_orders_by_estimate(self):
        jobs = [job(1, estimate=5000.0, runtime=100.0), job(2, estimate=100.0, runtime=100.0)]
        ordered = SjfPolicy().order(jobs, now=0.0)
        assert [j.job_id for j in ordered] == [2, 1]


class TestLjf:
    def test_orders_by_size_desc(self):
        jobs = [job(1, size=10), job(2, size=500), job(3, size=100)]
        ordered = LjfPolicy().order(jobs, now=0.0)
        assert [j.job_id for j in ordered] == [2, 3, 1]


class TestNames:
    def test_policy_names(self):
        assert FcfsPolicy().name == "fcfs"
        assert SjfPolicy().name == "sjf"
        assert LjfPolicy().name == "ljf"
