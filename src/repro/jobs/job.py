"""The job model (§III-A of the paper).

A :class:`Job` is the immutable-ish description a user submits, plus a small
amount of mutable bookkeeping the simulator maintains (state, per-lifecycle
statistics).  Three job classes exist:

* **Rigid** — fixed ``size``; runs for ``runtime`` compute-seconds; pays a
  setup on every (re)start; checkpoints regularly; a preemption rolls it
  back to the last completed checkpoint.
* **On-demand** — time-critical; fixed size; never preempted or shrunk;
  may announce itself with an *advance notice* 15–30 minutes ahead.  Its
  ``submit_time`` is its *actual arrival*.
* **Malleable** — can run on any integer node count in
  ``[min_size, size]`` with linear speedup; shrink/expand is free;
  preemption loses no work (two-minute-warning checkpoint) but a resume
  pays setup again.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.util.errors import ConfigurationError


class JobType(enum.Enum):
    """The three application classes the paper co-schedules."""

    RIGID = "rigid"
    ONDEMAND = "ondemand"
    MALLEABLE = "malleable"


class NoticeClass(enum.Enum):
    """The four on-demand arrival categories of Fig. 1."""

    #: No advance notice; the scheduler learns of the job at arrival.
    NONE = "none"
    #: Notice given, actual arrival equals the estimated arrival.
    ACCURATE = "accurate"
    #: Notice given, job arrives before its estimated arrival.
    EARLY = "early"
    #: Notice given, job arrives (up to 30 min) after its estimated arrival.
    LATE = "late"


class JobState(enum.Enum):
    """Lifecycle states tracked by the simulator."""

    PENDING = "pending"  # not yet submitted (trace future)
    NOTICED = "noticed"  # on-demand: advance notice received, not arrived
    QUEUED = "queued"  # waiting in the scheduler queue
    RUNNING = "running"
    COMPLETED = "completed"


#: Legal state transitions; used by :meth:`Job.set_state` to catch bugs.
_TRANSITIONS = {
    JobState.PENDING: {JobState.NOTICED, JobState.QUEUED},
    JobState.NOTICED: {JobState.QUEUED},
    JobState.QUEUED: {JobState.RUNNING},
    JobState.RUNNING: {JobState.QUEUED, JobState.COMPLETED},
    JobState.COMPLETED: set(),
}


@dataclass
class JobStats:
    """Mutable per-job measurement record filled in during simulation."""

    first_start: Optional[float] = None
    last_start: Optional[float] = None
    end_time: Optional[float] = None
    preemptions: int = 0
    shrinks: int = 0
    expands: int = 0
    #: node-failure interruptions (failure injection is an extension;
    #: zero in paper-faithful runs)
    failures: int = 0
    #: node-seconds of compute that counted toward completion
    retained_node_seconds: float = 0.0
    #: node-seconds of compute rolled back by preemptions
    lost_node_seconds: float = 0.0
    #: node-seconds spent in setup (first start + every resume)
    setup_node_seconds: float = 0.0
    #: setup node-seconds that belong to *preempted* segments.  A completed
    #: job has exactly one completing segment whose setup is inherent; every
    #: preempted segment's setup exists only because of the preemption and
    #: is therefore waste.
    wasted_setup_node_seconds: float = 0.0
    #: node-seconds spent writing checkpoints
    checkpoint_node_seconds: float = 0.0
    #: total node-seconds the job held an allocation
    allocated_node_seconds: float = 0.0
    #: sizes the job ran at (one entry per running segment)
    segment_sizes: List[int] = field(default_factory=list)
    #: closed running segments as (start, end, mean_nodes); resizes within
    #: a segment are folded into the mean, preemption gaps are exact
    segment_records: List[tuple] = field(default_factory=list)

    @property
    def waste_node_seconds(self) -> float:
        """Node-seconds wasted because of preemption (lost work + re-setups)."""
        return self.lost_node_seconds + self.wasted_setup_node_seconds


@dataclass
class Job:
    """A single job in the workload.

    Parameters
    ----------
    job_id:
        Unique integer identifier.
    job_type:
        One of :class:`JobType`.
    submit_time:
        Submission time in seconds.  For on-demand jobs this is the
        *actual arrival* (the moment the job must start to count as
        "instant").
    size:
        Requested node count.  For malleable jobs, the *maximum* size.
    runtime:
        Actual compute demand in seconds when running at ``size`` nodes.
        (For malleable jobs total work is ``runtime * size`` node-seconds.)
    estimate:
        User walltime estimate at ``size`` nodes (``>= runtime``; CQSim-style
        traces guarantee this because jobs are killed at their estimate).
    setup_time:
        Seconds of setup paid at every (re)start.
    min_size:
        Malleable only — smallest node count the job can run on.
    project:
        Project identifier; the workload generator assigns job types at
        project granularity (§IV-A).
    notice_class / notice_time / estimated_arrival:
        On-demand only — the Fig. 1 arrival category, when the advance
        notice reaches the scheduler, and the arrival time announced in it.
    no_show:
        On-demand only — the job announces itself but never arrives
        (§III-B.4: "may arrive late or even do not show up").  Requires a
        notice; the reserved nodes are released at the grace timeout.
    """

    job_id: int
    job_type: JobType
    submit_time: float
    size: int
    runtime: float
    estimate: float
    setup_time: float = 0.0
    min_size: Optional[int] = None
    project: int = 0
    notice_class: NoticeClass = NoticeClass.NONE
    notice_time: Optional[float] = None
    estimated_arrival: Optional[float] = None
    no_show: bool = False

    state: JobState = field(default=JobState.PENDING, compare=False)
    stats: JobStats = field(default_factory=JobStats, compare=False)

    def __post_init__(self) -> None:
        if self.job_id < 0:
            raise ConfigurationError("job_id must be non-negative")
        if self.size <= 0:
            raise ConfigurationError(f"job {self.job_id}: size must be positive")
        if self.runtime <= 0:
            raise ConfigurationError(f"job {self.job_id}: runtime must be positive")
        if self.estimate < self.runtime:
            raise ConfigurationError(
                f"job {self.job_id}: estimate ({self.estimate}) < runtime "
                f"({self.runtime}); trace jobs are killed at their estimate"
            )
        if self.setup_time < 0:
            raise ConfigurationError(f"job {self.job_id}: setup_time must be >= 0")
        if self.submit_time < 0:
            raise ConfigurationError(f"job {self.job_id}: submit_time must be >= 0")
        if self.job_type is JobType.MALLEABLE:
            if self.min_size is None:
                raise ConfigurationError(
                    f"malleable job {self.job_id} requires min_size"
                )
            if not (1 <= self.min_size <= self.size):
                raise ConfigurationError(
                    f"job {self.job_id}: min_size must be in [1, size]"
                )
        elif self.min_size is not None and self.min_size != self.size:
            raise ConfigurationError(
                f"job {self.job_id}: only malleable jobs may set min_size"
            )
        if self.job_type is JobType.ONDEMAND:
            if self.notice_class is not NoticeClass.NONE:
                if self.notice_time is None or self.estimated_arrival is None:
                    raise ConfigurationError(
                        f"on-demand job {self.job_id} with notice_class "
                        f"{self.notice_class.value} requires notice_time and "
                        "estimated_arrival"
                    )
                if self.notice_time > self.submit_time:
                    raise ConfigurationError(
                        f"job {self.job_id}: notice_time after actual arrival"
                    )
            if self.no_show and self.notice_class is NoticeClass.NONE:
                raise ConfigurationError(
                    f"job {self.job_id}: a no-show without an advance notice "
                    "would be invisible to the scheduler; give it a notice"
                )
        else:
            if self.notice_class is not NoticeClass.NONE:
                raise ConfigurationError(
                    f"job {self.job_id}: only on-demand jobs carry notices"
                )
            if self.no_show:
                raise ConfigurationError(
                    f"job {self.job_id}: only on-demand jobs can be no-shows"
                )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def is_rigid(self) -> bool:
        return self.job_type is JobType.RIGID

    @property
    def is_ondemand(self) -> bool:
        return self.job_type is JobType.ONDEMAND

    @property
    def is_malleable(self) -> bool:
        return self.job_type is JobType.MALLEABLE

    @property
    def max_size(self) -> int:
        """Largest node count the job can use (== ``size`` for all types)."""
        return self.size

    @property
    def smallest_size(self) -> int:
        """Smallest node count the job can start on."""
        if self.is_malleable:
            assert self.min_size is not None
            return self.min_size
        return self.size

    @property
    def work_node_seconds(self) -> float:
        """Total compute demand in node-seconds (linear-speedup model)."""
        return self.runtime * self.size

    @property
    def estimate_node_seconds(self) -> float:
        """Estimated compute demand in node-seconds."""
        return self.estimate * self.size

    def runtime_at(self, nodes: int) -> float:
        """Compute time (excl. setup) when running at *nodes* nodes.

        Rigid and on-demand jobs only ever run at ``size``; malleable jobs
        follow the paper's linear-speedup model ``t = t_single / n``.
        """
        if not self.is_malleable:
            if nodes != self.size:
                raise ValueError(
                    f"job {self.job_id} is {self.job_type.value} and can only "
                    f"run at {self.size} nodes, not {nodes}"
                )
            return self.runtime
        if not (self.smallest_size <= nodes <= self.size):
            raise ValueError(
                f"malleable job {self.job_id}: nodes {nodes} outside "
                f"[{self.smallest_size}, {self.size}]"
            )
        return self.work_node_seconds / nodes

    def estimate_at(self, nodes: int) -> float:
        """Estimated compute time (excl. setup) at *nodes* nodes."""
        if not self.is_malleable:
            if nodes != self.size:
                raise ValueError(
                    f"job {self.job_id} cannot run at {nodes} nodes"
                )
            return self.estimate
        return self.estimate_node_seconds / nodes

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def set_state(self, new_state: JobState) -> None:
        """Transition the job, validating against the state machine."""
        if new_state not in _TRANSITIONS[self.state]:
            raise ConfigurationError(
                f"job {self.job_id}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    # ------------------------------------------------------------------
    # Reporting helpers
    # ------------------------------------------------------------------
    @property
    def turnaround(self) -> float:
        """Submission-to-completion interval; NaN until completed."""
        if self.stats.end_time is None:
            return math.nan
        return self.stats.end_time - self.submit_time

    @property
    def start_delay(self) -> float:
        """Submission-to-first-start interval; NaN until started."""
        if self.stats.first_start is None:
            return math.nan
        return self.stats.first_start - self.submit_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Job(id={self.job_id}, {self.job_type.value}, n={self.size}, "
            f"rt={self.runtime:.0f}s, est={self.estimate:.0f}s, "
            f"state={self.state.value})"
        )
