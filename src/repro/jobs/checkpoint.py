"""Checkpoint cost and interval model (§IV-B of the paper).

Rigid jobs take regular checkpoints at the optimal frequency defined by
Daly [27].  The paper sets the per-checkpoint overhead to 600 s for jobs
using fewer than 1 K nodes and 1200 s otherwise.

Daly's first-order optimum for the checkpoint interval is

    tau_opt = sqrt(2 * C * M) - C

where ``C`` is the checkpoint cost and ``M`` the mean time between failures
seen by the job.  Jobs spanning more nodes fail more often, so we model
``M = node_mtbf / n`` (the standard series-system assumption).

Figure 7 of the paper sweeps a *frequency multiplier*: "50 % means rigid
jobs make checkpoints twice as frequent as the optimal checkpointing
frequency", i.e. the interval is scaled by the multiplier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.errors import ConfigurationError
from repro.util.timeconst import DAY

#: Default per-node mean time between failures (5 years), a mid-range value
#: for leadership-class machines; configurable per experiment.
DEFAULT_NODE_MTBF_S: float = 5.0 * 365.0 * DAY

#: Paper's per-checkpoint overheads (§IV-B).
SMALL_JOB_CHECKPOINT_COST_S: float = 600.0
LARGE_JOB_CHECKPOINT_COST_S: float = 1200.0
LARGE_JOB_THRESHOLD_NODES: int = 1000


@dataclass(frozen=True)
class CheckpointModel:
    """Produces checkpoint cost and interval for a job of a given size.

    Parameters
    ----------
    node_mtbf_s:
        Mean time between failures of a single node, in seconds.
    interval_multiplier:
        Scales Daly's optimal interval (Fig. 7 sweep).  ``0.5`` means
        checkpoints twice as frequent as optimal; ``2.0`` half as frequent.
    min_interval_s:
        Lower clamp on the interval so pathological parameters cannot
        produce a checkpoint storm.
    enabled:
        When ``False`` jobs never checkpoint (interval = +inf); used by the
        baseline-without-mechanisms configuration and by on-demand jobs.
    """

    node_mtbf_s: float = DEFAULT_NODE_MTBF_S
    interval_multiplier: float = 1.0
    min_interval_s: float = 60.0
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.node_mtbf_s <= 0:
            raise ConfigurationError("node_mtbf_s must be positive")
        if self.interval_multiplier <= 0:
            raise ConfigurationError("interval_multiplier must be positive")
        if self.min_interval_s <= 0:
            raise ConfigurationError("min_interval_s must be positive")

    def cost(self, nodes: int) -> float:
        """Per-checkpoint overhead in seconds for a job on *nodes* nodes."""
        if nodes <= 0:
            raise ValueError("nodes must be positive")
        if nodes < LARGE_JOB_THRESHOLD_NODES:
            return SMALL_JOB_CHECKPOINT_COST_S
        return LARGE_JOB_CHECKPOINT_COST_S

    def job_mtbf(self, nodes: int) -> float:
        """MTBF experienced by a job spanning *nodes* nodes."""
        if nodes <= 0:
            raise ValueError("nodes must be positive")
        return self.node_mtbf_s / nodes

    def daly_interval(self, cost: float, mtbf: float) -> float:
        """Daly's first-order optimal interval ``sqrt(2*C*M) - C``.

        Clamped below at ``min_interval_s``; the first-order formula is
        only valid for ``C < 2M`` but the clamp keeps the result sane for
        any inputs.
        """
        if cost < 0:
            raise ValueError("cost must be non-negative")
        if mtbf <= 0:
            raise ValueError("mtbf must be positive")
        tau = math.sqrt(2.0 * cost * mtbf) - cost
        return max(tau, self.min_interval_s)

    def interval(self, nodes: int) -> float:
        """Checkpoint interval (compute-seconds between checkpoints).

        Returns ``math.inf`` when checkpointing is disabled.
        """
        if not self.enabled:
            return math.inf
        base = self.daly_interval(self.cost(nodes), self.job_mtbf(nodes))
        return max(base * self.interval_multiplier, self.min_interval_s)

    def with_multiplier(self, multiplier: float) -> "CheckpointModel":
        """Copy of this model with a different frequency multiplier."""
        return CheckpointModel(
            node_mtbf_s=self.node_mtbf_s,
            interval_multiplier=multiplier,
            min_interval_s=self.min_interval_s,
            enabled=self.enabled,
        )

    @staticmethod
    def disabled() -> "CheckpointModel":
        """A model under which jobs never checkpoint."""
        return CheckpointModel(enabled=False)
