"""Malleable-job execution model (§III-A).

The paper models malleable jobs with linear speedup on top of a constant
setup: ``t_actual = t_single / n + t_setup``.  We therefore track the job's
remaining *work* in node-seconds; on ``n`` nodes it drains at rate ``n``.

* **Shrink/expand** are free and instantaneous (the job is a bag of small
  tasks); remaining work is conserved and the finish time is recomputed.
* **Preemption** loses no compute — the two-minute warning lets the job
  save its state — but a resumed segment pays ``t_setup`` again.
* Setup progress does not speed up with more nodes and is *not* conserved
  across preemption (a job preempted mid-setup restarts setup).

The object lives for the job's whole life; node-second accounting is
integrated exactly across resize points.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.jobs.job import Job
from repro.util.errors import InvariantViolation

EPS = 1e-6


@dataclass
class MalleableAccounting:
    """Node-second decomposition of a closed malleable segment."""

    wall: float
    allocated: float
    setup: float
    compute: float  # == retained; malleable jobs never lose compute
    lost_setup: float  # partial setup thrown away by a mid-setup preemption

    def validate(self) -> None:
        if abs(self.allocated - (self.setup + self.compute)) > 1e-3:
            raise InvariantViolation(
                f"malleable accounting mismatch: alloc={self.allocated} "
                f"setup={self.setup} compute={self.compute}"
            )


class MalleableExecution:
    """Mutable execution state of one malleable job across its whole life."""

    __slots__ = (
        "job",
        "work_remaining",
        "nodes",
        "setup_remaining",
        "_last_update",
        "_seg_alloc",
        "_seg_setup",
        "_seg_compute",
        "_running",
    )

    def __init__(self, job: Job) -> None:
        if not job.is_malleable:
            raise ValueError(f"job {job.job_id} is not malleable")
        self.job = job
        #: node-seconds of compute still to do (persists across preemptions)
        self.work_remaining = job.work_node_seconds
        self.nodes = 0
        self.setup_remaining = 0.0
        self._last_update = 0.0
        self._seg_alloc = 0.0
        self._seg_setup = 0.0
        self._seg_compute = 0.0
        self._running = False

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    def start_segment(self, t: float, nodes: int) -> None:
        """Begin a (re)start on *nodes* nodes at wall time *t*."""
        if self._running:
            raise InvariantViolation(
                f"job {self.job.job_id}: start_segment while running"
            )
        if not (self.job.smallest_size <= nodes <= self.job.size):
            raise InvariantViolation(
                f"job {self.job.job_id}: start size {nodes} outside "
                f"[{self.job.smallest_size}, {self.job.size}]"
            )
        self.nodes = nodes
        self.setup_remaining = self.job.setup_time
        self._last_update = t
        self._seg_alloc = 0.0
        self._seg_setup = 0.0
        self._seg_compute = 0.0
        self._running = True

    def _advance(self, t: float) -> None:
        """Integrate setup/work consumption from the last update to *t*."""
        if t < self._last_update - EPS:
            raise InvariantViolation(
                f"job {self.job.job_id}: time moved backwards "
                f"({self._last_update} -> {t})"
            )
        dt = max(0.0, t - self._last_update)
        if dt == 0.0:
            self._last_update = t
            return
        self._seg_alloc += dt * self.nodes
        setup_dt = min(dt, self.setup_remaining)
        if setup_dt > 0:
            self.setup_remaining -= setup_dt
            self._seg_setup += setup_dt * self.nodes
            dt -= setup_dt
        if dt > 0:
            done = min(dt * self.nodes, self.work_remaining)
            self.work_remaining -= done
            self._seg_compute += done
            # Any surplus dt beyond work completion is a caller error; the
            # finish event should have fired exactly at depletion.
            surplus = dt - done / self.nodes if self.nodes else dt
            if surplus > 1e-3:
                raise InvariantViolation(
                    f"job {self.job.job_id}: advanced {surplus:.6f}s past "
                    "work depletion"
                )
        self._last_update = t

    # ------------------------------------------------------------------
    def resize(self, t: float, nodes: int) -> int:
        """Shrink or expand to *nodes* at time *t*; returns the delta.

        Positive delta = expansion (nodes taken from the pool), negative =
        shrink (nodes released to the pool).  Work is conserved.
        """
        if not self._running:
            raise InvariantViolation(f"job {self.job.job_id} is not running")
        if not (self.job.smallest_size <= nodes <= self.job.size):
            raise InvariantViolation(
                f"job {self.job.job_id}: resize to {nodes} outside "
                f"[{self.job.smallest_size}, {self.job.size}]"
            )
        self._advance(t)
        delta = nodes - self.nodes
        self.nodes = nodes
        return delta

    def finish_time(self) -> float:
        """Wall time the job completes at its current size."""
        if not self._running:
            raise InvariantViolation(f"job {self.job.job_id} is not running")
        if self.nodes <= 0:
            raise InvariantViolation(f"job {self.job.job_id}: zero-node run")
        return (
            self._last_update
            + self.setup_remaining
            + self.work_remaining / self.nodes
        )

    def predicted_finish(self) -> float:
        """Estimate-based finish prediction (for EASY backfilling).

        The user's estimate pads the total work by a fixed node-second
        amount; the padding survives shrinks/expands unchanged.
        """
        if not self._running:
            raise InvariantViolation(f"job {self.job.job_id} is not running")
        pad = (self.job.estimate - self.job.runtime) * self.job.size
        return (
            self._last_update
            + self.setup_remaining
            + (self.work_remaining + pad) / self.nodes
        )

    def preemption_loss(self, t: float) -> float:
        """Node-seconds wasted by preempting at *t* (victim-ordering key).

        Only setup is wasted: the partial setup of the current segment (if
        still setting up) plus the full setup the resume will re-pay.
        """
        if not self._running:
            raise InvariantViolation(f"job {self.job.job_id} is not running")
        spent_setup = self.job.setup_time - self.setup_remaining
        # advance() has not necessarily been called at t; approximate the
        # additional setup progress between _last_update and t.
        extra = min(max(0.0, t - self._last_update), self.setup_remaining)
        return (spent_setup + extra + self.job.setup_time) * self.nodes

    def shrinkable_nodes(self) -> int:
        """How many nodes this job can give up right now (SPAA supply)."""
        if not self._running:
            return 0
        return max(0, self.nodes - self.job.smallest_size)

    # ------------------------------------------------------------------
    def preempt(self, t: float) -> MalleableAccounting:
        """Close the current segment by preemption at time *t*.

        Work is conserved; partial setup is thrown away (and reported as
        ``lost_setup`` so the waste accounting can charge it).
        """
        if not self._running:
            raise InvariantViolation(f"job {self.job.job_id} is not running")
        self._advance(t)
        lost_setup = 0.0
        if self.setup_remaining > EPS:
            # Mid-setup preemption: everything spent on setup is wasted.
            lost_setup = self._seg_setup
        acc = MalleableAccounting(
            wall=0.0,  # wall is derivable but unused; kept for symmetry
            allocated=self._seg_alloc,
            setup=self._seg_setup,
            compute=self._seg_compute,
            lost_setup=lost_setup,
        )
        acc.validate()
        self._running = False
        self.nodes = 0
        self.setup_remaining = 0.0
        return acc

    def complete(self, t: float) -> MalleableAccounting:
        """Close the segment by natural completion at time *t*."""
        if not self._running:
            raise InvariantViolation(f"job {self.job.job_id} is not running")
        ft = self.finish_time()
        if abs(t - ft) > 1e-3:
            raise InvariantViolation(
                f"job {self.job.job_id}: complete() at {t}, natural finish {ft}"
            )
        self._advance(ft)
        if self.work_remaining > 1e-3:
            raise InvariantViolation(
                f"job {self.job.job_id}: completing with "
                f"{self.work_remaining:.3f} node-seconds outstanding"
            )
        acc = MalleableAccounting(
            wall=0.0,
            allocated=self._seg_alloc,
            setup=self._seg_setup,
            compute=self._seg_compute,
            lost_setup=0.0,
        )
        acc.validate()
        self._running = False
        return acc
