"""Job models: types, state machine, and execution timelines.

This subpackage implements §III-A of the paper:

* :class:`~repro.jobs.job.Job` — the static description of a job (what a
  user submits) plus mutable scheduling bookkeeping.
* :class:`~repro.jobs.checkpoint.CheckpointModel` — per-checkpoint cost
  (600 s / 1200 s by size) and Daly's optimal interval.
* :class:`~repro.jobs.rigid_exec.RigidTimeline` /
  :class:`~repro.jobs.rigid_exec.RigidExecution` — the piecewise
  setup→compute→checkpoint wall-clock timeline of a rigid job, with
  preemption rollback to the last completed checkpoint.
* :class:`~repro.jobs.malleable_exec.MalleableExecution` — the
  linear-speedup work model (``t = t_single / n + t_setup``) with free
  shrink/expand and loss-free preemption.
"""

from repro.jobs.checkpoint import CheckpointModel
from repro.jobs.job import Job, JobState, JobType, NoticeClass
from repro.jobs.malleable_exec import MalleableExecution
from repro.jobs.rigid_exec import RigidExecution, RigidTimeline

__all__ = [
    "CheckpointModel",
    "Job",
    "JobState",
    "JobType",
    "NoticeClass",
    "MalleableExecution",
    "RigidExecution",
    "RigidTimeline",
]
