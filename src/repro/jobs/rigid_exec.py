"""Rigid-job execution timeline (§III-A).

A rigid job's life on the machine is a sequence of *segments*.  Each segment
begins with ``setup`` seconds of communication setup, then alternates
``tau``-second compute chunks with ``cost``-second checkpoint writes:

    |-- setup --|== tau ==|-ckpt-|== tau ==|-ckpt-| ... |== rest ==| done

Compute progress is only *retained* at completed checkpoints: preempting a
segment rolls the job back to its last completed checkpoint (or to the
segment's starting point if none completed).  A resumed job starts a fresh
segment — paying setup again — from the retained compute offset.

Two classes:

* :class:`RigidTimeline` — immutable closed-form math for one segment.
* :class:`RigidExecution` — the mutable per-job object that strings
  segments together across preemptions and accumulates the node-second
  accounting used by the utilization metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.jobs.job import Job
from repro.util.errors import InvariantViolation

#: Absolute slack for floating-point time comparisons.
EPS = 1e-6


@dataclass(frozen=True)
class SegmentAccounting:
    """Node-second decomposition of one closed segment.

    ``allocated == setup + compute + checkpoint`` and
    ``compute == retained + lost`` (all in node-seconds).
    """

    wall: float
    allocated: float
    setup: float
    compute: float
    checkpoint: float
    retained: float
    lost: float

    def validate(self) -> None:
        if abs(self.allocated - (self.setup + self.compute + self.checkpoint)) > 1e-3:
            raise InvariantViolation(
                f"segment accounting mismatch: alloc={self.allocated} "
                f"setup={self.setup} compute={self.compute} ckpt={self.checkpoint}"
            )
        if abs(self.compute - (self.retained + self.lost)) > 1e-3:
            raise InvariantViolation(
                f"compute split mismatch: compute={self.compute} "
                f"retained={self.retained} lost={self.lost}"
            )


class RigidTimeline:
    """Closed-form wall-clock math for a single rigid running segment.

    Parameters
    ----------
    start:
        Wall time the segment begins.
    setup:
        Setup seconds paid at the head of the segment.
    base_work:
        Compute-seconds already retained when the segment begins (0 for a
        fresh job; the last checkpoint offset for a resumed one).
    total_work:
        The job's full compute demand in compute-seconds.
    interval:
        Compute-seconds between checkpoints (``math.inf`` disables them).
    cost:
        Wall-clock seconds each checkpoint takes (no compute progresses).
    """

    __slots__ = ("start", "setup", "base_work", "total_work", "interval", "cost")

    def __init__(
        self,
        start: float,
        setup: float,
        base_work: float,
        total_work: float,
        interval: float,
        cost: float,
    ) -> None:
        if total_work <= 0:
            raise ValueError("total_work must be positive")
        if not (0.0 <= base_work < total_work):
            raise ValueError(
                f"base_work must be in [0, total_work): {base_work} vs {total_work}"
            )
        if interval <= 0:
            raise ValueError("interval must be positive (use inf to disable)")
        if cost < 0:
            raise ValueError("cost must be non-negative")
        if setup < 0:
            raise ValueError("setup must be non-negative")
        self.start = float(start)
        self.setup = float(setup)
        self.base_work = float(base_work)
        self.total_work = float(total_work)
        self.interval = float(interval)
        self.cost = float(cost)

    # ------------------------------------------------------------------
    @property
    def remaining_work(self) -> float:
        """Compute-seconds between ``base_work`` and completion."""
        return self.total_work - self.base_work

    @property
    def num_checkpoints(self) -> int:
        """Checkpoints taken before the segment completes.

        Marks sit at ``base_work + i * interval`` for ``i >= 1`` strictly
        below ``total_work`` — there is no point checkpointing at the
        finish line.
        """
        if math.isinf(self.interval):
            return 0
        r = self.remaining_work
        n = math.ceil(r / self.interval - EPS) - 1
        return max(0, n)

    def finish_time(self) -> float:
        """Wall time the segment completes if never interrupted."""
        return (
            self.start
            + self.setup
            + self.remaining_work
            + self.num_checkpoints * self.cost
        )

    def wall_for_work(self, work: float) -> float:
        """Wall-clock duration to finish if the demand were *work*.

        Used to turn the user's runtime *estimate* into a predicted finish
        for EASY backfilling; since estimates never undershoot actuals the
        prediction never undershoots the true finish.
        """
        if work < self.base_work:
            raise ValueError("work estimate below already-retained work")
        r = work - self.base_work
        if r <= 0:
            return self.setup
        if math.isinf(self.interval):
            n = 0
        else:
            n = max(0, math.ceil(r / self.interval - EPS) - 1)
        return self.setup + r + n * self.cost

    def checkpoint_completion_time(self, i: int) -> float:
        """Wall time checkpoint *i* (1-based) finishes writing."""
        if not (1 <= i <= self.num_checkpoints):
            raise ValueError(
                f"checkpoint index {i} outside [1, {self.num_checkpoints}]"
            )
        return self.start + self.setup + i * (self.interval + self.cost)

    # ------------------------------------------------------------------
    def _elapsed_exec(self, t: float) -> float:
        """Post-setup execution seconds at wall time *t*, clamped."""
        return max(0.0, min(t, self.finish_time()) - self.start - self.setup)

    def completed_checkpoints_at(self, t: float) -> int:
        """Checkpoints fully written by wall time *t*."""
        if math.isinf(self.interval):
            return 0
        if t >= self.finish_time() - EPS:
            return self.num_checkpoints
        e = self._elapsed_exec(t)
        cycle = self.interval + self.cost
        return min(self.num_checkpoints, int((e + EPS) // cycle))

    def progress_at(self, t: float) -> float:
        """Raw compute-seconds executed beyond ``base_work`` by time *t*.

        Includes compute that would be *lost* if the job were preempted at
        *t* (work past the last completed checkpoint).
        """
        if t >= self.finish_time() - EPS:
            return self.remaining_work
        e = self._elapsed_exec(t)
        if math.isinf(self.interval):
            return min(e, self.remaining_work)
        cycle = self.interval + self.cost
        full_cycles = int((e + EPS) // cycle)
        within = e - full_cycles * cycle
        p = full_cycles * self.interval + min(within, self.interval)
        return min(p, self.remaining_work)

    def retained_at(self, t: float) -> float:
        """Absolute retained compute offset if preempted at time *t*."""
        if t >= self.finish_time() - EPS:
            return self.total_work
        k = self.completed_checkpoints_at(t)
        return min(self.total_work, self.base_work + k * self.interval if k else self.base_work)

    def last_checkpoint_completion_at_or_before(self, t: float) -> float | None:
        """Latest checkpoint-completion instant ``<= t``, or None.

        CUP preempts rigid victims "immediately after checkpointing": it
        schedules the preemption at this instant relative to the on-demand
        job's predicted arrival.
        """
        k = self.completed_checkpoints_at(t)
        if k == 0:
            return None
        return self.checkpoint_completion_time(k)

    def next_checkpoint_completion_after(self, t: float) -> float | None:
        """Earliest checkpoint-completion instant ``> t``, or None."""
        k = self.completed_checkpoints_at(t)
        if k >= self.num_checkpoints:
            return None
        return self.checkpoint_completion_time(k + 1)

    def accounting_until(self, t: float, nodes: int) -> SegmentAccounting:
        """Node-second decomposition of the segment up to wall time *t*.

        *t* is clamped to the segment's natural finish; at or past the
        finish the segment retains all its remaining work (nothing lost).
        """
        end = min(t, self.finish_time())
        wall = max(0.0, end - self.start)
        setup_spent = min(wall, self.setup)
        progress = self.progress_at(end)
        ckpt_spent = max(0.0, wall - setup_spent - progress)
        retained_delta = self.retained_at(end) - self.base_work
        lost = progress - retained_delta
        acc = SegmentAccounting(
            wall=wall,
            allocated=wall * nodes,
            setup=setup_spent * nodes,
            compute=progress * nodes,
            checkpoint=ckpt_spent * nodes,
            retained=retained_delta * nodes,
            lost=lost * nodes,
        )
        acc.validate()
        return acc


class RigidExecution:
    """Mutable per-job execution state for rigid (and on-demand) jobs.

    One instance lives for the job's whole life and strings running
    segments together across preemptions.  On-demand jobs reuse this class
    with checkpointing disabled and zero setup — they are never preempted,
    so the rollback machinery is simply never exercised.
    """

    __slots__ = ("job", "nodes", "interval", "cost", "completed_work", "timeline")

    def __init__(self, job: Job, interval: float, cost: float) -> None:
        self.job = job
        self.nodes = job.size
        self.interval = float(interval)
        self.cost = float(cost)
        #: compute-seconds retained across segments (checkpoint offset)
        self.completed_work = 0.0
        self.timeline: RigidTimeline | None = None

    @property
    def running(self) -> bool:
        return self.timeline is not None

    def start_segment(self, t: float) -> None:
        """Begin a (re)start at wall time *t* from the retained offset."""
        if self.timeline is not None:
            raise InvariantViolation(
                f"job {self.job.job_id}: start_segment while already running"
            )
        self.timeline = RigidTimeline(
            start=t,
            setup=self.job.setup_time,
            base_work=self.completed_work,
            total_work=self.job.runtime,
            interval=self.interval,
            cost=self.cost,
        )

    def finish_time(self) -> float:
        """Wall time the current segment completes the job."""
        if self.timeline is None:
            raise InvariantViolation(f"job {self.job.job_id} is not running")
        return self.timeline.finish_time()

    def predicted_finish(self) -> float:
        """Finish prediction based on the user's estimate (for EASY)."""
        if self.timeline is None:
            raise InvariantViolation(f"job {self.job.job_id} is not running")
        est_work = max(self.job.estimate, self.timeline.base_work + EPS)
        return self.timeline.start + self.timeline.wall_for_work(est_work)

    def preemption_loss(self, t: float) -> float:
        """Node-seconds that would be wasted by preempting at time *t*.

        Lost compute since the last checkpoint plus the setup the resumed
        segment will have to re-pay — the victim-ordering key of §III-B
        ("ascending order of their preemption overheads").
        """
        if self.timeline is None:
            raise InvariantViolation(f"job {self.job.job_id} is not running")
        tl = self.timeline
        lost = tl.progress_at(t) - (tl.retained_at(t) - tl.base_work)
        return (lost + self.job.setup_time) * self.nodes

    def next_checkpoint_completion_after(self, t: float) -> float | None:
        if self.timeline is None:
            return None
        return self.timeline.next_checkpoint_completion_after(t)

    def last_checkpoint_completion_at_or_before(self, t: float) -> float | None:
        if self.timeline is None:
            return None
        return self.timeline.last_checkpoint_completion_at_or_before(t)

    def preempt(self, t: float) -> SegmentAccounting:
        """Close the current segment by preemption at time *t*.

        Rolls retained work back to the last completed checkpoint and
        returns the segment accounting (caller merges it into JobStats).
        """
        if self.timeline is None:
            raise InvariantViolation(f"job {self.job.job_id} is not running")
        if t > self.timeline.finish_time() + EPS:
            raise InvariantViolation(
                f"job {self.job.job_id}: preempt at {t} after finish "
                f"{self.timeline.finish_time()}"
            )
        acc = self.timeline.accounting_until(t, self.nodes)
        self.completed_work = self.timeline.retained_at(t)
        self.timeline = None
        return acc

    def complete(self, t: float) -> SegmentAccounting:
        """Close the current segment by natural completion at time *t*."""
        if self.timeline is None:
            raise InvariantViolation(f"job {self.job.job_id} is not running")
        ft = self.timeline.finish_time()
        if abs(t - ft) > 1e-3:
            raise InvariantViolation(
                f"job {self.job.job_id}: complete() at {t}, natural finish {ft}"
            )
        acc = self.timeline.accounting_until(ft, self.nodes)
        self.completed_work = self.job.runtime
        self.timeline = None
        return acc
