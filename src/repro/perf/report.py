"""The perf-trend HTML dashboard: metric-over-commits, per scenario.

One self-contained page (inline SVG + CSS, zero external resources,
byte-stable for golden tests — the same rendering contract as
:mod:`repro.campaign.html`, whose document shell and table helpers
this reuses).  Structure:

* header tiles — scenarios / records / commits / machines in the
  history;
* one section per scenario hash, in first-appearance order: the
  parameter set, a line chart per gated metric with the **commit SHA
  on the x axis**, and a sparkline table covering every metric the
  records carry (min/median/last at a glance);
* an optional verdicts table when the caller just ran ``perf compare``
  — regressions render in the same ``delta-reg`` red the campaign
  diff uses.
"""

from __future__ import annotations

import math
import statistics
from typing import Dict, List, Optional, Sequence, Tuple

from repro.campaign.html import _cell, _document, _sortable_table, esc
from repro.campaign.svg import fmt_value, line_chart
from repro.perf.record import PerfRecord
from repro.perf.regress import DEFAULT_GATED_METRICS, Verdict, metric_direction

#: sparkline geometry (kept tiny: it is a table cell, not a chart)
_SPARK_W, _SPARK_H = 120, 26


def _sparkline(values: Sequence[Optional[float]]) -> str:
    """A minimal inline polyline over the finite values (no axes)."""
    points = [
        (i, v)
        for i, v in enumerate(values)
        if v is not None and math.isfinite(v)
    ]
    if len(points) < 2:
        return '<span class="note">-</span>'
    lo = min(v for _i, v in points)
    hi = max(v for _i, v in points)
    span = (hi - lo) or 1.0
    n = len(values) - 1 or 1
    path = " ".join(
        f"{2 + i / n * (_SPARK_W - 4):.1f},"
        f"{_SPARK_H - 3 - (v - lo) / span * (_SPARK_H - 6):.1f}"
        for i, v in points
    )
    last_x, last_y = path.rsplit(" ", 1)[-1].split(",")
    return (
        f'<svg class="viz" width="{_SPARK_W}" height="{_SPARK_H}" '
        f'viewBox="0 0 {_SPARK_W} {_SPARK_H}" role="img">'
        f'<polyline points="{path}" fill="none" '
        'stroke="var(--series-1)" stroke-width="1.5" '
        'stroke-linejoin="round"/>'
        f'<circle cx="{last_x}" cy="{last_y}" r="2.5" '
        'fill="var(--series-1)"/></svg>'
    )


def _group(
    records: Sequence[PerfRecord],
) -> Dict[str, List[PerfRecord]]:
    """Records per scenario hash, preserving append order throughout."""
    groups: Dict[str, List[PerfRecord]] = {}
    for rec in records:
        groups.setdefault(rec.scenario_hash, []).append(rec)
    return groups


def _commit_labels(group: Sequence[PerfRecord]) -> List[str]:
    """Git SHAs as x labels, disambiguated when one SHA repeats."""
    counts: Dict[str, int] = {}
    labels = []
    for rec in group:
        n = counts.get(rec.git_sha, 0)
        counts[rec.git_sha] = n + 1
        labels.append(rec.git_sha if n == 0 else f"{rec.git_sha}+{n}")
    return labels


def _tiles(records: Sequence[PerfRecord]) -> str:
    groups = _group(records)
    commits = {r.git_sha for r in records}
    machines = {tuple(sorted(r.machine.items())) for r in records}
    tiles = (
        ("scenarios", str(len(groups))),
        ("records", str(len(records))),
        ("commits", str(len(commits))),
        ("machines", str(len(machines))),
    )
    return '<div class="tiles">' + "".join(
        f'<div class="tile"><div class="label">{esc(label)}</div>'
        f'<div class="value">{esc(value)}</div></div>'
        for label, value in tiles
    ) + "</div>"


def _metric_names(group: Sequence[PerfRecord]) -> List[str]:
    """Every metric in the group: gated ones first, the rest sorted."""
    seen = set()
    for rec in group:
        seen.update(rec.metrics)
    ordered = [m for m in DEFAULT_GATED_METRICS if m in seen]
    ordered.extend(sorted(seen - set(ordered)))
    return ordered


def _series(
    group: Sequence[PerfRecord], metric: str
) -> List[Optional[float]]:
    out = []
    for rec in group:
        value = rec.metrics.get(metric)
        out.append(
            value if value is not None and math.isfinite(value) else None
        )
    return out


def _scenario_section(group: List[PerfRecord]) -> str:
    head = group[0]
    labels = _commit_labels(group)
    params = " · ".join(
        f"<code>{esc(k)}</code>={esc(v)}"
        for k, v in sorted(head.params.items())
    ) or "<code>(no params)</code>"
    parts = [
        f"<h2>{esc(head.scenario)} "
        f'<span class="note">({esc(head.scenario_hash)})</span></h2>'
        f'<p class="axes">{params}</p>'
    ]
    metric_names = _metric_names(group)
    for metric in metric_names:
        if metric not in DEFAULT_GATED_METRICS:
            continue
        values = _series(group, metric)
        if not any(v is not None for v in values):
            continue
        parts.append(
            '<div class="chart-card">'
            + line_chart(
                labels,
                [(metric, values)],
                title=(
                    f"{head.scenario}: {metric} "
                    f"({metric_direction(metric)} is better)"
                ),
                width=760,
                height=230,
                embed_style=False,
                x_label="commit",
            )
            + "</div>"
        )
    rows = []
    for metric in metric_names:
        values = _series(group, metric)
        finite = [v for v in values if v is not None]
        if not finite:
            continue
        rows.append(
            [
                f"<td><code>{esc(metric)}</code></td>",
                _cell(min(finite)),
                _cell(statistics.median(finite)),
                _cell(finite[-1]),
                f"<td>{_sparkline(values)}</td>",
            ]
        )
    parts.append(
        _sortable_table(
            [
                ("metric", False),
                ("min", True),
                ("median", True),
                ("last", True),
                ("trend", False),
            ],
            rows,
        )
    )
    return "".join(parts)


def _verdicts_section(verdicts: Sequence[Verdict]) -> str:
    rows = []
    for v in verdicts:
        css = {"regression": "delta-reg", "improvement": "delta-imp"}.get(
            v.status, ""
        )
        status = (
            f'<td><span class="{css}">{esc(v.status)}</span></td>'
            if css
            else f"<td>{esc(v.status)}</td>"
        )
        rows.append(
            [
                f"<td>{esc(v.scenario)}</td>",
                f"<td><code>{esc(v.metric)}</code></td>",
                status,
                _cell(v.current) if v.current is not None else "<td>-</td>",
                _cell(v.baseline) if v.baseline is not None else "<td>-</td>",
                (
                    f'<td class="num">{fmt_value(v.ratio)}x</td>'
                    if v.ratio is not None and math.isfinite(v.ratio)
                    else "<td>-</td>"
                ),
            ]
        )
    return "<h2>Latest compare</h2>" + _sortable_table(
        [
            ("scenario", False),
            ("metric", False),
            ("status", False),
            ("current", True),
            ("baseline median", True),
            ("ratio", True),
        ],
        rows,
    )


def render_perf_html(
    records: Sequence[PerfRecord],
    verdicts: Optional[Sequence[Verdict]] = None,
    title: str = "Performance trend",
) -> str:
    """Render the perf history (+ optional verdicts) as one HTML page."""
    body = [
        f"<h1>{esc(title)}</h1>"
        '<p class="subtitle">perf observatory — generated offline by '
        "<code>repro-hybrid perf report --html</code></p>",
        _tiles(records),
    ]
    if verdicts:
        body.append(_verdicts_section(verdicts))
    for group in _group(records).values():
        body.append(_scenario_section(group))
    if not records:
        body.append(
            '<p class="note">(empty history — run '
            "<code>repro-hybrid perf run</code> first)</p>"
        )
    return _document(title, "".join(body))
