"""PerfStore: append-only JSONL history of perf records.

Same durability discipline as :class:`repro.campaign.store.ResultStore`:
one record per line, appends go through ``O_APPEND`` + flush + fsync so
concurrent benchmark processes interleave whole lines, and loading
tolerates a torn final line (a reader racing a writer sees a clean
prefix, never an exception).  Unparsable interior lines are counted and
skipped — a corrupt record must not take the whole history with it.

There is no index and no compaction: perf histories grow by a handful
of records per CI run, so a linear scan is microseconds for years of
data.  Ordering is file order, which for a single history file is
append (and therefore commit) order — that ordering is what
``latest_baseline`` and the trend charts rely on.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, List, Optional

from repro.perf.record import PerfRecord, canonical_json


class PerfStore:
    """One JSONL file of :class:`PerfRecord` lines."""

    def __init__(self, path: os.PathLike) -> None:
        self.path = os.fspath(path)
        #: lines the last load() skipped because they failed to parse
        self.n_bad_lines = 0

    def append(self, record: PerfRecord) -> PerfRecord:
        """Atomically append one record (whole line, flushed, fsynced)."""
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        line = canonical_json(record.to_dict()) + "\n"
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line)
            fh.flush()
            os.fsync(fh.fileno())
        return record

    def load(self) -> List[PerfRecord]:
        """Every parseable record, in file (= append) order."""
        self.n_bad_lines = 0
        records: List[PerfRecord] = []
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                data = fh.read()
        except FileNotFoundError:
            return records
        lines = data.split("\n")
        # a writer mid-append leaves a torn tail with no newline; it is
        # the next reader's clean prefix, not an error
        torn_tail = lines.pop() if lines and lines[-1] else None
        for line in lines:
            if not line.strip():
                continue
            try:
                records.append(PerfRecord.from_dict(json.loads(line)))
            except (ValueError, TypeError, KeyError):
                self.n_bad_lines += 1
        if torn_tail is not None:
            try:
                records.append(PerfRecord.from_dict(json.loads(torn_tail)))
            except (ValueError, TypeError, KeyError):
                pass  # genuinely torn — silently part of the next append
        return records

    def filter(
        self,
        scenario: Optional[str] = None,
        scenario_hash: Optional[str] = None,
        machine: Optional[Dict[str, Any]] = None,
        predicate: Optional[Callable[[PerfRecord], bool]] = None,
    ) -> List[PerfRecord]:
        """Records matching every given constraint, in append order."""
        out = []
        for rec in self.load():
            if scenario is not None and rec.scenario != scenario:
                continue
            if scenario_hash is not None and rec.scenario_hash != scenario_hash:
                continue
            if machine is not None and rec.machine != machine:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def latest_baseline(
        self,
        scenario_hash: str,
        n: int = 5,
        machine: Optional[Dict[str, Any]] = None,
    ) -> List[PerfRecord]:
        """The last *n* records for a scenario hash (oldest first) —
        the rolling-median window the regression engine judges against."""
        matching = self.filter(scenario_hash=scenario_hash, machine=machine)
        return matching[-n:] if n > 0 else matching
