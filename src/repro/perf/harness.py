"""Warmup/repeat/min-of-k measurement shared by the whole bench fleet.

Every ``benchmarks/bench_*.py`` file and the ``perf run`` CLI time
code the same way:

* **warmup** iterations run first and are discarded (imports, caches,
  allocator warm-up);
* **repeat** timed iterations follow; the reported wall time is the
  *minimum* — the run least disturbed by the machine, the standard
  estimator for CI noise;
* when **memory** is requested, one *additional* untimed iteration
  runs under a live :class:`~repro.obs.memory.MemoryProbe` — kept out
  of the timed reps because tracemalloc taxes every allocation (2-3x
  on allocation-heavy code), and a wall-time history silently poisoned
  by a profiler would gate the wrong thing.

The measured callable may return a mapping of extra numeric metrics
(event counts, pass counts, output bytes); the mapping from the
*fastest* rep is merged into the record, and any ``*_processed`` /
``*_count`` style totals can be turned into rates by the caller.
:func:`bench` wraps a measurement into a stored :class:`PerfRecord`.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.perf.record import PerfRecord, current_git_sha
from repro.perf.store import PerfStore


@dataclasses.dataclass
class Measurement:
    """One harness run: min-of-k wall time plus per-rep detail."""

    wall_time_s: float
    times_s: List[float]
    extra: Dict[str, float]
    memory: Dict[str, float]

    def metrics(self) -> Dict[str, float]:
        """The flat metric dict a :class:`PerfRecord` stores."""
        out: Dict[str, float] = {"wall_time_s": self.wall_time_s}
        out.update(self.extra)
        out.update(self.memory)
        if "events_processed" in self.extra and self.wall_time_s > 0:
            out["events_per_s"] = (
                self.extra["events_processed"] / self.wall_time_s
            )
        if "cells_processed" in self.extra and self.wall_time_s > 0:
            out["cells_per_min"] = (
                self.extra["cells_processed"] * 60.0 / self.wall_time_s
            )
        return out


def _as_float_map(value: Any) -> Dict[str, float]:
    if not isinstance(value, Mapping):
        return {}
    out = {}
    for k, v in value.items():
        if isinstance(v, (int, float)) and not isinstance(v, bool):
            out[str(k)] = float(v)
    return out


def measure(
    fn: Callable[[], Any],
    warmup: int = 1,
    repeat: int = 3,
    memory: bool = False,
) -> Measurement:
    """Time ``fn`` with warmup/repeat/min-of-k (see module docstring)."""
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    for _ in range(warmup):
        fn()
    times: List[float] = []
    extra: Dict[str, float] = {}
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        if not times or elapsed < min(times):
            extra = _as_float_map(result)
        times.append(elapsed)

    mem: Dict[str, float] = {}
    if memory:
        from repro.obs.memory import MemoryProbe, gc_collections
        from repro.obs.registry import MetricsRegistry

        probe = MemoryProbe(MetricsRegistry())
        gc_before = gc_collections()
        try:
            with probe.section("perf.harness"):
                fn()
            sampled = probe.sample()
        finally:
            probe.close()
        mem = {
            "tracemalloc_peak_bytes": float(
                probe.registry.gauge("mem.tracemalloc.peak_bytes").value
            ),
            "tracemalloc_current_bytes": sampled.get(
                "mem.tracemalloc.current_bytes", 0.0
            ),
            "peak_rss_bytes": sampled.get("process.peak_rss_bytes", 0.0),
            "gc_collections": float(gc_collections() - gc_before),
        }
    return Measurement(
        wall_time_s=min(times), times_s=times, extra=extra, memory=mem
    )


def bench(
    scenario: str,
    params: Mapping[str, Any],
    fn: Callable[[], Any],
    store: Optional[PerfStore] = None,
    warmup: int = 1,
    repeat: int = 3,
    memory: bool = False,
    git_sha: Optional[str] = None,
    obs_snapshot: Optional[Dict[str, Any]] = None,
) -> PerfRecord:
    """Measure ``fn`` and wrap the result as a (stored) perf record."""
    measurement = measure(fn, warmup=warmup, repeat=repeat, memory=memory)
    record = PerfRecord(
        scenario=scenario,
        params=dict(params),
        metrics=measurement.metrics(),
        git_sha=git_sha if git_sha is not None else current_git_sha(),
        recorded_unix=time.time(),
        obs=obs_snapshot,
    )
    if store is not None:
        store.append(record)
    return record
