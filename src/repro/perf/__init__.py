"""Continuous performance observatory.

Where :mod:`repro.obs` answers "what did this run do", this package
answers "is the codebase getting faster or slower over time".  Four
parts:

* :mod:`repro.perf.record` — the :class:`PerfRecord` schema: one
  measurement of one scenario, keyed by a content-addressed scenario
  hash + git SHA + machine fingerprint;
* :mod:`repro.perf.store` — :class:`PerfStore`, an append-only JSONL
  history with atomic appends and torn-tail tolerance (same discipline
  as :mod:`repro.campaign.store`);
* :mod:`repro.perf.harness` — warmup/repeat/min-of-k measurement
  shared by every ``benchmarks/bench_*.py`` file and the ``perf run``
  CLI, so all timings land in one trajectory;
* :mod:`repro.perf.regress` — noise-aware regression verdicts against
  a rolling median of recent baselines;
* :mod:`repro.perf.report` — the perf-trend HTML dashboard
  (:mod:`repro.campaign.svg` line charts over commits).

Entry points: ``repro-hybrid perf run|record|compare|report``.
"""

from repro.perf.harness import Measurement, bench, measure
from repro.perf.record import (
    PerfRecord,
    machine_fingerprint,
    scenario_hash,
)
from repro.perf.regress import Verdict, compare_latest, compare_record
from repro.perf.store import PerfStore

__all__ = [
    "Measurement",
    "PerfRecord",
    "PerfStore",
    "Verdict",
    "bench",
    "compare_latest",
    "compare_record",
    "machine_fingerprint",
    "measure",
    "scenario_hash",
]
