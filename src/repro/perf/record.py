"""The perf-record schema: one measurement of one scenario.

A :class:`PerfRecord` is the unit the observatory stores, compares,
and charts.  Identity is three-part:

* **scenario hash** — SHA-256 over the canonical JSON of
  ``(scenario name, params)``, so two records are comparable iff they
  measured the same workload with the same knobs; renaming a knob or
  changing a default silently *stops* comparisons instead of producing
  apples-to-oranges verdicts;
* **git SHA** — which code produced the number (the x axis of every
  trend chart);
* **machine fingerprint** — CPU count, python version, platform.
  Wall-clock numbers from different machines are not comparable; the
  regression engine skips (with a warning) rather than judge across
  fingerprints.

Metric values are floats.  JSON is written with ``allow_nan=False``
everywhere in this repo, so non-finite values are encoded as the
strings ``"nan"`` / ``"inf"`` / ``"-inf"`` on disk and decoded back to
floats on load — a crashed measurement must be *storable* (the trend
should show the gap) without poisoning the file for strict parsers.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
import platform
import subprocess
import sys
from typing import Any, Dict, Mapping, Optional

SCHEMA_VERSION = 1


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    return json.dumps(
        value,
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
        default=str,
    )


def scenario_hash(scenario: str, params: Mapping[str, Any]) -> str:
    """Content address of (scenario, params): 12 hex chars of SHA-256."""
    payload = canonical_json({"scenario": scenario, "params": dict(params)})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]


def machine_fingerprint() -> Dict[str, Any]:
    """What makes wall-clock numbers (in)comparable across hosts."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "python": "%d.%d" % sys.version_info[:2],
        "platform": f"{platform.system()}-{platform.machine()}",
    }


def current_git_sha(repo_dir: Optional[str] = None) -> str:
    """Short SHA of HEAD, or "unknown" outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def _encode_float(value: float) -> Any:
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _decode_float(value: Any) -> float:
    if isinstance(value, str):
        try:
            return float(value)  # "nan"/"inf"/"-inf" parse directly
        except ValueError:
            return float("nan")
    return float(value)


def encode_metrics(metrics: Mapping[str, float]) -> Dict[str, Any]:
    return {k: _encode_float(float(v)) for k, v in metrics.items()}


def decode_metrics(metrics: Mapping[str, Any]) -> Dict[str, float]:
    return {k: _decode_float(v) for k, v in metrics.items()}


@dataclasses.dataclass
class PerfRecord:
    """One measurement of one scenario on one commit and machine."""

    scenario: str
    params: Dict[str, Any]
    metrics: Dict[str, float]
    scenario_hash: str = ""
    git_sha: str = "unknown"
    machine: Dict[str, Any] = dataclasses.field(
        default_factory=machine_fingerprint
    )
    recorded_unix: float = 0.0
    #: optional obs registry snapshot from the measured run
    obs: Optional[Dict[str, Any]] = None
    schema: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not self.scenario_hash:
            self.scenario_hash = scenario_hash(self.scenario, self.params)

    def to_dict(self) -> Dict[str, Any]:
        doc = {
            "schema": self.schema,
            "scenario": self.scenario,
            "scenario_hash": self.scenario_hash,
            "params": dict(self.params),
            "git_sha": self.git_sha,
            "machine": dict(self.machine),
            "recorded_unix": self.recorded_unix,
            "metrics": encode_metrics(self.metrics),
        }
        if self.obs is not None:
            doc["obs"] = self.obs
        return doc

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "PerfRecord":
        return cls(
            scenario=str(doc.get("scenario", "?")),
            params=dict(doc.get("params", {})),
            metrics=decode_metrics(doc.get("metrics", {})),
            scenario_hash=str(doc.get("scenario_hash", "")),
            git_sha=str(doc.get("git_sha", "unknown")),
            machine=dict(doc.get("machine", {})),
            recorded_unix=float(doc.get("recorded_unix", 0.0)),
            obs=doc.get("obs"),
            schema=int(doc.get("schema", SCHEMA_VERSION)),
        )

    def same_machine(self, other: "PerfRecord") -> bool:
        return self.machine == other.machine
