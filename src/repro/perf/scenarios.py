"""Named, parameterized perf scenarios for ``perf run`` and the bench fleet.

A scenario is a *factory*: ``make(params) -> Callable[[], dict]``.  The
factory does all setup (job synthesis, record synthesis) outside the
timed region; the returned thunk is what the harness times, and its
returned mapping of numeric totals (events processed, passes, output
bytes) is merged into the perf record so rates like ``events_per_s``
can be derived.

Parameters are part of the record's content-addressed scenario hash
(:func:`repro.perf.record.scenario_hash`), so ``sim_core`` at 1k jobs
and ``sim_core`` at 100k jobs are separate trend lines that never get
compared against each other.

``synth_jobs`` lives here (moved from ``benchmarks/bench_sim_core.py``)
because both the benchmark fleet and the CLI need the same canonical
near-saturated workload — one definition, one hash.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping

#: the canonical benchmark machine (Theta-like, §IV-B scale)
SYSTEM = 4096

Scenario = Callable[[], Dict[str, float]]


#: ``submit - notice`` never exceeds the drawn 900–1800 s lead
SYNTH_NOTICE_HORIZON_S = 1800.0


def iter_synth_jobs(n_jobs: int, seed: int = 2022, load: float = 0.95):
    """A near-saturated stream of small jobs (big running set), lazily.

    Sizes 1-3 on 4096 nodes with ~2.5 h runtimes keep thousands of jobs
    running at once: exactly the regime where the seed's per-pass
    rebuild (O(running log running) sort per event batch) dominated.
    5% of jobs are on-demand with accurate advance notice, 15%
    malleable — so reservations, loans, shrinks, and the resulting
    stale events all appear at scale.

    A true generator: draws are strictly sequential per job, so memory
    is O(1) — this is what lets the million-job ``bench_sim_core``
    scenarios assert an O(in-flight) simulator ceiling.
    ``synth_jobs`` materialises the identical stream.
    """
    from repro.jobs.job import Job, JobType, NoticeClass
    from repro.util.rng import RngStreams

    rng = RngStreams(seed).get("bench-sim-core")
    avg_size, avg_runtime = 2.0, 9000.0
    rate = load * SYSTEM / (avg_size * avg_runtime)
    t = 0.0
    for i in range(n_jobs):
        t += float(rng.exponential(1.0 / rate))
        u = float(rng.uniform())
        size = int(rng.integers(1, 4))
        runtime = float(rng.uniform(6_000.0, 12_000.0))
        estimate = runtime * float(rng.uniform(1.0, 1.5))
        if u < 0.05:
            lead = float(rng.uniform(900.0, 1_800.0))
            yield Job(
                job_id=i,
                job_type=JobType.ONDEMAND,
                submit_time=t,
                size=min(size * 4, 64),
                runtime=runtime / 10,
                estimate=estimate / 10,
                notice_class=NoticeClass.ACCURATE,
                notice_time=max(0.0, t - lead),
                estimated_arrival=t,
            )
        elif u < 0.20:
            yield Job(
                job_id=i,
                job_type=JobType.MALLEABLE,
                submit_time=t,
                size=size,
                min_size=1,
                runtime=runtime,
                estimate=estimate,
            )
        else:
            yield Job(
                job_id=i,
                job_type=JobType.RIGID,
                submit_time=t,
                size=size,
                runtime=runtime,
                estimate=estimate,
            )


def stream_synth_jobs(n_jobs: int, seed: int = 2022, load: float = 0.95):
    """:func:`iter_synth_jobs` wrapped with its notice horizon."""
    from repro.workload.stream import JobStream

    return JobStream(
        iter_synth_jobs(n_jobs, seed=seed, load=load),
        notice_horizon_s=SYNTH_NOTICE_HORIZON_S,
    )


def synth_jobs(n_jobs: int, seed: int = 2022, load: float = 0.95):
    """The materialised form of :func:`iter_synth_jobs` (same stream)."""
    return list(iter_synth_jobs(n_jobs, seed=seed, load=load))


def bench_sim_config(
    force_full_replan: bool = False,
    backfill_mode: str = "easy",
    policy: "str | None" = None,
):
    """The standard benchmark simulator config (checkpointing off)."""
    from repro.jobs.checkpoint import CheckpointModel
    from repro.sim.config import SimConfig

    return SimConfig(
        system_size=SYSTEM,
        checkpoint=CheckpointModel.disabled(),
        backfill_mode=backfill_mode,
        backfill_depth=16,
        force_full_replan=force_full_replan,
        policy=policy,
    )


def make_sim_core(params: Mapping[str, Any]) -> Scenario:
    """One simulator run of the near-saturated synthetic stream.

    Params: ``n_jobs`` (default 1000), ``backfill`` (easy/conservative),
    ``policy`` (any registered dispatcher name, e.g. ``prb_ewt``;
    empty = legacy FCFS), ``mechanism`` (e.g. ``CUA&SPAA``; empty =
    baseline), ``full_replan`` (0/1), ``stream`` (0/1:
    generator-backed workload + O(in-flight) simulator memory),
    ``seed``, ``load``.
    """
    from repro.core.mechanisms import Mechanism
    from repro.sim.simulator import Simulation
    from repro.workload.trace import clone_jobs

    n_jobs = int(params.get("n_jobs", 1000))
    seed = int(params.get("seed", 2022))
    load = float(params.get("load", 0.95))
    stream = bool(int(params.get("stream", 0)))
    # streamed runs synthesise jobs lazily *inside* the timed thunk —
    # holding a materialised copy outside it would defeat the memory
    # measurement the scenario exists for
    jobs = None if stream else synth_jobs(n_jobs, seed=seed, load=load)
    config = bench_sim_config(
        force_full_replan=bool(int(params.get("full_replan", 0))),
        backfill_mode=str(params.get("backfill", "easy")),
        policy=str(params.get("policy", "") or "") or None,
    )
    mech_name = str(params.get("mechanism", "") or "")
    mech = Mechanism.parse(mech_name) if mech_name else None

    def run() -> Dict[str, float]:
        workload = (
            stream_synth_jobs(n_jobs, seed=seed, load=load)
            if stream
            else clone_jobs(jobs)
        )
        result = Simulation(workload, config, mech).run()
        return {
            "events_processed": float(result.events_processed),
            "schedule_passes": float(result.schedule_passes),
            "passes_skipped": float(result.passes_skipped),
        }

    return run


def make_html_report(params: Mapping[str, Any]) -> Scenario:
    """Render a synthetic n-record campaign report (pivot + charts).

    Params: ``n_records`` (default 2000).
    """
    from repro.campaign.html import render_campaign_html

    n_records = int(params.get("n_records", 2000))
    records = synth_campaign_records(n_records)

    def run() -> Dict[str, float]:
        document = render_campaign_html(
            records, by=("notice_mix", "mechanism")
        )
        return {
            "records": float(n_records),
            "html_bytes": float(len(document)),
        }

    return run


def synth_campaign_records(n: int, backfill: str = "easy"):
    """Deterministic synthetic cell records for report-path scenarios."""
    from repro.campaign.store import CellRecord
    from repro.metrics.summary import SummaryMetrics

    base = dict(
        mechanism=None, n_jobs=10, n_rigid=5, n_malleable=3, n_ondemand=2,
        n_noshow=0, avg_turnaround_h=4.0, avg_turnaround_rigid_h=5.0,
        avg_turnaround_malleable_h=3.0, avg_turnaround_ondemand_h=1.0,
        instant_start_rate=0.5, avg_ondemand_delay_s=30.0,
        preemption_ratio_rigid=0.1, preemption_ratio_malleable=0.2,
        shrink_ratio_malleable=0.0, system_utilization=0.8,
        allocated_frac=0.8, lost_compute_frac=0.0, wasted_setup_frac=0.0,
        checkpoint_frac=0.0, reserved_idle_frac=0.0,
        decision_latency_p50_s=0.001, decision_latency_max_s=0.01,
        makespan_h=48.0, lease_resumes=0, lease_expands=0,
    )
    mechanisms = (None, "N&PAA", "N&SPAA", "CUA&PAA", "CUA&SPAA")
    mixes = ("W1", "W2", "W3", "W4", "W5")
    records = []
    for i in range(n):
        mechanism = mechanisms[i % len(mechanisms)]
        summary = SummaryMetrics(
            **{
                **base,
                "mechanism": mechanism,
                "avg_turnaround_h": 4.0 + (i % 97) * 0.01,
                "system_utilization": 0.7 + (i % 29) * 0.01,
            }
        ).to_dict()
        records.append(
            CellRecord(
                key=f"{backfill}-{i:06d}",
                config={
                    "days": float(7 * (1 + i % 3)),
                    "target_load": 0.6,
                    "system_size": 512,
                    "notice_mix": mixes[(i // 5) % len(mixes)],
                    "mechanism": mechanism,
                    "backfill_mode": backfill,
                    "checkpoint_multiplier": 1.0,
                    "failure_mtbf_days": 0.0,
                    "seed": i // 25,
                    "kind": "sim",
                    "spec_overrides": {},
                    "sim_overrides": {},
                },
                status="ok" if i % 200 else "error",
                summary=summary if i % 200 else None,
                error=None if i % 200 else "Traceback\nValueError: boom",
                elapsed_s=1.0,
            )
        )
    return records


#: the mechanism axis every campaign-throughput cell grid sweeps —
#: baseline plus all six paper mechanisms, so each (spec, seed) trace
#: is shared by 7 cells exactly as the fig6/fig7 grids share theirs
CAMPAIGN_MECHANISMS = (
    None,
    "N&PAA",
    "N&SPAA",
    "CUA&PAA",
    "CUA&SPAA",
    "CUP&PAA",
    "CUP&SPAA",
)

#: the fig7-style checkpoint-interval axis; cells varying only this
#: knob still share one (spec, seed) trace, so the grid exercises the
#: trace cache at the reuse factor real sweeps hit (7 mechanisms x 3
#: multipliers = 21 cells per generated trace)
CAMPAIGN_CHECKPOINTS = (0.5, 1.0, 2.0)


def make_campaign_throughput(params: Mapping[str, Any]) -> Scenario:
    """An end-to-end campaign over many tiny cells; cells/min is the
    gated metric.

    The grid sweeps :data:`CAMPAIGN_MECHANISMS` (baseline + all six
    mechanisms) crossed with the :data:`CAMPAIGN_CHECKPOINTS`
    multipliers across enough seeds to reach ``n_cells``, on a small
    machine with sub-day traces — the cell-throughput regime where the
    dispatch layer, repeated trace generation, and per-cell allocation
    dominate, per the task-runtime characterization literature.  Params:
    ``n_cells`` (default 63), ``days`` (default 0.25), ``system_size``
    (default 256), ``load`` (default 0.6), ``stream`` (0/1, default 1:
    streamed cells off the shared trace cache vs the materialized
    pre-cache path), ``workers`` (default 1: serial, so the measured
    win is cache + streaming + scratch, not parallelism).

    The trace cache is cleared at the start of every rep, so each rep
    pays its own parses — the measurement models a cold worker process,
    and ``stream=1`` vs ``stream=0`` is a fair A/B.
    """
    from repro.campaign.executor import run_campaign
    from repro.campaign.spec import CampaignSpec
    from repro.campaign.store import ResultStore
    from repro.workload.trace_cache import get_trace_cache

    n_cells = int(params.get("n_cells", 63))
    days = float(params.get("days", 0.25))
    system_size = int(params.get("system_size", 256))
    load = float(params.get("load", 0.6))
    stream = bool(int(params.get("stream", 1)))
    workers = int(params.get("workers", 1))
    per_trace = len(CAMPAIGN_MECHANISMS) * len(CAMPAIGN_CHECKPOINTS)
    n_seeds = max(1, -(-n_cells // per_trace))
    spec = CampaignSpec.from_dict(
        {
            "name": "campaign-throughput",
            "days": days,
            "target_load": load,
            "system_size": system_size,
            "mechanism": list(CAMPAIGN_MECHANISMS),
            "checkpoint_multiplier": list(CAMPAIGN_CHECKPOINTS),
            "seeds": list(range(n_seeds)),
        }
    )

    def run() -> Dict[str, float]:
        get_trace_cache().clear()
        store = ResultStore()
        result = run_campaign(
            spec, store=store, workers=workers, stream=stream
        )
        if result.n_failed:
            raise RuntimeError(
                f"campaign_throughput: {result.n_failed} cells failed"
            )
        events = sum(
            float(r.summary.get("events_processed", 0.0))
            for r in result.ok_records
            if r.summary
        )
        return {
            "cells_processed": float(result.n_ran),
            "events_processed": events,
        }

    return run


SCENARIOS: Dict[str, Callable[[Mapping[str, Any]], Scenario]] = {
    "sim_core": make_sim_core,
    "html_report": make_html_report,
    "campaign_throughput": make_campaign_throughput,
}
