"""Noise-aware perf regression verdicts.

The judge is deliberately boring: for each gated metric, the current
value is compared against the **rolling median of the last N baseline
records** for the same scenario hash (median, not mean — one noisy CI
run must not move the bar), with a **relative tolerance** wide enough
that ordinary machine jitter never pages anyone, and a **per-metric
direction**: wall time and byte counts regress *upward*, throughput
metrics (``*_per_s``) regress *downward*.

Defenses the edge-case tests pin down:

* **no baseline** — first run of a new scenario: verdict
  ``no-baseline``, never a failure (the gate cannot brick itself on
  the commit that introduces a scenario);
* **single-sample history** — the median of one value is that value;
  compared normally (a 2x slowdown against one honest baseline is
  still a regression);
* **NaN/inf** — records store them (see :mod:`repro.perf.record`),
  the judge reports ``not-finite`` and moves on; non-finite baselines
  are dropped from the median window first;
* **machine-fingerprint mismatch** — wall-clock numbers from another
  host are not evidence; verdict ``machine-mismatch`` with a warning,
  not a crash and not a pass/fail (CI passes ``ignore_machine=True``
  because its runners are fungible by design).

Only ``regression`` verdicts fail the gate (exit non-zero).
"""

from __future__ import annotations

import dataclasses
import math
import statistics
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.perf.record import PerfRecord

#: metrics the gate judges by default; everything else is context
DEFAULT_GATED_METRICS: Tuple[str, ...] = (
    "wall_time_s",
    "events_per_s",
    "tracemalloc_peak_bytes",
)

#: default relative tolerance — generous on purpose: CI machines are
#: shared, and a gate that cries wolf gets deleted
DEFAULT_TOLERANCE = 0.25

#: rolling-median window over the most recent baseline records
DEFAULT_WINDOW = 5

#: statuses that fail the gate
FAILING = frozenset({"regression"})


def metric_direction(name: str) -> str:
    """"lower" (better) or "higher" (better) for a metric name."""
    if (
        name.endswith("_per_s")
        or name.endswith("_per_sec")
        or name.endswith("_per_min")
    ):
        return "higher"
    return "lower"


@dataclasses.dataclass
class Verdict:
    """One metric of one scenario judged against its baseline window."""

    scenario: str
    scenario_hash: str
    metric: str
    status: str  # ok | regression | improvement | no-baseline |
    #              not-finite | machine-mismatch
    current: Optional[float] = None
    baseline: Optional[float] = None  # rolling median
    ratio: Optional[float] = None  # current / baseline
    n_baseline: int = 0
    note: str = ""

    @property
    def failed(self) -> bool:
        return self.status in FAILING

    def describe(self) -> str:
        head = f"[{self.status:>16}] {self.scenario} ({self.scenario_hash})"
        if self.current is None:
            return f"{head} {self.metric}: {self.note or 'no data'}"
        body = f"{head} {self.metric}: {self.current:.6g}"
        if self.baseline is not None:
            body += (
                f" vs median {self.baseline:.6g}"
                f" of {self.n_baseline} baseline(s)"
            )
            if self.ratio is not None and math.isfinite(self.ratio):
                body += f" ({self.ratio:.2f}x)"
        if self.note:
            body += f" — {self.note}"
        return body


def compare_record(
    current: PerfRecord,
    history: Sequence[PerfRecord],
    metrics: Sequence[str] = DEFAULT_GATED_METRICS,
    tolerance: float = DEFAULT_TOLERANCE,
    window: int = DEFAULT_WINDOW,
    ignore_machine: bool = False,
) -> List[Verdict]:
    """Judge one record against its scenario's baseline history."""
    baselines = [
        r for r in history if r.scenario_hash == current.scenario_hash
    ]
    if not ignore_machine:
        same, other = [], 0
        for r in baselines:
            if r.same_machine(current):
                same.append(r)
            else:
                other += 1
        if other and not same:
            return [
                Verdict(
                    scenario=current.scenario,
                    scenario_hash=current.scenario_hash,
                    metric=metric,
                    status="machine-mismatch",
                    current=current.metrics.get(metric),
                    n_baseline=other,
                    note=(
                        "all baselines are from a different machine "
                        "fingerprint; skipping compare (re-record a "
                        "baseline here, or pass --ignore-machine)"
                    ),
                )
                for metric in metrics
            ]
        baselines = same
    verdicts = []
    for metric in metrics:
        verdicts.append(
            _judge_metric(current, baselines, metric, tolerance, window)
        )
    return verdicts


def _judge_metric(
    current: PerfRecord,
    baselines: Sequence[PerfRecord],
    metric: str,
    tolerance: float,
    window: int,
) -> Verdict:
    base = dict(
        scenario=current.scenario,
        scenario_hash=current.scenario_hash,
        metric=metric,
    )
    value = current.metrics.get(metric)
    if value is None:
        return Verdict(
            status="no-baseline", note="metric absent from current record",
            **base,
        )
    if not math.isfinite(value):
        return Verdict(
            status="not-finite", current=value,
            note="current value is not finite; nothing to judge", **base,
        )
    window_values = [
        v
        for r in baselines[-window:]
        if (v := r.metrics.get(metric)) is not None and math.isfinite(v)
    ]
    if not window_values:
        return Verdict(
            status="no-baseline", current=value,
            note="no finite baseline samples for this scenario", **base,
        )
    median = statistics.median(window_values)
    ratio = value / median if median else math.inf
    direction = metric_direction(metric)
    if direction == "lower":
        regressed = value > median * (1.0 + tolerance)
        improved = value < median * (1.0 - tolerance)
    else:
        regressed = value < median * (1.0 - tolerance)
        improved = value > median * (1.0 + tolerance)
    status = "regression" if regressed else (
        "improvement" if improved else "ok"
    )
    return Verdict(
        status=status,
        current=value,
        baseline=median,
        ratio=ratio,
        n_baseline=len(window_values),
        note=f"{direction}-is-better, tolerance ±{tolerance:.0%}",
        **base,
    )


def compare_latest(
    current_records: Iterable[PerfRecord],
    baseline_records: Sequence[PerfRecord],
    metrics: Sequence[str] = DEFAULT_GATED_METRICS,
    tolerance: float = DEFAULT_TOLERANCE,
    window: int = DEFAULT_WINDOW,
    ignore_machine: bool = False,
) -> List[Verdict]:
    """Judge the newest record of each scenario hash in *current_records*.

    ``current_records`` is usually a fresh run's store; only the last
    record per scenario hash is judged (earlier ones are that same
    invocation's own history, not evidence of a regression).
    """
    latest: Dict[str, PerfRecord] = {}
    for rec in current_records:
        latest[rec.scenario_hash] = rec  # append order: last one wins
    verdicts: List[Verdict] = []
    for rec in latest.values():
        verdicts.extend(
            compare_record(
                rec,
                baseline_records,
                metrics=metrics,
                tolerance=tolerance,
                window=window,
                ignore_machine=ignore_machine,
            )
        )
    return verdicts


def render_verdicts(verdicts: Sequence[Verdict]) -> str:
    """The ``perf compare`` text output: one line per verdict + tally."""
    lines = [v.describe() for v in verdicts]
    n_fail = sum(v.failed for v in verdicts)
    counts: Dict[str, int] = {}
    for v in verdicts:
        counts[v.status] = counts.get(v.status, 0) + 1
    tally = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    lines.append(
        f"{'FAIL' if n_fail else 'PASS'}: {len(verdicts)} checks ({tally})"
    )
    return "\n".join(lines)
