"""Persistent, append-only campaign result store.

One campaign lives in one directory::

    <dir>/campaign.json    the expanded spec (for status/report/resume)
    <dir>/results.jsonl    one strict-JSON record per completed cell
    <dir>/shards/*.jsonl   per-worker partial results (distributed runs)
    <dir>/leases/*.json    cell leases (distributed runs)

Records are keyed by the cell's content address (a SHA-256 prefix of its
canonical config), so the store is *content-addressed*: re-running a
campaign — or a different campaign that happens to share cells — skips
every cell whose key is already present with an ``ok`` status.  JSONL
with append-and-flush writes means a killed run loses at most the cell
in flight; the next run replays the file and resumes from the survivors.

The format is deliberately plain (no sqlite, no schema migrations): a
store can be inspected with ``jq``, concatenated from several partial
runs, or rsync'd between machines without tooling.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.metrics.summary import SummaryMetrics, deterministic_view
from repro.util.errors import ConfigurationError

logger = logging.getLogger(__name__)

RESULTS_FILE = "results.jsonl"
SPEC_FILE = "campaign.json"
SHARDS_DIR = "shards"
#: cached progress indexes (see :mod:`repro.campaign.progress`) live here
INDEX_DIR = "index"


@dataclass(frozen=True)
class CellRecord:
    """One stored cell outcome (simulation summary or trace stats)."""

    key: str
    config: Mapping[str, object]
    status: str  # "ok" | "error"
    #: SummaryMetrics.to_dict() for sim cells; None for trace cells/errors
    summary: Optional[Mapping[str, object]] = None
    #: extra per-cell results (trace statistics, ...)
    payload: Optional[Mapping[str, object]] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def summary_metrics(self) -> SummaryMetrics:
        if self.summary is None:
            raise ValueError(f"cell {self.key} has no summary")
        return SummaryMetrics.from_dict(dict(self.summary))

    def to_json(self) -> str:
        return json.dumps(
            {
                "key": self.key,
                "config": dict(self.config),
                "status": self.status,
                "summary": dict(self.summary) if self.summary else None,
                "payload": dict(self.payload) if self.payload else None,
                "error": self.error,
                "elapsed_s": self.elapsed_s,
            },
            sort_keys=True,
            allow_nan=False,
        )

    @staticmethod
    def from_json(line: str) -> "CellRecord":
        data = json.loads(line)
        return CellRecord(
            key=data["key"],
            config=data["config"],
            status=data["status"],
            summary=data.get("summary"),
            payload=data.get("payload"),
            error=data.get("error"),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
        )


def read_jsonl_since(
    path: Path, offset: int = 0
) -> Tuple[List[CellRecord], int, bool]:
    """Parse the complete records appended to *path* after byte *offset*.

    Returns ``(records, new_offset, torn)``.  Only newline-terminated
    lines are consumed: ``new_offset`` always lands on a line boundary,
    so a caller that persists it re-reads nothing on the next pass.  A
    trailing fragment without a newline — a writer killed mid-append,
    or an append happening *right now* — is left unconsumed and flagged
    via ``torn``; it is re-examined (and, once its newline lands,
    parsed) on the next call.  A newline-terminated line that fails to
    parse can never heal, so it is skipped with a warning and its bytes
    are consumed.
    """
    records: List[CellRecord] = []
    torn = False
    try:
        with open(path, "rb") as fh:
            fh.seek(offset)
            data = fh.read()
    except FileNotFoundError:
        return records, offset, torn
    pos = offset
    lines = data.split(b"\n")
    tail = lines.pop()  # bytes after the last newline; b"" if none
    for raw in lines:
        pos += len(raw) + 1
        line = raw.strip()
        if not line:
            continue
        try:
            records.append(CellRecord.from_json(line.decode("utf-8")))
        except (
            json.JSONDecodeError,
            KeyError,
            TypeError,
            ValueError,
            UnicodeDecodeError,
        ):
            logger.warning(
                "skipping unparsable record in %s at byte %d",
                path,
                pos - len(raw) - 1,
            )
    if tail.strip():
        torn = True
    return records, pos, torn


def iter_jsonl_records(path: Path):
    """Yield the valid :class:`CellRecord` s of a JSONL file, in order.

    Torn tail lines (a writer killed mid-append) are skipped with a
    warning — that cell simply re-runs.  Shared by the store loader, the
    shard merger, and the distributed worker's completion scan.
    """
    records, _offset, torn = read_jsonl_since(Path(path), 0)
    if torn:
        logger.warning(
            "torn trailing line in %s (writer killed mid-append?) — "
            "skipped; the cell re-runs",
            path,
        )
    yield from records


def invalidate_indexes(directory: Optional[os.PathLike]) -> int:
    """Delete every cached progress index under *directory*.

    Called whenever a tracked file is rewritten in place (``compact``):
    the indexes would notice the inode change and rescan anyway, but
    removing them makes the invalidation explicit and reclaims the
    space.  Returns the number of index files removed.
    """
    if directory is None:
        return 0
    index_dir = Path(directory) / INDEX_DIR
    if not index_dir.is_dir():
        return 0
    removed = 0
    for path in index_dir.glob("*.json"):
        try:
            path.unlink()
            removed += 1
        except FileNotFoundError:  # pragma: no cover - benign race
            pass
    return removed


class ResultStore:
    """Append-only record store, optionally backed by a directory.

    With ``directory=None`` the store is purely in-memory (useful for
    one-shot figure runs that want the campaign machinery without a
    cache directory).  *results_file* relocates the JSONL inside the
    directory — distributed workers use ``shards/<name>.jsonl`` so many
    writers never interleave appends into one file.  ``load=False``
    skips replaying the JSONL into memory, for callers that only need
    the spec paths (the fleet launcher, which accounts completion via
    the progress index instead).
    """

    def __init__(
        self,
        directory: Optional[os.PathLike] = None,
        results_file: str = RESULTS_FILE,
        load: bool = True,
    ) -> None:
        self.directory: Optional[Path] = (
            Path(directory) if directory is not None else None
        )
        self._results_file = results_file
        self._records: Dict[str, CellRecord] = {}
        #: byte offset up to which the JSONL has been folded into memory,
        #: and the inode it belonged to — `refresh()` reads only appended
        #: bytes unless the file was rewritten (inode change) or shrank
        self._load_offset = 0
        self._load_inode: Optional[int] = None
        if self.directory is not None and load:
            self._load()

    def _ensure_dir(self) -> None:
        # created lazily on first write, so read-only operations
        # (status/report) never leave empty directories behind
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.results_path
            if path is not None:
                path.parent.mkdir(parents=True, exist_ok=True)

    # --- persistence -------------------------------------------------------
    @property
    def results_path(self) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / self._results_file

    @property
    def spec_path(self) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / SPEC_FILE

    def _load(self) -> None:
        path = self.results_path
        if path is None:
            return
        self._records.clear()
        self._load_offset = 0
        try:
            self._load_inode = path.stat().st_ino
        except FileNotFoundError:
            self._load_inode = None
            return
        records, self._load_offset, torn = read_jsonl_since(path, 0)
        if torn:
            logger.warning(
                "torn trailing line in %s (writer killed mid-append?) — "
                "skipped; the cell re-runs",
                path,
            )
        for record in records:
            self._records[record.key] = record

    def refresh(self) -> int:
        """Fold records appended since the last load into memory.

        Reads only the bytes past the remembered offset — O(appended),
        not O(file).  A file that shrank or was replaced (``compact``,
        rsync) triggers a full reload; a vanished file empties the
        store.  Returns the number of records folded in.
        """
        path = self.results_path
        if path is None:
            return 0
        try:
            st = path.stat()
        except FileNotFoundError:
            n_before = len(self._records)
            self._records.clear()
            self._load_offset = 0
            self._load_inode = None
            return -n_before if n_before else 0
        if st.st_ino != self._load_inode or st.st_size < self._load_offset:
            n_before = len(self._records)
            self._load()
            return len(self._records) - n_before
        if st.st_size == self._load_offset:
            return 0
        records, self._load_offset, _torn = read_jsonl_since(
            path, self._load_offset
        )
        for record in records:
            self._records[record.key] = record
        return len(records)

    def write_spec(
        self, spec_dict: Mapping[str, object], overwrite: bool = False
    ) -> None:
        """Persist the campaign spec; reject a conflicting existing one.

        ``overwrite=True`` replaces a differing spec instead (growing a
        campaign in place — completed cells stay valid because they are
        keyed by content, not by spec).
        """
        path = self.spec_path
        if path is None:
            return
        self._ensure_dir()
        payload = json.dumps(dict(spec_dict), indent=2, sort_keys=True)
        if path.exists() and not overwrite:
            existing = json.loads(path.read_text(encoding="utf-8"))
            if existing != json.loads(payload):
                raise ConfigurationError(
                    f"campaign directory {self.directory} already holds a "
                    f"different spec ({existing.get('name')!r}); re-run "
                    "with --grow (allow_spec_update) to extend it, or use "
                    "a fresh directory"
                )
            return
        path.write_text(payload + "\n", encoding="utf-8")

    def read_spec(self) -> Optional[Dict[str, object]]:
        path = self.spec_path
        if path is None or not path.exists():
            return None
        return json.loads(path.read_text(encoding="utf-8"))

    # --- record access -----------------------------------------------------
    def put(self, record: CellRecord) -> None:
        """Insert a record and durably append it to the JSONL file."""
        self._records[record.key] = record
        path = self.results_path
        if path is not None:
            self._ensure_dir()
            with path.open("a", encoding="utf-8") as fh:
                fh.write(record.to_json() + "\n")
                fh.flush()
                os.fsync(fh.fileno())
                # our own append is already in memory — advance the
                # refresh offset past it (O_APPEND writes land at the
                # end, so tell() after the flush is a line boundary)
                self._load_offset = fh.tell()
                if self._load_inode is None:
                    self._load_inode = os.fstat(fh.fileno()).st_ino

    def get(self, key: str) -> Optional[CellRecord]:
        return self._records.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> List[CellRecord]:
        return list(self._records.values())

    def keys(self) -> frozenset:
        """Every stored key, regardless of status."""
        return frozenset(self._records)

    def completed_keys(self) -> frozenset:
        """Keys whose cells finished successfully (cache hits)."""
        return frozenset(k for k, r in self._records.items() if r.ok)

    def failed_keys(self) -> frozenset:
        return frozenset(k for k, r in self._records.items() if not r.ok)

    def drop(self, keys: Iterable[str]) -> int:
        """Forget records in memory (e.g. to retry failures); the JSONL
        keeps history — last write per key wins on reload."""
        n = 0
        for key in list(keys):
            if self._records.pop(key, None) is not None:
                n += 1
        return n

    def compact(self, drop_errors: bool = False) -> "CompactStats":
        """Rewrite the JSONL keeping one line per key (``campaign gc``).

        Retries and merges append superseding lines; history accumulates
        until compacted.  ``drop_errors=True`` additionally removes
        ``error`` records entirely, so those cells re-run on the next
        campaign pass.  The rewrite is atomic (temp file + rename): a
        kill mid-gc leaves either the old or the new file, never a
        truncated one.  Every cached progress index under the directory
        is invalidated — the rewrite moves bytes that index offsets
        point into.
        """
        n_errors = 0
        if drop_errors:
            errors = [k for k, r in self._records.items() if not r.ok]
            n_errors = self.drop(errors)
        path = self.results_path
        n_superseded = 0
        if path is not None and path.exists():
            n_lines = sum(
                1 for _ in iter_jsonl_records(path)
            )
            n_superseded = n_lines - len(self._records) - n_errors
            tmp = path.with_name(path.name + ".gc-tmp")
            with tmp.open("w", encoding="utf-8") as fh:
                for record in self._records.values():
                    fh.write(record.to_json() + "\n")
                fh.flush()
                os.fsync(fh.fileno())
                new_offset = fh.tell()
            os.replace(tmp, path)
            self._load_offset = new_offset
            self._load_inode = path.stat().st_ino
            invalidate_indexes(self.directory)
        return CompactStats(
            n_kept=len(self._records),
            n_superseded=max(0, n_superseded),
            n_errors_dropped=n_errors,
        )

    def canonical_bytes(self) -> bytes:
        """A machine- and schedule-independent serialization of the
        merged state: one line per key in sorted order, with wall-clock
        fields (``elapsed_s``, the summary's wall-clock metrics)
        stripped.  Two stores hold the same results iff their canonical
        bytes are equal — the equivalence used to assert that a
        kill-and-resume fleet matches a solo run byte for byte.
        """
        lines = []
        for key in sorted(self._records):
            r = self._records[key]
            lines.append(
                json.dumps(
                    {
                        "key": r.key,
                        "config": dict(r.config),
                        "status": r.status,
                        "summary": (
                            deterministic_view(dict(r.summary))
                            if r.summary
                            else None
                        ),
                        "payload": dict(r.payload) if r.payload else None,
                        "error": r.error,
                    },
                    sort_keys=True,
                    allow_nan=False,
                )
            )
        return ("\n".join(lines) + "\n").encode("utf-8") if lines else b""


@dataclass(frozen=True)
class CompactStats:
    """What a :meth:`ResultStore.compact` pass removed."""

    n_kept: int
    n_superseded: int
    n_errors_dropped: int
