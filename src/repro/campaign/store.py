"""Persistent, append-only campaign result store.

One campaign lives in one directory::

    <dir>/campaign.json    the expanded spec (for status/report/resume)
    <dir>/results.jsonl    one strict-JSON record per completed cell
    <dir>/shards/*.jsonl   per-worker partial results (distributed runs)
    <dir>/leases/*.json    cell leases (distributed runs)

Records are keyed by the cell's content address (a SHA-256 prefix of its
canonical config), so the store is *content-addressed*: re-running a
campaign — or a different campaign that happens to share cells — skips
every cell whose key is already present with an ``ok`` status.  JSONL
with append-and-flush writes means a killed run loses at most the cell
in flight; the next run replays the file and resumes from the survivors.

The format is deliberately plain (no sqlite, no schema migrations): a
store can be inspected with ``jq``, concatenated from several partial
runs, or rsync'd between machines without tooling.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional

from repro.metrics.summary import SummaryMetrics
from repro.util.errors import ConfigurationError

RESULTS_FILE = "results.jsonl"
SPEC_FILE = "campaign.json"
SHARDS_DIR = "shards"


@dataclass(frozen=True)
class CellRecord:
    """One stored cell outcome (simulation summary or trace stats)."""

    key: str
    config: Mapping[str, object]
    status: str  # "ok" | "error"
    #: SummaryMetrics.to_dict() for sim cells; None for trace cells/errors
    summary: Optional[Mapping[str, object]] = None
    #: extra per-cell results (trace statistics, ...)
    payload: Optional[Mapping[str, object]] = None
    error: Optional[str] = None
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def summary_metrics(self) -> SummaryMetrics:
        if self.summary is None:
            raise ValueError(f"cell {self.key} has no summary")
        return SummaryMetrics.from_dict(dict(self.summary))

    def to_json(self) -> str:
        return json.dumps(
            {
                "key": self.key,
                "config": dict(self.config),
                "status": self.status,
                "summary": dict(self.summary) if self.summary else None,
                "payload": dict(self.payload) if self.payload else None,
                "error": self.error,
                "elapsed_s": self.elapsed_s,
            },
            sort_keys=True,
            allow_nan=False,
        )

    @staticmethod
    def from_json(line: str) -> "CellRecord":
        data = json.loads(line)
        return CellRecord(
            key=data["key"],
            config=data["config"],
            status=data["status"],
            summary=data.get("summary"),
            payload=data.get("payload"),
            error=data.get("error"),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
        )


def iter_jsonl_records(path: Path):
    """Yield the valid :class:`CellRecord` s of a JSONL file, in order.

    Torn tail lines (a writer killed mid-append) are silently dropped —
    that cell simply re-runs.  Shared by the store loader, the shard
    merger, and the distributed worker's completion scan.
    """
    if not path.exists():
        return
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                yield CellRecord.from_json(line)
            except (json.JSONDecodeError, KeyError, TypeError):
                continue


class ResultStore:
    """Append-only record store, optionally backed by a directory.

    With ``directory=None`` the store is purely in-memory (useful for
    one-shot figure runs that want the campaign machinery without a
    cache directory).  *results_file* relocates the JSONL inside the
    directory — distributed workers use ``shards/<name>.jsonl`` so many
    writers never interleave appends into one file.
    """

    def __init__(
        self,
        directory: Optional[os.PathLike] = None,
        results_file: str = RESULTS_FILE,
    ) -> None:
        self.directory: Optional[Path] = (
            Path(directory) if directory is not None else None
        )
        self._results_file = results_file
        self._records: Dict[str, CellRecord] = {}
        if self.directory is not None:
            self._load()

    def _ensure_dir(self) -> None:
        # created lazily on first write, so read-only operations
        # (status/report) never leave empty directories behind
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.results_path
            if path is not None:
                path.parent.mkdir(parents=True, exist_ok=True)

    # --- persistence -------------------------------------------------------
    @property
    def results_path(self) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / self._results_file

    @property
    def spec_path(self) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / SPEC_FILE

    def _load(self) -> None:
        path = self.results_path
        if path is None:
            return
        for record in iter_jsonl_records(path):
            self._records[record.key] = record

    def write_spec(
        self, spec_dict: Mapping[str, object], overwrite: bool = False
    ) -> None:
        """Persist the campaign spec; reject a conflicting existing one.

        ``overwrite=True`` replaces a differing spec instead (growing a
        campaign in place — completed cells stay valid because they are
        keyed by content, not by spec).
        """
        path = self.spec_path
        if path is None:
            return
        self._ensure_dir()
        payload = json.dumps(dict(spec_dict), indent=2, sort_keys=True)
        if path.exists() and not overwrite:
            existing = json.loads(path.read_text(encoding="utf-8"))
            if existing != json.loads(payload):
                raise ConfigurationError(
                    f"campaign directory {self.directory} already holds a "
                    f"different spec ({existing.get('name')!r}); re-run "
                    "with --grow (allow_spec_update) to extend it, or use "
                    "a fresh directory"
                )
            return
        path.write_text(payload + "\n", encoding="utf-8")

    def read_spec(self) -> Optional[Dict[str, object]]:
        path = self.spec_path
        if path is None or not path.exists():
            return None
        return json.loads(path.read_text(encoding="utf-8"))

    # --- record access -----------------------------------------------------
    def put(self, record: CellRecord) -> None:
        """Insert a record and durably append it to the JSONL file."""
        self._records[record.key] = record
        path = self.results_path
        if path is not None:
            self._ensure_dir()
            with path.open("a", encoding="utf-8") as fh:
                fh.write(record.to_json() + "\n")
                fh.flush()
                os.fsync(fh.fileno())

    def get(self, key: str) -> Optional[CellRecord]:
        return self._records.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> List[CellRecord]:
        return list(self._records.values())

    def keys(self) -> frozenset:
        """Every stored key, regardless of status."""
        return frozenset(self._records)

    def completed_keys(self) -> frozenset:
        """Keys whose cells finished successfully (cache hits)."""
        return frozenset(k for k, r in self._records.items() if r.ok)

    def failed_keys(self) -> frozenset:
        return frozenset(k for k, r in self._records.items() if not r.ok)

    def drop(self, keys: Iterable[str]) -> int:
        """Forget records in memory (e.g. to retry failures); the JSONL
        keeps history — last write per key wins on reload."""
        n = 0
        for key in list(keys):
            if self._records.pop(key, None) is not None:
                n += 1
        return n

    def compact(self, drop_errors: bool = False) -> "CompactStats":
        """Rewrite the JSONL keeping one line per key (``campaign gc``).

        Retries and merges append superseding lines; history accumulates
        until compacted.  ``drop_errors=True`` additionally removes
        ``error`` records entirely, so those cells re-run on the next
        campaign pass.  The rewrite is atomic (temp file + rename): a
        kill mid-gc leaves either the old or the new file, never a
        truncated one.
        """
        n_errors = 0
        if drop_errors:
            errors = [k for k, r in self._records.items() if not r.ok]
            n_errors = self.drop(errors)
        path = self.results_path
        n_superseded = 0
        if path is not None and path.exists():
            n_lines = sum(
                1 for _ in iter_jsonl_records(path)
            )
            n_superseded = n_lines - len(self._records) - n_errors
            tmp = path.with_name(path.name + ".gc-tmp")
            with tmp.open("w", encoding="utf-8") as fh:
                for record in self._records.values():
                    fh.write(record.to_json() + "\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        return CompactStats(
            n_kept=len(self._records),
            n_superseded=max(0, n_superseded),
            n_errors_dropped=n_errors,
        )


@dataclass(frozen=True)
class CompactStats:
    """What a :meth:`ResultStore.compact` pass removed."""

    n_kept: int
    n_superseded: int
    n_errors_dropped: int
