"""Declarative campaign specifications.

A :class:`CampaignSpec` names the *axes* of a scenario grid — horizon,
offered load, system size, notice mix, mechanism, backfill mode,
checkpoint-interval multiplier, failure MTBF, and trace seeds — and
expands their cross product into a deterministic list of
:class:`CampaignCell` s.  Each cell is a complete, self-contained
description of one simulation (or trace-characterization) run: its
canonical config dict hashes to a stable content address, which is how
the result store recognises already-computed cells across runs,
processes, and machines.

Specs are plain data: ``CampaignSpec.from_dict`` accepts the JSON shape
(scalars or lists per axis), so campaign files are hand-writable::

    {
      "name": "backfill-shootout",
      "days": 7,
      "mechanism": ["N&PAA", "CUA&SPAA"],
      "backfill_mode": ["easy", "conservative"],
      "seeds": [2022, 2023, 2024]
    }
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.mechanisms import ALL_MECHANISMS, Mechanism
from repro.jobs.checkpoint import CheckpointModel
from repro.sched.registry import resolve_dispatcher
from repro.sim.config import SimConfig
from repro.sim.failures import FailureModel
from repro.util.errors import ConfigurationError
from repro.util.timeconst import DAY
from repro.workload.spec import NOTICE_MIXES, NoticeMix, WorkloadSpec, theta_spec

#: a notice mix is referenced by Table III name or embedded as a dict
MixLike = Union[str, Dict[str, object]]

CELL_KINDS = ("sim", "trace")


def canonical_json(value: object) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _resolve_mix(mix: MixLike) -> NoticeMix:
    if isinstance(mix, str):
        try:
            return NOTICE_MIXES[mix]
        except KeyError:
            raise ConfigurationError(
                f"unknown notice mix {mix!r}; expected one of "
                f"{sorted(NOTICE_MIXES)} or an embedded mix dict"
            ) from None
    return NoticeMix.from_dict(mix)


def _coerce_overrides(
    defaults: object, overrides: Mapping[str, object]
) -> Dict[str, object]:
    """Coerce JSON-shaped override values back to dataclass field types.

    JSON has no tuples, so list values targeting tuple-typed fields are
    converted; everything else passes through untouched.
    """
    out: Dict[str, object] = {}
    fields = type(defaults).__dataclass_fields__  # type: ignore[attr-defined]
    for key, value in overrides.items():
        if key not in fields:
            raise ConfigurationError(
                f"unknown override {key!r} for {type(defaults).__name__}"
            )
        if isinstance(value, list) and isinstance(
            getattr(defaults, key), tuple
        ):
            value = tuple(value)
        out[key] = value
    return out


@dataclass(frozen=True)
class CampaignCell:
    """One fully-specified point of a campaign grid.

    All fields are JSON-scalar (or JSON-safe dicts), so a cell pickles
    cheaply to worker processes and hashes deterministically.
    """

    days: float
    target_load: float
    system_size: int
    notice_mix: MixLike
    mechanism: Optional[str]
    backfill_mode: str
    checkpoint_multiplier: float
    #: per-node MTBF in days for failure injection; 0 disables failures
    failure_mtbf_days: float
    seed: int
    #: "sim" runs the simulator; "trace" only characterizes the workload
    kind: str = "sim"
    #: extra WorkloadSpec / SimConfig fields (JSON-shaped), applied after
    #: the axis fields; part of the hashed identity
    spec_overrides: Mapping[str, object] = field(default_factory=dict)
    sim_overrides: Mapping[str, object] = field(default_factory=dict)
    #: path to a real Standard Workload Format log; ``None`` generates the
    #: synthetic Theta trace.  SWF cells apply the paper's §IV-A type
    #: assignment (seeded by ``seed``) on top of the parsed rigid jobs.
    trace_file: Optional[str] = None
    #: ``load_swf`` keyword arguments (cores_per_node, max_jobs, ...)
    trace_options: Mapping[str, object] = field(default_factory=dict)
    #: registered dispatcher name (``repro.sched.registry``); ``None``
    #: keeps the legacy FCFS + ``backfill_mode`` behaviour
    policy: Optional[str] = None
    #: policy factory knobs (score weights, EWT classes, ...)
    policy_params: Mapping[str, object] = field(default_factory=dict)

    def config(self) -> Dict[str, object]:
        """The canonical, hash-defining config dict.

        ``trace_file``/``trace_options`` — and likewise
        ``policy``/``policy_params`` — are included only when set, so
        cells that predate those axes hash exactly as they always did —
        old campaign stores stay valid.
        """
        out: Dict[str, object] = {
            "days": float(self.days),
            "target_load": float(self.target_load),
            "system_size": int(self.system_size),
            "notice_mix": self.notice_mix,
            "mechanism": self.mechanism,
            "backfill_mode": self.backfill_mode,
            "checkpoint_multiplier": float(self.checkpoint_multiplier),
            "failure_mtbf_days": float(self.failure_mtbf_days),
            "seed": int(self.seed),
            "kind": self.kind,
            "spec_overrides": dict(self.spec_overrides),
            "sim_overrides": dict(self.sim_overrides),
        }
        if self.trace_file is not None:
            out["trace_file"] = str(self.trace_file)
            if self.trace_options:
                out["trace_options"] = dict(self.trace_options)
        if self.policy is not None:
            out["policy"] = str(self.policy)
            if self.policy_params:
                out["policy_params"] = dict(self.policy_params)
        return out

    def key(self) -> str:
        """Stable content address of this cell's full configuration."""
        digest = hashlib.sha256(canonical_json(self.config()).encode())
        return digest.hexdigest()[:16]

    @staticmethod
    def from_config(config: Mapping[str, object]) -> "CampaignCell":
        """Inverse of :meth:`config`."""
        data = dict(config)
        return CampaignCell(
            days=float(data["days"]),  # type: ignore[arg-type]
            target_load=float(data["target_load"]),  # type: ignore[arg-type]
            system_size=int(data["system_size"]),  # type: ignore[arg-type]
            notice_mix=data["notice_mix"],  # type: ignore[arg-type]
            mechanism=data["mechanism"],  # type: ignore[arg-type]
            backfill_mode=str(data["backfill_mode"]),
            checkpoint_multiplier=float(
                data["checkpoint_multiplier"]  # type: ignore[arg-type]
            ),
            failure_mtbf_days=float(
                data["failure_mtbf_days"]  # type: ignore[arg-type]
            ),
            seed=int(data["seed"]),  # type: ignore[arg-type]
            kind=str(data.get("kind", "sim")),
            spec_overrides=dict(data.get("spec_overrides", {})),  # type: ignore[arg-type]
            sim_overrides=dict(data.get("sim_overrides", {})),  # type: ignore[arg-type]
            trace_file=data.get("trace_file"),  # type: ignore[arg-type]
            trace_options=dict(data.get("trace_options", {})),  # type: ignore[arg-type]
            policy=data.get("policy"),  # type: ignore[arg-type]
            policy_params=dict(data.get("policy_params", {})),  # type: ignore[arg-type]
        )

    # --- materialization ---------------------------------------------------
    def workload_spec(self) -> WorkloadSpec:
        base = theta_spec(
            days=self.days,
            target_load=self.target_load,
            system_size=self.system_size,
            notice_mix=_resolve_mix(self.notice_mix),
        )
        if self.spec_overrides:
            base = replace(
                base, **_coerce_overrides(base, self.spec_overrides)
            )
        return base

    def sim_config(self) -> SimConfig:
        overrides = dict(self.sim_overrides)
        checkpoint = CheckpointModel(
            interval_multiplier=self.checkpoint_multiplier
        )
        if "checkpoint" in overrides:
            ckpt_fields = dict(overrides.pop("checkpoint"))  # type: ignore[arg-type]
            # the axis is the canonical home of the multiplier: a sweep
            # (e.g. fig7) must scale even when an override dict carries
            # the other checkpoint knobs
            ckpt_fields["interval_multiplier"] = self.checkpoint_multiplier
            checkpoint = CheckpointModel(**ckpt_fields)
        failures = (
            FailureModel(
                enabled=True, node_mtbf_s=self.failure_mtbf_days * DAY
            )
            if self.failure_mtbf_days > 0
            else FailureModel.disabled()
        )
        if "failures" in overrides:
            failures = FailureModel(**dict(overrides.pop("failures")))  # type: ignore[arg-type]
        base = SimConfig(
            system_size=self.system_size,
            backfill_mode=self.backfill_mode,
            checkpoint=checkpoint,
            failures=failures,
            policy=self.policy,
            policy_params=dict(self.policy_params),
        )
        if overrides:
            base = replace(base, **_coerce_overrides(base, overrides))
        return base

    def mechanism_obj(self) -> Optional[Mechanism]:
        return Mechanism.parse(self.mechanism) if self.mechanism else None


def _as_tuple(value: object) -> Tuple[Any, ...]:
    """Normalize a scalar-or-sequence axis value to a tuple."""
    if isinstance(value, (list, tuple)):
        return tuple(value)
    return (value,)


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative scenario grid: the cross product of its axes.

    Every axis accepts one value or many; :meth:`expand` enumerates the
    full product in a fixed nested order (axes in field order, each axis
    in its declared order), so the cell list — and therefore resumption
    and reporting — is deterministic.
    """

    name: str = "campaign"
    days: Tuple[float, ...] = (28.0,)
    target_load: Tuple[float, ...] = (0.82,)
    system_size: Tuple[int, ...] = (4392,)
    notice_mix: Tuple[MixLike, ...] = ("W5",)
    #: mechanism names; ``None`` is the no-mechanism baseline
    mechanism: Tuple[Optional[str], ...] = (None,)
    backfill_mode: Tuple[str, ...] = ("easy",)
    checkpoint_multiplier: Tuple[float, ...] = (1.0,)
    failure_mtbf_days: Tuple[float, ...] = (0.0,)
    seeds: Tuple[int, ...] = (2022, 2023, 2024)
    kind: str = "sim"
    spec_overrides: Mapping[str, object] = field(default_factory=dict)
    sim_overrides: Mapping[str, object] = field(default_factory=dict)
    #: SWF log paths; ``None`` entries generate the synthetic Theta trace
    trace_file: Tuple[Optional[str], ...] = (None,)
    trace_options: Mapping[str, object] = field(default_factory=dict)
    #: registered dispatcher names to sweep; ``None`` entries keep the
    #: legacy FCFS + ``backfill_mode`` behaviour
    policy: Tuple[Optional[str], ...] = (None,)
    #: per-policy factory knobs, keyed by policy name — e.g.
    #: ``{"score": {"wait_weight": 2}}``; each cell only carries the
    #: knobs of its own policy
    policy_params: Mapping[str, Mapping[str, object]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("campaign name must be non-empty")
        if self.kind not in CELL_KINDS:
            raise ConfigurationError(
                f"kind must be one of {CELL_KINDS}, got {self.kind!r}"
            )
        for axis in self._AXES:
            if not getattr(self, axis):
                raise ConfigurationError(f"axis {axis!r} must be non-empty")
        for mech in self.mechanism:
            if mech is not None:
                Mechanism.parse(mech)  # raises ConfigurationError if bad
        for mix in self.notice_mix:
            _resolve_mix(mix)
        if self.trace_options and all(t is None for t in self.trace_file):
            raise ConfigurationError(
                "trace_options given but no trace_file axis value is set"
            )
        # a typo'd policy axis value (or a bad knob) must error at plan
        # time, not mid-fleet: resolve every non-None name with its own
        # params against the registry right here
        for pname in self.policy_params:
            if pname not in self.policy:
                raise ConfigurationError(
                    f"policy_params given for {pname!r} which is not on "
                    f"the policy axis {tuple(self.policy)}"
                )
        for pol in self.policy:
            if pol is not None:
                resolve_dispatcher(pol, self.policy_params.get(pol, {}))

    _AXES = (
        "days",
        "target_load",
        "system_size",
        "notice_mix",
        "mechanism",
        "backfill_mode",
        "checkpoint_multiplier",
        "failure_mtbf_days",
        "seeds",
        "trace_file",
        "policy",
    )

    @property
    def n_cells(self) -> int:
        n = 1
        for axis in self._AXES:
            n *= len(getattr(self, axis))
        return n

    def expand(self) -> List[CampaignCell]:
        """The full grid, in deterministic nested-loop order."""
        cells: List[CampaignCell] = []
        for days in self.days:
            for load in self.target_load:
                for size in self.system_size:
                    for mix in self.notice_mix:
                        for mech in self.mechanism:
                            for bf in self.backfill_mode:
                                for ckpt in self.checkpoint_multiplier:
                                    for mtbf in self.failure_mtbf_days:
                                        for seed in self.seeds:
                                            for trace in self.trace_file:
                                                for pol in self.policy:
                                                    cells.append(
                                                        CampaignCell(
                                                            days=days,
                                                            target_load=load,
                                                            system_size=size,
                                                            notice_mix=mix,
                                                            mechanism=mech,
                                                            backfill_mode=bf,
                                                            checkpoint_multiplier=ckpt,
                                                            failure_mtbf_days=mtbf,
                                                            seed=seed,
                                                            kind=self.kind,
                                                            spec_overrides=self.spec_overrides,
                                                            sim_overrides=self.sim_overrides,
                                                            trace_file=trace,
                                                            trace_options=(
                                                                self.trace_options
                                                                if trace is not None
                                                                else {}
                                                            ),
                                                            policy=pol,
                                                            policy_params=(
                                                                self.policy_params.get(pol, {})
                                                                if pol is not None
                                                                else {}
                                                            ),
                                                        )
                                                    )
        return cells

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "days": list(self.days),
            "target_load": list(self.target_load),
            "system_size": list(self.system_size),
            "notice_mix": list(self.notice_mix),
            "mechanism": list(self.mechanism),
            "backfill_mode": list(self.backfill_mode),
            "checkpoint_multiplier": list(self.checkpoint_multiplier),
            "failure_mtbf_days": list(self.failure_mtbf_days),
            "seeds": list(self.seeds),
            "kind": self.kind,
            "spec_overrides": dict(self.spec_overrides),
            "sim_overrides": dict(self.sim_overrides),
            "trace_file": list(self.trace_file),
            "trace_options": dict(self.trace_options),
        }
        # omitted at the default so campaign.json files written before
        # the policy axis existed compare equal (ResultStore.write_spec
        # uses exact dict equality -> pre-axis dirs stay a cache hit)
        if self.policy != (None,):
            out["policy"] = list(self.policy)
        if self.policy_params:
            out["policy_params"] = dict(self.policy_params)
        return out

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "CampaignSpec":
        """Build a spec from the JSON shape; axes accept scalars or lists.

        ``"mechanism": "all"`` expands to the paper's six mechanisms, and
        ``"mechanism": "all+baseline"`` prepends the no-mechanism baseline.
        """
        known = set(CampaignSpec.__dataclass_fields__)
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown campaign spec fields: {sorted(unknown)}"
            )
        kwargs: Dict[str, object] = {}
        for name, value in data.items():
            if name in ("name", "kind"):
                kwargs[name] = value
            elif name in (
                "spec_overrides",
                "sim_overrides",
                "trace_options",
                "policy_params",
            ):
                kwargs[name] = dict(value)  # type: ignore[arg-type]
            elif name == "mechanism" and value in ("all", "all+baseline"):
                names: List[Optional[str]] = [m.name for m in ALL_MECHANISMS]
                if value == "all+baseline":
                    names = [None, *names]
                kwargs[name] = tuple(names)
            else:
                kwargs[name] = _as_tuple(value)
        return CampaignSpec(**kwargs)  # type: ignore[arg-type]
