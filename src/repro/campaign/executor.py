"""Campaign execution: expand, skip cached cells, fan out the rest.

The executor is deliberately thin glue over pieces that already exist:
cell simulation is :func:`repro.experiments.runner.run_one`, parallelism
is a ``ProcessPoolExecutor`` (``submit``/``as_completed``, so finished
cells persist immediately regardless of order), and persistence is the
append-only :class:`ResultStore`.  What it adds is the campaign
contract:

* every cell is looked up by content address first — completed cells
  are never recomputed, so an identical second run is pure cache hits
  and an interrupted run resumes where it left off;
* one failed cell never kills the campaign — the worker captures the
  traceback into an ``error`` record (itself persisted, so failures are
  inspectable and retriable);
* records are persisted as they stream back from the pool, not at the
  end, so a kill -9 loses at most the cells in flight.
"""

from __future__ import annotations

import math
import os
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import CellRecord, ResultStore
from repro.experiments.runner import run_one
from repro.jobs.job import JobType
from repro.obs import enabled_obs, get_obs
from repro.sim.simulator import process_scratch
from repro.util.timeconst import WEEK
from repro.workload.ondemand import burstiness_cv
from repro.workload.spec import WorkloadSpec
from repro.workload.stream import JobStream
from repro.workload.theta import stream_jobs_from_rows
from repro.workload.trace_cache import get_trace_cache


def _retype_kwargs(spec: WorkloadSpec) -> Dict[str, object]:
    """The §IV-A type-assignment knobs an SWF cell layers on its log."""
    return dict(
        frac_projects_ondemand=spec.frac_projects_ondemand,
        frac_projects_rigid=spec.frac_projects_rigid,
        notice_mix=spec.notice_mix,
        system_size=spec.system_size,
        malleable_min_size_frac=spec.malleable_min_size_frac,
        rigid_setup_frac=spec.rigid_setup_frac,
        malleable_setup_frac=spec.malleable_setup_frac,
        lead_range_s=spec.notice_lead_range_s,
        late_window_s=spec.late_window_s,
    )


def _cell_jobs(cell: CampaignCell, spec: WorkloadSpec) -> Optional[List]:
    """Job list for an SWF-backed cell; ``None`` for synthetic cells.

    The materialized twin of :func:`_cell_stream` (kept for the
    ``stream=False`` A/B path): parses the log via the shared trace
    cache, then builds the full retyped list at once.
    """
    if cell.trace_file is None:
        return None
    from repro.workload.swf import retype_jobs

    rigid = get_trace_cache().swf_jobs(cell.trace_file, cell.trace_options)
    rng = np.random.default_rng(cell.seed)
    return retype_jobs(rigid, rng=rng, **_retype_kwargs(spec))


def _cell_stream(
    cell: CampaignCell, spec: WorkloadSpec
) -> Optional[JobStream]:
    """Streamed jobs for an SWF-backed cell; ``None`` for synthetic cells.

    A real log supplies submit times, sizes, and runtimes; the paper's
    §IV-A type assignment (projects → on-demand/rigid/malleable, notice
    classes from the cell's mix) is layered on, seeded by the cell seed
    so replicas vary the assignment, not the trace.  The parsed rigid
    log comes from the process-wide
    :class:`~repro.workload.trace_cache.TraceCache` — one parse serves
    every cell of the worker — and the retyped jobs are built lazily,
    so the cell never materializes its trace.
    """
    if cell.trace_file is None:
        return None
    from repro.workload.swf import retype_stream

    rigid = get_trace_cache().swf_jobs(cell.trace_file, cell.trace_options)
    rng = np.random.default_rng(cell.seed)
    return retype_stream(rigid, rng=rng, **_retype_kwargs(spec))


def _trace_payload(
    cell: CampaignCell, stream: bool = True
) -> Dict[str, object]:
    """Trace-characterization cells: workload statistics, no simulation.

    One streaming pass over the cell's jobs: per-type counts and
    on-demand submit times are accumulated as jobs go by (O(on-demand)
    memory, not O(trace)), then binned exactly as
    :func:`~repro.workload.ondemand.ondemand_jobs_per_week` bins a
    materialized list — synthetic cells against the spec horizon, SWF
    cells against the observed ``max submit + 1``.
    """
    spec = cell.workload_spec()
    if cell.trace_file is None:
        if stream:
            rows = get_trace_cache().theta_rows(spec, cell.seed)
            jobs: Iterable = stream_jobs_from_rows(spec, rows)
        else:
            from repro.workload.theta import generate_trace

            jobs = generate_trace(spec, seed=cell.seed)
        horizon: Optional[float] = spec.horizon_s
    else:
        jobs = _cell_stream(cell, spec) if stream else _cell_jobs(cell, spec)
        horizon = None  # real logs span whatever they span
    n_jobs = 0
    counts = {t: 0 for t in JobType}
    od_submits: List[float] = []
    max_submit = 0.0
    for job in jobs:
        n_jobs += 1
        counts[job.job_type] += 1
        max_submit = max(max_submit, job.submit_time)
        if job.job_type is JobType.ONDEMAND:
            od_submits.append(job.submit_time)
    if horizon is None:
        horizon = max_submit + 1.0 if n_jobs else 0.0
    n_weeks = max(1, int(math.ceil(horizon / WEEK)))
    weekly = [0] * n_weeks
    for submit in od_submits:
        weekly[min(n_weeks - 1, int(submit // WEEK))] += 1
    shares = {
        t.value: (counts[t] / n_jobs if n_jobs else 0.0) for t in JobType
    }
    return {
        "n_jobs": n_jobs,
        "type_shares": shares,
        "weekly_ondemand": weekly,
        "burstiness_cv": burstiness_cv(weekly),
    }


def execute_cell(
    config: Mapping[str, object],
    log_dir: Optional[str] = None,
    stream: bool = True,
) -> CellRecord:
    """Run one cell from its canonical config; never raises.

    Takes the plain config dict (not the dataclass) so the worker side
    depends only on JSON-shaped data — the same record shape the store
    persists.  *log_dir* (``--log-decisions``) writes each simulated
    cell's scheduler decision log to ``<log_dir>/<cell key>.jsonl`` —
    an out-of-band side channel, so cell keys and summaries are
    untouched.

    By default the cell streams: its trace is served off the shared
    :class:`~repro.workload.trace_cache.TraceCache` and jobs are built
    lazily, so no job list is ever materialized and the simulation's
    hot-path buffers are reused across the cells this process executes.
    ``stream=False`` reproduces the pre-cache materialized path —
    records are byte-identical either way (asserted in tests); the flag
    exists for A/B benchmarking.
    """
    cell = CampaignCell.from_config(config)
    key = cell.key()
    obs = get_obs()
    start = time.perf_counter()
    try:
        with obs.span("campaign.cell", key=key, kind=cell.kind), \
                obs.memory.section("campaign.cell"):
            if cell.kind == "trace":
                payload, summary = _trace_payload(cell, stream=stream), None
            else:
                log_path = None
                if log_dir is not None:
                    os.makedirs(log_dir, exist_ok=True)
                    log_path = os.path.join(log_dir, f"{key}.jsonl")
                wspec = cell.workload_spec()
                metrics = run_one(
                    wspec,
                    cell.seed,
                    cell.mechanism_obj(),
                    cell.sim_config(),
                    jobs=(
                        _cell_stream(cell, wspec)
                        if stream
                        else _cell_jobs(cell, wspec)
                    ),
                    log_path=log_path,
                    stream=stream,
                    scratch=process_scratch() if stream else None,
                )
                payload, summary = None, metrics.to_dict()
    except Exception:
        obs.counter("campaign.cells.failed").inc()
        return CellRecord(
            key=key,
            config=cell.config(),
            status="error",
            error=traceback.format_exc(),
            elapsed_s=time.perf_counter() - start,
        )
    obs.counter("campaign.cells.run").inc()
    return CellRecord(
        key=key,
        config=cell.config(),
        status="ok",
        summary=summary,
        payload=payload,
        elapsed_s=time.perf_counter() - start,
    )


def execute_cell_traced(
    config: Mapping[str, object],
    log_dir: Optional[str] = None,
    stream: bool = True,
) -> Tuple[CellRecord, List[Dict[str, object]], Dict[str, object]]:
    """:func:`execute_cell` under a private instrumentation bundle.

    The pool path runs cells in subprocesses, whose ring buffers the
    parent cannot see; this wrapper captures the child's spans and
    metric snapshot alongside the record so the parent can
    ``obs.ingest()`` them into one merged trace.  Events are tagged
    with the child's real pid, so Perfetto shows each pool worker as
    its own process track.
    """
    records, events, metrics = execute_cells_traced(
        [config], log_dir=log_dir, stream=stream
    )
    return records[0], events, metrics


def execute_cells(
    configs: Sequence[Mapping[str, object]],
    log_dir: Optional[str] = None,
    stream: bool = True,
) -> List[CellRecord]:
    """Run a batch of cells in this process, one record per cell.

    The batched unit of pool dispatch: one IPC round-trip ships N
    configs out and N records back, while error capture stays per cell
    (:func:`execute_cell` never raises) and the caller still persists
    and reports each record individually.  The whole batch runs under a
    ``campaign.batch`` span, and — because the batch shares this
    process's trace cache and simulation scratch — its cells amortize
    parsing and buffer allocation.
    """
    with get_obs().span("campaign.batch", n_cells=len(configs)):
        return [
            execute_cell(c, log_dir=log_dir, stream=stream) for c in configs
        ]


def execute_cells_traced(
    configs: Sequence[Mapping[str, object]],
    log_dir: Optional[str] = None,
    stream: bool = True,
) -> Tuple[List[CellRecord], List[Dict[str, object]], Dict[str, object]]:
    """:func:`execute_cells` under a private instrumentation bundle.

    One bundle per batch (not per cell): the ``campaign.batch`` span
    wraps the per-cell ``campaign.cell`` spans, so the merged Perfetto
    timeline shows both the dispatch granularity and the cells inside
    it.  Returns the batch's records plus its events and metric
    snapshot for the parent to ``obs.ingest()``.
    """
    from repro.obs.export import events_from_spans

    with enabled_obs() as child_obs:
        with child_obs.span("campaign.batch", n_cells=len(configs)):
            records = [
                execute_cell(c, log_dir=log_dir, stream=stream)
                for c in configs
            ]
        events = events_from_spans(
            child_obs.tracer.records(),
            process_name=f"pool-worker-{os.getpid()}",
        )
        return records, events, child_obs.snapshot()


@dataclass(frozen=True)
class CampaignRunResult:
    """Outcome of one ``run_campaign`` invocation."""

    spec: CampaignSpec
    #: records for every cell of the grid, in expansion order
    records: List[CellRecord]
    n_total: int
    n_cached: int
    n_ran: int
    n_failed: int

    @property
    def ok_records(self) -> List[CellRecord]:
        return [r for r in self.records if r.ok]


@dataclass(frozen=True)
class CampaignPlan:
    """What a pass over a campaign grid still has to compute.

    Shared by the in-process pool and the distributed worker loop, so
    both sides agree cell-for-cell on identity, dedup, and cache hits —
    the pool is just the degenerate single-worker, no-lease execution of
    the same plan.
    """

    spec: CampaignSpec
    #: unique cells keyed by content address, first-occurrence order
    by_key: Dict[str, CampaignCell]
    #: cells with no usable stored record, in expansion order
    todo: List[CampaignCell]
    n_cached: int

    @property
    def n_total(self) -> int:
        return len(self.by_key)


def matches_filter(
    config: Mapping[str, object], where: Mapping[str, object]
) -> bool:
    """Does a cell config satisfy every ``key=value`` selection pair?"""
    return all(config.get(k) == v for k, v in where.items())


def plan_campaign(
    spec: CampaignSpec,
    store: ResultStore,
    retry_failed: bool = False,
    retry_filter: Optional[Mapping[str, object]] = None,
) -> CampaignPlan:
    """Expand *spec*, dedupe by content address, subtract stored cells.

    ``retry_failed`` forgets stored ``error`` records (so those cells
    re-run); ``retry_filter`` narrows that to failures whose config
    matches every given ``key=value`` pair (e.g. one mechanism or seed).
    """
    cells = spec.expand()
    # dedup by content address: a grid that names the same cell twice
    # (repeated seed, 'all+baseline baseline') still runs it once
    by_key: Dict[str, CampaignCell] = {}
    for cell in cells:
        by_key.setdefault(cell.key(), cell)
    done = store.completed_keys()
    if retry_failed:
        stale = store.failed_keys() & set(by_key)
        if retry_filter:
            stale = {
                k
                for k in stale
                if matches_filter(by_key[k].config(), retry_filter)
            }
        store.drop(stale)
    todo = [c for k, c in by_key.items() if k not in store]
    n_cached = sum(1 for key in by_key if key in done)
    return CampaignPlan(
        spec=spec, by_key=by_key, todo=todo, n_cached=n_cached
    )


def collect_records(
    spec: CampaignSpec, store: ResultStore
) -> List[CellRecord]:
    """One stored record per unique cell, in expansion order; all must
    be present (run the campaign / merge the shards first)."""
    keys = {c.key(): c for c in spec.expand()}
    records = [store.get(key) for key in keys]
    missing = sum(1 for r in records if r is None)
    if missing:
        raise RuntimeError(
            f"{missing}/{len(keys)} cells missing from the store"
        )
    return [r for r in records if r is not None]


def trace_affine_order(cells: Sequence[CampaignCell]) -> List[CampaignCell]:
    """Execution order that groups cells sharing a parsed trace.

    Grids expand mechanism-major (every seed of mechanism 1, then every
    seed of mechanism 2, ...), so the cells that share one ``(workload
    spec, seed)`` trace — or one SWF log — are maximally far apart and
    the trace cache's small LRU evicts each entry before its next use.
    Sorting by trace identity makes every cache entry serve all its
    cells back to back, with the content key as the final tiebreaker
    inside each group so the schedule is a pure function of the cell
    set, not of expansion order (and the store orders by content key
    regardless).  Cell identity, records, and summaries are unaffected
    — only the execution schedule changes.
    """
    from repro.workload.trace_cache import _options_hash, spec_hash

    def group(cell: CampaignCell) -> Tuple[str, str, int, str]:
        if cell.trace_file is not None:
            return (
                "swf",
                f"{cell.trace_file}|{_options_hash(cell.trace_options)}",
                cell.seed,
                cell.key(),
            )
        try:
            return (
                "theta",
                spec_hash(cell.workload_spec()),
                cell.seed,
                cell.key(),
            )
        except Exception:
            # an invalid spec must still reach execute_cell, which
            # captures the failure as this cell's error record
            return ("invalid", cell.key(), cell.seed, cell.key())

    return sorted(cells, key=group)


def _batch_size(n_cells: int, workers: int) -> int:
    """Cells per pool round-trip: ~4 batches per worker, capped at 8.

    Single-future-per-cell dispatch pays one pickle/IPC round trip per
    cell, which dominates for the many-small-cell grids the campaign
    engine produces; batches much larger than this would coarsen
    persistence granularity (a killed run loses at most the batches in
    flight).
    """
    return max(1, min(8, n_cells // (workers * 4) or 1))


def _dispatch_batched(
    pool: ProcessPoolExecutor,
    fn: Callable,
    todo: Sequence[CampaignCell],
    batch_size: int,
    max_inflight: int,
    log_dir: Optional[str],
    stream: bool,
    handle: Callable[[Any], None],
) -> None:
    """Submit cell batches through a bounded in-flight window.

    At most *max_inflight* batch futures exist at any moment — the
    pre-batching code submitted the entire plan up front, materializing
    one future (plus a pickled config) per cell before the first result
    came back.  Results are handled finished-first
    (``wait(FIRST_COMPLETED)``), so a slow batch never blocks
    persistence of faster ones.
    """
    pending = iter(
        [todo[i:i + batch_size] for i in range(0, len(todo), batch_size)]
    )
    inflight: Dict[Future, int] = {}
    exhausted = False
    while True:
        while not exhausted and len(inflight) < max_inflight:
            batch = next(pending, None)
            if batch is None:
                exhausted = True
                break
            future = pool.submit(
                fn, [c.config() for c in batch], log_dir, stream
            )
            inflight[future] = len(batch)
        if not inflight:
            break
        done, _ = wait(inflight, return_when=FIRST_COMPLETED)
        for future in done:
            del inflight[future]
            handle(future.result())


def run_campaign(
    spec: CampaignSpec,
    directory: Optional[str] = None,
    store: Optional[ResultStore] = None,
    workers: int = 1,
    retry_failed: bool = False,
    retry_filter: Optional[Mapping[str, object]] = None,
    allow_spec_update: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    log_dir: Optional[str] = None,
    batch_size: Optional[int] = None,
    max_inflight: Optional[int] = None,
    stream: bool = True,
) -> CampaignRunResult:
    """Execute every not-yet-computed cell of *spec*.

    Parameters
    ----------
    directory:
        Campaign directory for the persistent store; ``None`` (and no
        *store*) runs fully in memory.
    store:
        An explicit store, overriding *directory*.
    workers:
        Worker processes; 1 runs serially (deterministic order).
    retry_failed:
        Re-run cells whose stored status is ``error`` instead of
        keeping the failure record.
    retry_filter:
        With *retry_failed*, only retry failures whose config matches
        every ``key=value`` pair (e.g. ``{"mechanism": "N&PAA"}``).
    allow_spec_update:
        Let *spec* replace a different spec already recorded in the
        directory — growing a campaign in place (extra seeds,
        mechanisms, ...) while reusing every already-computed cell.
    progress:
        Optional callback receiving one human-readable line per event.
    log_dir:
        Write each simulated cell's scheduler decision log to
        ``<log_dir>/<cell key>.jsonl`` (``--log-decisions``).
    batch_size:
        Cells per pool round-trip (``--batch-size``); default sizes
        batches at ~4 per worker, capped at 8 (:func:`_batch_size`).
        Only meaningful with ``workers > 1``.
    max_inflight:
        Bound on simultaneously submitted batch futures; default
        ``4 * workers``.  Keeps the dispatch window (and its pickled
        configs) bounded instead of materializing the whole plan as
        futures up front.
    stream:
        Stream every cell's trace off the shared cache (default).
        ``False`` restores the materialized pre-cache path — records
        are byte-identical either way; the flag exists for A/B
        benchmarking.

    For multi-machine execution of the same grid, see
    :func:`repro.campaign.distrib.run_fleet` — it shares this planner
    and store, adding cell leases and per-worker shards on top.
    """
    say = progress or (lambda _msg: None)
    if store is None:
        # a campaign that owns its directory records its spec there (and
        # refuses a directory already owned by a different campaign); an
        # explicitly shared store skips that guard so many campaigns can
        # pool content-addressed cells
        store = ResultStore(directory)
        store.write_spec(spec.to_dict(), overwrite=allow_spec_update)
    else:
        # a shared store may be long-lived while other campaigns append
        # to its directory; fold in anything appended since it was
        # loaded (O(appended bytes)) before planning against it
        store.refresh()

    plan = plan_campaign(
        spec, store, retry_failed=retry_failed, retry_filter=retry_filter
    )
    by_key, todo = plan.by_key, plan.todo
    say(
        f"campaign {spec.name!r}: {len(by_key)} cells "
        f"({plan.n_cached} cached, {len(todo)} to run)"
    )
    obs = get_obs()
    obs.counter("campaign.cells.cached").inc(plan.n_cached)

    if todo:
        todo = trace_affine_order(todo)
        if workers <= 1:
            # in-process: cell spans land directly in this process's
            # ring buffer, nested under whatever span the caller holds
            for cell in todo:
                record = execute_cell(
                    cell.config(), log_dir=log_dir, stream=stream
                )
                store.put(record)
                say(_cell_line(record, by_key[record.key]))
        else:
            n_batch = batch_size or _batch_size(len(todo), workers)
            window = max_inflight or 4 * workers

            def persist(records: List[CellRecord]) -> None:
                for record in records:
                    store.put(record)
                    say(_cell_line(record, by_key[record.key]))

            with ProcessPoolExecutor(max_workers=workers) as pool:
                if obs.enabled:
                    # traced pool: children ship their spans and metric
                    # snapshots back with each batch for one merged trace
                    def handle(result: Tuple) -> None:
                        records, events, metrics = result
                        obs.ingest(events, metrics)
                        persist(records)

                    _dispatch_batched(
                        pool, execute_cells_traced, todo, n_batch,
                        window, log_dir, stream, handle,
                    )
                else:
                    # batches persist the moment each finishes, in any
                    # order, so a kill loses only cells actually in
                    # flight — an ordered stream would buffer completed
                    # batches behind a slow head-of-line batch
                    _dispatch_batched(
                        pool, execute_cells, todo, n_batch,
                        window, log_dir, stream, persist,
                    )

    final = collect_records(spec, store)
    return CampaignRunResult(
        spec=spec,
        records=final,
        n_total=len(by_key),
        n_cached=plan.n_cached,
        n_ran=len(todo),
        n_failed=sum(1 for r in final if not r.ok),
    )


def _cell_line(record: CellRecord, cell: CampaignCell) -> str:
    tag = "ok" if record.ok else "FAILED"
    mech = cell.mechanism or "baseline"
    mix = (
        cell.notice_mix
        if isinstance(cell.notice_mix, str)
        else cell.notice_mix.get("name", "?")
    )
    return (
        f"  [{tag}] {record.key} {mech} mix={mix} seed={cell.seed} "
        f"({record.elapsed_s:.2f}s)"
    )
