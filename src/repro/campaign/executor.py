"""Campaign execution: expand, skip cached cells, fan out the rest.

The executor is deliberately thin glue over pieces that already exist:
cell simulation is :func:`repro.experiments.runner.run_one`, parallelism
is a ``ProcessPoolExecutor`` (``submit``/``as_completed``, so finished
cells persist immediately regardless of order), and persistence is the
append-only :class:`ResultStore`.  What it adds is the campaign
contract:

* every cell is looked up by content address first — completed cells
  are never recomputed, so an identical second run is pure cache hits
  and an interrupted run resumes where it left off;
* one failed cell never kills the campaign — the worker captures the
  traceback into an ``error`` record (itself persisted, so failures are
  inspectable and retriable);
* records are persisted as they stream back from the pool, not at the
  end, so a kill -9 loses at most the cells in flight.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import CellRecord, ResultStore
from repro.experiments.runner import run_one
from repro.workload.ondemand import burstiness_cv, ondemand_jobs_per_week
from repro.workload.theta import generate_trace
from repro.workload.trace import type_shares


def _trace_payload(cell: CampaignCell) -> Dict[str, object]:
    """Trace-characterization cells: workload statistics, no simulation."""
    spec = cell.workload_spec()
    jobs = generate_trace(spec, seed=cell.seed)
    weekly = ondemand_jobs_per_week(jobs, spec.horizon_s)
    return {
        "n_jobs": len(jobs),
        "type_shares": type_shares(jobs),
        "weekly_ondemand": list(weekly),
        "burstiness_cv": burstiness_cv(weekly),
    }


def execute_cell(config: Mapping[str, object]) -> CellRecord:
    """Run one cell from its canonical config; never raises.

    Takes the plain config dict (not the dataclass) so the worker side
    depends only on JSON-shaped data — the same record shape the store
    persists.
    """
    cell = CampaignCell.from_config(config)
    key = cell.key()
    start = time.perf_counter()
    try:
        if cell.kind == "trace":
            payload, summary = _trace_payload(cell), None
        else:
            metrics = run_one(
                cell.workload_spec(),
                cell.seed,
                cell.mechanism_obj(),
                cell.sim_config(),
            )
            payload, summary = None, metrics.to_dict()
    except Exception:
        return CellRecord(
            key=key,
            config=cell.config(),
            status="error",
            error=traceback.format_exc(),
            elapsed_s=time.perf_counter() - start,
        )
    return CellRecord(
        key=key,
        config=cell.config(),
        status="ok",
        summary=summary,
        payload=payload,
        elapsed_s=time.perf_counter() - start,
    )


@dataclass(frozen=True)
class CampaignRunResult:
    """Outcome of one ``run_campaign`` invocation."""

    spec: CampaignSpec
    #: records for every cell of the grid, in expansion order
    records: List[CellRecord]
    n_total: int
    n_cached: int
    n_ran: int
    n_failed: int

    @property
    def ok_records(self) -> List[CellRecord]:
        return [r for r in self.records if r.ok]


def run_campaign(
    spec: CampaignSpec,
    directory: Optional[str] = None,
    store: Optional[ResultStore] = None,
    workers: int = 1,
    retry_failed: bool = False,
    allow_spec_update: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignRunResult:
    """Execute every not-yet-computed cell of *spec*.

    Parameters
    ----------
    directory:
        Campaign directory for the persistent store; ``None`` (and no
        *store*) runs fully in memory.
    store:
        An explicit store, overriding *directory*.
    workers:
        Worker processes; 1 runs serially (deterministic order).
    retry_failed:
        Re-run cells whose stored status is ``error`` instead of
        keeping the failure record.
    allow_spec_update:
        Let *spec* replace a different spec already recorded in the
        directory — growing a campaign in place (extra seeds,
        mechanisms, ...) while reusing every already-computed cell.
    progress:
        Optional callback receiving one human-readable line per event.
    """
    say = progress or (lambda _msg: None)
    if store is None:
        # a campaign that owns its directory records its spec there (and
        # refuses a directory already owned by a different campaign); an
        # explicitly shared store skips that guard so many campaigns can
        # pool content-addressed cells
        store = ResultStore(directory)
        store.write_spec(spec.to_dict(), overwrite=allow_spec_update)

    cells = spec.expand()
    by_key = {c.key(): c for c in cells}
    done = store.completed_keys()
    if retry_failed:
        store.drop(store.failed_keys() & set(by_key))
    # dedup by content address: a grid that names the same cell twice
    # (repeated seed, 'all+baseline baseline') still runs it once
    todo: List[CampaignCell] = []
    seen = set()
    for cell in cells:
        key = cell.key()
        if key not in store and key not in seen:
            todo.append(cell)
            seen.add(key)
    n_cached = sum(1 for key in by_key if key in done)
    say(
        f"campaign {spec.name!r}: {len(by_key)} cells "
        f"({n_cached} cached, {len(todo)} to run)"
    )

    if todo:
        if workers <= 1:
            for cell in todo:
                record = execute_cell(cell.config())
                store.put(record)
                say(_cell_line(record, by_key[record.key]))
        else:
            # submit + as_completed (not pool.map): records persist the
            # moment each cell finishes, in any order, so a kill loses
            # only cells actually in flight — map's ordered stream would
            # buffer completed cells behind a slow head-of-line cell
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(execute_cell, c.config()) for c in todo
                ]
                for future in as_completed(futures):
                    record = future.result()
                    store.put(record)
                    say(_cell_line(record, by_key[record.key]))

    # one record per unique cell, in first-occurrence expansion order
    records = [store.get(key) for key in by_key]
    missing = sum(1 for r in records if r is None)
    if missing:  # pragma: no cover - store.put above guarantees presence
        raise RuntimeError(f"{missing} cells missing after execution")
    final = [r for r in records if r is not None]
    return CampaignRunResult(
        spec=spec,
        records=final,
        n_total=len(by_key),
        n_cached=n_cached,
        n_ran=len(todo),
        n_failed=sum(1 for r in final if not r.ok),
    )


def _cell_line(record: CellRecord, cell: CampaignCell) -> str:
    tag = "ok" if record.ok else "FAILED"
    mech = cell.mechanism or "baseline"
    mix = (
        cell.notice_mix
        if isinstance(cell.notice_mix, str)
        else cell.notice_mix.get("name", "?")
    )
    return (
        f"  [{tag}] {record.key} {mech} mix={mix} seed={cell.seed} "
        f"({record.elapsed_s:.2f}s)"
    )
