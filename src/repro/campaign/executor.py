"""Campaign execution: expand, skip cached cells, fan out the rest.

The executor is deliberately thin glue over pieces that already exist:
cell simulation is :func:`repro.experiments.runner.run_one`, parallelism
is a ``ProcessPoolExecutor`` (``submit``/``as_completed``, so finished
cells persist immediately regardless of order), and persistence is the
append-only :class:`ResultStore`.  What it adds is the campaign
contract:

* every cell is looked up by content address first — completed cells
  are never recomputed, so an identical second run is pure cache hits
  and an interrupted run resumes where it left off;
* one failed cell never kills the campaign — the worker captures the
  traceback into an ``error`` record (itself persisted, so failures are
  inspectable and retriable);
* records are persisted as they stream back from the pool, not at the
  end, so a kill -9 loses at most the cells in flight.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.campaign.spec import CampaignCell, CampaignSpec
from repro.campaign.store import CellRecord, ResultStore
from repro.experiments.runner import run_one
from repro.obs import enabled_obs, get_obs
from repro.workload.ondemand import burstiness_cv, ondemand_jobs_per_week
from repro.workload.spec import WorkloadSpec
from repro.workload.theta import generate_trace
from repro.workload.trace import type_shares


def _cell_jobs(cell: CampaignCell, spec: WorkloadSpec) -> Optional[List]:
    """Job list for an SWF-backed cell; ``None`` for synthetic cells.

    A real log supplies submit times, sizes, and runtimes; the paper's
    §IV-A type assignment (projects → on-demand/rigid/malleable, notice
    classes from the cell's mix) is layered on, seeded by the cell seed
    so replicas vary the assignment, not the trace.
    """
    if cell.trace_file is None:
        return None
    from repro.workload.swf import load_swf, retype_jobs

    rigid = load_swf(cell.trace_file, **dict(cell.trace_options))
    rng = np.random.default_rng(cell.seed)
    return retype_jobs(
        rigid,
        frac_projects_ondemand=spec.frac_projects_ondemand,
        frac_projects_rigid=spec.frac_projects_rigid,
        notice_mix=spec.notice_mix,
        rng=rng,
        system_size=spec.system_size,
        malleable_min_size_frac=spec.malleable_min_size_frac,
        rigid_setup_frac=spec.rigid_setup_frac,
        malleable_setup_frac=spec.malleable_setup_frac,
        lead_range_s=spec.notice_lead_range_s,
        late_window_s=spec.late_window_s,
    )


def _trace_payload(cell: CampaignCell) -> Dict[str, object]:
    """Trace-characterization cells: workload statistics, no simulation."""
    spec = cell.workload_spec()
    jobs = _cell_jobs(cell, spec)
    if jobs is None:
        jobs = generate_trace(spec, seed=cell.seed)
        horizon = spec.horizon_s
    else:
        # real logs span whatever they span; bin to the observed horizon
        horizon = max(j.submit_time for j in jobs) + 1.0 if jobs else 0.0
    weekly = ondemand_jobs_per_week(jobs, horizon)
    return {
        "n_jobs": len(jobs),
        "type_shares": type_shares(jobs),
        "weekly_ondemand": list(weekly),
        "burstiness_cv": burstiness_cv(weekly),
    }


def execute_cell(
    config: Mapping[str, object], log_dir: Optional[str] = None
) -> CellRecord:
    """Run one cell from its canonical config; never raises.

    Takes the plain config dict (not the dataclass) so the worker side
    depends only on JSON-shaped data — the same record shape the store
    persists.  *log_dir* (``--log-decisions``) writes each simulated
    cell's scheduler decision log to ``<log_dir>/<cell key>.jsonl`` —
    an out-of-band side channel, so cell keys and summaries are
    untouched.
    """
    cell = CampaignCell.from_config(config)
    key = cell.key()
    obs = get_obs()
    start = time.perf_counter()
    try:
        with obs.span("campaign.cell", key=key, kind=cell.kind), \
                obs.memory.section("campaign.cell"):
            if cell.kind == "trace":
                payload, summary = _trace_payload(cell), None
            else:
                log_path = None
                if log_dir is not None:
                    os.makedirs(log_dir, exist_ok=True)
                    log_path = os.path.join(log_dir, f"{key}.jsonl")
                wspec = cell.workload_spec()
                metrics = run_one(
                    wspec,
                    cell.seed,
                    cell.mechanism_obj(),
                    cell.sim_config(),
                    jobs=_cell_jobs(cell, wspec),
                    log_path=log_path,
                )
                payload, summary = None, metrics.to_dict()
    except Exception:
        obs.counter("campaign.cells.failed").inc()
        return CellRecord(
            key=key,
            config=cell.config(),
            status="error",
            error=traceback.format_exc(),
            elapsed_s=time.perf_counter() - start,
        )
    obs.counter("campaign.cells.run").inc()
    return CellRecord(
        key=key,
        config=cell.config(),
        status="ok",
        summary=summary,
        payload=payload,
        elapsed_s=time.perf_counter() - start,
    )


def execute_cell_traced(
    config: Mapping[str, object], log_dir: Optional[str] = None
) -> Tuple[CellRecord, List[Dict[str, object]], Dict[str, object]]:
    """:func:`execute_cell` under a private instrumentation bundle.

    The pool path runs cells in subprocesses, whose ring buffers the
    parent cannot see; this wrapper captures the child's spans and
    metric snapshot alongside the record so the parent can
    ``obs.ingest()`` them into one merged trace.  Events are tagged
    with the child's real pid, so Perfetto shows each pool worker as
    its own process track.
    """
    from repro.obs.export import events_from_spans

    with enabled_obs() as child_obs:
        record = execute_cell(config, log_dir=log_dir)
        events = events_from_spans(
            child_obs.tracer.records(),
            process_name=f"pool-worker-{os.getpid()}",
        )
        return record, events, child_obs.snapshot()


@dataclass(frozen=True)
class CampaignRunResult:
    """Outcome of one ``run_campaign`` invocation."""

    spec: CampaignSpec
    #: records for every cell of the grid, in expansion order
    records: List[CellRecord]
    n_total: int
    n_cached: int
    n_ran: int
    n_failed: int

    @property
    def ok_records(self) -> List[CellRecord]:
        return [r for r in self.records if r.ok]


@dataclass(frozen=True)
class CampaignPlan:
    """What a pass over a campaign grid still has to compute.

    Shared by the in-process pool and the distributed worker loop, so
    both sides agree cell-for-cell on identity, dedup, and cache hits —
    the pool is just the degenerate single-worker, no-lease execution of
    the same plan.
    """

    spec: CampaignSpec
    #: unique cells keyed by content address, first-occurrence order
    by_key: Dict[str, CampaignCell]
    #: cells with no usable stored record, in expansion order
    todo: List[CampaignCell]
    n_cached: int

    @property
    def n_total(self) -> int:
        return len(self.by_key)


def matches_filter(
    config: Mapping[str, object], where: Mapping[str, object]
) -> bool:
    """Does a cell config satisfy every ``key=value`` selection pair?"""
    return all(config.get(k) == v for k, v in where.items())


def plan_campaign(
    spec: CampaignSpec,
    store: ResultStore,
    retry_failed: bool = False,
    retry_filter: Optional[Mapping[str, object]] = None,
) -> CampaignPlan:
    """Expand *spec*, dedupe by content address, subtract stored cells.

    ``retry_failed`` forgets stored ``error`` records (so those cells
    re-run); ``retry_filter`` narrows that to failures whose config
    matches every given ``key=value`` pair (e.g. one mechanism or seed).
    """
    cells = spec.expand()
    # dedup by content address: a grid that names the same cell twice
    # (repeated seed, 'all+baseline baseline') still runs it once
    by_key: Dict[str, CampaignCell] = {}
    for cell in cells:
        by_key.setdefault(cell.key(), cell)
    done = store.completed_keys()
    if retry_failed:
        stale = store.failed_keys() & set(by_key)
        if retry_filter:
            stale = {
                k
                for k in stale
                if matches_filter(by_key[k].config(), retry_filter)
            }
        store.drop(stale)
    todo = [c for k, c in by_key.items() if k not in store]
    n_cached = sum(1 for key in by_key if key in done)
    return CampaignPlan(
        spec=spec, by_key=by_key, todo=todo, n_cached=n_cached
    )


def collect_records(
    spec: CampaignSpec, store: ResultStore
) -> List[CellRecord]:
    """One stored record per unique cell, in expansion order; all must
    be present (run the campaign / merge the shards first)."""
    keys = {c.key(): c for c in spec.expand()}
    records = [store.get(key) for key in keys]
    missing = sum(1 for r in records if r is None)
    if missing:
        raise RuntimeError(
            f"{missing}/{len(keys)} cells missing from the store"
        )
    return [r for r in records if r is not None]


def run_campaign(
    spec: CampaignSpec,
    directory: Optional[str] = None,
    store: Optional[ResultStore] = None,
    workers: int = 1,
    retry_failed: bool = False,
    retry_filter: Optional[Mapping[str, object]] = None,
    allow_spec_update: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    log_dir: Optional[str] = None,
) -> CampaignRunResult:
    """Execute every not-yet-computed cell of *spec*.

    Parameters
    ----------
    directory:
        Campaign directory for the persistent store; ``None`` (and no
        *store*) runs fully in memory.
    store:
        An explicit store, overriding *directory*.
    workers:
        Worker processes; 1 runs serially (deterministic order).
    retry_failed:
        Re-run cells whose stored status is ``error`` instead of
        keeping the failure record.
    retry_filter:
        With *retry_failed*, only retry failures whose config matches
        every ``key=value`` pair (e.g. ``{"mechanism": "N&PAA"}``).
    allow_spec_update:
        Let *spec* replace a different spec already recorded in the
        directory — growing a campaign in place (extra seeds,
        mechanisms, ...) while reusing every already-computed cell.
    progress:
        Optional callback receiving one human-readable line per event.
    log_dir:
        Write each simulated cell's scheduler decision log to
        ``<log_dir>/<cell key>.jsonl`` (``--log-decisions``).

    For multi-machine execution of the same grid, see
    :func:`repro.campaign.distrib.run_fleet` — it shares this planner
    and store, adding cell leases and per-worker shards on top.
    """
    say = progress or (lambda _msg: None)
    if store is None:
        # a campaign that owns its directory records its spec there (and
        # refuses a directory already owned by a different campaign); an
        # explicitly shared store skips that guard so many campaigns can
        # pool content-addressed cells
        store = ResultStore(directory)
        store.write_spec(spec.to_dict(), overwrite=allow_spec_update)
    else:
        # a shared store may be long-lived while other campaigns append
        # to its directory; fold in anything appended since it was
        # loaded (O(appended bytes)) before planning against it
        store.refresh()

    plan = plan_campaign(
        spec, store, retry_failed=retry_failed, retry_filter=retry_filter
    )
    by_key, todo = plan.by_key, plan.todo
    say(
        f"campaign {spec.name!r}: {len(by_key)} cells "
        f"({plan.n_cached} cached, {len(todo)} to run)"
    )
    obs = get_obs()
    obs.counter("campaign.cells.cached").inc(plan.n_cached)

    if todo:
        if workers <= 1:
            # in-process: cell spans land directly in this process's
            # ring buffer, nested under whatever span the caller holds
            for cell in todo:
                record = execute_cell(cell.config(), log_dir=log_dir)
                store.put(record)
                say(_cell_line(record, by_key[record.key]))
        elif obs.enabled:
            # traced pool: children ship their spans and metric
            # snapshots back with each record for one merged trace
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(execute_cell_traced, c.config(), log_dir)
                    for c in todo
                ]
                for future in as_completed(futures):
                    record, events, metrics = future.result()
                    obs.ingest(events, metrics)
                    store.put(record)
                    say(_cell_line(record, by_key[record.key]))
        else:
            # submit + as_completed (not pool.map): records persist the
            # moment each cell finishes, in any order, so a kill loses
            # only cells actually in flight — map's ordered stream would
            # buffer completed cells behind a slow head-of-line cell
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(execute_cell, c.config(), log_dir)
                    for c in todo
                ]
                for future in as_completed(futures):
                    record = future.result()
                    store.put(record)
                    say(_cell_line(record, by_key[record.key]))

    final = collect_records(spec, store)
    return CampaignRunResult(
        spec=spec,
        records=final,
        n_total=len(by_key),
        n_cached=plan.n_cached,
        n_ran=len(todo),
        n_failed=sum(1 for r in final if not r.ok),
    )


def _cell_line(record: CellRecord, cell: CampaignCell) -> str:
    tag = "ok" if record.ok else "FAILED"
    mech = cell.mechanism or "baseline"
    mix = (
        cell.notice_mix
        if isinstance(cell.notice_mix, str)
        else cell.notice_mix.get("name", "?")
    )
    return (
        f"  [{tag}] {record.key} {mech} mix={mix} seed={cell.seed} "
        f"({record.elapsed_s:.2f}s)"
    )
