"""Campaign engine: declarative scenario grids with a durable result store.

The paper's exhibits are each a hand-rolled grid of (workload mix x
mechanism x seed) cells; this package makes the *campaign* — not the
single run — the first-class object:

* :mod:`repro.campaign.spec` — :class:`CampaignSpec` declares the axes
  and expands them into content-addressed :class:`CampaignCell` s;
* :mod:`repro.campaign.store` — :class:`ResultStore` persists one
  strict-JSON record per cell, keyed by config hash, so identical cells
  are never recomputed and interrupted campaigns resume;
* :mod:`repro.campaign.executor` — :func:`run_campaign` fans missing
  cells out over a process pool with per-cell failure capture;
* :mod:`repro.campaign.report` — grouped pivots over one campaign and
  cell-matched diffs between two.

CLI: ``repro-hybrid campaign run|status|report``.
"""

from repro.campaign.executor import (
    CampaignRunResult,
    execute_cell,
    run_campaign,
)
from repro.campaign.report import (
    DEFAULT_GROUP_BY,
    DEFAULT_METRICS,
    diff_text,
    load_campaign,
    report_text,
    status_text,
)
from repro.campaign.spec import CampaignCell, CampaignSpec, canonical_json
from repro.campaign.store import CellRecord, ResultStore

__all__ = [
    "CampaignCell",
    "CampaignSpec",
    "CampaignRunResult",
    "CellRecord",
    "ResultStore",
    "canonical_json",
    "execute_cell",
    "run_campaign",
    "load_campaign",
    "report_text",
    "status_text",
    "diff_text",
    "DEFAULT_GROUP_BY",
    "DEFAULT_METRICS",
]
