"""Campaign engine: declarative scenario grids with a durable result store.

The paper's exhibits are each a hand-rolled grid of (workload mix x
mechanism x seed) cells; this package makes the *campaign* — not the
single run — the first-class object:

* :mod:`repro.campaign.spec` — :class:`CampaignSpec` declares the axes
  and expands them into content-addressed :class:`CampaignCell` s;
* :mod:`repro.campaign.store` — :class:`ResultStore` persists one
  strict-JSON record per cell, keyed by config hash, so identical cells
  are never recomputed and interrupted campaigns resume;
* :mod:`repro.campaign.executor` — :func:`run_campaign` fans missing
  cells out over a process pool with per-cell failure capture;
* :mod:`repro.campaign.report` — the report *model* layer (typed pivot
  rows, cell-matched diffs, error listings, chart series) plus the
  plain-text renderers;
* :mod:`repro.campaign.svg` / :mod:`repro.campaign.html` —
  zero-dependency inline-SVG chart primitives and the self-contained
  ``campaign report --html`` exporter built on the same models;
* :mod:`repro.campaign.timeline` — the flame-style span-timeline SVG
  panel for :mod:`repro.obs` trace documents (``report --html
  --trace``);
* :mod:`repro.campaign.progress` — :class:`ProgressIndex`, the
  incremental (byte-offset) completion index every scan goes through,
  and the ``campaign status --watch`` fleet dashboard;
* :mod:`repro.campaign.distrib` — cell leasing, worker fleets (local
  subprocess / SSH backends), and idempotent shard merging, so the same
  grid runs across any number of machines sharing the directory.

CLI: ``repro-hybrid campaign run|fleet|worker|merge|gc|status|report``.
"""

from repro.campaign.distrib import (
    FleetResult,
    LeaseBoard,
    LocalSubprocessBackend,
    MergeStats,
    SSHBackend,
    WorkerSummary,
    merge_shards,
    run_fleet,
    run_worker,
)
from repro.campaign.executor import (
    CampaignPlan,
    CampaignRunResult,
    collect_records,
    execute_cell,
    execute_cells,
    plan_campaign,
    run_campaign,
)
from repro.campaign.progress import (
    IndexKeyView,
    ProgressIndex,
    RefreshStats,
    StatusSnapshot,
    ThroughputTracker,
    status_report,
    take_snapshot,
    watch_status,
)
from repro.campaign.html import (
    render_campaign_html,
    render_exhibit_html,
)
from repro.campaign.report import (
    DEFAULT_GROUP_BY,
    DEFAULT_METRICS,
    METRIC_DIRECTIONS,
    THROUGHPUT_METRICS,
    DiffRow,
    DiffTable,
    ErrorEntry,
    MetricSeries,
    PivotRow,
    PivotTable,
    build_diff,
    build_errors,
    build_pivot,
    build_series,
    diff_text,
    load_campaign,
    report_text,
    status_text,
)
from repro.campaign.svg import bar_chart, chart_css, line_chart
from repro.campaign.timeline import timeline_summary_rows, trace_timeline_svg
from repro.campaign.spec import CampaignCell, CampaignSpec, canonical_json
from repro.campaign.store import (
    CellRecord,
    CompactStats,
    ResultStore,
    invalidate_indexes,
    iter_jsonl_records,
    read_jsonl_since,
)

__all__ = [
    "CampaignCell",
    "CampaignPlan",
    "CampaignSpec",
    "CampaignRunResult",
    "CellRecord",
    "CompactStats",
    "FleetResult",
    "IndexKeyView",
    "LeaseBoard",
    "LocalSubprocessBackend",
    "MergeStats",
    "ProgressIndex",
    "RefreshStats",
    "ResultStore",
    "SSHBackend",
    "StatusSnapshot",
    "ThroughputTracker",
    "WorkerSummary",
    "canonical_json",
    "collect_records",
    "execute_cell",
    "execute_cells",
    "merge_shards",
    "plan_campaign",
    "run_campaign",
    "run_fleet",
    "run_worker",
    "invalidate_indexes",
    "iter_jsonl_records",
    "read_jsonl_since",
    "status_report",
    "take_snapshot",
    "watch_status",
    "load_campaign",
    "report_text",
    "status_text",
    "diff_text",
    "DEFAULT_GROUP_BY",
    "DEFAULT_METRICS",
    "METRIC_DIRECTIONS",
    "THROUGHPUT_METRICS",
    "DiffRow",
    "DiffTable",
    "ErrorEntry",
    "MetricSeries",
    "PivotRow",
    "PivotTable",
    "build_diff",
    "build_errors",
    "build_pivot",
    "build_series",
    "render_campaign_html",
    "render_exhibit_html",
    "bar_chart",
    "chart_css",
    "line_chart",
    "timeline_summary_rows",
    "trace_timeline_svg",
]
