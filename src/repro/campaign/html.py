"""Self-contained HTML campaign reports.

:func:`render_campaign_html` turns a campaign directory's records into
ONE portable ``report.html``: no JavaScript CDNs, no webfonts, no
image files, no network access of any kind — charts are inline SVG
(:mod:`repro.campaign.svg`), styling is an embedded stylesheet, and
the only script is a ~20-line inline column sorter.  The file opens
offline, attaches to an email or CI artifact, and renders identically
years later.

Sections, in order:

* **header** — campaign name, axes, and ok/error/compute stat tiles;
* **pivot** — the seed-averaged grouped table (sortable columns),
  built from the same :func:`repro.campaign.report.build_pivot` model
  the text renderer uses;
* **charts** — one bar/line chart per metric over a chosen x-axis
  config field (``--x``), series split by the remaining ``--by``
  fields;
* **errors** — failed cells with their captured tracebacks behind
  ``<details>`` disclosures;
* **diff** — optional two-campaign comparison
  (:func:`repro.campaign.report.build_diff`) with per-cell deltas and
  regression/improvement highlighting (arrow glyphs + color, never
  color alone).

Rendering is deterministic: the same records produce byte-identical
HTML (no timestamps, no randomness), which the golden-file tests and
the "byte-stable report" acceptance check rely on.
"""

from __future__ import annotations

import html as _html
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.campaign.report import (
    DEFAULT_GROUP_BY,
    DEFAULT_METRICS,
    DiffTable,
    MetricSeries,
    build_diff,
    build_errors,
    build_pivot,
    build_series,
)
from repro.campaign.spec import canonical_json
from repro.campaign.store import CellRecord
from repro.campaign.svg import bar_chart, chart_css, fmt_value, line_chart
from repro.campaign.timeline import timeline_summary_rows, trace_timeline_svg
from repro.obs import get_obs

#: spec axes surfaced in the report header, in display order
_SPEC_AXES = (
    "days",
    "target_load",
    "system_size",
    "notice_mix",
    "mechanism",
    "backfill_mode",
    "checkpoint_multiplier",
    "failure_mtbf_days",
    "seeds",
    "trace_file",
)

_PAGE_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0 auto; padding: 24px 32px 48px; max-width: 1080px;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: #f9f9f7; color: #0b0b0b;
}
h1 { font-size: 22px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 32px 0 10px; }
.subtitle { color: #52514e; margin: 0 0 18px; font-size: 13px; }
.tiles { display: flex; gap: 12px; flex-wrap: wrap; margin: 18px 0; }
.tile {
  background: #fcfcfb; border: 1px solid rgba(11,11,11,0.10);
  border-radius: 8px; padding: 10px 16px; min-width: 110px;
}
.tile .label { font-size: 12px; color: #52514e; }
.tile .value { font-size: 26px; font-weight: 600; }
.axes { font-size: 13px; color: #52514e; }
.axes code { color: #0b0b0b; }
table {
  border-collapse: collapse; font-size: 13px; width: 100%;
  background: #fcfcfb; border: 1px solid rgba(11,11,11,0.10);
  border-radius: 8px;
}
th, td { padding: 6px 10px; text-align: left; white-space: nowrap; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
thead th {
  border-bottom: 1px solid #c3c2b7; font-weight: 600; cursor: pointer;
  user-select: none;
}
thead th:hover { background: rgba(11,11,11,0.04); }
tbody tr:nth-child(even) { background: rgba(11,11,11,0.025); }
.delta-reg { color: #d03b3b; font-weight: 600; }
.delta-imp { color: #006300; font-weight: 600; }
.chart-card { margin: 14px 0; }
details {
  background: #fcfcfb; border: 1px solid rgba(11,11,11,0.10);
  border-radius: 8px; padding: 8px 12px; margin: 8px 0;
}
details pre {
  overflow-x: auto; font-size: 12px; line-height: 1.45;
  background: rgba(11,11,11,0.04); padding: 10px; border-radius: 6px;
}
.note { color: #52514e; font-size: 13px; }
footer {
  margin-top: 40px; color: #898781; font-size: 12px;
  border-top: 1px solid #e1e0d9; padding-top: 10px;
}
@media (prefers-color-scheme: dark) {
  body { background: #0d0d0d; color: #ffffff; }
  .subtitle, .axes, .tile .label, .note { color: #c3c2b7; }
  .axes code { color: #ffffff; }
  .tile, table, details { background: #1a1a19;
    border-color: rgba(255,255,255,0.10); }
  thead th { border-bottom-color: #383835; }
  thead th:hover { background: rgba(255,255,255,0.06); }
  tbody tr:nth-child(even) { background: rgba(255,255,255,0.03); }
  details pre { background: rgba(255,255,255,0.06); }
  .delta-reg { color: #e66767; }
  .delta-imp { color: #0ca30c; }
  footer { border-top-color: #2c2c2a; }
}
"""

#: the only script in the report: click a header to sort that column
#: (numeric when both cells parse as numbers, lexical otherwise)
_SORT_JS = """
document.querySelectorAll("table.sortable thead th").forEach(function (th) {
  th.addEventListener("click", function () {
    var table = th.closest("table");
    var tbody = table.querySelector("tbody");
    var i = Array.prototype.indexOf.call(th.parentNode.children, th);
    var dir = th.dataset.dir === "asc" ? "desc" : "asc";
    table.querySelectorAll("thead th").forEach(function (h) {
      delete h.dataset.dir;
    });
    th.dataset.dir = dir;
    var rows = Array.prototype.slice.call(tbody.rows);
    rows.sort(function (a, b) {
      var x = a.cells[i].dataset.v || a.cells[i].textContent;
      var y = b.cells[i].dataset.v || b.cells[i].textContent;
      var nx = parseFloat(x), ny = parseFloat(y);
      var c = (!isNaN(nx) && !isNaN(ny))
        ? nx - ny : String(x).localeCompare(String(y));
      return dir === "asc" ? c : -c;
    });
    rows.forEach(function (r) { tbody.appendChild(r); });
  });
});
"""


def esc(value: object) -> str:
    """Escape a value for HTML text/attribute content."""
    return _html.escape(str(value), quote=True)


def _cell(value: object, numeric: Optional[bool] = None) -> str:
    """One ``<td>``; numeric cells carry a machine value for sorting."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (
            f'<td class="num" data-v="{value!r}">{fmt_value(float(value))}'
            "</td>"
        )
    css = ' class="num"' if numeric else ""
    return f"<td{css}>{esc(value if value is not None else '-')}</td>"


def _sortable_table(
    headers: Sequence[Tuple[str, bool]], rows: Sequence[Sequence[str]]
) -> str:
    head = "".join(
        f'<th{" class=" + chr(34) + "num" + chr(34) if numeric else ""}>'
        f"{esc(name)}</th>"
        for name, numeric in headers
    )
    body = "".join(f"<tr>{''.join(row)}</tr>" for row in rows)
    return (
        '<table class="sortable">'
        f"<thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"
    )


# ----------------------------------------------------------------------
# Sections
# ----------------------------------------------------------------------
def _header_section(
    title: str,
    spec_dict: Optional[Mapping[str, object]],
    records: Sequence[CellRecord],
) -> str:
    n_ok = sum(1 for r in records if r.ok)
    n_err = len(records) - n_ok
    elapsed = sum(r.elapsed_s for r in records)
    tiles = [
        ("completed cells", str(n_ok)),
        ("failed cells", str(n_err)),
        ("compute", f"{elapsed:.0f}s"),
    ]
    tile_html = "".join(
        f'<div class="tile"><div class="label">{esc(label)}</div>'
        f'<div class="value">{esc(value)}</div></div>'
        for label, value in tiles
    )
    axes = ""
    if spec_dict:
        parts = []
        for axis in _SPEC_AXES:
            value = spec_dict.get(axis)
            if value is None:
                continue
            values = value if isinstance(value, (list, tuple)) else [value]
            if all(v is None for v in values):
                continue
            shown = ", ".join(
                "baseline" if v is None else str(v) for v in values
            )
            parts.append(f"<code>{esc(axis)}</code>: {esc(shown)}")
        axes = f'<p class="axes">{" · ".join(parts)}</p>'
    return (
        f"<h1>{esc(title)}</h1>"
        '<p class="subtitle">campaign report — generated offline by '
        "<code>repro-hybrid campaign report --html</code></p>"
        f'<div class="tiles">{tile_html}</div>{axes}'
    )


def _pivot_section(
    records: Sequence[CellRecord],
    by: Sequence[str],
    metrics: Sequence[str],
) -> str:
    pivot = build_pivot(records, by=by, metrics=metrics)
    if not pivot.rows:
        return (
            "<h2>Pivot</h2>"
            '<p class="note">(no completed simulation cells)</p>'
        )
    headers = [(f, False) for f in pivot.by]
    headers.append(("cells", True))
    headers.extend((m, True) for m in pivot.metrics)
    rows = []
    for row in pivot.rows:
        cells = [_cell(g) for g in row.group]
        cells.append(_cell(row.n_cells))
        cells.extend(_cell(row.values[m]) for m in pivot.metrics)
        rows.append(cells)
    return (
        f"<h2>Pivot — by {esc(', '.join(pivot.by))} "
        f"(averaged over seeds)</h2>"
        + _sortable_table(headers, rows)
        + '<p class="note">click a column header to sort</p>'
    )


def _charts_section(
    records: Sequence[CellRecord],
    by: Sequence[str],
    metrics: Sequence[str],
    x: Optional[str],
) -> str:
    x_field = x or (by[-1] if by else "mechanism")
    series_by = [f for f in by if f != x_field]
    charted = build_series(records, x=x_field, by=series_by, metrics=metrics)
    charts = [
        _chart_for(ms)
        for ms in charted
        if any(v is not None for _n, vals in ms.series for v in vals)
    ]
    if not charts:
        return ""
    cards = "".join(f'<div class="chart-card">{c}</div>' for c in charts)
    return (
        f"<h2>Charts — {esc(', '.join(metrics))} over "
        f"<code>{esc(x_field)}</code></h2>{cards}"
    )


def _chart_for(ms: MetricSeries) -> str:
    """Line chart over a numeric axis with ≥3 points, bars otherwise."""
    if ms.numeric_x and len(ms.x_values) >= 3:
        return line_chart(
            ms.x_values,
            ms.series,
            title=ms.metric,
            embed_style=False,
            x_label=ms.x_field,
        )
    return bar_chart(
        ["default" if v is None else v for v in ms.x_values],
        ms.series,
        title=ms.metric,
        embed_style=False,
        x_label=ms.x_field,
    )


def _errors_section(records: Sequence[CellRecord]) -> str:
    entries = build_errors(records)
    if not entries:
        return ""
    blocks = []
    for entry in entries:
        blocks.append(
            "<details>"
            f"<summary><code>{esc(entry.key)}</code> {esc(entry.label)}"
            f" — {esc(entry.last_line)}</summary>"
            f"<p class='note'>config: <code>"
            f"{esc(canonical_json(dict(entry.config)))}</code></p>"
            f"<pre>{esc(entry.error)}</pre>"
            "</details>"
        )
    return (
        f"<h2>Errors ({len(entries)} failed "
        f"cell{'s' if len(entries) != 1 else ''})</h2>" + "".join(blocks)
    )


def _diff_section(diff: DiffTable) -> str:
    head = (
        f"<h2>Diff — {esc(diff.a_name)} (A) vs {esc(diff.b_name)} (B)</h2>"
    )
    if not diff.comparable:
        return (
            head
            + '<p class="note">(campaigns share no comparable cells)'
            f" — A: {diff.n_a_ok} ok / {diff.n_a_errors} error records,"
            f" B: {diff.n_b_ok} ok / {diff.n_b_errors} error records</p>"
        )
    varying = (
        f" · varying: <code>{esc(', '.join(sorted(diff.varying)))}</code>"
        if diff.varying
        else ""
    )
    summary = (
        f'<p class="note">{len(diff.rows)} comparisons — '
        f'<span class="delta-reg">{diff.n_regressions} '
        f"regression{'s' if diff.n_regressions != 1 else ''} ▼</span>, "
        f'<span class="delta-imp">{diff.n_improvements} '
        f"improvement{'s' if diff.n_improvements != 1 else ''} ▲</span>"
        f"{varying}</p>"
    )
    headers = [
        ("cell", False),
        ("metric", False),
        ("A", True),
        ("B", True),
        ("delta", True),
        ("Δ%", True),
        ("verdict", False),
    ]
    rows = []
    for row in diff.rows:
        if row.regression:
            verdict = '<td><span class="delta-reg">▼ regression</span></td>'
        elif row.improvement:
            verdict = '<td><span class="delta-imp">▲ improvement</span></td>'
        else:
            verdict = "<td>·</td>"
        delta = (
            f'<td class="num" data-v="{row.delta!r}">'
            f"{fmt_value(row.delta)}</td>"
            if row.delta is not None
            else "<td class='num'>-</td>"
        )
        pct = (
            f'<td class="num" data-v="{row.pct!r}">{100 * row.pct:+.1f}%</td>'
            if row.pct is not None
            else "<td class='num'>-</td>"
        )
        rows.append(
            [
                _cell(row.label),
                _cell(row.metric),
                _cell(row.a),
                _cell(row.b),
                delta,
                pct,
                verdict,
            ]
        )
    return head + summary + _sortable_table(headers, rows)


# ----------------------------------------------------------------------
# Documents
# ----------------------------------------------------------------------
def _timeline_section(trace_doc: Mapping[str, object]) -> str:
    """The instrumentation timeline panel: flame-style span SVG plus a
    top-spans table, built from a ``--trace`` JSON document."""
    svg = trace_timeline_svg(trace_doc, title=None, embed_style=False)
    rows = timeline_summary_rows(trace_doc)
    table = ""
    if rows:
        body_rows = "".join(
            f"<tr><td><code>{esc(name)}</code></td>"
            f'<td class="num">{count}</td>'
            f'<td class="num">{fmt_value(total_ms)}</td></tr>'
            for name, count, total_ms in rows
        )
        table = (
            "<table><thead><tr><th>span</th><th>count</th>"
            "<th>total ms</th></tr></thead>"
            f"<tbody>{body_rows}</tbody></table>"
        )
    return (
        "<h2>Instrumentation timeline</h2>"
        '<p class="subtitle">spans captured with <code>--trace</code>; '
        "load the .trace.json in ui.perfetto.dev for the interactive "
        "view</p>"
        f'<div class="chart-card">{svg}</div>{table}'
    )


def _document(title: str, body: str) -> str:
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, '
        'initial-scale=1">\n'
        f"<title>{esc(title)}</title>\n"
        f"<style>{_PAGE_CSS}{chart_css()}</style>\n"
        f"</head><body>{body}"
        "<footer>self-contained report — inline SVG + CSS, no external "
        "resources; regenerate with <code>repro-hybrid campaign report "
        "--html</code></footer>"
        f"<script>{_SORT_JS}</script></body></html>\n"
    )


def render_campaign_html(
    records: Sequence[CellRecord],
    spec_dict: Optional[Mapping[str, object]] = None,
    by: Sequence[str] = DEFAULT_GROUP_BY,
    metrics: Sequence[str] = DEFAULT_METRICS,
    x: Optional[str] = None,
    diff_records: Optional[Sequence[CellRecord]] = None,
    a_name: str = "A",
    b_name: str = "B",
    title: Optional[str] = None,
    trace_doc: Optional[Mapping[str, object]] = None,
) -> str:
    """Render one campaign (and optionally a diff) as one HTML file.

    Parameters mirror ``campaign report``: *by* groups the pivot rows,
    *metrics* picks the value columns, *x* chooses the chart x-axis
    config field (default: the last *by* field), *diff_records* adds
    the two-campaign diff section with *records* as side A, and
    *trace_doc* (a loaded ``.trace.json``) appends the instrumentation
    timeline panel.
    """
    with get_obs().span("report.html.render", n_records=len(records)):
        name = title
        if name is None:
            name = str((spec_dict or {}).get("name", "campaign"))
        body = [_header_section(name, spec_dict, records)]
        body.append(_pivot_section(records, by, metrics))
        body.append(_charts_section(records, by, metrics, x))
        body.append(_errors_section(records))
        if diff_records is not None:
            diff = build_diff(
                records,
                diff_records,
                metrics=metrics,
                a_name=a_name,
                b_name=b_name,
            )
            body.append(_diff_section(diff))
        if trace_doc is not None:
            body.append(_timeline_section(trace_doc))
        return _document(f"{name} — campaign report", "".join(body))


def render_exhibit_html(
    title: str,
    charts: Sequence[Tuple[str, str]] = (),
    text: Optional[str] = None,
) -> str:
    """Wrap a figure driver's charts (name → inline SVG) and its text
    exhibit into the same self-contained document shell."""
    body = [
        f"<h1>{esc(title)}</h1>"
        '<p class="subtitle">generated offline by '
        "<code>repro-hybrid --html</code></p>"
    ]
    # figure drivers emit self-contained charts (embedded stylesheet);
    # the page head already carries chart_css once, so drop the copies
    embedded_style = f"<style>{chart_css()}</style>"
    for heading, chart_svg in charts:
        body.append(
            f"<h2>{esc(heading)}</h2>"
            f'<div class="chart-card">'
            f"{chart_svg.replace(embedded_style, '')}</div>"
        )
    if text:
        body.append(f"<h2>Text exhibit</h2><details open><summary>aligned "
                    f"table</summary><pre>{esc(text)}</pre></details>")
    return _document(title, "".join(body))
