"""Inline-SVG span timeline panel for trace documents.

Renders the ``"X"`` (complete) events of a Chrome trace-event document
(:mod:`repro.obs.export`) as a flame-style timeline: one horizontal
band per ``(process, thread)`` track, bars stacked by nesting depth,
colored by span category (the ``layer`` prefix of the
``layer.noun.verb`` name).  Reuses the campaign chart primitives
(:mod:`repro.campaign.svg`) — same palette, same CSS variables, same
determinism contract: identical documents render byte-identical SVG.

This module lives in ``campaign`` (not ``obs``) on purpose: campaign
code may import obs, never the reverse — the instrumentation layer
stays dependency-free so every layer can use it.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.campaign.svg import MAX_SERIES, _frame, esc

#: bar geometry (px)
LANE_H = 14.0
LANE_GAP = 2.0
TRACK_GAP = 10.0

#: hard cap on drawn bars — a 10k-pass trace would melt the DOM; the
#: longest spans are kept (they are what a timeline is for) and the cut
#: is announced in a caption, never silent
DEFAULT_MAX_BARS = 2000


def _x_events(doc: Mapping[str, object]) -> List[Mapping[str, object]]:
    return [
        e
        for e in doc.get("traceEvents", ())
        if isinstance(e, Mapping) and e.get("ph") == "X"
    ]


def _process_names(doc: Mapping[str, object]) -> Dict[object, str]:
    names: Dict[object, str] = {}
    for e in doc.get("traceEvents", ()):
        if (
            isinstance(e, Mapping)
            and e.get("ph") == "M"
            and e.get("name") == "process_name"
        ):
            args = e.get("args") or {}
            if isinstance(args, Mapping) and "name" in args:
                names[e.get("pid")] = str(args["name"])
    return names


def _assign_depths(
    events: Sequence[Mapping[str, object]],
) -> List[Tuple[Mapping[str, object], int]]:
    """Nesting depth per event of ONE track, from interval containment.

    Spans of one thread are properly nested (context managers), so a
    stack of open end-times reconstructs the depth the tracer saw.
    Sorted by (start, -duration) so a parent precedes the children it
    encloses even when they share a start timestamp.
    """
    ordered = sorted(
        events,
        key=lambda e: (float(e.get("ts", 0.0)), -float(e.get("dur", 0.0))),
    )
    out: List[Tuple[Mapping[str, object], int]] = []
    stack: List[float] = []  # open span end-times
    for e in ordered:
        ts = float(e.get("ts", 0.0))
        end = ts + float(e.get("dur", 0.0))
        while stack and ts >= stack[-1] - 1e-9:
            stack.pop()
        out.append((e, len(stack)))
        stack.append(end)
    return out


def _fmt_us(us: float) -> str:
    """Compact duration label for a microsecond quantity."""
    if us >= 1e6:
        return f"{us / 1e6:.2f}s"
    if us >= 1e3:
        return f"{us / 1e3:.2f}ms"
    return f"{us:.0f}us"


def trace_timeline_svg(
    doc: Mapping[str, object],
    title: Optional[str] = "Span timeline",
    width: int = 960,
    max_bars: int = DEFAULT_MAX_BARS,
    embed_style: bool = True,
) -> str:
    """Render a trace document's spans as one self-contained SVG.

    Tracks (one per ``(pid, tid)``) are sorted by pid then tid for
    determinism; categories map to palette slots in first-seen track
    order.  When the document holds more than *max_bars* spans the
    shortest are dropped (depth structure of the survivors is kept) and
    a caption reports the cut.
    """
    events = _x_events(doc)
    if not events:
        body = (
            f'<text class="viz-label" x="{width / 2:.1f}" y="40" '
            f'text-anchor="middle">(no spans in trace)</text>'
        )
        return _frame(width, 80, body, title, embed_style)

    n_dropped = 0
    if len(events) > max_bars:
        keep = sorted(
            events, key=lambda e: -float(e.get("dur", 0.0))
        )[:max_bars]
        n_dropped = len(events) - max_bars
        kept_ids = {id(e) for e in keep}
        events = [e for e in events if id(e) in kept_ids]

    pnames = _process_names(doc)
    tracks: Dict[Tuple[object, object], List[Mapping[str, object]]] = {}
    for e in events:
        tracks.setdefault((e.get("pid"), e.get("tid")), []).append(e)
    track_keys = sorted(tracks, key=lambda k: (str(k[0]), str(k[1])))

    t_lo = min(float(e.get("ts", 0.0)) for e in events)
    t_hi = max(
        float(e.get("ts", 0.0)) + float(e.get("dur", 0.0)) for e in events
    )
    span_us = (t_hi - t_lo) or 1.0

    categories = sorted(
        {str(e.get("cat", e.get("name", "?"))).split(".", 1)[0]
         for e in events}
    )
    cat_slot = {c: (i % MAX_SERIES) + 1 for i, c in enumerate(categories)}

    left, right = 150.0, width - 16.0
    top = 30.0 if title else 14.0
    scale = (right - left) / span_us

    body: List[str] = []
    y = top + 8.0
    for key in track_keys:
        with_depth = _assign_depths(tracks[key])
        n_lanes = 1 + max(d for _e, d in with_depth)
        pid, tid = key
        label = pnames.get(pid, f"pid {pid}")
        body.append(
            f'<text class="viz-label" x="8" y="{y + LANE_H - 3:.1f}">'
            f"{esc(label)} · t{esc(tid)}</text>"
        )
        for e, depth in with_depth:
            ts = float(e.get("ts", 0.0))
            dur = float(e.get("dur", 0.0))
            x = left + (ts - t_lo) * scale
            w = max(1.0, dur * scale)
            by = y + depth * (LANE_H + LANE_GAP)
            cat = str(e.get("cat", e.get("name", "?"))).split(".", 1)[0]
            name = str(e.get("name", "?"))
            body.append(
                f'<rect x="{x:.1f}" y="{by:.1f}" width="{w:.1f}" '
                f'height="{LANE_H:.1f}" rx="2" '
                f'fill="var(--series-{cat_slot[cat]})">'
                f"<title>{esc(name)}: {_fmt_us(dur)}</title></rect>"
            )
            if w >= 60.0:
                body.append(
                    f'<text class="viz-value" x="{x + 3:.1f}" '
                    f'y="{by + LANE_H - 3.5:.1f}">{esc(name)}</text>'
                )
        y += n_lanes * (LANE_H + LANE_GAP) + TRACK_GAP

    # time axis: start / midpoint / end of the visible window
    axis_y = y + 2.0
    body.append(
        f'<line class="viz-axis" x1="{left:.1f}" y1="{axis_y:.1f}" '
        f'x2="{right:.1f}" y2="{axis_y:.1f}"/>'
    )
    for frac in (0.0, 0.5, 1.0):
        tx = left + (right - left) * frac
        body.append(
            f'<text class="viz-tick" x="{tx:.1f}" y="{axis_y + 14:.1f}" '
            f'text-anchor="middle">+{_fmt_us(span_us * frac)}</text>'
        )
    # category legend
    lx = left
    ly = axis_y + 32.0
    for cat in categories:
        body.append(
            f'<rect x="{lx:.1f}" y="{ly - 9:.1f}" width="10" height="10" '
            f'rx="2" fill="var(--series-{cat_slot[cat]})"/>'
        )
        body.append(
            f'<text class="viz-label" x="{lx + 14:.1f}" y="{ly:.1f}">'
            f"{esc(cat)}</text>"
        )
        lx += 14 + 6.4 * max(1, len(cat)) + 14
    if n_dropped:
        body.append(
            f'<text class="viz-label" x="{right:.1f}" y="{top - 4:.1f}" '
            f'text-anchor="end">(+{n_dropped} shortest spans omitted — '
            f"open the .trace.json in Perfetto for all of them)</text>"
        )

    height = int(math.ceil(ly + 12.0))
    return _frame(width, height, "".join(body), title, embed_style)


def timeline_summary_rows(
    doc: Mapping[str, object], top: int = 10
) -> List[Tuple[str, int, float]]:
    """(span name, count, total ms) rows for the panel's side table."""
    agg: Dict[str, List[float]] = {}
    for e in _x_events(doc):
        name = str(e.get("name", "?"))
        row = agg.setdefault(name, [0.0, 0.0])
        row[0] += 1
        row[1] += float(e.get("dur", 0.0)) / 1000.0
    return [
        (name, int(c), total)
        for name, (c, total) in sorted(
            agg.items(), key=lambda kv: -kv[1][1]
        )[:top]
    ]
