"""Zero-dependency inline-SVG chart primitives.

Bar and line charts rendered as plain SVG strings — no matplotlib, no
JavaScript, no network fetches — shared by the campaign HTML exporter
(:mod:`repro.campaign.html`) and the paper-figure drivers
(:mod:`repro.experiments.figures`), so exported reports and regenerated
figures go through one rendering path.

Design rules (deliberate, not cosmetic):

* a fixed 8-slot categorical palette whose *order* is colorblind-safe
  (adjacent-pair ΔE validated); series past the cap are dropped with an
  explicit caption, never drawn in invented hues;
* colors are CSS custom properties with light and dark values, so the
  same markup renders correctly under ``prefers-color-scheme``;
* thin marks: bars ≤ 24 px with a rounded data-end and a 2 px surface
  gap between neighbours, 2 px lines with surface-ringed markers;
* every mark carries a native ``<title>`` tooltip, and every chart is
  paired with a table elsewhere in the report — color is never the
  only channel;
* rendering is deterministic: same inputs → byte-identical SVG (no
  timestamps, no randomness), which is what makes golden-file tests
  and byte-stable reports possible.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

#: categorical series slots (light / dark surface steps of the same
#: hues).  The ordering is part of the contract: adjacent pairs were
#: validated for color-vision-deficiency separation, so do not reorder.
PALETTE_LIGHT: Tuple[str, ...] = (
    "#2a78d6", "#eb6834", "#1baf7a", "#eda100",
    "#e87ba4", "#008300", "#4a3aa7", "#e34948",
)
PALETTE_DARK: Tuple[str, ...] = (
    "#3987e5", "#d95926", "#199e70", "#c98500",
    "#d55181", "#008300", "#9085e9", "#e66767",
)

#: hard cap on drawn series — past 8 the palette cannot stay
#: distinguishable; callers fold or facet instead
MAX_SERIES = len(PALETTE_LIGHT)

_SERIES_VARS = "\n".join(
    f"  --series-{i + 1}: {hexcode};"
    for i, hexcode in enumerate(PALETTE_LIGHT)
)
_SERIES_VARS_DARK = "\n".join(
    f"  --series-{i + 1}: {hexcode};"
    for i, hexcode in enumerate(PALETTE_DARK)
)


def chart_css() -> str:
    """The shared stylesheet every chart's markup is written against.

    Scoped under ``.viz`` so it can be embedded once per HTML page or
    inside each standalone SVG without colliding with page styles.
    """
    return f""".viz {{
  color-scheme: light dark;
  --surface-1: #fcfcfb;
  --ink: #0b0b0b;
  --ink-2: #52514e;
  --muted: #898781;
  --grid: #e1e0d9;
  --axis: #c3c2b7;
{_SERIES_VARS}
}}
@media (prefers-color-scheme: dark) {{
  .viz {{
    --surface-1: #1a1a19;
    --ink: #ffffff;
    --ink-2: #c3c2b7;
    --muted: #898781;
    --grid: #2c2c2a;
    --axis: #383835;
{_SERIES_VARS_DARK}
  }}
}}
.viz text {{
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
}}
.viz .viz-title {{ fill: var(--ink); font-size: 13px; font-weight: 600; }}
.viz .viz-label {{ fill: var(--muted); font-size: 11px; }}
.viz .viz-value {{ fill: var(--ink-2); font-size: 10px; }}
.viz .viz-tick {{
  fill: var(--muted); font-size: 11px;
  font-variant-numeric: tabular-nums;
}}
.viz .viz-grid {{ stroke: var(--grid); stroke-width: 1; }}
.viz .viz-axis {{ stroke: var(--axis); stroke-width: 1; }}
.viz .viz-surface {{ fill: var(--surface-1); }}
"""


def esc(text: object) -> str:
    """Escape a value for SVG/XML text or attribute content."""
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def fmt_value(value: Optional[float]) -> str:
    """Deterministic short formatting for data values and ticks."""
    if value is None:
        return "-"
    if isinstance(value, float) and not math.isfinite(value):
        # stores are NaN/inf-safe, so renderers must be too
        if math.isnan(value):
            return "-"
        return "inf" if value > 0 else "-inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    if abs(value) >= 100:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.2f}"
    return f"{value:.4f}"


def nice_ticks(
    lo: float, hi: float, n: int = 5
) -> List[float]:
    """~*n* clean tick positions (1/2/5 steps) covering [lo, hi]."""
    if not (math.isfinite(lo) and math.isfinite(hi)):
        return [0.0, 1.0]
    if hi < lo:
        lo, hi = hi, lo
    if hi == lo:
        hi = lo + (abs(lo) or 1.0)
    span = hi - lo
    raw_step = span / max(1, n - 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * magnitude
        if step >= raw_step:
            break
    first = math.floor(lo / step) * step
    ticks = []
    i = 0
    while True:
        value = first + i * step
        # snap near-zero floats so -0.0 / 1e-17 render as 0
        ticks.append(0.0 if abs(value) < step * 1e-9 else value)
        if value >= hi - step * 1e-9:
            break
        i += 1
    return ticks


#: one chart series: (name, one value per category/x-position)
Series = Tuple[str, Sequence[Optional[float]]]


def _clean(series: Sequence[Series]) -> Tuple[List[Series], int]:
    """Apply the series cap; returns (kept, n_dropped)."""
    kept = list(series[:MAX_SERIES])
    return kept, max(0, len(series) - MAX_SERIES)


def _value_range(series: Sequence[Series]) -> Tuple[float, float]:
    values = [
        v
        for _name, vals in series
        for v in vals
        if v is not None and math.isfinite(v)
    ]
    if not values:
        return 0.0, 1.0
    return min(0.0, min(values)), max(0.0, max(values))


def _legend(
    series: Sequence[Series], x: float, y: float
) -> str:
    """A horizontal swatch+name legend row (omitted for one series)."""
    if len(series) < 2:
        return ""
    parts = []
    cx = x
    for i, (name, _vals) in enumerate(series):
        parts.append(
            f'<rect x="{cx:.1f}" y="{y - 9:.1f}" width="10" height="10" '
            f'rx="2" fill="var(--series-{i + 1})"/>'
        )
        parts.append(
            f'<text class="viz-label" x="{cx + 14:.1f}" y="{y:.1f}">'
            f"{esc(name)}</text>"
        )
        cx += 14 + 6.4 * max(1, len(str(name))) + 14
    return "".join(parts)


def _frame(
    width: int,
    height: int,
    body: str,
    title: Optional[str],
    embed_style: bool,
) -> str:
    style = (
        f"<style>{chart_css()}</style>" if embed_style else ""
    )
    title_el = (
        f'<text class="viz-title" x="8" y="17">{esc(title)}</text>'
        if title
        else ""
    )
    return (
        f'<svg class="viz" role="img" xmlns="http://www.w3.org/2000/svg" '
        f'viewBox="0 0 {width} {height}" width="{width}" height="{height}">'
        f"{style}"
        f'<rect class="viz-surface" x="0" y="0" width="{width}" '
        f'height="{height}" rx="6"/>'
        f"{title_el}{body}</svg>"
    )


def _empty(width: int, height: int, title: Optional[str],
           embed_style: bool) -> str:
    body = (
        f'<text class="viz-label" x="{width / 2:.1f}" '
        f'y="{height / 2:.1f}" text-anchor="middle">(no data)</text>'
    )
    return _frame(width, height, body, title, embed_style)


def _y_scale(
    series: Sequence[Series], top: float, bottom: float
) -> Tuple[List[float], float, float]:
    """Ticks plus an affine y mapping for the padded value range."""
    lo, hi = _value_range(series)
    ticks = nice_ticks(lo, hi)
    lo, hi = min(ticks[0], lo), max(ticks[-1], hi)
    span = (hi - lo) or 1.0
    scale = (bottom - top) / span
    return ticks, lo, scale


def _grid_and_yticks(
    ticks: Sequence[float],
    lo: float,
    scale: float,
    left: float,
    right: float,
    bottom: float,
) -> str:
    parts = []
    for tick in ticks:
        y = bottom - (tick - lo) * scale
        parts.append(
            f'<line class="viz-grid" x1="{left:.1f}" y1="{y:.1f}" '
            f'x2="{right:.1f}" y2="{y:.1f}"/>'
        )
        parts.append(
            f'<text class="viz-tick" x="{left - 6:.1f}" y="{y + 3.5:.1f}" '
            f'text-anchor="end">{fmt_value(tick)}</text>'
        )
    return "".join(parts)


def bar_chart(
    categories: Sequence[object],
    series: Sequence[Series],
    title: Optional[str] = None,
    width: int = 640,
    height: int = 300,
    embed_style: bool = True,
    x_label: Optional[str] = None,
) -> str:
    """A grouped bar chart: one bar cluster per category.

    ``series`` values align with ``categories``; ``None`` leaves a gap.
    At most :data:`MAX_SERIES` series are drawn — extras are dropped
    and announced in a caption, never silently.
    """
    series, n_dropped = _clean(series)
    if not categories or not series:
        return _empty(width, height, title, embed_style)

    left, right = 56.0, width - 16.0
    top = 30.0 if title else 14.0
    bottom = height - (46.0 if len(series) > 1 else 34.0)
    ticks, lo, scale = _y_scale(series, top, bottom)
    body = [_grid_and_yticks(ticks, lo, scale, left, right, bottom)]
    zero_y = bottom - (0.0 - lo) * scale

    n_cat, n_ser = len(categories), len(series)
    band = (right - left) / n_cat
    gap = 2.0
    bar_w = min(24.0, max(2.0, (band * 0.72 - gap * (n_ser - 1)) / n_ser))
    cluster_w = bar_w * n_ser + gap * (n_ser - 1)
    label_values = n_cat * n_ser <= 10

    for ci, cat in enumerate(categories):
        x0 = left + band * ci + (band - cluster_w) / 2
        for si, (name, vals) in enumerate(series):
            value = vals[ci] if ci < len(vals) else None
            if value is None or not math.isfinite(value):
                continue
            x = x0 + si * (bar_w + gap)
            y = bottom - (value - lo) * scale
            body.append(
                _bar_path(x, y, bar_w, zero_y, si)
                + f"<title>{esc(name + ' · ' if name else '')}"
                + f"{esc(cat)}: {fmt_value(value)}</title></path>"
            )
            if label_values and value >= 0:
                body.append(
                    f'<text class="viz-value" x="{x + bar_w / 2:.1f}" '
                    f'y="{y - 4:.1f}" text-anchor="middle">'
                    f"{fmt_value(value)}</text>"
                )
    body.append(
        f'<line class="viz-axis" x1="{left:.1f}" y1="{zero_y:.1f}" '
        f'x2="{right:.1f}" y2="{zero_y:.1f}"/>'
    )
    body.append(_x_category_labels(categories, left, band, bottom))
    if x_label:
        body.append(
            f'<text class="viz-label" x="{(left + right) / 2:.1f}" '
            f'y="{bottom + 30:.1f}" text-anchor="middle">'
            f"{esc(x_label)}</text>"
        )
    body.append(_legend(series, left, height - 8))
    body.append(_dropped_note(n_dropped, right, top))
    return _frame(width, height, "".join(body), title, embed_style)


def _bar_path(
    x: float, y: float, w: float, baseline: float, series_index: int
) -> str:
    """A bar with a 4px-rounded data-end and a square baseline end."""
    up = y <= baseline  # positive bars grow upward
    r = min(4.0, w / 2, abs(baseline - y))
    if up:
        d = (
            f"M{x:.1f},{baseline:.1f} L{x:.1f},{y + r:.1f} "
            f"Q{x:.1f},{y:.1f} {x + r:.1f},{y:.1f} "
            f"L{x + w - r:.1f},{y:.1f} "
            f"Q{x + w:.1f},{y:.1f} {x + w:.1f},{y + r:.1f} "
            f"L{x + w:.1f},{baseline:.1f} Z"
        )
    else:
        d = (
            f"M{x:.1f},{baseline:.1f} L{x:.1f},{y - r:.1f} "
            f"Q{x:.1f},{y:.1f} {x + r:.1f},{y:.1f} "
            f"L{x + w - r:.1f},{y:.1f} "
            f"Q{x + w:.1f},{y:.1f} {x + w:.1f},{y - r:.1f} "
            f"L{x + w:.1f},{baseline:.1f} Z"
        )
    return f'<path d="{d}" fill="var(--series-{series_index + 1})">'


def _x_category_labels(
    categories: Sequence[object], left: float, band: float, bottom: float
) -> str:
    step = max(1, math.ceil(len(categories) / 12))
    parts = []
    for ci, cat in enumerate(categories):
        if ci % step:
            continue
        x = left + band * ci + band / 2
        parts.append(
            f'<text class="viz-tick" x="{x:.1f}" y="{bottom + 16:.1f}" '
            f'text-anchor="middle">{esc(cat)}</text>'
        )
    return "".join(parts)


def _dropped_note(n_dropped: int, right: float, top: float) -> str:
    if not n_dropped:
        return ""
    return (
        f'<text class="viz-label" x="{right:.1f}" y="{top - 4:.1f}" '
        f'text-anchor="end">(+{n_dropped} series omitted — '
        f"narrow the grouping)</text>"
    )


def line_chart(
    x_values: Sequence[object],
    series: Sequence[Series],
    title: Optional[str] = None,
    width: int = 640,
    height: int = 300,
    embed_style: bool = True,
    x_label: Optional[str] = None,
) -> str:
    """A multi-series line chart over ordered x positions.

    Numeric ``x_values`` are placed proportionally; non-numeric ones
    fall back to even spacing.  Markers carry a 2px surface ring and a
    native tooltip; dense series (> 16 points) mark endpoints only.
    """
    series, n_dropped = _clean(series)
    if not x_values or not series:
        return _empty(width, height, title, embed_style)

    left, right = 56.0, width - 20.0
    top = 30.0 if title else 14.0
    bottom = height - (46.0 if len(series) > 1 else 34.0)
    ticks, lo, scale = _y_scale(series, top, bottom)
    body = [_grid_and_yticks(ticks, lo, scale, left, right, bottom)]

    numeric = all(isinstance(x, (int, float)) for x in x_values)
    if numeric and len(x_values) > 1:
        x_lo, x_hi = float(min(x_values)), float(max(x_values))
        x_span = (x_hi - x_lo) or 1.0
        xs = [
            left + (float(x) - x_lo) / x_span * (right - left)
            for x in x_values
        ]
    else:
        band = (right - left) / max(1, len(x_values) - 1 or 1)
        xs = [left + band * i for i in range(len(x_values))]

    mark_all = len(x_values) <= 16
    for si, (name, vals) in enumerate(series):
        points = [
            (xs[i], bottom - (v - lo) * scale, x_values[i], v)
            for i, v in enumerate(vals[: len(xs)])
            if v is not None and math.isfinite(v)
        ]
        if not points:
            continue
        path = " ".join(
            f"{'M' if i == 0 else 'L'}{px:.1f},{py:.1f}"
            for i, (px, py, _x, _v) in enumerate(points)
        )
        body.append(
            f'<path d="{path}" fill="none" '
            f'stroke="var(--series-{si + 1})" stroke-width="2" '
            f'stroke-linejoin="round" stroke-linecap="round"/>'
        )
        marked = points if mark_all else [points[0], points[-1]]
        for px, py, xv, v in marked:
            body.append(
                f'<circle cx="{px:.1f}" cy="{py:.1f}" r="4" '
                f'fill="var(--series-{si + 1})" '
                f'stroke="var(--surface-1)" stroke-width="2">'
                f"<title>{esc(name + ' · ' if name else '')}"
                f"{esc(xv)}: {fmt_value(v)}</title></circle>"
            )

    body.append(
        f'<line class="viz-axis" x1="{left:.1f}" y1="{bottom:.1f}" '
        f'x2="{right:.1f}" y2="{bottom:.1f}"/>'
    )
    step = max(1, math.ceil(len(x_values) / 12))
    for i, xv in enumerate(x_values):
        if i % step:
            continue
        body.append(
            f'<text class="viz-tick" x="{xs[i]:.1f}" '
            f'y="{bottom + 16:.1f}" text-anchor="middle">{esc(xv)}</text>'
        )
    if x_label:
        body.append(
            f'<text class="viz-label" x="{(left + right) / 2:.1f}" '
            f'y="{bottom + 30:.1f}" text-anchor="middle">'
            f"{esc(x_label)}</text>"
        )
    body.append(_legend(series, left, height - 8))
    body.append(_dropped_note(n_dropped, right, top))
    return _frame(width, height, "".join(body), title, embed_style)
