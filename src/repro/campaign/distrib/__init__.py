"""Distributed campaign execution: leases, worker fleets, shard merging.

The campaign store is content-addressed and append-only, so scaling a
grid beyond one process pool needs only three more pieces, all plain
files under the campaign directory (shareable over NFS or rsync):

* :mod:`repro.campaign.distrib.lease` — ``leases/<key>.json`` claim
  files with owner, TTL, and heartbeat; any number of workers partition
  the grid without a coordinator, and a dead worker's cells are
  reclaimed after its lease expires;
* :mod:`repro.campaign.distrib.worker` — :func:`run_worker` claims
  missing cells, executes them via the same :func:`execute_cell` the
  pool uses, and appends to a private ``shards/<name>.jsonl``;
* :mod:`repro.campaign.distrib.merge` — :func:`merge_shards` folds
  shards into ``results.jsonl`` idempotently (content-address dedupe,
  ok-beats-error);
* :mod:`repro.campaign.distrib.backend` — launch a worker fleet as
  local subprocesses or over SSH, wait, and merge
  (:func:`run_fleet`).

CLI: ``repro-hybrid campaign worker|fleet|merge``.

Failure model: leases give at-most-once execution while owners
heartbeat, and at-least-once overall (a worker that stalls a full TTL
may be evicted and its cell re-run).  Duplicated execution is always
harmless — cells are deterministic and the merge dedupes by content
address — so correctness of the merged results never depends on the
lease protocol, only efficiency does.
"""

from repro.campaign.distrib.backend import (
    FleetResult,
    LocalSubprocessBackend,
    SSHBackend,
    run_fleet,
)
from repro.campaign.distrib.lease import Lease, LeaseBoard
from repro.campaign.distrib.merge import MergeStats, merge_shards
from repro.campaign.distrib.worker import WorkerSummary, known_keys, run_worker

__all__ = [
    "FleetResult",
    "Lease",
    "LeaseBoard",
    "LocalSubprocessBackend",
    "MergeStats",
    "SSHBackend",
    "WorkerSummary",
    "known_keys",
    "merge_shards",
    "run_fleet",
    "run_worker",
]
