"""Fold worker shards into the campaign's merged ``results.jsonl``.

The merge is a pure fold over append-only inputs, so it is safe to run
at any time — mid-fleet for a progress snapshot, after the fleet, or
repeatedly (re-merging is a no-op).  Rules, applied shard-by-shard in
sorted name order for determinism:

* a key not yet in ``results.jsonl`` is appended (**new**);
* an ``ok`` record supersedes a stored ``error`` for the same key
  (**upgraded** — a cell that failed on one worker and later succeeded
  elsewhere, e.g. after an OOM kill, heals on merge);
* everything else is a **duplicate** and is skipped, which is what
  makes the merge idempotent and makes conflicting shards (two workers
  that both executed a cell during a lease-expiry race) harmless —
  cells are deterministic, so the copies agree anyway.

Shard files are left in place: they are history, and re-merging them
costs nothing.  Lease files for merged cells are pruned.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

from repro.campaign.distrib.lease import LeaseBoard
from repro.campaign.store import SHARDS_DIR, ResultStore, iter_jsonl_records


@dataclass(frozen=True)
class MergeStats:
    """What one :func:`merge_shards` pass did."""

    n_shards: int
    n_shard_records: int
    n_new: int
    n_upgraded: int
    n_duplicate: int
    n_leases_pruned: int

    @property
    def changed(self) -> bool:
        return bool(self.n_new or self.n_upgraded)


def merge_shards(
    directory: str,
    prune_leases: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> MergeStats:
    """Merge every ``shards/*.jsonl`` into ``<directory>/results.jsonl``."""
    say = progress or (lambda _msg: None)
    directory_p = Path(directory)
    store = ResultStore(directory_p)
    shards_dir = directory_p / SHARDS_DIR
    shard_paths = (
        sorted(shards_dir.glob("*.jsonl")) if shards_dir.exists() else []
    )
    n_records = n_new = n_upgraded = n_duplicate = 0
    for path in shard_paths:
        for record in iter_jsonl_records(path):
            n_records += 1
            existing = store.get(record.key)
            if existing is None:
                store.put(record)
                n_new += 1
            elif not existing.ok and record.ok:
                store.put(record)
                n_upgraded += 1
            else:
                n_duplicate += 1
    n_pruned = 0
    if prune_leases:
        board = LeaseBoard(directory_p)
        n_pruned = board.prune(store.keys())
    stats = MergeStats(
        n_shards=len(shard_paths),
        n_shard_records=n_records,
        n_new=n_new,
        n_upgraded=n_upgraded,
        n_duplicate=n_duplicate,
        n_leases_pruned=n_pruned,
    )
    say(
        f"merged {stats.n_shards} shards: {stats.n_new} new, "
        f"{stats.n_upgraded} upgraded, {stats.n_duplicate} duplicate, "
        f"{stats.n_leases_pruned} leases pruned"
    )
    return stats
