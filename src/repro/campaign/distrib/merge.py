"""Fold worker shards into the campaign's merged ``results.jsonl``.

The merge is a pure fold over append-only inputs, so it is safe to run
at any time — mid-fleet for a progress snapshot, after the fleet, or
repeatedly (re-merging is a no-op).  It runs through the campaign's
:class:`~repro.campaign.progress.ProgressIndex`, so one pass examines
only the shard records appended since the previous pass — O(new bytes),
not O(everything merged so far) — and a warm re-merge reads nothing at
all.  Rules, applied in scan order (shards sorted by name, records in
append order) for determinism:

* a key not yet in ``results.jsonl`` is appended (**new**);
* an ``ok`` record supersedes a stored ``error`` for the same key
  (**upgraded** — a cell that failed on one worker and later succeeded
  elsewhere, e.g. after an OOM kill, heals on merge);
* everything else is a **duplicate** and is skipped, which is what
  makes the merge idempotent and makes conflicting shards (two workers
  that both executed a cell during a lease-expiry race) harmless —
  cells are deterministic, so the copies agree anyway.

Shard files are left in place: they are history, and re-merging them
costs nothing.  Lease files for merged cells are pruned.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.campaign.distrib.lease import LeaseBoard
from repro.campaign.progress import ProgressIndex
from repro.campaign.store import SHARDS_DIR, CellRecord
from repro.obs import get_obs


@dataclass(frozen=True)
class MergeStats:
    """What one :func:`merge_shards` pass did.

    ``n_shard_records`` counts the shard records *examined* this pass —
    with a warm index that is only what was appended since the last
    merge, so a no-op re-merge reports zero.
    """

    n_shards: int
    n_shard_records: int
    n_new: int
    n_upgraded: int
    n_duplicate: int
    n_leases_pruned: int

    @property
    def changed(self) -> bool:
        return bool(self.n_new or self.n_upgraded)


def merge_shards(
    directory: str,
    prune_leases: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    index: Optional[ProgressIndex] = None,
) -> MergeStats:
    """Merge every ``shards/*.jsonl`` into ``<directory>/results.jsonl``.

    The merge keeps its own index, ``index/merge.json`` — *not* the
    ``progress`` index the workers and the status dashboard share.  An
    index's offsets record what *its* consumer has processed; the
    worker loop consuming a shard append for completion accounting must
    not mark it merged.  Pass a held *index* (the fleet launcher does,
    across its pre- and post-fleet merges) to reuse in-memory scan
    state; otherwise the persisted file is loaded, so independent
    ``campaign merge`` invocations stay incremental too.
    """
    say = progress or (lambda _msg: None)
    obs = get_obs()
    with obs.span("distrib.merge.pass"), \
            obs.memory.section("distrib.merge.pass"):
        stats = _merge_shards_inner(directory, prune_leases, index)
    obs.counter("distrib.merge.records.new").inc(stats.n_new)
    obs.counter("distrib.merge.records.duplicate").inc(stats.n_duplicate)
    say(
        f"merged {stats.n_shards} shards: {stats.n_new} new, "
        f"{stats.n_upgraded} upgraded, {stats.n_duplicate} duplicate, "
        f"{stats.n_leases_pruned} leases pruned"
    )
    return stats


def _merge_shards_inner(
    directory: str,
    prune_leases: bool,
    index: Optional[ProgressIndex],
) -> MergeStats:
    directory_p = Path(directory)
    idx = (
        index
        if index is not None
        else ProgressIndex(directory_p, name="merge", autosave=False)
    )
    shard_prefix = SHARDS_DIR + "/"
    results_path = directory_p / idx.results_file

    # Autosave stays off for the whole pass: a refresh must never
    # persist shard offsets before the records behind them are durably
    # appended to results.jsonl — a kill in that window would mark them
    # merged without merging them.  The explicit save below happens
    # only after the appends are fsynced (a crash before it just means
    # the next pass re-examines and dedupes).
    autosave_prev, idx.autosave = idx.autosave, False
    n_shard_records = n_new = n_upgraded = n_duplicate = 0
    merged: Optional[Dict[str, str]] = None
    dirty = False
    try:
        # Loop until quiescent: each refresh consumes our own results
        # appends AND any shard records workers appended while we were
        # merging (the docstring blesses mid-fleet merges) — a record
        # the index consumes must be processed, or it would be marked
        # merged without ever landing in results.jsonl.
        while True:
            batch: List[Tuple[str, CellRecord]] = []

            def _collect(rel: str, record: CellRecord) -> None:
                if rel.startswith(shard_prefix):
                    batch.append((rel, record))

            stats = idx.refresh(on_record=_collect)
            dirty = dirty or bool(
                stats.n_new_records or stats.n_rescans or stats.n_dropped
            )
            if merged is None:
                # the merged file's current key → status, per the index
                # (file-local last-write-wins, how a reload replays it)
                results_state = idx.results_state()
                merged = (
                    dict(results_state.keys)
                    if results_state is not None
                    else {}
                )
            if not batch:
                break
            n_shard_records += len(batch)
            to_append: List[CellRecord] = []
            for _rel, record in batch:
                current = merged.get(record.key)
                if current is None:
                    merged[record.key] = record.status
                    to_append.append(record)
                    n_new += 1
                elif current != "ok" and record.ok:
                    merged[record.key] = "ok"
                    to_append.append(record)
                    n_upgraded += 1
                else:
                    n_duplicate += 1
            if to_append:
                results_path.parent.mkdir(parents=True, exist_ok=True)
                with results_path.open("a", encoding="utf-8") as fh:
                    for record in to_append:
                        fh.write(record.to_json() + "\n")
                    fh.flush()
                    os.fsync(fh.fileno())
        if dirty:
            # persist only when something was consumed (a warm no-op
            # pass must not pay the O(key-map) serialization), and only
            # now that every consumed record is durable in results.jsonl
            idx.save()
    finally:
        idx.autosave = autosave_prev

    n_pruned = 0
    if prune_leases:
        board = LeaseBoard(directory_p)
        n_pruned = board.prune(merged or {})
    return MergeStats(
        n_shards=len(idx.shard_states()),
        n_shard_records=n_shard_records,
        n_new=n_new,
        n_upgraded=n_upgraded,
        n_duplicate=n_duplicate,
        n_leases_pruned=n_pruned,
    )
