"""Worker-fleet backends: spawn N workers locally or over SSH.

A backend only knows how to *launch* workers against a campaign
directory and wait for them; all coordination happens through the
directory itself (leases + shards), so backends stay tiny and the two
shipped here — local subprocesses and SSH — cover a laptop, one fat
node, and any cluster with a shared filesystem.  For disjoint
filesystems, rsync the campaign directory out, run workers with the
SSH backend against per-host copies, rsync the ``shards/`` files back,
and ``campaign merge`` — the merge is idempotent and shard files never
conflict (each worker owns its own).

:func:`run_fleet` is the orchestrator: write the spec, launch, wait,
merge, and assemble the same :class:`CampaignRunResult` a single
process would have produced.
"""

from __future__ import annotations

import os
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence

from repro.campaign.distrib.merge import MergeStats, merge_shards
from repro.campaign.progress import IndexKeyView, ProgressIndex
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.util.errors import ConfigurationError

LOGS_DIR = "logs"
TRACES_DIR = "traces"

#: the worker CLI module; ``python -m`` keeps the invocation independent
#: of whether the package was pip-installed (console script) or is on
#: PYTHONPATH (source checkout)
WORKER_MODULE = "repro.experiments.cli"


def _worker_args(
    directory: str,
    shard: str,
    ttl_s: float,
    poll_s: float,
    trace: bool = False,
    claim_batch: int = 1,
) -> List[str]:
    args = [
        "campaign",
        "worker",
        "--dir",
        str(directory),
        "--shard",
        shard,
        "--ttl",
        str(ttl_s),
        "--poll",
        str(poll_s),
    ]
    if claim_batch > 1:
        args += ["--claim-batch", str(claim_batch)]
    if trace:
        # per-worker trace under the campaign dir (a path every host of
        # a shared-filesystem fleet can write); the launcher merges them
        args += [
            "--trace",
            str(Path(directory) / TRACES_DIR / f"{shard}.trace.json"),
        ]
    return args


@dataclass
class WorkerHandle:
    """One launched worker process (local or ssh wrapper)."""

    shard: str
    proc: subprocess.Popen
    description: str

    def wait(self, timeout: Optional[float] = None) -> int:
        return self.proc.wait(timeout=timeout)


class LocalSubprocessBackend:
    """Spawn N workers on this machine as ``python -m`` subprocesses.

    Worker stdout/stderr goes to ``<campaign dir>/logs/<shard>.log`` so
    a wedged fleet is debuggable after the fact.
    """

    name = "local"

    def __init__(
        self, workers: int = 2, python: Optional[str] = None
    ) -> None:
        if workers <= 0:
            raise ConfigurationError("fleet needs at least one worker")
        self.workers = workers
        self.python = python or sys.executable

    def launch(
        self,
        directory: str,
        ttl_s: float,
        poll_s: float,
        shard_prefix: str = "local",
        trace: bool = False,
        claim_batch: int = 1,
    ) -> List[WorkerHandle]:
        env = dict(os.environ)
        # make `repro` importable in the child no matter how the parent
        # found it (installed, src/ checkout, pytest path munging)
        import repro

        pkg_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (pkg_root, env.get("PYTHONPATH")) if p
        )
        logs = Path(directory) / LOGS_DIR
        logs.mkdir(parents=True, exist_ok=True)
        handles = []
        for i in range(self.workers):
            shard = f"{shard_prefix}-{i}"
            cmd = [
                self.python,
                "-m",
                WORKER_MODULE,
                *_worker_args(
                    directory, shard, ttl_s, poll_s, trace, claim_batch
                ),
            ]
            log = (logs / f"{shard}.log").open("w", encoding="utf-8")
            proc = subprocess.Popen(
                cmd, stdout=log, stderr=subprocess.STDOUT, env=env
            )
            log.close()  # Popen holds its own reference via the fd
            handles.append(
                WorkerHandle(
                    shard=shard, proc=proc, description=" ".join(cmd)
                )
            )
        return handles


class SSHBackend:
    """Run one worker per host over SSH against a shared filesystem.

    *remote_dir* names the campaign directory as seen from the remote
    hosts (defaults to the local path — correct for NFS-style mounts);
    *pythonpath* is prepended remotely so a source checkout works
    without installation.
    """

    name = "ssh"

    def __init__(
        self,
        hosts: Sequence[str],
        python: str = "python3",
        remote_dir: Optional[str] = None,
        pythonpath: Optional[str] = None,
        ssh: Sequence[str] = ("ssh", "-o", "BatchMode=yes"),
    ) -> None:
        if not hosts:
            raise ConfigurationError("ssh backend needs at least one host")
        self.hosts = list(hosts)
        self.python = python
        self.remote_dir = remote_dir
        self.pythonpath = pythonpath
        self.ssh = list(ssh)

    def command(
        self,
        host: str,
        shard: str,
        directory: str,
        ttl_s: float,
        poll_s: float,
        trace: bool = False,
        claim_batch: int = 1,
    ) -> List[str]:
        """The full ssh argv for one worker (exposed for testing)."""
        remote = self.remote_dir or str(directory)
        worker = [
            self.python,
            "-m",
            WORKER_MODULE,
            *_worker_args(remote, shard, ttl_s, poll_s, trace, claim_batch),
        ]
        if self.pythonpath:
            worker = ["env", f"PYTHONPATH={self.pythonpath}", *worker]
        return [*self.ssh, host, " ".join(worker)]

    def launch(
        self,
        directory: str,
        ttl_s: float,
        poll_s: float,
        shard_prefix: str = "ssh",
        trace: bool = False,
        claim_batch: int = 1,
    ) -> List[WorkerHandle]:
        logs = Path(directory) / LOGS_DIR
        logs.mkdir(parents=True, exist_ok=True)
        handles = []
        for i, host in enumerate(self.hosts):
            # hostname in the shard name: which machine produced which
            # records survives into the shards/ listing
            shard = f"{shard_prefix}-{host}-{i}"
            cmd = self.command(
                host, shard, directory, ttl_s, poll_s, trace, claim_batch
            )
            log = (logs / f"{shard}.log").open("w", encoding="utf-8")
            proc = subprocess.Popen(
                cmd, stdout=log, stderr=subprocess.STDOUT
            )
            log.close()
            handles.append(
                WorkerHandle(
                    shard=shard, proc=proc, description=" ".join(cmd)
                )
            )
        return handles


@dataclass(frozen=True)
class FleetResult:
    """Outcome of one :func:`run_fleet` invocation."""

    #: the assembled campaign outcome, identical in shape to a
    #: single-process ``run_campaign``
    run: "CampaignRunResult"
    merge: MergeStats
    #: worker exit codes by shard name
    exit_codes: dict

    @property
    def ok(self) -> bool:
        return self.run.n_failed == 0 and all(
            code == 0 for code in self.exit_codes.values()
        )


def run_fleet(
    spec: CampaignSpec,
    directory: str,
    backend,
    ttl_s: float = 60.0,
    poll_s: float = 1.0,
    allow_spec_update: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    trace: bool = False,
    claim_batch: int = 1,
) -> FleetResult:
    """Execute a campaign with a worker fleet: spec → launch → wait →
    merge → collect.

    The campaign directory is the only channel between this process and
    the workers; killing the fleet and re-running :func:`run_fleet` (or
    a plain ``campaign run``) resumes from whatever the shards hold.
    ``claim_batch > 1`` has every worker claim that many leases per
    round (``campaign worker --claim-batch``).
    """
    from repro.campaign.executor import (
        CampaignRunResult,
        collect_records,
        plan_campaign,
    )

    say = progress or (lambda _msg: None)
    # one merge index serves the whole fleet pass: the pre-merge, the
    # plan's cache accounting, and the final merge all reuse its scan
    # state (the workers share the separate 'progress' index for their
    # completion scans).  autosave off — merge_shards persists it only
    # once its appends are durable
    index = ProgressIndex(directory, name="merge", autosave=False)
    ResultStore(directory, load=False).write_spec(
        spec.to_dict(), overwrite=allow_spec_update
    )
    # fold in shards a previous (killed) fleet left behind, so the plan
    # counts them as cached instead of re-reporting them as work
    pre_merge = merge_shards(directory, progress=None, index=index)
    if pre_merge.changed:
        say(
            f"recovered {pre_merge.n_new + pre_merge.n_upgraded} unmerged "
            "shard records from a previous fleet"
        )
    # plan before launching only to report cache hits (key sets straight
    # from the index — no record bodies); workers re-plan against live
    # state themselves
    plan = plan_campaign(spec, IndexKeyView(index))
    say(
        f"fleet for campaign {spec.name!r}: {plan.n_total} cells "
        f"({plan.n_cached} cached, {len(plan.todo)} to run) via "
        f"{backend.name} backend"
    )
    # non-default keywords only when asked for: custom test backends
    # without the trace/claim_batch parameters keep working otherwise
    extra = {}
    if trace:
        extra["trace"] = True
    if claim_batch > 1:
        extra["claim_batch"] = claim_batch
    handles = backend.launch(
        str(directory), ttl_s=ttl_s, poll_s=poll_s, **extra
    )
    for handle in handles:
        say(f"  launched {handle.shard}: {handle.description}")
    exit_codes = {h.shard: h.wait() for h in handles}
    for shard, code in exit_codes.items():
        if code != 0:
            say(f"  worker {shard} exited with {code} (see logs/)")
    merge = merge_shards(directory, progress=progress, index=index)
    final_store = ResultStore(directory)
    try:
        records = collect_records(spec, final_store)
    except RuntimeError as exc:
        raise RuntimeError(
            f"{exc}; worker exit codes: {exit_codes} "
            f"(worker output under {Path(directory) / LOGS_DIR})"
        ) from None
    run = CampaignRunResult(
        spec=spec,
        records=records,
        n_total=plan.n_total,
        n_cached=plan.n_cached,
        # todo excludes stored error records and cached ok cells alike,
        # matching run_campaign's accounting
        n_ran=len(plan.todo),
        n_failed=sum(1 for r in records if not r.ok),
    )
    return FleetResult(run=run, merge=merge, exit_codes=exit_codes)
