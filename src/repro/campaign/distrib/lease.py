"""Cell lease protocol: exclusive claims over a shared directory.

One lease is one JSON file, ``leases/<cell key>.json``, holding the
owner id, acquisition time, last heartbeat, and TTL.  The protocol uses
only operations that are atomic on POSIX filesystems (and close enough
on NFS with close-to-open consistency):

* **acquire** — ``open(O_CREAT | O_EXCL)``: exactly one contender
  creates the file;
* **heartbeat** — rewrite via temp file + ``os.replace`` after
  verifying ownership;
* **release** — verify ownership, then unlink;
* **evict** — a lease whose heartbeat is older than its TTL is renamed
  aside (``os.rename`` — again, one contender wins), then the winner
  re-enters the normal ``acquire`` race.

Guarantees, stated precisely: while an owner heartbeats at least once
per TTL, no other worker can claim its cell (at-most-once execution).
An owner that stalls for a full TTL — SIGKILL, network partition,
laptop sleep — loses the lease; its cell re-runs elsewhere, and if the
stalled owner *also* finishes, the duplicate record is deduped at merge
time by content address.  Safety of the merged results therefore never
rests on the lease protocol; it only prevents wasted compute.

Clocks: expiry compares one worker's ``time.time()`` against another's
heartbeat timestamp, so multi-host fleets assume wall clocks agree to
well within the TTL (NTP easily does; pick TTLs in minutes, not
milliseconds).
"""

from __future__ import annotations

import json
import os
import socket
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, List, Optional

from repro.obs import get_obs

LEASES_DIR = "leases"

#: sentinel distinguishing "file exists but is unparsable" (a contender
#: crashed mid-create) from "file is gone"; corrupt leases are evictable
#: immediately — they can never heartbeat
_CORRUPT = object()


def default_owner() -> str:
    """A globally unique worker identity: host, pid, and a random tag."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:8]}"


@dataclass(frozen=True)
class Lease:
    """The parsed content of one lease file."""

    key: str
    owner: str
    acquired_at: float
    heartbeat_at: float
    ttl_s: float

    def expired(self, now: float) -> bool:
        return now - self.heartbeat_at > self.ttl_s

    def age_s(self, now: float) -> float:
        return now - self.heartbeat_at

    def to_json(self) -> str:
        return json.dumps(
            {
                "key": self.key,
                "owner": self.owner,
                "acquired_at": self.acquired_at,
                "heartbeat_at": self.heartbeat_at,
                "ttl_s": self.ttl_s,
            },
            sort_keys=True,
        )

    @staticmethod
    def from_json(text: str) -> "Lease":
        data = json.loads(text)
        return Lease(
            key=str(data["key"]),
            owner=str(data["owner"]),
            acquired_at=float(data["acquired_at"]),
            heartbeat_at=float(data["heartbeat_at"]),
            ttl_s=float(data["ttl_s"]),
        )


class LeaseBoard:
    """All lease operations of one worker against one campaign directory.

    *clock* is injectable so expiry is testable without sleeping.
    """

    def __init__(
        self,
        directory: os.PathLike,
        owner: Optional[str] = None,
        ttl_s: float = 60.0,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.directory = Path(directory) / LEASES_DIR
        self.owner = owner or default_owner()
        self.ttl_s = float(ttl_s)
        self.clock = clock
        obs = get_obs()
        self._c_acquired = obs.counter("distrib.lease.acquired")
        self._c_renewals = obs.counter("distrib.lease.renewals")
        self._c_lost = obs.counter("distrib.lease.lost")
        self._c_stale_evicted = obs.counter("distrib.lease.stale_evicted")

    def path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _read(self, path: Path):
        """The current :class:`Lease`, ``None`` if absent, or ``_CORRUPT``."""
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError:
            return _CORRUPT
        try:
            return Lease.from_json(text)
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            return _CORRUPT

    # --- protocol ----------------------------------------------------------
    def acquire(self, key: str) -> bool:
        """Claim *key*; True iff this board now holds a fresh lease.

        An existing lease blocks the claim unless it is expired or
        corrupt, in which case one contender evicts it (atomic rename)
        and everyone re-races the O_EXCL create.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path(key)
        if not self._try_create(path, key):
            current = self._read(path)
            if isinstance(current, Lease) and not current.expired(
                self.clock()
            ):
                return False
            if current is None:
                # released between our create attempt and read: re-race
                won = self._try_create(path, key)
            else:
                self._evict(path)
                self._c_stale_evicted.inc()
                won = self._try_create(path, key)
            if won:
                self._c_acquired.inc()
            return won
        self._c_acquired.inc()
        return True

    def _try_create(self, path: Path, key: str) -> bool:
        now = self.clock()
        lease = Lease(
            key=key,
            owner=self.owner,
            acquired_at=now,
            heartbeat_at=now,
            ttl_s=self.ttl_s,
        )
        # stage the full content, then publish with os.link: the lease
        # file appears atomically *with* its content (an O_EXCL create
        # followed by a write would expose a momentarily-empty lease,
        # which a contender could misread as corrupt and evict); link
        # also fails-if-exists atomically even over NFS
        tmp = path.with_name(f"{path.name}.new-{uuid.uuid4().hex[:8]}")
        with tmp.open("w", encoding="utf-8") as fh:
            fh.write(lease.to_json() + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        try:
            os.link(tmp, path)
        except FileExistsError:
            return False
        except FileNotFoundError:
            # the staged temp vanished (an over-eager cleaner); treat as
            # a lost race rather than crashing the worker
            return False
        finally:
            try:
                os.unlink(tmp)
            except FileNotFoundError:
                pass
        return True

    def _evict(self, path: Path) -> None:
        """Move an expired/corrupt lease aside; losing the rename race
        just means some other contender already evicted it.

        The rename may catch a *fresh* lease instead of the expired one
        we observed — another contender can evict and re-acquire between
        our read and our rename.  Re-reading the renamed file closes
        that window: a live lease is restored (``os.link`` refuses to
        clobber anyone who claimed the path meanwhile), so a correctly
        heartbeating owner is never evicted by a slow contender.
        """
        tomb = path.with_name(
            f"{path.name}.evicted-{uuid.uuid4().hex[:8]}"
        )
        try:
            os.rename(path, tomb)
        except FileNotFoundError:
            return
        current = self._read(tomb)
        if isinstance(current, Lease) and not current.expired(self.clock()):
            try:
                os.link(tomb, path)
            except FileExistsError:  # pragma: no cover - triple race
                # a third contender already created a new lease; the
                # restored owner detects the loss at its next heartbeat
                pass
        try:
            os.unlink(tomb)
        except FileNotFoundError:  # pragma: no cover - tomb name is unique
            pass

    def heartbeat(self, key: str) -> bool:
        """Refresh this owner's lease; False means the lease was lost
        (evicted after a stall) and the caller no longer holds the cell."""
        path = self.path(key)
        current = self._read(path)
        if not isinstance(current, Lease) or current.owner != self.owner:
            self._c_lost.inc()
            return False
        refreshed = Lease(
            key=current.key,
            owner=current.owner,
            acquired_at=current.acquired_at,
            heartbeat_at=self.clock(),
            ttl_s=self.ttl_s,
        )
        tmp = path.with_name(
            f"{path.name}.hb-{uuid.uuid4().hex[:8]}"
        )
        try:
            tmp.write_text(refreshed.to_json() + "\n", encoding="utf-8")
            os.replace(tmp, path)
        except FileNotFoundError:
            # temp swept from under us: report the lease as lost — the
            # worker keeps computing and the merge dedupes if needed
            self._c_lost.inc()
            return False
        self._c_renewals.inc()
        return True

    def release(self, key: str) -> bool:
        """Drop this owner's lease; False if it was already lost."""
        path = self.path(key)
        current = self._read(path)
        if not isinstance(current, Lease) or current.owner != self.owner:
            return False
        try:
            os.unlink(path)
        except FileNotFoundError:  # pragma: no cover - benign race
            pass
        return True

    # --- inspection / maintenance ------------------------------------------
    def active(self) -> List[Lease]:
        """Parsable leases currently on disk (any owner), sorted by key."""
        if not self.directory.exists():
            return []
        leases = []
        for path in sorted(self.directory.glob("*.json")):
            current = self._read(path)
            if isinstance(current, Lease):
                leases.append(current)
        return leases

    def prune(self, completed_keys: Iterable[str]) -> int:
        """Remove leases for already-completed cells plus eviction debris.

        Called by the merge step: once a cell's record is in the merged
        store, any lease on it — even a live one held by a straggler
        re-running a duplicate — is pointless.
        """
        removed = 0
        completed = set(completed_keys)
        if not self.directory.exists():
            return 0
        for path in self.directory.iterdir():
            if any(
                tag in path.name
                for tag in (".evicted-", ".hb-", ".new-")
            ):
                # debris from a contender killed mid-evict/heartbeat/
                # create — but a temp may also be in flight *right now*
                # (between open and link/replace it reads as torn), so
                # only age past a full TTL marks it dead
                try:
                    age_s = self.clock() - path.stat().st_mtime
                except OSError:
                    continue
                if age_s <= self.ttl_s:
                    continue
            elif path.suffix == ".json":
                if path.stem not in completed:
                    continue
            else:
                continue
            try:
                os.unlink(path)
                removed += 1
            except FileNotFoundError:  # pragma: no cover - benign race
                pass
        return removed
