"""The distributed campaign worker: claim → execute → append → release.

A worker is pointed at a campaign directory that already holds
``campaign.json`` (the fleet launcher — or a plain ``campaign run`` —
writes it).  It expands the spec exactly like the in-process executor,
then loops:

1. refresh the shared :class:`~repro.campaign.progress.ProgressIndex`
   — an O(appended-bytes) scan of ``results.jsonl`` plus every
   ``shards/*.jsonl`` — for cells that already have a record anywhere
   (merged or not);
2. for each missing cell, in deterministic expansion order, try to
   acquire its lease; on success re-check completion (a cell finished
   and released by another worker between our scan and the acquire must
   not re-run), then execute it with a background heartbeat thread and
   append the record to this worker's private shard;
3. when nothing is claimable: if the grid is complete, exit; otherwise
   some cells are leased by other workers — sleep and rescan, so a
   worker that died mid-cell is covered once its lease expires.

The happens-before chain that prevents double execution: a finishing
worker flushes its shard append *before* releasing the lease, and a
successful acquire happens *after* that release — so the post-acquire
completion scan always sees the record.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Set, Tuple

from repro.campaign.distrib.lease import LeaseBoard
from repro.campaign.progress import ProgressIndex
from repro.obs import get_obs
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import (
    SHARDS_DIR,
    SPEC_FILE,
    ResultStore,
)
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class WorkerSummary:
    """What one :func:`run_worker` invocation did."""

    shard: str
    owner: str
    n_executed: int
    n_failed: int
    n_passes: int
    elapsed_s: float


def shard_path(directory: Path, shard: str) -> Path:
    return Path(directory) / SHARDS_DIR / f"{shard}.jsonl"


def known_keys(
    directory: Path, index: Optional[ProgressIndex] = None
) -> Set[str]:
    """Keys with a record anywhere: merged results or any shard.

    Error records count — failures are remembered, not retried, exactly
    like the in-process executor; ``--retry-failed`` is the explicit
    path back.  Scans go through the shared progress index, so a warm
    call costs O(bytes appended since the last one); pass a held
    *index* to reuse in-memory state instead of reloading the
    persisted file.
    """
    if index is None:
        index = ProgressIndex(Path(directory))
    index.refresh()
    return index.keys()


def load_spec(directory: Path) -> CampaignSpec:
    path = Path(directory) / SPEC_FILE
    if not path.exists():
        raise ConfigurationError(
            f"{path} not found — a worker needs a campaign directory with "
            "a written spec ('campaign fleet', or 'campaign run' first)"
        )
    return CampaignSpec.from_dict(json.loads(path.read_text("utf-8")))


def run_worker(
    directory: str,
    shard: str,
    ttl_s: float = 60.0,
    poll_s: float = 1.0,
    owner: Optional[str] = None,
    max_cells: Optional[int] = None,
    wait: bool = True,
    heartbeat_interval_s: Optional[float] = None,
    progress: Optional[Callable[[str], None]] = None,
    clock: Callable[[], float] = time.time,
    claim_batch: int = 1,
) -> WorkerSummary:
    """Work a campaign directory until the grid is complete.

    Parameters
    ----------
    shard:
        Name of this worker's private result file,
        ``shards/<shard>.jsonl``.  Two concurrent workers must not share
        a shard name (appends would interleave); the fleet launcher
        numbers them.
    ttl_s / poll_s:
        Lease time-to-live, and the rescan interval while all missing
        cells are leased by other (possibly dead) workers.
    max_cells:
        Execute at most this many cells, then return (spot-instance
        friendly: drain a few cells per billing slot).
    wait:
        ``False`` returns as soon as nothing is claimable instead of
        waiting for other workers' leases to resolve.
    heartbeat_interval_s:
        Defaults to ``ttl_s / 4`` so a live worker can miss two beats
        before anyone may evict it.
    claim_batch:
        Leases acquired per claim round (``--claim-batch``).  1 (the
        default) preserves the classic claim-one/run-one loop; larger
        values amortize the lease-board and completion-scan traffic
        over several cells — one heartbeat thread covers the whole
        group, and each cell is still appended to the shard and
        released individually the moment it finishes, so the
        at-most-once happens-before chain (append *before* release,
        re-check *after* acquire) is unchanged.
    """
    say = progress or (lambda _msg: None)
    start = time.perf_counter()
    directory_p = Path(directory)
    spec = load_spec(directory_p)
    cells = {}
    for cell in spec.expand():
        cells.setdefault(cell.key(), cell)
    # local import: executor imports this package's sibling for fleet
    # routing, so the heavy import stays off the lease/merge path
    from repro.campaign.executor import execute_cell

    shard_store = ResultStore(
        directory_p, results_file=f"{SHARDS_DIR}/{shard}.jsonl"
    )
    # all workers (and the fleet launcher, merge, and status) share one
    # persisted index, so every completion scan anywhere in the fleet
    # reads only bytes nobody has indexed yet
    index = ProgressIndex(directory_p)
    board = LeaseBoard(directory_p, owner=owner, ttl_s=ttl_s, clock=clock)
    hb_interval = heartbeat_interval_s or max(ttl_s / 4.0, 0.05)
    obs = get_obs()
    c_evictions = obs.counter("distrib.lease.evictions")

    n_executed = n_failed = n_passes = 0
    say(
        f"worker {board.owner} shard={shard}: "
        f"{len(cells)} cells in campaign {spec.name!r}"
    )
    while True:
        n_passes += 1
        done = known_keys(directory_p, index)
        pending = [(k, c) for k, c in cells.items() if k not in done]
        if not pending:
            break
        claimed_this_pass = 0
        it = iter(pending)
        exhausted = False
        while not exhausted:
            if max_cells is not None and n_executed >= max_cells:
                index.save()  # autosaves are throttled; exit fresh
                return WorkerSummary(
                    shard=shard,
                    owner=board.owner,
                    n_executed=n_executed,
                    n_failed=n_failed,
                    n_passes=n_passes,
                    elapsed_s=time.perf_counter() - start,
                )
            # Claim up to claim_batch leases before running any cell,
            # amortizing lease-board traffic over the group.
            budget = max(1, claim_batch)
            if max_cells is not None:
                budget = min(budget, max_cells - n_executed)
            group: List[Tuple[str, object]] = []
            for key, cell in it:
                if not board.acquire(key):
                    continue
                group.append((key, cell))
                if len(group) >= budget:
                    break
            else:
                exhausted = True
            if not group:
                break
            # One completion re-check covers the group.  It runs after
            # every acquire above, so the happens-before chain is the
            # same as the claim-one loop's: a cell finished elsewhere
            # flushed its record before releasing, and our acquire
            # happened after that release — the scan must see it.
            done_now = known_keys(directory_p, index)
            runnable = []
            for key, cell in group:
                if key in done_now:
                    # finished-and-released elsewhere after our pass began
                    board.release(key)
                else:
                    runnable.append((key, cell))
            if not runnable:
                continue
            claimed_this_pass += len(runnable)
            # one heartbeat thread covers every lease the group holds
            held = {k for k, _ in runnable}
            held_lock = threading.Lock()
            stop = threading.Event()
            beater = threading.Thread(
                target=_heartbeat_loop,
                args=(board, held, held_lock, stop, hb_interval, say),
                daemon=True,
            )
            beater.start()
            try:
                for key, cell in runnable:
                    record = None
                    try:
                        with obs.span("distrib.cell", key=key, shard=shard):
                            record = execute_cell(cell.config())
                        with obs.span("distrib.shard.append", key=key):
                            shard_store.put(record)
                    finally:
                        # The record append and the release both live in
                        # this finally: a worker that raises mid-cell
                        # (disk full on the shard append, a pathological
                        # config) must still drop its lease, or the cell
                        # stays locked for a full TTL and every peer
                        # stalls on it.  The happens-before contract
                        # holds per cell: the put above (when reached)
                        # precedes the release, and later cells' leases
                        # stay held (and heartbeaten) until their turn.
                        with held_lock:
                            held.discard(key)
                        if not board.release(key):
                            # the lease was evicted out from under us
                            # mid-cell (heartbeat stall past the TTL)
                            c_evictions.inc()
                    n_executed += 1
                    if not record.ok:
                        n_failed += 1
                    tag = "ok" if record.ok else "FAILED"
                    say(
                        f"  [{tag}] {key} shard={shard} "
                        f"({record.elapsed_s:.2f}s)"
                    )
            finally:
                stop.set()
                beater.join()
                # reached with leases still held only if a cell raised:
                # drop the rest of the group so peers can claim it
                with held_lock:
                    leftovers = sorted(held)
                    held.clear()
                for key in leftovers:
                    if not board.release(key):
                        c_evictions.inc()
        if claimed_this_pass == 0:
            if not wait:
                break
            # everything missing is leased out; a dead owner's lease
            # expires after ttl_s, so keep rescanning
            time.sleep(poll_s)
    index.save()  # autosaves are throttled; leave the index fresh
    return WorkerSummary(
        shard=shard,
        owner=board.owner,
        n_executed=n_executed,
        n_failed=n_failed,
        n_passes=n_passes,
        elapsed_s=time.perf_counter() - start,
    )


def _heartbeat_loop(
    board: LeaseBoard,
    held: Set[str],
    held_lock: threading.Lock,
    stop: threading.Event,
    interval_s: float,
    say: Callable[[str], None],
) -> None:
    """Beat every lease the worker currently holds (*held* shrinks as
    the claim group drains; the set is shared with the claim loop under
    *held_lock*)."""
    while not stop.wait(interval_s):
        with held_lock:
            keys = sorted(held)
        for key in keys:
            if not board.heartbeat(key):
                # lease lost (we stalled past the TTL and were evicted);
                # keep computing — the record is valid and merge dedupes
                say(f"  lease lost for {key}; finishing cell anyway")
                with held_lock:
                    held.discard(key)
