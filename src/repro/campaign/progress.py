"""Incremental campaign progress accounting and the live fleet dashboard.

Paper-scale grids (10k+ cells, many workers) die on quadratic scans:
every worker pass, every merge, and every ``campaign status`` re-reads
*all* of ``results.jsonl`` plus every ``shards/*.jsonl`` just to learn
which cells already have records, so the cost of a completion check
grows with everything finished so far instead of with what is new.

:class:`ProgressIndex` fixes that.  It remembers, per tracked file, the
byte offset up to which records have been folded in, the file's inode,
and the key→status map those records produced, and persists the whole
thing atomically as ``index/<name>.json`` under the campaign directory.
A refresh then:

* ``stat``\\ s each tracked file and reads **only bytes appended** past
  the remembered offset (a file whose size equals its offset is not
  even opened);
* never consumes a torn trailing line (a writer killed — or caught —
  mid-append): the offset stops at the last newline, so the fragment is
  re-examined next pass and parsed once its newline lands;
* falls back to a **full rescan of that file** when its inode changed
  or it shrank (``compact``, rsync, truncation) — offsets into a
  rewritten file are meaningless;
* drops state for files that vanished.

The index is a pure cache: deleting it (or ``ResultStore.compact``
invalidating it) merely makes the next scan cold.  Any number of
processes may share one index file — saves are atomic replaces, and a
lost save only means someone re-reads a few bytes.

On top of the index sit :func:`take_snapshot` /
:class:`ThroughputTracker` / :func:`watch_status`: the ``campaign
status --watch`` dashboard, aggregating per-worker shard append rates
(cells/min), live vs expired leases, error counts, and a grid ETA.
"""

from __future__ import annotations

import json
import logging
import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.campaign.store import (
    INDEX_DIR,
    RESULTS_FILE,
    SHARDS_DIR,
    CellRecord,
    read_jsonl_since,
)
from repro.obs import get_obs
from repro.util.errors import ConfigurationError

logger = logging.getLogger(__name__)

INDEX_VERSION = 1


@dataclass
class FileState:
    """Index state for one tracked JSONL file."""

    #: byte offset of the last consumed line boundary
    offset: int = 0
    #: inode the offset belongs to; a different inode voids the offset
    inode: Optional[int] = None
    #: lines parsed so far (duplicates included — this is append volume)
    n_records: int = 0
    #: total recorded compute time of those lines
    elapsed_s: float = 0.0
    #: key → status of the *last* record seen per key (file-local
    #: last-write-wins, matching :class:`ResultStore` replay semantics)
    keys: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "offset": self.offset,
            "inode": self.inode,
            "n_records": self.n_records,
            "elapsed_s": self.elapsed_s,
            "keys": self.keys,
        }

    @staticmethod
    def from_dict(data: Mapping[str, object]) -> "FileState":
        return FileState(
            offset=int(data["offset"]),
            inode=(None if data["inode"] is None else int(data["inode"])),
            n_records=int(data.get("n_records", 0)),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
            keys={str(k): str(v) for k, v in dict(data["keys"]).items()},
        )


@dataclass(frozen=True)
class RefreshStats:
    """What one :meth:`ProgressIndex.refresh` pass actually did — the
    observability hook for the ≥10x warm-scan claim."""

    n_files: int
    n_bytes_read: int
    n_new_records: int
    #: files read from byte 0 (new, shrunk, or inode changed)
    n_rescans: int
    #: tracked files that vanished since the last pass
    n_dropped: int
    #: files currently ending in an unconsumed torn line
    n_torn: int


class ProgressIndex:
    """Byte-offset index over a campaign directory's JSONL files.

    Tracks ``<directory>/<results_file>`` plus every
    ``shards/*.jsonl``; persists to ``index/<name>.json``.  All state
    is revalidated against file sizes and inodes on every
    :meth:`refresh`, so the persisted file is safe to share between
    workers, mergers, and dashboards — and safe to delete at any time.
    """

    def __init__(
        self,
        directory: os.PathLike,
        name: str = "progress",
        results_file: str = RESULTS_FILE,
        autosave: bool = True,
        save_interval_s: float = 5.0,
    ) -> None:
        self.directory = Path(directory)
        self.name = name
        self.results_file = results_file
        self.autosave = autosave
        #: autosaves serialize the whole key set — O(total), the one
        #: cost that must NOT be paid per appended record — so refresh
        #: persists at most once per this interval; a skipped save only
        #: means the next loader re-reads a few recent lines
        self.save_interval_s = float(save_interval_s)
        self.files: Dict[str, FileState] = {}
        self._last_save_t = 0.0
        self._save_failed = False
        #: per-file offset of the last torn tail already warned about,
        #: so a live in-flight append does not warn on every refresh
        self._torn_warned: Dict[str, int] = {}
        self._load()

    @property
    def path(self) -> Path:
        return self.directory / INDEX_DIR / f"{self.name}.json"

    # --- persistence -------------------------------------------------------
    def _load(self) -> None:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
            # count the on-disk copy's age against the autosave
            # throttle, so short-lived processes (one claim pass, one
            # status call) don't each rewrite the whole index
            self._last_save_t = self.path.stat().st_mtime
        except (FileNotFoundError, OSError, json.JSONDecodeError):
            return
        if (
            not isinstance(data, dict)
            or data.get("version") != INDEX_VERSION
            or data.get("results_file") != self.results_file
        ):
            return  # unknown format: treat as cold, rebuild on refresh
        try:
            self.files = {
                str(rel): FileState.from_dict(state)
                for rel, state in dict(data["files"]).items()
            }
        except (KeyError, TypeError, ValueError):
            self.files = {}

    def save(self) -> None:
        """Atomically persist the index (temp file + ``os.replace``).

        A directory that does not exist yet is never created just to
        cache a scan of nothing, and an unwritable directory (status
        watched from a host with a read-only mount) is tolerated — the
        index is a pure cache, so this process just stays in-memory.
        """
        if not self.directory.is_dir():
            return
        payload = json.dumps(
            {
                "version": INDEX_VERSION,
                "results_file": self.results_file,
                "files": {
                    rel: state.to_dict() for rel, state in self.files.items()
                },
            },
            sort_keys=True,
        )
        tmp = self.path.with_name(
            f"{self.path.name}.tmp-{uuid.uuid4().hex[:8]}"
        )
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(payload + "\n", encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError as exc:
            if not self._save_failed:
                self._save_failed = True
                logger.info(
                    "progress index %s not persisted (%s); continuing "
                    "with in-memory state only",
                    self.path,
                    exc,
                )
            try:
                tmp.unlink()
            except OSError:
                pass
        finally:
            # throttle retries too: re-serializing the key map every
            # refresh on a read-only mount would defeat the whole point
            self._last_save_t = time.time()

    def invalidate(self) -> None:
        """Forget everything and remove the persisted file."""
        self.files = {}
        self._torn_warned = {}
        try:
            self.path.unlink()
        except (FileNotFoundError, OSError):
            pass

    # --- scanning ----------------------------------------------------------
    def tracked_files(self) -> List[str]:
        """Directory-relative paths this index covers, scan order."""
        rels: List[str] = []
        if (self.directory / self.results_file).exists():
            rels.append(self.results_file)
        shards = self.directory / SHARDS_DIR
        if shards.is_dir():
            for path in sorted(shards.glob("*.jsonl")):
                rel = f"{SHARDS_DIR}/{path.name}"
                if rel != self.results_file:
                    rels.append(rel)
        return rels

    def refresh(
        self,
        on_record: Optional[Callable[[str, CellRecord], None]] = None,
    ) -> RefreshStats:
        """Fold appended records in; O(appended bytes) when warm.

        *on_record* receives ``(relative_path, record)`` for every
        newly consumed record, in scan order — the merge uses it to see
        exactly the shard records it has not processed yet.  Note that
        a full rescan (shrink/inode change) re-delivers that file's
        records; consumers must stay idempotent, which content-address
        dedup gives for free.
        """
        present = self.tracked_files()
        n_bytes = n_new = n_rescans = n_torn = 0
        vanished = [rel for rel in self.files if rel not in present]
        for rel in vanished:
            del self.files[rel]
            self._torn_warned.pop(rel, None)
        for rel in present:
            path = self.directory / rel
            try:
                st = path.stat()
            except FileNotFoundError:
                continue  # deleted between listing and stat
            state = self.files.get(rel)
            if state is None:
                state = self.files[rel] = FileState(inode=st.st_ino)
                n_rescans += 1
            elif state.inode != st.st_ino or st.st_size < state.offset:
                logger.info(
                    "progress index %s: full rescan of %s (%s)",
                    self.name,
                    rel,
                    "inode changed"
                    if state.inode != st.st_ino
                    else "file shrank",
                )
                state = self.files[rel] = FileState(inode=st.st_ino)
                n_rescans += 1
            if st.st_size == state.offset:
                continue  # nothing appended: not even opened
            records, new_offset, torn = read_jsonl_since(path, state.offset)
            n_bytes += new_offset - state.offset
            state.offset = new_offset
            for record in records:
                state.keys[record.key] = record.status
                state.n_records += 1
                state.elapsed_s += record.elapsed_s
                if on_record is not None:
                    on_record(rel, record)
            n_new += len(records)
            if torn:
                n_torn += 1
                if self._torn_warned.get(rel) != new_offset:
                    logger.warning(
                        "torn trailing line in %s at byte %d (writer "
                        "killed mid-append?) — skipped until completed",
                        path,
                        new_offset,
                    )
                    self._torn_warned[rel] = new_offset
            else:
                self._torn_warned.pop(rel, None)
        if n_bytes:
            get_obs().counter("progress.scan.bytes").inc(n_bytes)
        stats = RefreshStats(
            n_files=len(present),
            n_bytes_read=n_bytes,
            n_new_records=n_new,
            n_rescans=n_rescans,
            n_dropped=len(vanished),
            n_torn=n_torn,
        )
        if (
            self.autosave
            and (n_new or n_rescans or vanished)
            and time.time() - self._last_save_t >= self.save_interval_s
        ):
            self.save()
        return stats

    # --- aggregate views ---------------------------------------------------
    def keys(self) -> Set[str]:
        """Every key with a record anywhere (any status, any file)."""
        out: Set[str] = set()
        for state in self.files.values():
            out.update(state.keys)
        return out

    def statuses(self) -> Dict[str, str]:
        """Key → overall status across all files; ``ok`` beats
        ``error`` (a cell that failed on one worker and succeeded on
        another counts as done, matching the merge's upgrade rule)."""
        out: Dict[str, str] = {}
        for state in self.files.values():
            for key, status in state.keys.items():
                if out.get(key) != "ok":
                    out[key] = status
        return out

    def results_state(self) -> Optional[FileState]:
        return self.files.get(self.results_file)

    def shard_states(self) -> Dict[str, FileState]:
        """Shard name → state, for the per-worker dashboard rows."""
        prefix = SHARDS_DIR + "/"
        return {
            rel[len(prefix):-len(".jsonl")]: state
            for rel, state in self.files.items()
            if rel.startswith(prefix) and rel.endswith(".jsonl")
        }

    def n_records(self) -> int:
        return sum(state.n_records for state in self.files.values())

    def elapsed_s(self) -> float:
        return sum(state.elapsed_s for state in self.files.values())


class IndexKeyView:
    """Duck-typed, read-only stand-in for :class:`ResultStore` in
    :func:`repro.campaign.executor.plan_campaign`: key membership and
    status sets come from the index, no record bodies are loaded.
    """

    def __init__(self, index: ProgressIndex) -> None:
        self._statuses = index.statuses()

    def __contains__(self, key: str) -> bool:
        return key in self._statuses

    def completed_keys(self) -> frozenset:
        return frozenset(
            k for k, s in self._statuses.items() if s == "ok"
        )

    def failed_keys(self) -> frozenset:
        return frozenset(
            k for k, s in self._statuses.items() if s != "ok"
        )

    def drop(self, keys) -> int:
        raise ConfigurationError(
            "retrying failed cells needs a real ResultStore, not an "
            "index view — run 'campaign run --retry-failed' instead"
        )


# --- status snapshots and the watch dashboard ------------------------------

@dataclass(frozen=True)
class ShardStat:
    """One worker shard's dashboard row."""

    name: str
    n_records: int
    n_errors: int


@dataclass(frozen=True)
class StatusSnapshot:
    """Everything one dashboard frame needs, index-derived."""

    time: float
    name: Optional[str]
    #: grid size per the stored spec; None when no campaign.json exists
    n_cells: Optional[int]
    n_done: int
    n_failed: int
    n_records: int
    elapsed_s: float
    shards: Tuple[ShardStat, ...]
    leases_live: int
    leases_expired: int

    @property
    def n_pending(self) -> Optional[int]:
        if self.n_cells is None:
            return None
        return self.n_cells - self.n_done - self.n_failed


def spec_cell_keys(directory: os.PathLike) -> Tuple[Optional[str], Optional[frozenset]]:
    """(campaign name, cell key set) from ``campaign.json``; Nones when
    the directory has no stored spec.  O(grid) once — watch callers
    cache the result across frames."""
    from repro.campaign.spec import CampaignSpec
    from repro.campaign.store import SPEC_FILE

    path = Path(directory) / SPEC_FILE
    if not path.exists():
        return None, None
    spec = CampaignSpec.from_dict(
        json.loads(path.read_text(encoding="utf-8"))
    )
    return spec.name, frozenset(c.key() for c in spec.expand())


def take_snapshot(
    directory: os.PathLike,
    index: ProgressIndex,
    spec_name: Optional[str] = None,
    spec_keys: Optional[frozenset] = None,
    clock: Callable[[], float] = time.time,
) -> StatusSnapshot:
    """Refresh the index and read one dashboard frame's worth of state."""
    from repro.campaign.distrib.lease import LeaseBoard

    index.refresh()
    statuses = index.statuses()
    if spec_keys is not None:
        n_done = sum(1 for k in spec_keys if statuses.get(k) == "ok")
        n_failed = sum(
            1 for k in spec_keys if statuses.get(k) == "error"
        )
        n_cells: Optional[int] = len(spec_keys)
    else:
        n_done = sum(1 for s in statuses.values() if s == "ok")
        n_failed = len(statuses) - n_done
        n_cells = None
    shards = tuple(
        ShardStat(
            name=name,
            n_records=state.n_records,
            n_errors=sum(
                1 for s in state.keys.values() if s != "ok"
            ),
        )
        for name, state in sorted(index.shard_states().items())
    )
    now = clock()
    live = expired = 0
    for lease in LeaseBoard(directory, clock=clock).active():
        if lease.expired(now):
            expired += 1
        else:
            live += 1
    return StatusSnapshot(
        time=now,
        name=spec_name,
        n_cells=n_cells,
        n_done=n_done,
        n_failed=n_failed,
        n_records=index.n_records(),
        elapsed_s=index.elapsed_s(),
        shards=shards,
        leases_live=live,
        leases_expired=expired,
    )


class ThroughputTracker:
    """Sliding-window rates over a sequence of snapshots.

    Completion throughput comes from the done+failed cell count (unique
    keys, so duplicate executions never inflate it); per-shard rates
    come from each shard's append volume — together they show both grid
    progress and which worker produces it.
    """

    def __init__(self, window_s: float = 120.0) -> None:
        self.window_s = float(window_s)
        self._samples: List[StatusSnapshot] = []

    def add(self, snapshot: StatusSnapshot) -> None:
        self._samples.append(snapshot)
        cutoff = snapshot.time - self.window_s
        while len(self._samples) > 2 and self._samples[0].time < cutoff:
            self._samples.pop(0)

    def _span(self) -> Optional[Tuple[StatusSnapshot, StatusSnapshot]]:
        if len(self._samples) < 2:
            return None
        first, last = self._samples[0], self._samples[-1]
        if last.time <= first.time:
            return None
        return first, last

    def cells_per_min(self) -> Optional[float]:
        span = self._span()
        if span is None:
            return None
        first, last = span
        done = (last.n_done + last.n_failed) - (
            first.n_done + first.n_failed
        )
        return 60.0 * done / (last.time - first.time)

    def shard_cells_per_min(self, name: str) -> Optional[float]:
        span = self._span()
        if span is None:
            return None
        first, last = span

        def count(snap: StatusSnapshot) -> int:
            for shard in snap.shards:
                if shard.name == name:
                    return shard.n_records
            return 0

        return (
            60.0 * (count(last) - count(first)) / (last.time - first.time)
        )

    def eta_s(self, snapshot: StatusSnapshot) -> Optional[float]:
        rate = self.cells_per_min()
        if not rate or rate <= 0 or snapshot.n_pending is None:
            return None
        return snapshot.n_pending / (rate / 60.0)


def format_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "n/a"
    seconds = max(0.0, seconds)
    if seconds >= 3600:
        return f"{int(seconds // 3600)}h{int(seconds % 3600 // 60):02d}m"
    if seconds >= 60:
        return f"{int(seconds // 60)}m{int(seconds % 60):02d}s"
    return f"{seconds:.0f}s"


def _progress_line(snapshot: StatusSnapshot) -> str:
    if snapshot.n_cells is None:
        return (
            f"{snapshot.n_done} ok / {snapshot.n_failed} failed records "
            "(no campaign.json)"
        )
    return (
        f"campaign {snapshot.name!r}: {snapshot.n_done}/"
        f"{snapshot.n_cells} cells done, {snapshot.n_failed} failed, "
        f"{snapshot.n_pending} pending"
    )


def render_status(
    snapshot: StatusSnapshot,
    tracker: Optional[ThroughputTracker] = None,
    leases: Optional[List] = None,
) -> str:
    """Render one status frame.

    With a *tracker* (watch mode) throughput and ETA lines are
    included; *leases* (parsed :class:`Lease` objects) adds one detail
    line per lease.
    """
    lines = [_progress_line(snapshot)]
    lines.append(
        f"stored records: {snapshot.n_records} "
        f"({snapshot.elapsed_s:.1f}s compute)"
    )
    if tracker is not None:
        rate = tracker.cells_per_min()
        rate_text = f"{rate:.1f} cells/min" if rate is not None else "n/a"
        eta = format_duration(tracker.eta_s(snapshot))
        lines.append(f"throughput: {rate_text} — ETA {eta}")
    if snapshot.shards:
        lines.append("shards:")
        for shard in snapshot.shards:
            plural = "" if shard.n_errors == 1 else "s"
            line = (
                f"  shard {shard.name}: {shard.n_records} records, "
                f"{shard.n_errors} error{plural}"
            )
            if tracker is not None:
                shard_rate = tracker.shard_cells_per_min(shard.name)
                if shard_rate is not None:
                    line += f", {shard_rate:.1f} cells/min"
            lines.append(line)
    if snapshot.leases_live or snapshot.leases_expired:
        lines.append(
            f"leases: {snapshot.leases_live} live, "
            f"{snapshot.leases_expired} expired"
        )
    if leases:
        for lease in leases:
            state = "EXPIRED" if lease.expired(snapshot.time) else "live"
            lines.append(
                f"  lease {lease.key}: {state}, owner {lease.owner}, "
                f"heartbeat {lease.age_s(snapshot.time):.0f}s ago "
                f"(ttl {lease.ttl_s:.0f}s)"
            )
    return "\n".join(lines)


def status_report(
    directory: os.PathLike,
    index: Optional[ProgressIndex] = None,
    clock: Callable[[], float] = time.time,
) -> str:
    """One-shot ``campaign status``: index-backed progress plus lease
    detail lines, plus per-failure detail (which needs record bodies,
    so the store is only read when failures exist)."""
    from repro.campaign.distrib.lease import LeaseBoard

    index = index or ProgressIndex(directory)
    spec_name, spec_keys = spec_cell_keys(directory)
    snapshot = take_snapshot(
        directory, index, spec_name, spec_keys, clock=clock
    )
    leases = LeaseBoard(directory, clock=clock).active()
    text = render_status(snapshot, leases=leases)
    if snapshot.n_failed:
        # failure details need record bodies, which the index does not
        # keep — re-read the files, but only on the failure path
        from repro.campaign.store import iter_jsonl_records

        statuses = index.statuses()
        failed = {k for k, s in statuses.items() if s != "ok"}
        errors: Dict[str, Optional[str]] = {}
        for rel in index.tracked_files():
            for record in iter_jsonl_records(Path(directory) / rel):
                if not record.ok and record.key in failed:
                    errors[record.key] = record.error
        for key in sorted(failed):
            first = (errors.get(key) or "").strip().splitlines()
            text += f"\n  FAILED {key}: {first[-1] if first else '?'}"
    return text


def watch_status(
    directory: os.PathLike,
    interval_s: float = 2.0,
    frames: Optional[int] = None,
    window_s: float = 120.0,
    out: Callable[[str], None] = print,
    clock: Callable[[], float] = time.time,
    sleep: Callable[[float], None] = time.sleep,
    clear: bool = False,
) -> int:
    """The ``campaign status --watch`` loop.

    Renders a frame every *interval_s* seconds until interrupted (or
    for exactly *frames* frames — tests and scripted health checks use
    that).  Each frame costs one warm index refresh: O(bytes appended
    since the previous frame).  *clear* emits an ANSI home+clear before
    every frame after the first, terminal-dashboard style.
    """
    index = ProgressIndex(directory)
    spec_name, spec_keys = spec_cell_keys(directory)
    tracker = ThroughputTracker(window_s=window_s)
    from repro.campaign.distrib.lease import LeaseBoard

    n = 0
    try:
        while frames is None or n < frames:
            if n and clear:
                out("\x1b[2J\x1b[H")
            elif n:
                out("")
            if spec_keys is None:
                # a fleet may write campaign.json after the watch starts
                spec_name, spec_keys = spec_cell_keys(directory)
            snapshot = take_snapshot(
                directory, index, spec_name, spec_keys, clock=clock
            )
            tracker.add(snapshot)
            leases = LeaseBoard(directory, clock=clock).active()
            out(render_status(snapshot, tracker=tracker, leases=leases))
            n += 1
            if frames is None or n < frames:
                sleep(interval_s)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    return 0
