"""Campaign reporting: status, grouped pivots, and campaign diffs.

All functions work on stored :class:`CellRecord` lists, so they can
render a campaign that is still running, fully cached, or loaded from a
directory produced on another machine.  Seeds are always the replication
axis: summaries are averaged over seeds within each group.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.campaign.spec import CampaignSpec, canonical_json
from repro.campaign.store import CellRecord, ResultStore
from repro.metrics.report import format_table
from repro.metrics.summary import SummaryMetrics, average_summaries

#: default pivot columns for ``campaign report``
DEFAULT_GROUP_BY: Tuple[str, ...] = ("notice_mix", "mechanism")

#: default metric columns (the paper's headline four)
DEFAULT_METRICS: Tuple[str, ...] = (
    "avg_turnaround_h",
    "system_utilization",
    "instant_start_rate",
    "preemption_ratio_rigid",
    "preemption_ratio_malleable",
)


def load_campaign(directory: str) -> Tuple[Optional[Dict], List[CellRecord]]:
    """Read a campaign directory: (spec dict or None, records)."""
    store = ResultStore(directory)
    return store.read_spec(), store.records()


def _group_value(config: Mapping[str, object], field: str) -> object:
    value = config.get(field)
    if field == "mechanism" and value is None:
        return "baseline"
    if field == "notice_mix" and isinstance(value, dict):
        return value.get("name", canonical_json(value))
    return value


def group_records(
    records: Sequence[CellRecord],
    by: Sequence[str] = DEFAULT_GROUP_BY,
) -> "OrderedDict[Tuple[object, ...], List[CellRecord]]":
    """Group ok-records by config fields, preserving first-seen order."""
    groups: "OrderedDict[Tuple[object, ...], List[CellRecord]]" = OrderedDict()
    for record in records:
        if not record.ok or record.summary is None:
            continue
        key = tuple(_group_value(record.config, f) for f in by)
        groups.setdefault(key, []).append(record)
    return groups


def _averaged(
    groups: "OrderedDict[Tuple[object, ...], List[CellRecord]]",
) -> "OrderedDict[Tuple[object, ...], SummaryMetrics]":
    return OrderedDict(
        (key, average_summaries([r.summary_metrics() for r in recs]))
        for key, recs in groups.items()
    )


def status_text(
    spec_dict: Optional[Mapping[str, object]],
    records: Sequence[CellRecord],
) -> str:
    """Render ``campaign status``: progress against the stored spec."""
    n_ok = sum(1 for r in records if r.ok)
    n_err = len(records) - n_ok
    lines: List[str] = []
    if spec_dict is not None:
        spec = CampaignSpec.from_dict(spec_dict)
        keys = {c.key() for c in spec.expand()}
        # count against this spec's cells only — the store may also hold
        # records from a pre---grow spec or a shared cell pool
        done = sum(1 for r in records if r.ok and r.key in keys)
        failed = sum(1 for r in records if not r.ok and r.key in keys)
        lines.append(
            f"campaign {spec.name!r}: {done}/{len(keys)} cells done, "
            f"{failed} failed, {len(keys) - done - failed} pending"
        )
    else:
        lines.append(f"{n_ok} ok / {n_err} failed records (no campaign.json)")
    elapsed = sum(r.elapsed_s for r in records)
    lines.append(f"stored records: {len(records)} ({elapsed:.1f}s compute)")
    for r in records:
        if not r.ok:
            first = (r.error or "").strip().splitlines()
            lines.append(f"  FAILED {r.key}: {first[-1] if first else '?'}")
    return "\n".join(lines)


def report_text(
    records: Sequence[CellRecord],
    by: Sequence[str] = DEFAULT_GROUP_BY,
    metrics: Sequence[str] = DEFAULT_METRICS,
    title: Optional[str] = None,
) -> str:
    """Pivot table: one row per group, averaged over seeds."""
    raw = group_records(records, by)
    if not raw:
        return "(no completed simulation cells)"
    headers = [*by, "cells", *metrics]
    rows = []
    for key, summary in _averaged(raw).items():
        d = summary.as_dict()
        rows.append([*key, len(raw[key]), *(d[m] for m in metrics)])
    return format_table(headers, rows, title=title)


def diff_text(
    a_records: Sequence[CellRecord],
    b_records: Sequence[CellRecord],
    metrics: Sequence[str] = DEFAULT_METRICS,
    a_name: str = "A",
    b_name: str = "B",
) -> str:
    """Cell-matched diff between two campaigns.

    Cells are joined on their full config *minus* the seed and minus any
    field whose value set differs between the two campaigns (e.g. the
    ``backfill_mode`` axis when diffing easy vs conservative) — those
    fields are what the diff is *about*, everything else must match.
    """
    a_groups = _config_groups(a_records)
    b_groups = _config_groups(b_records)

    varying = _varying_fields(a_records, b_records)
    join = ("seed", *varying)

    a_joined = _joined(a_groups, join)
    b_joined = _joined(b_groups, join)
    shared = [k for k in a_joined if k in b_joined]
    if not shared:
        return "(campaigns share no comparable cells)"

    header_note = (
        f"diff {a_name} vs {b_name}"
        + (f" (varying: {', '.join(sorted(varying))})" if varying else "")
    )
    headers = ["cell", "metric", a_name, b_name, "delta"]
    rows: List[List[object]] = []
    for key in shared:
        s_a = average_summaries(a_joined[key])
        s_b = average_summaries(b_joined[key])
        d_a, d_b = s_a.as_dict(), s_b.as_dict()
        label = _short_label(key)
        for metric in metrics:
            va, vb = d_a[metric], d_b[metric]
            delta = (
                float(vb) - float(va)
                if isinstance(va, (int, float)) and isinstance(vb, (int, float))
                else ""
            )
            rows.append([label, metric, va, vb, delta])
            label = ""  # print the cell label once per block
    return format_table(headers, rows, title=header_note)


def _config_groups(
    records: Sequence[CellRecord],
) -> List[Tuple[Dict[str, object], SummaryMetrics]]:
    out = []
    for r in records:
        if r.ok and r.summary is not None:
            out.append((dict(r.config), r.summary_metrics()))
    return out


def _varying_fields(
    a_records: Sequence[CellRecord], b_records: Sequence[CellRecord]
) -> Tuple[str, ...]:
    """Config fields whose value sets differ between the two campaigns."""

    def value_set(records: Sequence[CellRecord], field: str) -> frozenset:
        return frozenset(
            canonical_json(r.config.get(field)) for r in records if r.ok
        )

    fields: List[str] = []
    sample = next((r for r in a_records if r.ok), None)
    if sample is None:
        return ()
    for field in sample.config:
        if field == "seed":
            continue
        if value_set(a_records, field) != value_set(b_records, field):
            fields.append(field)
    return tuple(fields)


def _joined(
    groups: List[Tuple[Dict[str, object], SummaryMetrics]],
    drop: Sequence[str],
) -> "OrderedDict[str, List[SummaryMetrics]]":
    joined: "OrderedDict[str, List[SummaryMetrics]]" = OrderedDict()
    for config, summary in groups:
        key_cfg = {k: v for k, v in config.items() if k not in drop}
        joined.setdefault(canonical_json(key_cfg), []).append(summary)
    return joined


def _short_label(join_key: str) -> str:
    """Compress a canonical join-key JSON into a readable cell label."""
    import json

    cfg = json.loads(join_key)
    mech = cfg.get("mechanism")
    mix = cfg.get("notice_mix")
    if isinstance(mix, dict):
        mix = mix.get("name", "?")
    parts = [str(mech) if mech else "baseline"]
    if mix is not None:
        parts.append(f"mix={mix}")
    if "days" in cfg:
        parts.append(f"d={cfg['days']:g}")
    return " ".join(parts)
