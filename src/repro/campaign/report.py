"""Campaign report model + text renderers.

This module is the *model layer* of campaign reporting: it reduces
stored :class:`CellRecord` lists into typed, renderer-independent rows —
:func:`build_pivot` (grouped, seed-averaged pivot tables),
:func:`build_diff` (cell-matched diffs between two campaigns with
per-metric deltas and regression direction), :func:`build_errors`
(failed cells with captured tracebacks), and :func:`build_series`
(per-metric chart series over any config axis).  The plain-text
renderers (``report_text``, ``diff_text``, ``status_text``) and the
self-contained HTML exporter (:mod:`repro.campaign.html`) both consume
these models, so the two renderings can never disagree about the
numbers.

All functions work on stored records, so they can render a campaign
that is still running, fully cached, or loaded from a directory
produced on another machine.  Seeds are always the replication axis:
summaries are averaged over seeds within each group.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.campaign.spec import CampaignSpec, canonical_json
from repro.campaign.store import CellRecord, ResultStore
from repro.metrics.report import format_table
from repro.metrics.summary import SummaryMetrics, average_summaries
from repro.obs import get_obs
from repro.util.errors import ConfigurationError

#: default pivot columns for ``campaign report``
DEFAULT_GROUP_BY: Tuple[str, ...] = ("notice_mix", "mechanism")

#: default metric columns (the paper's headline four)
DEFAULT_METRICS: Tuple[str, ...] = (
    "avg_turnaround_h",
    "system_utilization",
    "instant_start_rate",
    "preemption_ratio_rigid",
    "preemption_ratio_malleable",
)

#: which way is better, per summary metric: +1 higher-is-better,
#: -1 lower-is-better, 0 neutral (counts, bookkeeping).  Drives the
#: regression/improvement classification of diff rows.
METRIC_DIRECTIONS: Dict[str, int] = {
    "avg_turnaround_h": -1,
    "avg_turnaround_rigid_h": -1,
    "avg_turnaround_malleable_h": -1,
    "avg_turnaround_ondemand_h": -1,
    "instant_start_rate": +1,
    "avg_ondemand_delay_s": -1,
    "preemption_ratio_rigid": -1,
    "preemption_ratio_malleable": -1,
    "shrink_ratio_malleable": -1,
    "system_utilization": +1,
    "allocated_frac": +1,
    "lost_compute_frac": -1,
    "wasted_setup_frac": -1,
    "checkpoint_frac": -1,
    "reserved_idle_frac": -1,
    "decision_latency_p50_s": -1,
    "decision_latency_p95_s": -1,
    "decision_latency_p99_s": -1,
    "decision_latency_mean_s": -1,
    "decision_latency_max_s": -1,
    "makespan_h": -1,
    "wall_time_s": -1,
    "events_processed": 0,
    "schedule_passes": 0,
    "passes_skipped": 0,
}

#: simulator-throughput columns, for charting core performance across a
#: grid axis (``campaign report --html --metrics ... --x load``)
THROUGHPUT_METRICS: Tuple[str, ...] = (
    "wall_time_s",
    "events_processed",
    "schedule_passes",
    "passes_skipped",
)

#: relative change below which a diff row is classified as noise
#: rather than a regression/improvement
REGRESSION_THRESHOLD = 0.02


def load_campaign(directory: str) -> Tuple[Optional[Dict], List[CellRecord]]:
    """Read a campaign directory: (spec dict or None, records)."""
    store = ResultStore(directory)
    return store.read_spec(), store.records()


def _group_value(config: Mapping[str, object], field_name: str) -> object:
    value = config.get(field_name)
    if field_name == "mechanism" and value is None:
        return "baseline"
    if field_name == "notice_mix" and isinstance(value, dict):
        return value.get("name", canonical_json(value))
    return value


def group_records(
    records: Sequence[CellRecord],
    by: Sequence[str] = DEFAULT_GROUP_BY,
) -> "OrderedDict[Tuple[object, ...], List[CellRecord]]":
    """Group ok-records by config fields, preserving first-seen order."""
    groups: "OrderedDict[Tuple[object, ...], List[CellRecord]]" = OrderedDict()
    for record in records:
        if not record.ok or record.summary is None:
            continue
        key = tuple(_group_value(record.config, f) for f in by)
        groups.setdefault(key, []).append(record)
    return groups


def _validate_metrics(metrics: Sequence[str]) -> None:
    """Reject metric names that are not summary fields — a typo'd
    ``--metrics`` must fail loudly, not render a column of blanks."""
    known = set(SummaryMetrics.__dataclass_fields__)
    unknown = [m for m in metrics if m not in known]
    if unknown:
        raise ConfigurationError(
            f"unknown metric(s) {unknown}; summary metrics are "
            f"{sorted(known)}"
        )


# ----------------------------------------------------------------------
# Pivot model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PivotRow:
    """One pivot group: its ``by``-field values and averaged metrics."""

    group: Tuple[object, ...]
    n_cells: int
    #: metric name -> seed-averaged value (missing metrics -> None)
    values: Mapping[str, object]


@dataclass(frozen=True)
class PivotTable:
    """A grouped, seed-averaged view over one campaign's ok-records."""

    by: Tuple[str, ...]
    metrics: Tuple[str, ...]
    rows: Tuple[PivotRow, ...]
    n_ok: int
    n_error: int
    title: Optional[str] = None


def build_pivot(
    records: Sequence[CellRecord],
    by: Sequence[str] = DEFAULT_GROUP_BY,
    metrics: Sequence[str] = DEFAULT_METRICS,
    title: Optional[str] = None,
) -> PivotTable:
    """Reduce records to one :class:`PivotRow` per ``by``-group.

    Error records and summary-less (trace) records never contribute to
    rows; they are counted so renderers can surface them.
    """
    _validate_metrics(metrics)
    with get_obs().span("report.pivot.build", n_records=len(records)):
        raw = group_records(records, by)
        rows: List[PivotRow] = []
        for key, recs in raw.items():
            summary = average_summaries(
                [r.summary_metrics() for r in recs]
            )
            d = summary.as_dict()
            rows.append(
                PivotRow(
                    group=key,
                    n_cells=len(recs),
                    values={m: d.get(m) for m in metrics},
                )
            )
        return PivotTable(
            by=tuple(by),
            metrics=tuple(metrics),
            rows=tuple(rows),
            n_ok=sum(1 for r in records if r.ok),
            n_error=sum(1 for r in records if not r.ok),
            title=title,
        )


# ----------------------------------------------------------------------
# Diff model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DiffRow:
    """One (cell, metric) comparison between two campaigns."""

    label: str
    metric: str
    a: object
    b: object
    #: b - a when both values are numeric, else None
    delta: Optional[float]
    #: relative change (delta / |a|) when defined, else None
    pct: Optional[float]
    #: +1 higher-is-better, -1 lower-is-better, 0 neutral/unknown
    direction: int = 0

    def _significant(self) -> bool:
        if self.delta is None or self.direction == 0:
            return False
        if self.pct is None:
            return self.delta != 0.0
        return abs(self.pct) > REGRESSION_THRESHOLD

    @property
    def regression(self) -> bool:
        """B is meaningfully *worse* than A on this metric."""
        return (
            self._significant()
            and self.delta is not None
            and self.delta * self.direction < 0
        )

    @property
    def improvement(self) -> bool:
        """B is meaningfully *better* than A on this metric."""
        return (
            self._significant()
            and self.delta is not None
            and self.delta * self.direction > 0
        )


@dataclass(frozen=True)
class DiffTable:
    """A cell-matched diff between two campaigns.

    ``comparable`` is False when the campaigns share no cells with
    completed summaries — including the degenerate case where one (or
    both) directories hold only error records; renderers must report
    that instead of assuming rows exist.
    """

    a_name: str
    b_name: str
    metrics: Tuple[str, ...]
    #: config fields whose value sets differ between the campaigns
    varying: Tuple[str, ...]
    rows: Tuple[DiffRow, ...] = ()
    n_a_ok: int = 0
    n_b_ok: int = 0
    n_a_errors: int = 0
    n_b_errors: int = 0

    @property
    def comparable(self) -> bool:
        return bool(self.rows)

    @property
    def n_regressions(self) -> int:
        return sum(1 for r in self.rows if r.regression)

    @property
    def n_improvements(self) -> int:
        return sum(1 for r in self.rows if r.improvement)


def build_diff(
    a_records: Sequence[CellRecord],
    b_records: Sequence[CellRecord],
    metrics: Sequence[str] = DEFAULT_METRICS,
    a_name: str = "A",
    b_name: str = "B",
) -> DiffTable:
    """Cell-matched diff between two campaigns (see the impl docstring)."""
    with get_obs().span(
        "report.diff.build", n_a=len(a_records), n_b=len(b_records)
    ):
        return _build_diff_impl(a_records, b_records, metrics, a_name, b_name)


def _build_diff_impl(
    a_records: Sequence[CellRecord],
    b_records: Sequence[CellRecord],
    metrics: Sequence[str] = DEFAULT_METRICS,
    a_name: str = "A",
    b_name: str = "B",
) -> DiffTable:
    """Cell-matched diff between two campaigns.

    Cells are joined on their full config *minus* the seed and minus any
    field whose value set differs between the two campaigns (e.g. the
    ``backfill_mode`` axis when diffing easy vs conservative) — those
    fields are what the diff is *about*, everything else must match.
    Summaries are seed-averaged per joined cell before differencing.

    A campaign with no completed summaries (e.g. a directory holding
    only error records) yields an empty-but-valid table with
    ``comparable == False`` — never an exception.
    """
    _validate_metrics(metrics)
    a_groups = _config_groups(a_records)
    b_groups = _config_groups(b_records)
    counts = dict(
        n_a_ok=sum(1 for r in a_records if r.ok),
        n_b_ok=sum(1 for r in b_records if r.ok),
        n_a_errors=sum(1 for r in a_records if not r.ok),
        n_b_errors=sum(1 for r in b_records if not r.ok),
    )

    varying = _varying_fields(a_records, b_records)
    if not a_groups or not b_groups:
        return DiffTable(
            a_name=a_name,
            b_name=b_name,
            metrics=tuple(metrics),
            varying=varying,
            **counts,
        )
    join = ("seed", *varying)

    a_joined = _joined(a_groups, join)
    b_joined = _joined(b_groups, join)
    shared = [k for k in a_joined if k in b_joined]

    rows: List[DiffRow] = []
    for key in shared:
        s_a = average_summaries(a_joined[key])
        s_b = average_summaries(b_joined[key])
        d_a, d_b = s_a.as_dict(), s_b.as_dict()
        label = _short_label(key)
        for metric in metrics:
            va, vb = d_a.get(metric), d_b.get(metric)
            delta = pct = None
            if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
                delta = float(vb) - float(va)
                if float(va) != 0.0:
                    pct = delta / abs(float(va))
            rows.append(
                DiffRow(
                    label=label,
                    metric=metric,
                    a=va,
                    b=vb,
                    delta=delta,
                    pct=pct,
                    direction=METRIC_DIRECTIONS.get(metric, 0),
                )
            )
    return DiffTable(
        a_name=a_name,
        b_name=b_name,
        metrics=tuple(metrics),
        varying=varying,
        rows=tuple(rows),
        **counts,
    )


# ----------------------------------------------------------------------
# Error model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ErrorEntry:
    """One failed cell: its identity and the captured traceback."""

    key: str
    label: str
    config: Mapping[str, object]
    #: the full captured traceback (may be multi-line)
    error: str
    #: the traceback's last line — usually the exception message
    last_line: str
    elapsed_s: float = 0.0


def build_errors(records: Sequence[CellRecord]) -> Tuple[ErrorEntry, ...]:
    """Every error record as a renderable :class:`ErrorEntry`."""
    out: List[ErrorEntry] = []
    for r in records:
        if r.ok:
            continue
        text = (r.error or "").strip()
        lines = text.splitlines()
        out.append(
            ErrorEntry(
                key=r.key,
                label=_config_label(r.config),
                config=r.config,
                error=text,
                last_line=lines[-1] if lines else "?",
                elapsed_s=r.elapsed_s,
            )
        )
    return tuple(out)


# ----------------------------------------------------------------------
# Chart-series model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MetricSeries:
    """One metric charted over an x-axis config field.

    ``series`` maps a group label (joined ``by``-field values) to one
    value per ``x_values`` entry (``None`` where that cell is absent).
    """

    metric: str
    x_field: str
    x_values: Tuple[object, ...]
    series: Tuple[Tuple[str, Tuple[Optional[float], ...]], ...] = ()

    @property
    def numeric_x(self) -> bool:
        return all(isinstance(x, (int, float)) for x in self.x_values)


def build_series(
    records: Sequence[CellRecord],
    x: str,
    by: Sequence[str] = (),
    metrics: Sequence[str] = DEFAULT_METRICS,
) -> List[MetricSeries]:
    """Chart data: each metric over the *x* config field, one series
    per distinct ``by``-group (a single unnamed series when *by* is
    empty or collapses to one group).

    *x* must exist in at least one completed cell's config — a typo'd
    axis would otherwise collapse every chart onto a single meaningless
    x position.
    """
    ok = [r for r in records if r.ok and r.summary is not None]
    if ok and not any(x in r.config for r in ok):
        fields = sorted({k for r in ok for k in r.config})
        raise ConfigurationError(
            f"unknown chart axis {x!r}; cell config fields are {fields}"
        )
    by = tuple(f for f in by if f != x)
    pivot = build_pivot(records, by=(*by, x), metrics=metrics)
    x_values = _sorted_axis(
        {row.group[-1] for row in pivot.rows}
    )
    x_index = {v: i for i, v in enumerate(x_values)}
    group_labels: "OrderedDict[Tuple[object, ...], str]" = OrderedDict()
    for row in pivot.rows:
        group = row.group[:-1]
        if group not in group_labels:
            group_labels[group] = (
                " ".join(str(g) for g in group) if group else ""
            )
    out: List[MetricSeries] = []
    for metric in metrics:
        series: List[Tuple[str, Tuple[Optional[float], ...]]] = []
        for group, label in group_labels.items():
            values: List[Optional[float]] = [None] * len(x_values)
            for row in pivot.rows:
                if row.group[:-1] != group:
                    continue
                value = row.values.get(metric)
                if isinstance(value, (int, float)):
                    values[x_index[row.group[-1]]] = float(value)
            series.append((label, tuple(values)))
        out.append(
            MetricSeries(
                metric=metric,
                x_field=x,
                x_values=tuple(x_values),
                series=tuple(series),
            )
        )
    return out


def _sorted_axis(values: set) -> List[object]:
    """Sort an axis numerically when possible, else by string."""
    if all(isinstance(v, (int, float)) for v in values):
        return sorted(values)
    return sorted(values, key=str)


# ----------------------------------------------------------------------
# Text renderers
# ----------------------------------------------------------------------
def status_text(
    spec_dict: Optional[Mapping[str, object]],
    records: Sequence[CellRecord],
) -> str:
    """Render ``campaign status``: progress against the stored spec."""
    n_ok = sum(1 for r in records if r.ok)
    n_err = len(records) - n_ok
    lines: List[str] = []
    if spec_dict is not None:
        spec = CampaignSpec.from_dict(spec_dict)
        keys = {c.key() for c in spec.expand()}
        # count against this spec's cells only — the store may also hold
        # records from a pre---grow spec or a shared cell pool
        done = sum(1 for r in records if r.ok and r.key in keys)
        failed = sum(1 for r in records if not r.ok and r.key in keys)
        lines.append(
            f"campaign {spec.name!r}: {done}/{len(keys)} cells done, "
            f"{failed} failed, {len(keys) - done - failed} pending"
        )
    else:
        lines.append(f"{n_ok} ok / {n_err} failed records (no campaign.json)")
    elapsed = sum(r.elapsed_s for r in records)
    lines.append(f"stored records: {len(records)} ({elapsed:.1f}s compute)")
    for entry in build_errors(records):
        lines.append(f"  FAILED {entry.key}: {entry.last_line}")
    return "\n".join(lines)


def report_text(
    records: Sequence[CellRecord],
    by: Sequence[str] = DEFAULT_GROUP_BY,
    metrics: Sequence[str] = DEFAULT_METRICS,
    title: Optional[str] = None,
) -> str:
    """Pivot table: one row per group, averaged over seeds."""
    pivot = build_pivot(records, by=by, metrics=metrics, title=title)
    if not pivot.rows:
        return "(no completed simulation cells)"
    headers = [*pivot.by, "cells", *pivot.metrics]
    rows = [
        [*row.group, row.n_cells, *(row.values[m] for m in pivot.metrics)]
        for row in pivot.rows
    ]
    return format_table(headers, rows, title=pivot.title)


def diff_text(
    a_records: Sequence[CellRecord],
    b_records: Sequence[CellRecord],
    metrics: Sequence[str] = DEFAULT_METRICS,
    a_name: str = "A",
    b_name: str = "B",
) -> str:
    """Cell-matched diff between two campaigns (see :func:`build_diff`)."""
    diff = build_diff(
        a_records, b_records, metrics=metrics, a_name=a_name, b_name=b_name
    )
    if not diff.comparable:
        lines = ["(campaigns share no comparable cells)"]
        if not diff.n_a_ok or not diff.n_b_ok:
            lines.append(
                f"  {a_name}: {diff.n_a_ok} ok / {diff.n_a_errors} error "
                f"records; {b_name}: {diff.n_b_ok} ok / "
                f"{diff.n_b_errors} error records"
            )
        return "\n".join(lines)
    header_note = (
        f"diff {diff.a_name} vs {diff.b_name}"
        + (
            f" (varying: {', '.join(sorted(diff.varying))})"
            if diff.varying
            else ""
        )
    )
    headers = ["cell", "metric", a_name, b_name, "delta"]
    rows: List[List[object]] = []
    block = len(diff.metrics) or 1
    for i, row in enumerate(diff.rows):
        # one label per joined-cell block (build_diff emits exactly one
        # row per metric per cell) — two different cells may share a
        # short label, so block position, not label equality, decides
        label = row.label if i % block == 0 else ""
        rows.append(
            [label, row.metric, row.a, row.b,
             row.delta if row.delta is not None else ""]
        )
    return format_table(headers, rows, title=header_note)


# ----------------------------------------------------------------------
# Internals shared by the builders
# ----------------------------------------------------------------------
def _config_groups(
    records: Sequence[CellRecord],
) -> List[Tuple[Dict[str, object], SummaryMetrics]]:
    out = []
    for r in records:
        if r.ok and r.summary is not None:
            out.append((dict(r.config), r.summary_metrics()))
    return out


def _varying_fields(
    a_records: Sequence[CellRecord], b_records: Sequence[CellRecord]
) -> Tuple[str, ...]:
    """Config fields whose value sets differ between the two campaigns.

    Only fields of cells with completed summaries count: an error-only
    campaign contributes empty value sets, and declaring every field
    "varying" against it would be meaningless — the caller already
    reports such campaigns as not comparable.
    """

    def value_set(records: Sequence[CellRecord], field_name: str) -> frozenset:
        return frozenset(
            canonical_json(r.config.get(field_name))
            for r in records
            if r.ok and r.summary is not None
        )

    fields: List[str] = []
    sample = next(
        (r for r in a_records if r.ok and r.summary is not None), None
    )
    if sample is None or not any(
        r.ok and r.summary is not None for r in b_records
    ):
        return ()
    for field_name in sample.config:
        if field_name == "seed":
            continue
        if value_set(a_records, field_name) != value_set(
            b_records, field_name
        ):
            fields.append(field_name)
    return tuple(fields)


def _joined(
    groups: List[Tuple[Dict[str, object], SummaryMetrics]],
    drop: Sequence[str],
) -> "OrderedDict[str, List[SummaryMetrics]]":
    joined: "OrderedDict[str, List[SummaryMetrics]]" = OrderedDict()
    for config, summary in groups:
        key_cfg = {k: v for k, v in config.items() if k not in drop}
        joined.setdefault(canonical_json(key_cfg), []).append(summary)
    return joined


def _config_label(config: Mapping[str, object]) -> str:
    """Compress a cell config into a short human-readable label."""
    mech = config.get("mechanism")
    mix = config.get("notice_mix")
    if isinstance(mix, dict):
        mix = mix.get("name", "?")
    parts = [str(mech) if mech else "baseline"]
    if mix is not None:
        parts.append(f"mix={mix}")
    days = config.get("days")
    if isinstance(days, (int, float)):
        parts.append(f"d={days:g}")
    if "seed" in config:
        parts.append(f"seed={config['seed']}")
    return " ".join(parts)


def _short_label(join_key: str) -> str:
    """Compress a canonical join-key JSON into a readable cell label.

    Join keys never contain ``seed`` (it is always dropped from the
    join), so this is :func:`_config_label` without the seed part.
    """
    return _config_label(json.loads(join_key))
