"""Named, seeded random-number streams.

Every stochastic component of the system (arrival process, job sizes,
runtimes, setup overheads, on-demand notice classes, ...) draws from its own
independent ``numpy.random.Generator``.  Streams are derived from a single
root seed with ``numpy.random.SeedSequence.spawn`` keyed by *name*, so:

* the whole experiment is bit-reproducible from one integer seed;
* adding a new consumer never perturbs the draws seen by existing ones
  (streams are independent, not a shared sequence);
* two generators asking for the same stream name share state — a stream is
  a singleton per :class:`RngStreams` instance.
"""

from __future__ import annotations

from typing import Dict, Iterator

import numpy as np


class RngStreams:
    """A factory of independent named RNG streams derived from one seed.

    Parameters
    ----------
    seed:
        Root seed.  Two :class:`RngStreams` built from the same seed hand
        out identical streams for identical names.

    Examples
    --------
    >>> streams = RngStreams(7)
    >>> a = streams.get("arrivals")
    >>> b = streams.get("sizes")
    >>> a is streams.get("arrivals")
    True
    >>> a is b
    False
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an integer, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this factory was built from."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the (singleton) generator for *name*."""
        if name not in self._streams:
            # Key the child seed on a stable hash of the name so stream
            # identity does not depend on the order streams are requested.
            digest = np.frombuffer(
                name.encode("utf-8").ljust(8, b"\0")[:8], dtype=np.uint64
            )[0]
            ss = np.random.SeedSequence(
                entropy=self._seed, spawn_key=(int(digest) & 0x7FFFFFFF,)
            )
            self._streams[name] = np.random.default_rng(ss)
        return self._streams[name]

    def spawn(self, index: int) -> "RngStreams":
        """Derive a child factory (e.g. one per generated trace replica)."""
        if index < 0:
            raise ValueError("spawn index must be non-negative")
        return RngStreams(self._seed * 1_000_003 + index + 1)

    def names(self) -> Iterator[str]:
        """Names of streams created so far (for debugging)."""
        return iter(sorted(self._streams))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStreams(seed={self._seed}, streams={sorted(self._streams)})"
