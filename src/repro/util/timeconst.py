"""Time constants and helpers.

All simulation times are floats in *seconds* measured from the start of the
trace (t=0).  These constants keep magic numbers out of the scheduler and
workload code.
"""

from __future__ import annotations

MINUTE: float = 60.0
HOUR: float = 3600.0
DAY: float = 86400.0
WEEK: float = 7.0 * DAY


def format_duration(seconds: float) -> str:
    """Render a duration in a compact human-readable form.

    >>> format_duration(3660)
    '1h01m'
    >>> format_duration(45)
    '45s'
    >>> format_duration(90000)
    '1d01h'
    """
    seconds = float(seconds)
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < MINUTE:
        return f"{seconds:.0f}s"
    if seconds < HOUR:
        m, s = divmod(seconds, MINUTE)
        return f"{int(m)}m{int(s):02d}s"
    if seconds < DAY:
        h, rem = divmod(seconds, HOUR)
        return f"{int(h)}h{int(rem // MINUTE):02d}m"
    d, rem = divmod(seconds, DAY)
    return f"{int(d)}d{int(rem // HOUR):02d}h"
