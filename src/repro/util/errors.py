"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """An experiment or simulation configuration is inconsistent."""


class SimulationError(ReproError):
    """The simulator reached a state it cannot make progress from."""


class InvariantViolation(SimulationError):
    """An internal consistency check failed (always a bug, never user error)."""
