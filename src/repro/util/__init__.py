"""Shared utilities: time constants, seeded RNG streams, and error types."""

from repro.util.errors import (
    ConfigurationError,
    InvariantViolation,
    ReproError,
    SimulationError,
)
from repro.util.rng import RngStreams
from repro.util.timeconst import DAY, HOUR, MINUTE, WEEK, format_duration

__all__ = [
    "ConfigurationError",
    "InvariantViolation",
    "ReproError",
    "SimulationError",
    "RngStreams",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "format_duration",
]
