"""Node-count accounting for a machine of identical nodes.

The paper's machines allocate whole nodes exclusively to jobs and nodes are
interchangeable, so the cluster state is fully captured by *counts*: a free
pool plus one allocation count per running job.  Reservations for on-demand
jobs are a logical overlay kept by :class:`repro.core.reservation.ReservationBook`
— reserved-idle nodes live inside the free pool here and the book enforces
``total_held <= free``.

The cluster also integrates free-pool node-seconds over time so the
utilization metric can be cross-checked against per-job accounting.
"""

from __future__ import annotations

from typing import Dict

from repro.util.errors import InvariantViolation


class Cluster:
    """Allocation bookkeeping for *total* identical nodes."""

    __slots__ = (
        "total",
        "free",
        "running",
        "_alloc_total",
        "_last_t",
        "free_node_seconds",
    )

    def __init__(self, total: int) -> None:
        if total <= 0:
            raise ValueError("cluster must have at least one node")
        self.total = int(total)
        self.free = int(total)
        #: job_id -> allocated node count
        self.running: Dict[int, int] = {}
        self._alloc_total = 0
        self._last_t = 0.0
        #: integral of the free pool over time (includes reserved-idle)
        self.free_node_seconds = 0.0

    # ------------------------------------------------------------------
    def advance(self, t: float) -> None:
        """Accumulate the free-pool integral up to time *t*."""
        if t < self._last_t - 1e-6:
            raise InvariantViolation(
                f"cluster clock moved backwards: {self._last_t} -> {t}"
            )
        dt = max(0.0, t - self._last_t)
        self.free_node_seconds += dt * self.free
        self._last_t = t

    # ------------------------------------------------------------------
    def start_job(self, job_id: int, nodes: int) -> None:
        """Allocate *nodes* free nodes exclusively to *job_id*."""
        if nodes <= 0:
            raise InvariantViolation(f"job {job_id}: allocation must be positive")
        if job_id in self.running:
            raise InvariantViolation(f"job {job_id} already has an allocation")
        if nodes > self.free:
            raise InvariantViolation(
                f"job {job_id}: requested {nodes} nodes, only {self.free} free"
            )
        self.free -= nodes
        self.running[job_id] = nodes
        self._alloc_total += nodes
        self._check()

    def end_job(self, job_id: int) -> int:
        """Release a job's allocation back to the free pool; returns count."""
        if job_id not in self.running:
            raise InvariantViolation(f"job {job_id} has no allocation")
        nodes = self.running.pop(job_id)
        self.free += nodes
        self._alloc_total -= nodes
        self._check()
        return nodes

    def resize_job(self, job_id: int, new_nodes: int) -> int:
        """Change a job's allocation; returns the delta (+grow / -shrink)."""
        if job_id not in self.running:
            raise InvariantViolation(f"job {job_id} has no allocation")
        if new_nodes <= 0:
            raise InvariantViolation(
                f"job {job_id}: resize target must be positive, got {new_nodes}"
            )
        delta = new_nodes - self.running[job_id]
        if delta > self.free:
            raise InvariantViolation(
                f"job {job_id}: expand by {delta} exceeds free pool {self.free}"
            )
        self.free -= delta
        self.running[job_id] = new_nodes
        self._alloc_total += delta
        self._check()
        return delta

    # ------------------------------------------------------------------
    def allocation(self, job_id: int) -> int:
        """Current allocation of a running job."""
        if job_id not in self.running:
            raise InvariantViolation(f"job {job_id} has no allocation")
        return self.running[job_id]

    @property
    def used(self) -> int:
        """Total nodes currently allocated to running jobs."""
        return self.total - self.free

    def _check(self) -> None:
        if self.free < 0:
            raise InvariantViolation(f"free pool went negative: {self.free}")
        if self._alloc_total + self.free != self.total:
            raise InvariantViolation(
                f"node conservation broken: alloc={self._alloc_total} "
                f"free={self.free} total={self.total}"
            )
