"""Simulation configuration (§IV-B defaults)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.jobs.checkpoint import CheckpointModel
from repro.sim.failures import FailureModel
from repro.util.errors import ConfigurationError
from repro.util.timeconst import MINUTE

#: Theta's node count (Table I).
THETA_NODES = 4392


@dataclass(frozen=True)
class SimConfig:
    """Knobs of one simulation run.

    Parameters
    ----------
    system_size:
        Number of identical compute nodes (Theta: 4392).
    instant_threshold_s:
        An on-demand job counts as "started instantly" if its start delay
        does not exceed this (arrival-instant starts have delay 0).
    reservation_grace_s:
        "We set the threshold to release the reserved nodes to 10 minutes
        after the on-demand job's estimated arrival time."
    checkpoint:
        Checkpoint cost/interval model for rigid jobs.
    backfill_enabled / backfill_depth:
        EASY backfilling switches (depth None = scan the whole queue).
    allow_reserved_loans:
        Whether backfilled jobs may borrow reserved-idle nodes (§III-B.1).
    flexible_malleable:
        When True the scheduler may start malleable jobs anywhere in
        ``[min_size, max_size]``; the baseline configuration sets this
        False so malleable jobs behave like rigid jobs ("without special
        treatments").
    failures / failure_seed:
        Node-failure injection (extension; off by default — the paper's
        simulations inject none).  The seed feeds a dedicated RNG stream
        so enabling failures perturbs no other randomness.
    force_full_replan:
        Escape hatch for the incremental scheduling core: rebuild the
        availability profile from scratch inside every scheduling pass
        and never skip a pass (the seed behaviour).  Decisions — and
        therefore every simulation-time metric — are identical either
        way (asserted by the differential property tests); only
        wall-clock cost and the ``schedule_passes``/``passes_skipped``
        counters differ.  Used by ``benchmarks/bench_sim_core.py`` as
        the baseline and available for debugging suspected incremental
        drift.
    validate_invariants:
        Run (slow) cross-component consistency checks after every event
        batch; enabled by the test suite.
    """

    system_size: int = THETA_NODES
    instant_threshold_s: float = MINUTE
    reservation_grace_s: float = 10 * MINUTE
    checkpoint: CheckpointModel = field(default_factory=CheckpointModel)
    backfill_enabled: bool = True
    backfill_depth: int | None = None
    #: "easy" (paper default) or "conservative" (every queued job gets a
    #: reservation; extension for the ablation suite)
    backfill_mode: str = "easy"
    allow_reserved_loans: bool = True
    flexible_malleable: bool = True
    failures: FailureModel = field(default_factory=FailureModel.disabled)
    failure_seed: int = 0
    force_full_replan: bool = False
    #: registered policy name (see ``repro.sched.registry``); ``None``
    #: keeps the legacy default (FCFS ordering + ``backfill_mode``'s
    #: planner).  A dispatcher that forces a planner (``easy`` /
    #: ``conservative``) overrides ``backfill_mode``.
    policy: "str | None" = None
    #: tuning knobs passed to the policy factory (e.g. the score
    #: weights or the EWT class table); only valid with ``policy``
    policy_params: Mapping[str, object] = field(default_factory=dict)
    #: record every scheduler decision in result.log (small overhead)
    log_decisions: bool = False
    validate_invariants: bool = False

    def __post_init__(self) -> None:
        if self.system_size <= 0:
            raise ConfigurationError("system_size must be positive")
        if self.instant_threshold_s < 0:
            raise ConfigurationError("instant_threshold_s must be >= 0")
        if self.reservation_grace_s < 0:
            raise ConfigurationError("reservation_grace_s must be >= 0")
        if self.backfill_depth is not None and self.backfill_depth < 0:
            raise ConfigurationError("backfill_depth must be None or >= 0")
        if self.backfill_mode not in ("easy", "conservative"):
            raise ConfigurationError(
                f"backfill_mode must be 'easy' or 'conservative', "
                f"got {self.backfill_mode!r}"
            )
        if self.policy is not None:
            # resolving validates both the name (unknown names list the
            # registry) and the params (bad knobs raise here, not
            # mid-simulation); the import is deferred so `sim` never
            # hard-depends on `sched` at module-import time
            from repro.sched.registry import resolve_dispatcher

            resolve_dispatcher(self.policy, self.policy_params)
        elif self.policy_params:
            raise ConfigurationError(
                "policy_params given without a policy; set policy to "
                "one of the registered names"
            )
