"""Node-failure injection (extension beyond the paper's experiments).

The paper's rigid jobs checkpoint at Daly's optimum *because of
failures*, yet its simulations never inject any — Observation 13 then
shows preemptions dominating the interruption budget.  This module closes
the loop: an exponential failure process per running job lets the
benchmark suite study checkpoint frequency under the regime Daly's
formula actually assumes, and under the mixed failure+preemption regime
of a real hybrid machine.

Model
-----
A job spanning ``n`` nodes fails as a series system: its failure rate is
``n / node_mtbf``.  On a failure the job loses everything after its last
completed checkpoint (rigid) or nothing but its setup (malleable — the
loosely-coupled tasks are re-dispatched), then restarts *in place* after
a fresh setup: the paper's §II-A "restart from the latest checkpoint in
the event of an interruption".  On-demand jobs restart from scratch
(they never checkpoint) — with their short runtimes the expected loss is
negligible.

Failure draws come from a dedicated named RNG stream, so enabling
failures does not perturb any workload-generation randomness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class FailureModel:
    """Per-node exponential failure process.

    Parameters
    ----------
    enabled:
        Off by default — the paper's evaluation injects no failures.
    node_mtbf_s:
        Mean time between failures of a single node.  A job on ``n``
        nodes draws interruption gaps from ``Exp(node_mtbf_s / n)``.
    restart_delay_s:
        Wall-clock delay before the restarted segment begins (node
        reboot / reallocation time).
    """

    enabled: bool = False
    node_mtbf_s: float = 5.0 * 365.0 * 86400.0
    restart_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.node_mtbf_s <= 0:
            raise ConfigurationError("node_mtbf_s must be positive")
        if self.restart_delay_s < 0:
            raise ConfigurationError("restart_delay_s must be >= 0")

    def job_mtbf(self, nodes: int) -> float:
        """Series-system MTBF for a job spanning *nodes* nodes."""
        if nodes <= 0:
            raise ValueError("nodes must be positive")
        return self.node_mtbf_s / nodes

    def draw_time_to_failure(
        self, nodes: int, rng: np.random.Generator
    ) -> float:
        """Sample the wall-clock gap until this allocation's next failure."""
        return float(rng.exponential(self.job_mtbf(nodes)))

    @staticmethod
    def disabled() -> "FailureModel":
        return FailureModel(enabled=False)
