"""The event heap / simulation clock."""

from __future__ import annotations

import heapq
import math
from typing import Any, Dict, List, Optional

from repro.sim.events import Event, EventType
from repro.util.errors import SimulationError


def _batch_tolerance(t: float) -> float:
    """Same-instant tolerance at simulation time *t*.

    Events meant for the same instant are pushed with times computed by
    different float expressions, so they can land a few ULPs apart.  A
    fixed absolute tolerance (the seed used ``1e-9``) silently stops
    batching them once ``ulp(t)`` exceeds it — beyond ``t ~ 1e8`` s
    (month-scale SWF offsets live there after a few replayed years) a
    one-ULP difference split same-instant batches and caused extra
    scheduling passes.  Scale the tolerance with the clock: a few ULPs
    at the current magnitude, floored at the seed's ``1e-9`` so
    behaviour at ordinary trace times is unchanged.
    """
    return max(1e-9, 4.0 * math.ulp(t))


class EventQueue:
    """A time-ordered event queue with deterministic tie-breaking.

    Stale-event handling is the caller's job (events carry payloads such as
    job epochs that handlers validate); the queue itself never cancels.
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulation time (time of the last popped event)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, etype: EventType, **payload: Any) -> Event:
        """Schedule an event; *time* must not precede the current clock."""
        if time < self._now - 1e-6:
            raise SimulationError(
                f"cannot schedule {etype.name} at {time} before now={self._now}"
            )
        ev = Event(time=float(time), type=etype, seq=self._seq, payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock."""
        if not self._heap:
            raise SimulationError("pop() on an empty event queue")
        ev = heapq.heappop(self._heap)
        self._now = ev.time
        return ev

    def peek(self) -> Optional[Event]:
        """The earliest event without removing it, or None if empty."""
        return self._heap[0] if self._heap else None

    def pop_batch(self, out: Optional[List[Event]] = None) -> List[Event]:
        """Pop every event sharing the earliest timestamp, in priority order.

        The scheduler runs once per batch, after all state changes at that
        instant have been applied.  Same-instant grouping uses a
        ULP-relative tolerance (:func:`_batch_tolerance`) so batches are
        not split at large simulation times.

        *out*, when given, is cleared and reused as the batch list — the
        simulator's main loop passes the same list every iteration so the
        hot path allocates nothing per batch.
        """
        if out is None:
            batch: List[Event] = []
        else:
            batch = out
            batch.clear()
        if not self._heap:
            return batch
        t = self._heap[0].time
        tol = _batch_tolerance(t)
        while self._heap and self._heap[0].time - t <= tol:
            batch.append(self.pop())
        return batch

    def counts_by_type(self) -> Dict[str, int]:
        """Pending event counts per type (debugging aid)."""
        out: Dict[str, int] = {}
        for ev in self._heap:
            out[ev.type.name] = out.get(ev.type.name, 0) + 1
        return out
