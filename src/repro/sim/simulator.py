"""The trace-driven, event-driven scheduling simulator (CQSim analogue).

"A real system takes jobs from user submission, while CQSim takes jobs by
reading the job arrival information in the trace.  Rather than executing
jobs on system, CQSim simulates the execution by advancing the simulation
clock according to the job runtime information in the trace."

One :class:`Simulation` object runs one trace under one (mechanism,
policy) pair.  The event loop pops same-timestamp batches (finishes before
planned preemptions before notices before submissions before timeouts) and
runs one scheduling pass after each batch.  All mutation of running jobs —
start, preemption, shrink, expansion — funnels through the methods of this
class so node accounting and per-job statistics stay consistent; the
:class:`~repro.core.coordinator.HybridCoordinator` drives those methods
through the ``SimulatorOps`` surface.

The mutation funnel also maintains the **incremental scheduling state**:
a shared :class:`~repro.sched.profile.AvailabilityTimeline` of running
jobs' predicted releases (updated in place instead of re-derived inside
every planner call) and a dirty bit that lets :meth:`_schedule_pass`
short-circuit batches that provably cannot change any decision — an
event batch made entirely of stale events, or any batch with an empty
wait queue.  ``SimConfig.force_full_replan`` restores the seed
behaviour (full per-pass rebuild, no skipping); decisions and metrics
are identical in both modes.
"""

from __future__ import annotations

import math
import threading
import time as _time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.core.coordinator import HybridCoordinator
from repro.obs import get_obs
from repro.core.mechanisms import Mechanism
from repro.jobs.job import Job, JobState, JobType, NoticeClass
from repro.jobs.malleable_exec import MalleableExecution
from repro.jobs.rigid_exec import RigidExecution, RigidTimeline
from repro.metrics.accumulators import SummaryAccumulator
from repro.sched.conservative import ConservativeBackfillPlanner
from repro.sched.easy import BackfillPlanner
from repro.sched.fcfs import FcfsPolicy
from repro.sched.policy import SchedulingPolicy
from repro.sched.registry import resolve_dispatcher
from repro.sched.profile import AvailabilityTimeline, ProfileView
from repro.sim.cluster import Cluster
from repro.sim.config import SimConfig
from repro.sim.engine import EventQueue
from repro.sim.events import Event, EventType
from repro.sim.schedlog import LogKind, SchedulerLog
from repro.util.errors import ConfigurationError, SimulationError
from repro.util.rng import RngStreams
from repro.workload.stream import JobStream, as_stream

Execution = Union[RigidExecution, MalleableExecution]

EPS = 1e-6


@dataclass
class RunningJob:
    """A running job's simulator-side record (also the coordinator's view)."""

    job: Job
    execution: Execution
    nodes: int
    epoch: int
    started_at: float

    def predicted_finish(self) -> float:
        return self.execution.predicted_finish()

    def preemption_loss(self, t: float) -> float:
        return self.execution.preemption_loss(t)

    def last_checkpoint_completion_at_or_before(self, t: float) -> Optional[float]:
        if isinstance(self.execution, RigidExecution):
            return self.execution.last_checkpoint_completion_at_or_before(t)
        return None


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample stream (count / p50 / p95 / p99 /
    max / mean).

    Stored instead of the raw sample list: a 10k-job campaign cell used
    to drag tens of thousands of floats through every result record for
    two percentiles nobody recomputed.
    """

    count: int = 0
    p50_s: float = 0.0
    p95_s: float = 0.0
    p99_s: float = 0.0
    max_s: float = 0.0
    mean_s: float = 0.0

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        if not samples:
            return cls()
        ordered = sorted(samples)

        def pct(p: float) -> float:
            # nearest-rank: the ceil(p*n)-th smallest sample (1-based).
            # ``int(p * n)`` indexed one past that position whenever
            # ``p*n`` was integral (p50 of [1,2,3,4] returned 3, not 2);
            # this matches Histogram.percentile's ``seen >= p*count``
            # bucket selection, so from_histogram agrees on shared
            # sample streams.
            rank = math.ceil(p * len(ordered))
            return ordered[max(0, min(len(ordered) - 1, rank - 1))]

        return cls(
            count=len(ordered),
            p50_s=pct(0.50),
            p95_s=pct(0.95),
            p99_s=pct(0.99),
            max_s=ordered[-1],
            mean_s=sum(ordered) / len(ordered),
        )

    @classmethod
    def from_histogram(cls, h) -> "LatencyStats":
        """Derive from an obs registry :class:`~repro.obs.registry.Histogram`
        (same sample stream, one source of truth; percentiles are
        bucket-approximate, mean/max exact)."""
        if not h.count:
            return cls()
        return cls(
            count=h.count,
            p50_s=h.percentile(0.50),
            p95_s=h.percentile(0.95),
            p99_s=h.percentile(0.99),
            max_s=h.vmax,
            mean_s=h.mean,
        )


@dataclass
class SimulationResult:
    """Everything a run produced; summarised by :mod:`repro.metrics`."""

    jobs: List[Job]
    mechanism: Optional[str]
    policy: str
    system_size: int
    makespan: float
    first_submit: float
    last_end: float
    reserved_idle_node_seconds: float
    free_node_seconds: float
    decision_latency: LatencyStats = field(default_factory=LatencyStats)
    events_processed: int = 0
    schedule_passes: int = 0
    passes_skipped: int = 0
    wall_time_s: float = 0.0
    lease_resumes: int = 0
    lease_expands: int = 0
    failures_injected: int = 0
    #: populated when SimConfig.log_decisions is set
    log: Optional[SchedulerLog] = None
    #: the streaming metrics funnel, fed at job completion in both input
    #: modes; for streamed runs (``jobs == []``) it is the *only* source
    #: of summary/breakdown metrics
    accumulator: Optional[SummaryAccumulator] = None

    @property
    def horizon(self) -> float:
        return max(self.last_end - self.first_submit, EPS)


class SimScratch:
    """Reusable per-worker simulation scratch buffers.

    A campaign worker runs thousands of short simulations back to back;
    each one used to allocate its own event-batch list, reservation
    overlay, and timeline-backed :class:`ProfileView`.  One
    ``SimScratch`` carries those three across every cell the worker
    executes: :class:`Simulation` calls :meth:`attach` during
    construction, which clears the buffers and rebinds the view to the
    new run's timeline, so no state leaks between cells.  Not
    thread-safe — one scratch per worker thread
    (:func:`process_scratch`), and never share one across concurrently
    running simulations.
    """

    __slots__ = ("batch", "overlay", "view")

    def __init__(self) -> None:
        self.batch: List[Event] = []
        self.overlay: List = []
        self.view = ProfileView(0.0, 0, timeline=None)

    def attach(self, timeline: AvailabilityTimeline) -> "SimScratch":
        """Reset the buffers and bind the view to a new run's timeline."""
        self.batch.clear()
        self.overlay.clear()
        self.view.rebind(timeline)
        return self


_SCRATCH_LOCAL = threading.local()


def process_scratch() -> SimScratch:
    """The calling thread's shared :class:`SimScratch` (created lazily).

    Campaign executors and experiment runners pass this to every
    :class:`Simulation` they construct so a worker's cells reuse one
    set of hot-path buffers.  Thread-local, so a thread pool gets one
    scratch per worker thread and a process pool one per process.
    """
    scratch = getattr(_SCRATCH_LOCAL, "scratch", None)
    if scratch is None:
        scratch = _SCRATCH_LOCAL.scratch = SimScratch()
    return scratch


class Simulation:
    """One trace-driven simulation run.

    Parameters
    ----------
    jobs:
        The workload.  A :class:`~repro.workload.stream.JobStream` (or
        any bare iterator/generator of submit-ordered jobs) selects the
        **streaming** path: jobs are admitted lazily just ahead of the
        event clock and retired the moment they complete, so memory is
        O(in-flight) instead of O(trace) and the result carries an
        :class:`~repro.metrics.accumulators.SummaryAccumulator` in place
        of the per-job list.  A materialized sequence preserves the
        classic behaviour (``result.jobs`` fully populated).  Each job
        is mutated in place (state + stats), so pass a fresh copy per
        run (:func:`repro.workload.trace.clone_jobs`).
    config:
        Machine/behaviour knobs; defaults follow §IV-B.
    mechanism:
        One of the six mechanisms, or ``None`` for the baseline
        (FCFS/EASY with no special treatment of any job class).
    policy:
        Queue-ordering policy: a registered policy name (resolved via
        :mod:`repro.sched.registry`, with ``config.policy_params`` as
        the factory knobs), a :class:`SchedulingPolicy` instance, or
        ``None`` to fall back to ``config.policy`` (and to FCFS when
        that is unset too).  A named dispatcher that forces a planner
        ("easy"/"conservative") overrides ``config.backfill_mode``.
    scratch:
        Optional :class:`SimScratch` whose hot-path buffers this run
        adopts instead of allocating its own (campaign workers share
        one scratch across all their cells; see
        :func:`process_scratch`).  Reset on attach, so no state leaks
        from the previous run; must not be shared by concurrently
        running simulations.
    """

    def __init__(
        self,
        jobs: Union[Sequence[Job], JobStream, Iterable[Job]],
        config: Optional[SimConfig] = None,
        mechanism: Optional[Mechanism] = None,
        policy: Union[None, str, SchedulingPolicy] = None,
        scratch: Optional[SimScratch] = None,
    ) -> None:
        self.config = config or SimConfig()
        self.mechanism = mechanism
        resolved: Union[None, str, SchedulingPolicy] = (
            policy if policy is not None else self.config.policy
        )
        self._forced_backfill_mode: Optional[str] = None
        if isinstance(resolved, str):
            dispatcher = resolve_dispatcher(
                resolved, self.config.policy_params
            )
            self._forced_backfill_mode = dispatcher.backfill_mode
            resolved = dispatcher.ordering
        self.policy = resolved or FcfsPolicy()
        if isinstance(jobs, JobStream):
            stream: Optional[JobStream] = jobs
        elif isinstance(jobs, Sequence):
            stream = None
        else:  # bare generator/iterator: wrap with the default horizon
            stream = as_stream(jobs)
        self._streaming = stream is not None
        #: the job-finish metrics funnel (fed identically in both modes,
        #: which is what makes streamed and materialized summaries match
        #: byte for byte)
        self.metrics = SummaryAccumulator(
            instant_threshold_s=self.config.instant_threshold_s
        )
        if stream is not None:
            self.jobs: List[Job] = []
            self.jobs_by_id: Dict[int, Job] = {}
            self._stream_it: Optional[Iterator[Job]] = iter(stream)
            # +1 s pad: admission only ever moves *earlier*, and the pad
            # absorbs producers whose declared horizon is exact-to-the-ULP
            self._notice_horizon_s = stream.notice_horizon_s + 1.0
            self._stream_next: Optional[Job] = next(self._stream_it, None)
        else:
            self.jobs = list(jobs)
            self._validate_jobs()
            self.jobs_by_id = {j.job_id: j for j in self.jobs}
            self._stream_it = None
            self._stream_next = None
            self._notice_horizon_s = 0.0
        #: streaming-mode bookkeeping that replaces end-of-run scans of
        #: the (absent) job list
        self._last_admit_submit = -math.inf
        self._admit_first_submit = math.inf
        self._admit_last_end = 0.0
        self._n_arrivals_admitted = 0
        self._n_completed = 0

        self.equeue = EventQueue()
        self.cluster = Cluster(self.config.system_size)
        self.coordinator = HybridCoordinator(
            mechanism, self, reservation_grace_s=self.config.reservation_grace_s
        )
        backfill_mode = (
            self._forced_backfill_mode or self.config.backfill_mode
        )
        if backfill_mode == "conservative":
            self.planner = ConservativeBackfillPlanner(
                flexible_malleable=self.config.flexible_malleable
            )
        else:
            self.planner = BackfillPlanner(
                backfill_enabled=self.config.backfill_enabled,
                backfill_depth=self.config.backfill_depth,
                allow_loans=self.config.allow_reserved_loans,
                flexible_malleable=self.config.flexible_malleable,
            )
        self.queue: List[Job] = []
        self.running: Dict[int, RunningJob] = {}
        self._executions: Dict[int, Execution] = {}
        self._epochs: Dict[int, int] = {}
        self._events_processed = 0
        self._schedule_passes = 0
        self._passes_skipped = 0
        #: incrementally maintained (release, nodes) blocks per running
        #: job; not maintained under force_full_replan, where every pass
        #: rebuilds its availability view from scratch instead
        self.timeline = AvailabilityTimeline()
        self._track_timeline = not self.config.force_full_replan
        #: True when something planning-relevant (queue, free pool,
        #: reservations, predicted releases) changed since the last
        #: executed scheduling pass
        self._sched_dirty = True
        # built lazily on first draw: SeedSequence + Generator setup is
        # ~20% of a short cell's wall time and most configs never inject
        # a failure; laziness cannot perturb draws (the stream is seeded
        # independently of construction order)
        self._failure_rng = None
        self._failures_injected = 0
        self.log = SchedulerLog(enabled=self.config.log_decisions)
        # Instrumentation (repro.obs): metric objects are resolved once
        # here — with the default disabled bundle every one is a shared
        # no-op, so the funnel pays a single no-op method call per hit.
        # Per-event totals are flushed in bulk at the end of run().
        obs = self._obs = get_obs()
        self._c_timeline_upserts = obs.counter("sim.timeline.upserts")
        self._c_timeline_removes = obs.counter("sim.timeline.removes")
        self._c_dirty = {
            cause: obs.counter(f"sim.dirty.{cause}")
            for cause in (
                "start",
                "finish",
                "preempt",
                "resize",
                "submit",
                "coordinator",
            )
        }
        # Hot-path reuse: one batch list, one reservation-overlay list,
        # and one timeline-backed ProfileView serve the whole run, so
        # the per-batch loop allocates nothing for its fixed machinery.
        # A caller-supplied SimScratch extends the reuse across runs:
        # campaign workers hand every cell's Simulation the same scratch.
        if scratch is not None:
            scratch.attach(self.timeline)
            self._batch = scratch.batch
            self._resv_overlay = scratch.overlay
            self._view = scratch.view
        else:
            self._batch = []
            self._resv_overlay = []
            self._view = ProfileView(0.0, 0, timeline=self.timeline)
        if not self._streaming:
            self._seed_events()

    # ------------------------------------------------------------------
    def _validate_job(self, job: Job) -> None:
        if job.size > self.config.system_size:
            raise ConfigurationError(
                f"job {job.job_id} needs {job.size} nodes but the "
                f"system has {self.config.system_size}"
            )
        if job.state is not JobState.PENDING:
            raise ConfigurationError(
                f"job {job.job_id} enters the simulation in state "
                f"{job.state.value}; pass fresh jobs (clone_jobs)"
            )

    def _validate_jobs(self) -> None:
        seen = set()
        for job in self.jobs:
            if job.job_id in seen:
                raise ConfigurationError(f"duplicate job id {job.job_id}")
            seen.add(job.job_id)
            self._validate_job(job)

    @staticmethod
    def _is_noticed(job: Job) -> bool:
        return (
            job.is_ondemand
            and job.notice_class is not NoticeClass.NONE
            and job.notice_time is not None
        )

    def _seed_events(self) -> None:
        for job in self.jobs:
            if job.no_show:
                self.metrics.observe_noshow(job)
            else:
                self.equeue.push(
                    job.submit_time, EventType.JOB_SUBMIT, job_id=job.job_id
                )
            if self._is_noticed(job):
                self.equeue.push(
                    job.notice_time, EventType.ADVANCE_NOTICE, job_id=job.job_id
                )

    # ------------------------------------------------------------------
    # Streaming admission (generator-backed workloads)
    # ------------------------------------------------------------------
    def _pump_stream(self) -> None:
        """Admit stream jobs whose events could precede the next batch.

        Invariant: a job left *unadmitted* has every event strictly in
        the future.  The stream is submit-ordered and every notice fires
        within ``notice_horizon_s`` of its submission, so the next job
        is safe to defer exactly when ``submit - horizon`` lies beyond
        the head of the event heap; once that stops holding (or the heap
        runs dry) the job is admitted, which pushes its events at times
        no earlier than the head.  Called before each batch pop, this
        keeps the in-flight window tight without ever scheduling an
        event in the past.
        """
        nxt = self._stream_next
        if nxt is None:
            return
        horizon = self._notice_horizon_s
        equeue = self.equeue
        while nxt is not None:
            front = equeue.peek()
            if front is not None and nxt.submit_time - horizon > front.time:
                break
            self._admit(nxt)
            nxt = next(self._stream_it, None)
        self._stream_next = nxt

    def _admit(self, job: Job) -> None:
        """Bring one streamed job into the in-flight window."""
        if job.submit_time + EPS < self._last_admit_submit:
            raise ConfigurationError(
                f"job stream is not sorted by submit time: job "
                f"{job.job_id} submits at {job.submit_time} after "
                f"{self._last_admit_submit}"
            )
        if job.submit_time > self._last_admit_submit:
            self._last_admit_submit = job.submit_time
        self._validate_job(job)
        if job.job_id in self.jobs_by_id:
            raise ConfigurationError(f"duplicate job id {job.job_id}")
        if job.submit_time < self._admit_first_submit:
            self._admit_first_submit = job.submit_time
        noticed = self._is_noticed(job)
        if job.no_show:
            self.metrics.observe_noshow(job)
            if not noticed:
                return  # pushes no events: nothing to retain
        else:
            self._n_arrivals_admitted += 1
        self.jobs_by_id[job.job_id] = job
        if not job.no_show:
            self.equeue.push(
                job.submit_time, EventType.JOB_SUBMIT, job_id=job.job_id
            )
        if noticed:
            self.equeue.push(
                job.notice_time, EventType.ADVANCE_NOTICE, job_id=job.job_id
            )

    def _retire(self, job_id: int) -> None:
        """Drop a settled job from the in-flight window (streaming only).

        Late references are all benign by construction:
        :meth:`lookup_job` reports a retired job as ``None`` and every
        coordinator path treats that as "already done", while stale
        finish/failure events bounce off the epoch guard before touching
        ``jobs_by_id``.
        """
        self.jobs_by_id.pop(job_id, None)
        self._executions.pop(job_id, None)
        self._epochs.pop(job_id, None)

    # ------------------------------------------------------------------
    # SimulatorOps surface (driven by the coordinator)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.equeue.now

    def usable_free(self) -> int:
        """Free nodes not held by any reservation."""
        return self.cluster.free - self.coordinator.book.total_held

    def running_views(self) -> List[RunningJob]:
        return list(self.running.values())

    def lookup_job(self, job_id: int) -> Optional[Job]:
        """The in-flight job with this id, or ``None`` once retired.

        Streamed runs drop completed jobs from the window, so a late
        reference (a planned preemption whose victim already finished, a
        lease whose lender completed before its on-demand borrower) sees
        ``None`` — which callers treat as "job already done", matching
        the state guards they apply to materialized runs.
        """
        return self.jobs_by_id.get(job_id)

    def push_planned_preempt(self, fire: float, od_id: int, victim_id: int) -> None:
        self.equeue.push(
            max(fire, self.now),
            EventType.PLANNED_PREEMPT,
            od_id=od_id,
            victim_id=victim_id,
        )

    def push_reservation_timeout(self, fire: float, od_id: int) -> None:
        if math.isfinite(fire):
            self.equeue.push(max(fire, self.now), EventType.RESERVATION_TIMEOUT, od_id=od_id)

    def mark_sched_dirty(self) -> None:
        """Note a planning-relevant state change made outside the funnel.

        The coordinator calls this when it mutates reservation state
        directly (notice-time reservations, timeout releases); every
        funnel method on this class marks itself.
        """
        self._sched_dirty = True
        self._c_dirty["coordinator"].inc()

    # ------------------------------------------------------------------
    # Job lifecycle operations
    # ------------------------------------------------------------------
    def _execution_for(self, job: Job) -> Execution:
        ex = self._executions.get(job.job_id)
        if ex is None:
            if job.is_malleable:
                ex = MalleableExecution(job)
            else:
                if job.is_rigid:
                    interval = self.config.checkpoint.interval(job.size)
                    cost = self.config.checkpoint.cost(job.size)
                else:  # on-demand jobs never checkpoint
                    interval, cost = math.inf, 0.0
                ex = RigidExecution(job, interval=interval, cost=cost)
            self._executions[job.job_id] = ex
        return ex

    def _start_job(
        self,
        job: Job,
        nodes: int,
        loans: Optional[Dict[int, int]] = None,
    ) -> None:
        """Start *job* on *nodes* nodes, borrowing per *loans* if given."""
        try:
            self.queue.remove(job)
        except ValueError as exc:
            raise SimulationError(
                f"job {job.job_id} started while not in the wait queue"
            ) from exc
        t = self.now
        self.cluster.start_job(job.job_id, nodes)
        if loans:
            for rid, k in loans.items():
                res = self.coordinator.book.get(rid)
                if res is None:
                    raise SimulationError(
                        f"loan from vanished reservation {rid} for job {job.job_id}"
                    )
                self.coordinator.book.loan_out(res, job.job_id, k)
        ex = self._execution_for(job)
        if isinstance(ex, MalleableExecution):
            ex.start_segment(t, nodes)
        else:
            if nodes != job.size:
                raise SimulationError(
                    f"{job.job_type.value} job {job.job_id} started on "
                    f"{nodes} != {job.size} nodes"
                )
            ex.start_segment(t)
        epoch = self._epochs.get(job.job_id, 0) + 1
        self._epochs[job.job_id] = epoch
        rj = RunningJob(job=job, execution=ex, nodes=nodes, epoch=epoch, started_at=t)
        self.running[job.job_id] = rj
        self._sched_dirty = True
        self._c_dirty["start"].inc()
        if self._track_timeline:
            self.timeline.set_block(job.job_id, rj.predicted_finish(), nodes)
            self._c_timeline_upserts.inc()
        job.set_state(JobState.RUNNING)
        if job.stats.first_start is None:
            job.stats.first_start = t
        job.stats.last_start = t
        job.stats.segment_sizes.append(nodes)
        self.equeue.push(
            ex.finish_time(), EventType.JOB_FINISH, job_id=job.job_id, epoch=epoch
        )
        self._maybe_schedule_failure(rj)
        self.log.add(
            t,
            LogKind.START,
            job.job_id,
            nodes=nodes,
            detail="resume" if job.stats.preemptions else "",
        )

    def start_od_job(self, job: Job) -> None:
        """Start an on-demand job at its full size from the free pool."""
        self._start_job(job, job.size, None)

    def resume_from_queue(self, job: Job, nodes: int) -> None:
        """Lease-return resume (§III-B.3), bypassing the policy order."""
        self._start_job(job, nodes, None)

    @staticmethod
    def _record_segment(rj: RunningJob, start: float, end: float, allocated: float) -> None:
        if end > start + EPS:
            rj.job.stats.segment_records.append(
                (start, end, allocated / (end - start))
            )

    def preempt_running_job(self, job_id: int, reason: str) -> int:
        """Preempt a running job; returns the released node count.

        The caller (coordinator) is responsible for distributing the
        released nodes via ``on_job_release`` so targeted claims and loan
        returns happen in the right order.
        """
        rj = self.running.pop(job_id, None)
        if rj is None:
            raise SimulationError(f"preempt of non-running job {job_id}")
        self._sched_dirty = True
        self._c_dirty["preempt"].inc()
        if self._track_timeline:
            self.timeline.remove_block(job_id)
            self._c_timeline_removes.inc()
        job = rj.job
        acc = rj.execution.preempt(self.now)
        self._record_segment(rj, rj.started_at, self.now, acc.allocated)
        st = job.stats
        st.allocated_node_seconds += acc.allocated
        st.setup_node_seconds += acc.setup
        st.wasted_setup_node_seconds += acc.setup  # preempted segment: all waste
        st.retained_node_seconds += getattr(acc, "retained", acc.compute)
        st.lost_node_seconds += getattr(acc, "lost", 0.0)
        st.checkpoint_node_seconds += getattr(acc, "checkpoint", 0.0)
        st.preemptions += 1
        job.set_state(JobState.QUEUED)
        self.queue.append(job)
        self._epochs[job_id] = self._epochs.get(job_id, 0) + 1
        released = self.cluster.end_job(job_id)
        self.log.add(
            self.now, LogKind.PREEMPT, job_id, nodes=released, detail=reason
        )
        return released

    def shrink_running_malleable(self, job_id: int, take: int) -> int:
        """Shrink a running malleable job by *take* nodes; returns *take*."""
        rj = self.running.get(job_id)
        if rj is None:
            raise SimulationError(f"shrink of non-running job {job_id}")
        if not isinstance(rj.execution, MalleableExecution):
            raise SimulationError(f"shrink of non-malleable job {job_id}")
        new_nodes = rj.nodes - take
        rj.execution.resize(self.now, new_nodes)
        self.cluster.resize_job(job_id, new_nodes)
        rj.nodes = new_nodes
        rj.job.stats.shrinks += 1
        self._reschedule_finish(rj)
        self.log.add(self.now, LogKind.SHRINK, job_id, nodes=take)
        return take

    def expand_running_malleable(self, job_id: int, give: int) -> int:
        """Expand a running malleable job by up to *give* nodes."""
        rj = self.running.get(job_id)
        if rj is None:
            raise SimulationError(f"expand of non-running job {job_id}")
        if not isinstance(rj.execution, MalleableExecution):
            raise SimulationError(f"expand of non-malleable job {job_id}")
        new_nodes = min(rj.job.max_size, rj.nodes + give)
        if new_nodes == rj.nodes:
            return 0
        rj.execution.resize(self.now, new_nodes)
        self.cluster.resize_job(job_id, new_nodes)
        grown = new_nodes - rj.nodes
        rj.nodes = new_nodes
        rj.job.stats.expands += 1
        self._reschedule_finish(rj)
        self.log.add(self.now, LogKind.EXPAND, job_id, nodes=grown)
        return grown

    def _reschedule_finish(self, rj: RunningJob) -> None:
        rj.epoch += 1
        self._epochs[rj.job.job_id] = rj.epoch
        self._sched_dirty = True
        self._c_dirty["resize"].inc()
        if self._track_timeline:
            self.timeline.set_block(
                rj.job.job_id, rj.predicted_finish(), rj.nodes
            )
            self._c_timeline_upserts.inc()
        self.equeue.push(
            rj.execution.finish_time(),
            EventType.JOB_FINISH,
            job_id=rj.job.job_id,
            epoch=rj.epoch,
        )
        # Redraw the failure gap for the new epoch; the exponential is
        # memoryless, so a fresh draw is statistically equivalent.
        self._maybe_schedule_failure(rj)

    def _maybe_schedule_failure(self, rj: RunningJob) -> None:
        """Arm a failure event for this allocation if injection is on."""
        fm = self.config.failures
        if not fm.enabled:
            return
        # Anchor the draw at the segment start so a restart delay cannot
        # produce a failure that precedes the restarted segment.
        base = self.now
        ex = rj.execution
        if isinstance(ex, RigidExecution) and ex.timeline is not None:
            base = max(base, ex.timeline.start)
        elif isinstance(ex, MalleableExecution):
            base = max(base, ex._last_update)
        if self._failure_rng is None:
            self._failure_rng = RngStreams(
                self.config.failure_seed
            ).get("failures")
        gap = fm.draw_time_to_failure(rj.nodes, self._failure_rng)
        at = base + gap
        if at < rj.execution.finish_time() - EPS:
            self.equeue.push(
                at, EventType.JOB_FAILURE, job_id=rj.job.job_id, epoch=rj.epoch
            )

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _handle_submit(self, job_id: int) -> None:
        job = self.jobs_by_id[job_id]
        job.set_state(JobState.QUEUED)
        self.queue.append(job)
        self._sched_dirty = True
        self._c_dirty["submit"].inc()
        self.log.add(self.now, LogKind.SUBMIT, job_id, nodes=job.size)
        if job.is_ondemand:
            self.coordinator.on_od_arrival(job)

    def _handle_notice(self, job_id: int) -> None:
        job = self.jobs_by_id[job_id]
        job.set_state(JobState.NOTICED)
        self.log.add(
            self.now,
            LogKind.NOTICE,
            job_id,
            nodes=job.size,
            detail=f"eta={job.estimated_arrival:.0f}",
        )
        self.coordinator.on_advance_notice(job)
        if (
            self._streaming
            and job.no_show
            and self.coordinator.book.get(job_id) is None
        ):
            # no reservation was opened (baseline / NOTHING strategy),
            # so no timeout will ever fire for this no-show: this notice
            # was its last event
            self._retire(job_id)

    def _handle_finish(self, job_id: int, epoch: int) -> None:
        rj = self.running.get(job_id)
        if rj is None or rj.epoch != epoch:
            return  # stale event from before a resize/preemption
        self._sched_dirty = True
        self._c_dirty["finish"].inc()
        if self._track_timeline:
            self.timeline.remove_block(job_id)
            self._c_timeline_removes.inc()
        job = rj.job
        acc = rj.execution.complete(self.now)
        self._record_segment(rj, rj.started_at, self.now, acc.allocated)
        st = job.stats
        st.allocated_node_seconds += acc.allocated
        st.setup_node_seconds += acc.setup
        st.retained_node_seconds += getattr(acc, "retained", acc.compute)
        st.lost_node_seconds += getattr(acc, "lost", 0.0)
        st.checkpoint_node_seconds += getattr(acc, "checkpoint", 0.0)
        del self.running[job_id]
        job.set_state(JobState.COMPLETED)
        st.end_time = self.now
        released = self.cluster.end_job(job_id)
        self.log.add(self.now, LogKind.FINISH, job_id, nodes=released)
        self.metrics.observe_finished(job)
        if job.is_ondemand:
            self.coordinator.on_od_completion(job)
        else:
            self.coordinator.on_job_release(job_id, released)
        if self._streaming:
            self._n_completed += 1
            if self.now > self._admit_last_end:
                self._admit_last_end = self.now
            self._retire(job_id)

    def _handle_failure(self, job_id: int, epoch: int) -> None:
        """A node under this job failed: roll back and restart in place.

        The allocation is kept (§II-A: rigid applications "restart from
        the latest checkpoint in the event of an interruption"); the job
        pays a fresh setup and, for rigid jobs, loses the compute after
        its last completed checkpoint.
        """
        rj = self.running.get(job_id)
        if rj is None or rj.epoch != epoch:
            return  # stale: the segment this failure was drawn for is gone
        self._failures_injected += 1
        job = rj.job
        acc = rj.execution.preempt(self.now)
        self._record_segment(rj, rj.started_at, self.now, acc.allocated)
        st = job.stats
        st.allocated_node_seconds += acc.allocated
        st.setup_node_seconds += acc.setup
        st.wasted_setup_node_seconds += acc.setup
        st.retained_node_seconds += getattr(acc, "retained", acc.compute)
        st.lost_node_seconds += getattr(acc, "lost", 0.0)
        st.checkpoint_node_seconds += getattr(acc, "checkpoint", 0.0)
        st.failures += 1
        restart = self.now + self.config.failures.restart_delay_s
        ex = rj.execution
        if isinstance(ex, MalleableExecution):
            ex.start_segment(restart, rj.nodes)
        else:
            ex.start_segment(restart)
        rj.started_at = restart
        st.segment_sizes.append(rj.nodes)
        self._reschedule_finish(rj)
        self.log.add(self.now, LogKind.FAILURE, job_id, nodes=rj.nodes)

    def _handle_planned_preempt(self, od_id: int, victim_id: int) -> None:
        self.coordinator.on_planned_preempt(od_id, victim_id)

    def _handle_timeout(self, od_id: int) -> None:
        self.coordinator.on_reservation_timeout(od_id)
        if self._streaming:
            job = self.jobs_by_id.get(od_id)
            if job is not None and job.no_show:
                # the expired reservation was this announced no-show's
                # last trace of activity
                if job.state not in (JobState.PENDING, JobState.NOTICED):
                    raise SimulationError(
                        f"no-show job {od_id} somehow reached state "
                        f"{job.state.value}"
                    )
                self._retire(od_id)

    # ------------------------------------------------------------------
    # Scheduling pass
    # ------------------------------------------------------------------
    def _predict_wall(self, job: Job, nodes: int) -> float:
        """Estimated wall-clock duration of *job* if started now on *nodes*."""
        ex = self._executions.get(job.job_id)
        if job.is_malleable:
            pad = (job.estimate - job.runtime) * job.size
            if isinstance(ex, MalleableExecution):
                work = ex.work_remaining + pad
            else:
                work = job.estimate_node_seconds
            return job.setup_time + work / nodes
        if job.is_ondemand:
            return job.setup_time + job.estimate
        # rigid: include checkpoint overheads in the prediction
        base = ex.completed_work if isinstance(ex, RigidExecution) else 0.0
        est_total = max(job.estimate, base + EPS)
        tl = RigidTimeline(
            start=0.0,
            setup=job.setup_time,
            base_work=base,
            total_work=est_total,
            interval=self.config.checkpoint.interval(job.size),
            cost=self.config.checkpoint.cost(job.size),
        )
        return tl.wall_for_work(est_total)

    def _reservation_blocks(self) -> List:
        """Reservation pseudo-blocks: held nodes release when the owning
        on-demand job is predicted to finish.  Recomputed per pass (the
        release time of an *arrived* reservation tracks ``now``) into a
        single reused list; active reservations are few, so this overlay
        stays cheap."""
        blocks = self._resv_overlay
        blocks.clear()
        for r in self.coordinator.book.active_reservations():
            if r.held <= 0:
                continue
            od = self.jobs_by_id[r.od_job_id]
            release = (
                self.now + od.estimate
                if r.arrived
                else r.estimated_arrival + od.estimate
            )
            # clamp to strictly after now: the profile builder folds
            # blocks at t <= now + EPS into *present* free capacity,
            # and held nodes are by definition not startable now — the
            # conservative planner would otherwise start backfills on
            # them without loans (oversubscribing the free pool)
            blocks.append((max(release, self.now + 2 * EPS), r.held))
        return blocks

    def _availability_view(self, usable: int) -> ProfileView:
        """This instant's planner-facing availability profile."""
        overlay = self._reservation_blocks()
        if not self._track_timeline:
            # seed behaviour: re-derive every block from the running set
            blocks = [
                (rj.predicted_finish(), rj.nodes)
                for rj in self.running.values()
            ]
            blocks.extend(overlay)
            return ProfileView.from_blocks(self.now, usable, blocks)
        return self._view.reset(self.now, usable, overlay)

    def _has_clock_tracking_block(self) -> bool:
        """Does any reservation pseudo-block's release move with ``now``?

        Running jobs' predicted finishes are fixed between funnel
        mutations, but a reservation's pseudo-block releases at
        ``max(release, now)`` where ``release`` is ``now + estimate``
        for an *arrived* reservation (always clock-tracking) or
        ``estimated_arrival + estimate`` for a pending one — which also
        starts tracking the clock once that instant is overdue (the
        ``max`` clamps it to ``now``; reachable for LATE-notice jobs
        with short estimates inside the grace window).  Such a block
        can reorder against fixed blocks as time passes, voiding the
        stale-batch skip's time-invariance argument.
        """
        for r in self.coordinator.book.holding_reservations():
            if r.arrived:
                return True
            od = self.jobs_by_id[r.od_job_id]
            if r.estimated_arrival + od.estimate <= self.now + EPS:
                return True
        return False

    def _can_skip_pass(self) -> bool:
        """Is this pass provably a no-op?

        Two cases, both exact (never heuristic — skipping must not be
        able to change a single decision):

        * **Empty queue.**  There is nothing to order, nothing to start,
          and no waiting on-demand job for the pre-phase (those sit in
          the queue too).
        * **Nothing changed.**  No funnel mutation, queue change, or
          reservation change happened since the last executed pass —
          the event batch was entirely stale events — so the planner
          would see byte-identical inputs except ``now``.  With a
          time-invariant policy the queue order is unchanged, and as
          ``now`` advances against releases fixed in time, backfill
          windows only shrink and extra-node budgets cannot change, so
          a plan that started nothing then starts nothing now.  That
          argument requires every block's release to actually be fixed
          — a clock-tracking reservation pseudo-block (it can reorder
          against fixed blocks and grow the extra-node budget) refuses
          this skip (:meth:`_has_clock_tracking_block`).
        """
        if not self.queue:
            # any pending dirtiness is consumed: a no-op pass over an
            # empty queue re-establishes the clean fixpoint
            self._sched_dirty = False
            return True
        return (
            not self._sched_dirty
            and self.policy.time_invariant
            and not self._has_clock_tracking_block()
        )

    def _schedule_pass(self) -> None:
        if not self.config.force_full_replan and self._can_skip_pass():
            self._passes_skipped += 1
            return
        self._schedule_passes += 1
        # attrs deliberately omitted: this span fires once per executed
        # pass and is the hottest traced region — the enabled-path
        # budget (bench_sim_core) leaves no room for per-pass kwargs
        with self._obs.span("sim.pass"):
            self._schedule_pass_body()

    def _schedule_pass_body(self) -> None:
        self._sched_dirty = False
        book = self.coordinator.book
        # Pre-phase: waiting on-demand jobs assemble nodes via their
        # (still-collecting) reservations, earliest arrival first.
        if self.mechanism is not None:
            waiting_od = sorted(
                (j for j in self.queue if j.is_ondemand),
                key=lambda j: (j.submit_time, j.job_id),
            )
            for od in waiting_od:
                self.coordinator.try_start_queued_od(od)
        if not self.queue:
            return
        usable = self.usable_free()
        loanable = [
            (r.od_job_id, r.held)
            for r in book.active_reservations()
            if not r.arrived and r.held > 0
        ]
        if usable <= 0 and not loanable:
            return
        ordered = self.policy.order(
            self.queue, self.now, prioritize_ondemand=self.mechanism is not None
        )
        decisions = self.planner.plan(
            profile=self._availability_view(usable),
            ordered_queue=ordered,
            loanable=loanable,
            predict_wall=self._predict_wall,
        )
        for d in decisions:
            self._start_job(d.job, d.nodes, d.loans or None)

    # ------------------------------------------------------------------
    # Invariant validation (tests / debug runs)
    # ------------------------------------------------------------------
    def validate_state(self) -> None:
        self.coordinator.book.validate(self.cluster.free)
        for job_id, rj in self.running.items():
            if self.cluster.allocation(job_id) != rj.nodes:
                raise SimulationError(
                    f"job {job_id}: cluster says "
                    f"{self.cluster.allocation(job_id)} nodes, record says "
                    f"{rj.nodes}"
                )
            if rj.job.state is not JobState.RUNNING:
                raise SimulationError(
                    f"job {job_id} in running set but state {rj.job.state}"
                )
        for job in self.queue:
            if job.state is not JobState.QUEUED:
                raise SimulationError(
                    f"job {job.job_id} in queue but state {job.state}"
                )
        if self.usable_free() < 0:
            raise SimulationError(
                f"reservations hold {self.coordinator.book.total_held} nodes "
                f"but only {self.cluster.free} are free"
            )
        if self._track_timeline:
            self.timeline.validate_against(
                {
                    job_id: (rj.predicted_finish(), rj.nodes)
                    for job_id, rj in self.running.items()
                }
            )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Run the trace to completion and return the result record."""
        t0 = _time.perf_counter()
        dispatch = {
            EventType.JOB_SUBMIT: lambda p: self._handle_submit(p["job_id"]),
            EventType.ADVANCE_NOTICE: lambda p: self._handle_notice(p["job_id"]),
            EventType.JOB_FINISH: lambda p: self._handle_finish(
                p["job_id"], p["epoch"]
            ),
            EventType.JOB_FAILURE: lambda p: self._handle_failure(
                p["job_id"], p["epoch"]
            ),
            EventType.PLANNED_PREEMPT: lambda p: self._handle_planned_preempt(
                p["od_id"], p["victim_id"]
            ),
            EventType.RESERVATION_TIMEOUT: lambda p: self._handle_timeout(
                p["od_id"]
            ),
        }
        n_jobs_hint = -1 if self._streaming else len(self.jobs)
        with self._obs.span("sim.run", jobs=n_jobs_hint), \
                self._obs.memory.section("sim.run"):
            while True:
                if self._streaming:
                    self._pump_stream()
                if not len(self.equeue):
                    break
                batch = self.equeue.pop_batch(self._batch)
                now = self.now
                self.cluster.advance(now)
                self.coordinator.book.advance(now)
                for ev in batch:
                    self._events_processed += 1
                    dispatch[ev.type](ev.payload)
                self._schedule_pass()
                if self.config.validate_invariants:
                    self.validate_state()
        # bulk-flush loop totals: one counter call per run, not per event
        obs = self._obs
        obs.counter("sim.events.processed").inc(self._events_processed)
        obs.counter("sim.passes.run").inc(self._schedule_passes)
        obs.counter("sim.passes.skipped").inc(self._passes_skipped)
        if obs.enabled:
            h = obs.histogram("sched.decision.latency_s")
            for sample in self.coordinator.decision_latencies:
                h.observe(sample)

        if self.running or self.queue:
            raise SimulationError(
                f"simulation drained its events with {len(self.running)} jobs "
                f"running and {len(self.queue)} queued — scheduling deadlock "
                f"(free={self.cluster.free}, "
                f"held={self.coordinator.book.total_held})"
            )

        if self._streaming:
            # The per-job list is gone; the admission/finish counters
            # and the retained window answer the same questions the
            # materialized scans below do.
            for job in self.jobs_by_id.values():
                if not job.no_show:
                    raise SimulationError("some jobs never completed")
                if job.state not in (JobState.PENDING, JobState.NOTICED):
                    raise SimulationError(
                        f"no-show job {job.job_id} somehow reached state "
                        f"{job.state.value}"
                    )
            if self._n_completed != self._n_arrivals_admitted:
                raise SimulationError("some jobs never completed")
            first_submit = (
                self._admit_first_submit
                if math.isfinite(self._admit_first_submit)
                else 0.0
            )
            last_end = self._admit_last_end
        else:
            arrived = [j for j in self.jobs if not j.no_show]
            ends = [
                j.stats.end_time
                for j in arrived
                if j.stats.end_time is not None
            ]
            if len(ends) != len(arrived):
                raise SimulationError("some jobs never completed")
            for job in self.jobs:
                if job.no_show and job.state not in (
                    JobState.PENDING,
                    JobState.NOTICED,
                ):
                    raise SimulationError(
                        f"no-show job {job.job_id} somehow reached state "
                        f"{job.state.value}"
                    )
            first_submit = (
                min(j.submit_time for j in self.jobs) if self.jobs else 0.0
            )
            last_end = max(ends) if ends else 0.0
        return SimulationResult(
            jobs=self.jobs,
            mechanism=self.mechanism.name if self.mechanism else None,
            policy=self.policy.name,
            system_size=self.config.system_size,
            makespan=last_end,
            first_submit=first_submit,
            last_end=last_end,
            reserved_idle_node_seconds=self.coordinator.book.held_node_seconds,
            free_node_seconds=self.cluster.free_node_seconds,
            decision_latency=LatencyStats.from_samples(
                self.coordinator.decision_latencies
            ),
            events_processed=self._events_processed,
            schedule_passes=self._schedule_passes,
            passes_skipped=self._passes_skipped,
            wall_time_s=_time.perf_counter() - t0,
            lease_resumes=self.coordinator.lease_resumes,
            lease_expands=self.coordinator.lease_expands,
            failures_injected=self._failures_injected,
            log=self.log if self.config.log_decisions else None,
            accumulator=self.metrics,
        )
