"""Structured scheduler decision log (opt-in).

Production schedulers keep an auditable event log; so does this
simulator when ``SimConfig(log_decisions=True)``.  Every lifecycle
decision — start, finish, preemption (with reason), shrink, expand,
reservation create/release, lease settlement — is appended as a
:class:`LogEntry`.  The log is the raw material for the Gantt-style
analyses in `repro.metrics.breakdown` and for debugging mechanism
behaviour on a specific trace ("why was job 17 preempted at 09:12?").

The log costs one dataclass append per decision; it is off by default so
large campaign grids pay nothing.
"""

from __future__ import annotations

import enum
import json
import os
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.util.timeconst import format_duration


class LogKind(enum.Enum):
    SUBMIT = "submit"
    NOTICE = "notice"
    START = "start"
    FINISH = "finish"
    PREEMPT = "preempt"
    FAILURE = "failure"
    SHRINK = "shrink"
    EXPAND = "expand"
    RESERVE = "reserve"
    RESERVATION_RELEASED = "reservation_released"
    LEASE_RETURN = "lease_return"


@dataclass(frozen=True)
class LogEntry:
    """One scheduler decision."""

    time: float
    kind: LogKind
    job_id: int
    nodes: int = 0
    detail: str = ""

    def render(self) -> str:
        extra = f" {self.detail}" if self.detail else ""
        nodes = f" n={self.nodes}" if self.nodes else ""
        return (
            f"[{format_duration(self.time):>8}] "
            f"{self.kind.value:<20} job={self.job_id}{nodes}{extra}"
        )

    def to_json_line(self) -> str:
        """One JSONL record (no trailing newline), key-sorted for
        byte-stable output on identical logs."""
        return json.dumps(
            {
                "time": self.time,
                "kind": self.kind.value,
                "job_id": self.job_id,
                "nodes": self.nodes,
                "detail": self.detail,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json_line(cls, line: str) -> "LogEntry":
        data = json.loads(line)
        return cls(
            time=float(data["time"]),
            kind=LogKind(data["kind"]),
            job_id=int(data["job_id"]),
            nodes=int(data.get("nodes", 0)),
            detail=str(data.get("detail", "")),
        )


def iter_from_file(path: os.PathLike) -> Iterator[LogEntry]:
    """Stream :class:`LogEntry` records back out of a JSONL file.

    The inverse of :meth:`SchedulerLog.write_jsonl`; feeds the trace
    exporter (``repro-hybrid obs from-decisions``) and any offline
    analysis without loading the whole log into memory.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield LogEntry.from_json_line(line)


class SchedulerLog:
    """Append-only decision log with simple query helpers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.entries: List[LogEntry] = []

    def add(
        self,
        time: float,
        kind: LogKind,
        job_id: int,
        nodes: int = 0,
        detail: str = "",
    ) -> None:
        if not self.enabled:
            return
        self.entries.append(
            LogEntry(time=time, kind=kind, job_id=job_id, nodes=nodes, detail=detail)
        )

    def __len__(self) -> int:
        return len(self.entries)

    def for_job(self, job_id: int) -> List[LogEntry]:
        """Full decision history of one job, in time order."""
        return [e for e in self.entries if e.job_id == job_id]

    def of_kind(self, kind: LogKind) -> List[LogEntry]:
        return [e for e in self.entries if e.kind is kind]

    def between(self, start: float, end: float) -> Iterator[LogEntry]:
        return (e for e in self.entries if start <= e.time <= end)

    def render(self, job_id: Optional[int] = None, limit: int = 200) -> str:
        """Human-readable transcript (optionally one job's)."""
        entries = self.for_job(job_id) if job_id is not None else self.entries
        lines = [e.render() for e in entries[:limit]]
        if len(entries) > limit:
            lines.append(f"... ({len(entries) - limit} more entries)")
        return "\n".join(lines)

    def write_jsonl(self, path: os.PathLike) -> int:
        """Write the whole log as JSONL; returns the entry count."""
        with open(path, "w", encoding="utf-8") as fh:
            for e in self.entries:
                fh.write(e.to_json_line())
                fh.write("\n")
        return len(self.entries)
