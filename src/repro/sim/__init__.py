"""CQSim-style discrete-event scheduling simulator substrate.

* :mod:`repro.sim.events` — event types and deterministic same-time ordering.
* :mod:`repro.sim.engine` — the event heap / simulation clock.
* :mod:`repro.sim.cluster` — node-count accounting for a machine of
  identical nodes (allocation is at node granularity, jobs are exclusive).
* :mod:`repro.sim.simulator` — the :class:`Simulation` that ties the job
  models, scheduling policy, and hybrid-workload coordinator together.
"""

from repro.sim.cluster import Cluster
from repro.sim.engine import EventQueue
from repro.sim.events import Event, EventType
from repro.sim.failures import FailureModel
from repro.sim.schedlog import LogEntry, LogKind, SchedulerLog
from repro.sim.simulator import (
    SimScratch,
    Simulation,
    SimulationResult,
    process_scratch,
)

__all__ = [
    "Cluster",
    "FailureModel",
    "LogEntry",
    "LogKind",
    "SchedulerLog",
    "EventQueue",
    "Event",
    "EventType",
    "SimScratch",
    "Simulation",
    "SimulationResult",
    "process_scratch",
]
