"""Event types and ordering for the discrete-event engine.

Events at the *same* timestamp are processed in a fixed priority order so
simulations are deterministic regardless of heap insertion order:

1. ``JOB_FINISH`` — completions free nodes first;
2. ``JOB_FAILURE`` — failure injection (a finish at the same instant wins);
3. ``PLANNED_PREEMPT`` — CUP's scheduled preemptions fire next;
4. ``ADVANCE_NOTICE`` — on-demand notices;
5. ``JOB_SUBMIT`` — submissions / on-demand actual arrivals;
6. ``RESERVATION_TIMEOUT`` — reservation expiry;
7. ``END_OF_TRACE`` — bookkeeping sentinel.

A single scheduling pass runs after each same-timestamp batch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict


class EventType(enum.IntEnum):
    """Event kinds, ordered by same-timestamp processing priority."""

    JOB_FINISH = 0
    JOB_FAILURE = 1
    PLANNED_PREEMPT = 2
    ADVANCE_NOTICE = 3
    JOB_SUBMIT = 4
    RESERVATION_TIMEOUT = 5
    END_OF_TRACE = 6


@dataclass(frozen=True, order=True)
class Event:
    """A scheduled simulator event.

    Ordering key is ``(time, type, seq)``; ``payload`` is excluded from
    comparisons.  ``seq`` is a monotonically increasing tiebreaker assigned
    by the queue so FIFO order holds within a (time, type) group.
    """

    time: float
    type: EventType
    seq: int
    payload: Dict[str, Any] = field(compare=False, default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Event(t={self.time:.1f}, {self.type.name}, {self.payload})"
