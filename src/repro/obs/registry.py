"""Process-local metrics registry: counters, gauges, histograms.

The registry is the numeric half of the instrumentation layer
(:mod:`repro.obs`): named monotonic counters, last-write gauges, and
fixed-bucket histograms, all plain Python with no dependencies and no
locks on the hot path.  Two design rules keep it safe to leave wired
into the simulator's inner loops permanently:

* **The disabled path is near-free.**  The default global registry is
  :class:`NullRegistry`; asking it for a counter returns one shared
  no-op object, so an instrumented call site costs a dict lookup at
  setup time and a single no-op method call per hit.  Hot layers cache
  the metric object once (``self._c_events = obs.counter(...)``) and
  pay only the method call.
* **Snapshots are deterministic.**  ``snapshot()``/``to_dict()`` emit
  plain sorted dicts — stable across runs for deterministic workloads,
  which is what makes them diffable in reports and assertable in tests.

Thread-safety: counters and histograms mutate single ``int``/``float``
slots and list entries under the GIL; concurrent increments never lose
the registry's structural invariants, and totals are exact because
``+=`` on the dedicated slot objects here is the only mutation path
(verified by the threaded determinism test).  Metric *creation* takes a
lock so two threads racing to create ``sim.events`` share one object.

Naming convention (enforced nowhere, followed everywhere):
``layer.noun.verb`` — ``sim.passes.run``, ``distrib.lease.acquired``,
``progress.scan.bytes``.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

#: default histogram buckets: log-spaced seconds from 10µs to ~17min,
#: a range that covers scheduler-pass latencies and whole-cell runtimes
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    10.0 ** (e / 2.0) for e in range(-10, 7)
)


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-write-wins level (queue depth, live leases, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    Bucket ``i`` counts observations ``<= bounds[i]``; one overflow
    bucket catches the rest.  Percentiles are interpolated from the
    bucket counts — approximate by design (the exporter notes the
    bucketing), exact for min/max/mean.  Fixed buckets mean month-scale
    runs cost O(len(bounds)) memory per histogram, never O(samples).
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "vmin", "vmax")

    def __init__(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> None:
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds or DEFAULT_BUCKETS)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate p-quantile: the upper bound of the bucket holding
        the p-th observation (clamped to the exact observed max)."""
        if not self.count:
            return 0.0
        rank = p * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                bound = (
                    self.bounds[i] if i < len(self.bounds) else self.vmax
                )
                return min(bound, self.vmax)
        return self.vmax

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "buckets": {
                # only non-empty buckets: a registry full of idle
                # histograms stays readable in exported JSON
                (
                    f"{self.bounds[i]:g}" if i < len(self.bounds) else "+inf"
                ): c
                for i, c in enumerate(self.counts)
                if c
            },
        }


class _NullCounter:
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, n: float = 1.0) -> None:
        pass

    def dec(self, n: float = 1.0) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """All metrics of one process, by name."""

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            with self._lock:
                c = self._counters.setdefault(name, Counter(name))
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            with self._lock:
                g = self._gauges.setdefault(name, Gauge(name))
        return g

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            with self._lock:
                h = self._histograms.setdefault(
                    name, Histogram(name, bounds)
                )
        return h

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain sorted dict of everything recorded so far."""
        return {
            "counters": {
                name: c.value
                for name, c in sorted(self._counters.items())
                if c.value
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.to_dict()
                for name, h in sorted(self._histograms.items())
                if h.count
            },
        }

    to_dict = snapshot

    def merge_dict(self, data: Dict[str, Dict[str, object]]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram counts/sums add; gauges last-write-win;
        histogram percentiles are re-derivable only when bucket layouts
        match, so a foreign histogram with unknown buckets degrades to
        count/sum/min/max (the honest subset).  Used to absorb worker
        subprocess registries into the orchestrator's.
        """
        for name, value in data.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in data.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, hdata in data.get("histograms", {}).items():
            h = self.histogram(name)
            bounds_by_key = {f"{b:g}": i for i, b in enumerate(h.bounds)}
            for key, c in hdata.get("buckets", {}).items():
                idx = (
                    len(h.bounds)
                    if key == "+inf"
                    else bounds_by_key.get(key)
                )
                if idx is not None:
                    h.counts[idx] += int(c)
            h.count += int(hdata.get("count", 0))
            h.total += float(hdata.get("sum", 0.0))
            if int(hdata.get("count", 0)):
                h.vmin = min(h.vmin, float(hdata.get("min", math.inf)))
                h.vmax = max(h.vmax, float(hdata.get("max", -math.inf)))


class NullRegistry:
    """The disabled default: every lookup returns a shared no-op metric."""

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    to_dict = snapshot

    def merge_dict(self, data: Dict[str, Dict[str, object]]) -> None:
        pass
