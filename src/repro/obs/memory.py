"""Memory profiling hooks: tracemalloc sections + process RSS/GC gauges.

The measurement half of the ROADMAP's "asserted memory ceilings": a
:class:`MemoryProbe` samples process-level gauges (resident set size,
cumulative GC collections) and measures python-heap peaks for named
sections via :mod:`tracemalloc`.  Like every other part of
:mod:`repro.obs`, the probe follows the null-object discipline — the
process default is :data:`NULL_MEMORY_PROBE`, whose ``sample()`` is a
no-op and whose ``section()`` hands back one shared no-op context
manager, so the permanently wired call sites (simulator run loop,
campaign executor cells, shard merge passes) cost a couple of no-op
method calls when profiling is off.  The overhead gate in
``benchmarks/bench_sim_core.py`` charges these hooks against the same
<2%-disabled budget as the metric and span hooks.

Memory profiling is **opt-in even when instrumentation is on**:
``enable()``/``enabled_obs()`` take ``memory=True`` to attach a live
probe, because ``tracemalloc`` itself costs real time (every allocation
pays for a traceback capture) — a traced campaign should not silently
run 2x slower.  Without tracemalloc the probe still samples the cheap
process gauges.

Gauges written (also exported with every trace document, so
``repro-hybrid obs summary`` surfaces them):

* ``process.rss_bytes`` — current resident set size;
* ``process.peak_rss_bytes`` — lifetime peak RSS (``ru_maxrss``);
* ``gc.collections`` — cumulative collections across generations;
* ``mem.tracemalloc.current_bytes`` / ``mem.tracemalloc.peak_bytes`` —
  python-heap levels, when tracemalloc is active.

Section peaks land in per-name histograms
(``mem.section.<name>.peak_bytes``) with log-spaced byte buckets, so a
month-scale run keeps O(buckets) state per section, never O(samples).
"""

from __future__ import annotations

import gc
import os
import sys
import tracemalloc
from typing import Dict, Optional, Tuple

try:  # Unix-only stdlib module; absent on Windows
    import resource
except ImportError:  # pragma: no cover - non-Unix fallback
    resource = None  # type: ignore[assignment]

#: log-spaced byte buckets for section-peak histograms: 4KiB .. 256GiB
BYTE_BUCKETS: Tuple[float, ...] = tuple(
    float(4096 * 4**e) for e in range(0, 14)
)

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096

#: ru_maxrss unit: bytes on macOS, kilobytes on Linux/BSD
_RU_MAXRSS_SCALE = 1 if sys.platform == "darwin" else 1024


def rss_bytes() -> int:
    """Current resident set size, 0 where unknowable.

    ``/proc/self/statm`` where it exists (Linux); peak RSS as an upper
    bound elsewhere — honest enough for ceilings, which only ever
    assert "below".
    """
    try:
        with open("/proc/self/statm", "rb") as fh:
            return int(fh.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        return peak_rss_bytes()


def peak_rss_bytes() -> int:
    """Lifetime peak resident set size (``ru_maxrss``), 0 if unknown."""
    if resource is None:  # pragma: no cover - non-Unix fallback
        return 0
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * _RU_MAXRSS_SCALE


def gc_collections() -> int:
    """Cumulative garbage collections summed across generations."""
    return sum(s.get("collections", 0) for s in gc.get_stats())


def sample_process_gauges(registry) -> Dict[str, float]:
    """Write the cheap process-level gauges into *registry*.

    Called by the trace exporter at export time (when instrumentation
    is enabled) so every ``.trace.json`` carries the process memory/GC
    state alongside counters and spans, and by
    :meth:`MemoryProbe.sample` for in-band sampling.
    """
    values = {
        "process.rss_bytes": float(rss_bytes()),
        "process.peak_rss_bytes": float(peak_rss_bytes()),
        "gc.collections": float(gc_collections()),
    }
    for name, value in values.items():
        registry.gauge(name).set(value)
    return values


class _Section:
    """Live context manager for one tracemalloc-measured region."""

    __slots__ = ("_probe", "_name", "_start_current")

    def __init__(self, probe: "MemoryProbe", name: str) -> None:
        self._probe = probe
        self._name = name

    def __enter__(self) -> "_Section":
        probe = self._probe
        if probe.tracing:
            current, _peak = tracemalloc.get_traced_memory()
            self._start_current = current
            # nested sections share one peak watermark; the outermost
            # reset wins, inner sections see a peak >= their own (an
            # upper bound, which is the safe direction for ceilings)
            if probe._section_depth == 0:
                tracemalloc.reset_peak()
            probe._section_depth += 1
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        probe = self._probe
        if probe.tracing:
            probe._section_depth -= 1
            current, peak = tracemalloc.get_traced_memory()
            probe._g_tm_current.set(float(current))
            probe._g_tm_peak.set(float(peak))
            probe.registry.histogram(
                f"mem.section.{self._name}.peak_bytes", bounds=BYTE_BUCKETS
            ).observe(float(peak))
        probe.sample()


class MemoryProbe:
    """Live memory probe bound to one metrics registry.

    ``trace_malloc=True`` (the default) starts :mod:`tracemalloc` if it
    is not already tracing and remembers whether it owns it, so
    :meth:`close` restores the interpreter state it found (a probe
    opened inside a test must not leak a 2x-allocation tax into the
    rest of the suite).
    """

    enabled = True

    def __init__(self, registry, trace_malloc: bool = True) -> None:
        self.registry = registry
        self._owns_tracemalloc = False
        self._section_depth = 0
        if trace_malloc and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True
        self._g_tm_current = registry.gauge("mem.tracemalloc.current_bytes")
        self._g_tm_peak = registry.gauge("mem.tracemalloc.peak_bytes")

    @property
    def tracing(self) -> bool:
        return tracemalloc.is_tracing()

    def sample(self) -> Dict[str, float]:
        """Sample the process gauges (and tracemalloc levels if tracing)."""
        values = sample_process_gauges(self.registry)
        if self.tracing:
            current, peak = tracemalloc.get_traced_memory()
            self._g_tm_current.set(float(current))
            self._g_tm_peak.set(float(peak))
            values["mem.tracemalloc.current_bytes"] = float(current)
            values["mem.tracemalloc.peak_bytes"] = float(peak)
        return values

    def section(self, name: str) -> _Section:
        """Measure the python-heap peak of a ``with`` block."""
        return _Section(self, name)

    def close(self) -> None:
        """Stop tracemalloc iff this probe started it."""
        if self._owns_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._owns_tracemalloc = False


class _NullSection:
    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SECTION = _NullSection()


class NullMemoryProbe:
    """The disabled default: free no-op sampling and sections."""

    enabled = False
    tracing = False

    def sample(self) -> Dict[str, float]:
        return {}

    def section(self, name: str) -> _NullSection:
        return _NULL_SECTION

    def close(self) -> None:
        pass


NULL_MEMORY_PROBE = NullMemoryProbe()
