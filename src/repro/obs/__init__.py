"""Unified instrumentation layer: metrics + span tracing + trace export.

Every layer of the system — simulator event loop, scheduling passes,
campaign executor, distributed fleet, report pipeline — reports through
this one package:

* :mod:`repro.obs.registry` — process-local counters, gauges, and
  fixed-bucket histograms (``snapshot()`` → plain dicts);
* :mod:`repro.obs.tracing` — nested ``span()`` context managers with
  thread ids and a bounded ring buffer;
* :mod:`repro.obs.export` — Chrome trace-event / Perfetto JSON export,
  merge, and the ``obs summary`` text renderer;
* :mod:`repro.obs.memory` — opt-in memory profiling: tracemalloc
  sections plus ``process.rss_bytes`` / ``gc.collections`` gauges.

The global default is **disabled**: :func:`get_obs` returns a process
singleton whose metrics are shared no-op objects and whose ``span()``
hands back one reusable no-op context manager, so permanently
instrumented hot paths cost a few no-op method calls
(``benchmarks/bench_sim_core.py`` asserts the budget: <2% disabled,
<10% enabled on the 10k-job near-saturated scenario).  ``--trace``
flags and tests call :func:`enable`; long-lived callers cache metric
objects once and pay only the per-hit call.

Naming convention: ``layer.noun.verb`` — ``sim.passes.run``,
``distrib.lease.acquired``, ``report.pivot.build``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Mapping, Optional, Sequence

from repro.obs.memory import (
    NULL_MEMORY_PROBE,
    MemoryProbe,
    NullMemoryProbe,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.tracing import (
    DEFAULT_CAPACITY,
    NullTracer,
    SpanRecord,
    Tracer,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_CAPACITY",
    "Gauge",
    "Histogram",
    "MemoryProbe",
    "MetricsRegistry",
    "NullMemoryProbe",
    "NullRegistry",
    "NullTracer",
    "Observability",
    "SpanRecord",
    "Tracer",
    "disable",
    "enable",
    "enabled_obs",
    "get_obs",
    "set_obs",
]


class Observability:
    """One process's registry + tracer bundle (the instrumentation API).

    Call sites use this object only — ``obs.counter(...)``,
    ``obs.span(...)`` — so swapping the enabled/disabled implementation
    is one global pointer swap, and a test can install a private bundle
    without touching the process default.
    """

    def __init__(
        self,
        registry=None,
        tracer=None,
        enabled: bool = True,
        memory=None,
    ) -> None:
        if registry is None:
            registry = MetricsRegistry() if enabled else NullRegistry()
        if tracer is None:
            tracer = Tracer() if enabled else NullTracer()
        self.registry = registry
        self.tracer = tracer
        self.enabled = enabled
        #: memory profiling is opt-in even when instrumentation is on
        #: (tracemalloc taxes every allocation); pass a live
        #: :class:`MemoryProbe` or use ``enable(memory=True)``
        self.memory = NULL_MEMORY_PROBE if memory is None else memory
        #: pre-rendered Chrome trace events absorbed from subprocesses
        #: (campaign pool children, fleet workers) — exported alongside
        #: this process's own spans
        self.foreign_events: List[Dict[str, object]] = []
        # bind the hot-path methods once: call sites pay one attribute
        # lookup + call, with no per-call delegation layer
        self.counter = registry.counter
        self.gauge = registry.gauge
        self.histogram = registry.histogram
        self.span = tracer.span

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return self.registry.snapshot()

    def ingest(
        self,
        events: Sequence[Mapping[str, object]],
        metrics: Optional[Mapping[str, Dict[str, object]]] = None,
    ) -> None:
        """Absorb a subprocess's exported events and metric snapshot."""
        self.foreign_events.extend(dict(e) for e in events)
        if metrics:
            self.registry.merge_dict(metrics)


#: the process-wide disabled singleton; shared so `get_obs() is DISABLED`
#: stays a meaningful identity check in tests
DISABLED = Observability(NullRegistry(), NullTracer(), enabled=False)

_current: Observability = DISABLED


def get_obs() -> Observability:
    """The process-wide instrumentation bundle (disabled by default)."""
    return _current


def set_obs(obs: Observability) -> Observability:
    """Install *obs* as the process default; returns the previous one."""
    global _current
    previous = _current
    _current = obs
    return previous


def enable(
    capacity: int = DEFAULT_CAPACITY, memory: bool = False
) -> Observability:
    """Install (and return) a fresh enabled bundle as the default.

    ``memory=True`` attaches a live :class:`MemoryProbe` (starting
    tracemalloc if needed) so call sites can measure heap peaks via
    ``obs.memory.section(...)``.
    """
    registry = MetricsRegistry()
    return_obs = Observability(
        registry,
        Tracer(capacity=capacity),
        enabled=True,
        memory=MemoryProbe(registry) if memory else None,
    )
    set_obs(return_obs)
    return return_obs


def disable() -> Observability:
    """Restore the disabled default; returns the previously active one."""
    previous = set_obs(DISABLED)
    previous.memory.close()
    return previous


@contextmanager
def enabled_obs(capacity: int = DEFAULT_CAPACITY, memory: bool = False):
    """Context manager: enabled instrumentation scoped to a block.

    The primary test helper — guarantees the process default (and the
    interpreter's tracemalloc state, when ``memory=True``) is restored
    even when the block raises.
    """
    registry = MetricsRegistry()
    obs = Observability(
        registry,
        Tracer(capacity=capacity),
        enabled=True,
        memory=MemoryProbe(registry) if memory else None,
    )
    previous = set_obs(obs)
    try:
        yield obs
    finally:
        set_obs(previous)
        obs.memory.close()
