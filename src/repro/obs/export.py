"""Trace export: Chrome trace-event / Perfetto JSON and text summaries.

The on-disk format is the Chrome trace-event *JSON object* form —
``{"traceEvents": [...], "otherData": {...}}`` — loadable directly by
``chrome://tracing`` and https://ui.perfetto.dev.  Spans become ``"X"``
(complete) events with microsecond timestamps; process/thread labels
ride in ``"M"`` (metadata) events; the metrics registry snapshot rides
in ``otherData["metrics"]`` so one file carries the whole picture.

Multi-process runs (campaign pools, worker fleets) each produce their
own event lists tagged with their real pid; :func:`merge_trace_data`
folds them into one file — events concatenate, counters add, so the
Perfetto timeline shows every worker as its own process track.

:func:`render_summary` is the ``repro-hybrid obs summary`` renderer: a
per-span-name aggregate table (count/total/mean/max) plus the counter
listing — the always-available text view when nobody wants a browser.

Scheduler decision logs (:mod:`repro.sim.schedlog`) feed the same
exporter via :func:`events_from_schedlog`: each decision becomes an
instant event on a synthetic "simulated time" track, where one trace
microsecond represents one simulated second.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.obs.tracing import SpanRecord

#: pid used for the synthetic simulated-time track of decision logs
SIM_TIME_PID = 9_999_999


def events_from_spans(
    spans: Sequence[SpanRecord],
    pid: Optional[int] = None,
    process_name: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Chrome trace events for completed spans (plus metadata labels)."""
    pid = os.getpid() if pid is None else pid
    events: List[Dict[str, object]] = []
    if process_name:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process_name},
            }
        )
    for rec in spans:
        event: Dict[str, object] = {
            "name": rec.name,
            "cat": rec.name.split(".", 1)[0],
            "ph": "X",
            "ts": round(rec.start_s * 1e6, 3),
            "dur": round(rec.duration_s * 1e6, 3),
            "pid": pid,
            "tid": rec.thread_id,
        }
        if rec.attrs:
            event["args"] = {k: v for k, v in rec.attrs}
        events.append(event)
    return events


def events_from_schedlog(entries) -> List[Dict[str, object]]:
    """Instant events from scheduler :class:`~repro.sim.schedlog.LogEntry`
    records, on a dedicated simulated-time track (1 µs ≡ 1 sim second)."""
    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": SIM_TIME_PID,
            "tid": 0,
            "args": {"name": "simulated time (1us = 1s)"},
        }
    ]
    for e in entries:
        events.append(
            {
                "name": f"{e.kind.value} job={e.job_id}",
                "cat": "schedlog",
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "ts": round(e.time, 3),
                "pid": SIM_TIME_PID,
                "tid": 1,
                "args": {
                    "kind": e.kind.value,
                    "job_id": e.job_id,
                    "nodes": e.nodes,
                    "detail": e.detail,
                },
            }
        )
    return events


def trace_data(
    obs,
    extra_events: Sequence[Mapping[str, object]] = (),
    process_name: Optional[str] = None,
) -> Dict[str, object]:
    """The full exportable trace document for one Observability."""
    if obs.enabled:
        # stamp the process memory/GC state into the snapshot so every
        # trace document answers "how big did this run get"
        from repro.obs.memory import sample_process_gauges

        sample_process_gauges(obs.registry)
    events = events_from_spans(
        obs.tracer.records(),
        process_name=process_name or "repro-hybrid",
    )
    events.extend(dict(e) for e in extra_events)
    events.extend(dict(e) for e in obs.foreign_events)
    other: Dict[str, object] = {"metrics": obs.registry.snapshot()}
    dropped = getattr(obs.tracer, "n_dropped", 0)
    if dropped:
        other["spans_dropped"] = dropped
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_trace(
    path: os.PathLike,
    obs,
    extra_events: Sequence[Mapping[str, object]] = (),
    process_name: Optional[str] = None,
) -> Dict[str, object]:
    """Write one process's trace JSON; returns the document dict."""
    doc = trace_data(obs, extra_events, process_name)
    return write_trace_data(path, doc)


def write_trace_data(
    path: os.PathLike, doc: Mapping[str, object]
) -> Dict[str, object]:
    doc = dict(doc)
    parent = os.path.dirname(os.fspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return doc


def load_trace(path: os.PathLike) -> Dict[str, object]:
    """Load a trace file, accepting both the object and bare-array forms."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if isinstance(data, list):
        return {"traceEvents": data, "otherData": {}}
    data.setdefault("traceEvents", [])
    data.setdefault("otherData", {})
    return data


def merge_trace_data(
    docs: Iterable[Mapping[str, object]],
) -> Dict[str, object]:
    """Fold several trace documents into one: events concatenate,
    metric registries fold (counters add, gauges last-write-win)."""
    from repro.obs.registry import MetricsRegistry

    events: List[Dict[str, object]] = []
    registry = MetricsRegistry()
    dropped = 0
    for doc in docs:
        events.extend(dict(e) for e in doc.get("traceEvents", ()))
        other = doc.get("otherData", {}) or {}
        registry.merge_dict(other.get("metrics", {}) or {})
        dropped += int(other.get("spans_dropped", 0) or 0)
    other_out: Dict[str, object] = {"metrics": registry.snapshot()}
    if dropped:
        other_out["spans_dropped"] = dropped
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other_out,
    }


def merge_trace_files(
    paths: Sequence[os.PathLike], out_path: os.PathLike
) -> Dict[str, object]:
    doc = merge_trace_data(load_trace(p) for p in paths)
    return write_trace_data(out_path, doc)


# ----------------------------------------------------------------------
# Text summary
# ----------------------------------------------------------------------
def _span_aggregates(
    events: Sequence[Mapping[str, object]],
) -> List[List[object]]:
    """Per-name rows: [name, count, total ms, mean ms, max ms]."""
    agg: Dict[str, List[float]] = {}
    for e in events:
        if e.get("ph") != "X":
            continue
        name = str(e.get("name", "?"))
        dur_ms = float(e.get("dur", 0.0)) / 1000.0
        row = agg.setdefault(name, [0.0, 0.0, 0.0])
        row[0] += 1
        row[1] += dur_ms
        row[2] = max(row[2], dur_ms)
    rows = []
    for name, (count, total, peak) in sorted(
        agg.items(), key=lambda kv: -kv[1][1]
    ):
        rows.append(
            [
                name,
                int(count),
                f"{total:.1f}",
                f"{total / count:.3f}",
                f"{peak:.3f}",
            ]
        )
    return rows


def render_summary(doc: Mapping[str, object], top: int = 30) -> str:
    """Human-readable rollup of a trace document.

    Three blocks: span aggregates by name (sorted by total time),
    counters, and histogram summaries — the same data Perfetto shows,
    minus the browser.
    """
    from repro.metrics.report import format_table

    events = doc.get("traceEvents", ())
    other = doc.get("otherData", {}) or {}
    metrics = other.get("metrics", {}) or {}
    blocks: List[str] = []

    span_rows = _span_aggregates(events)[:top]
    if span_rows:
        blocks.append(
            format_table(
                ["span", "count", "total ms", "mean ms", "max ms"],
                span_rows,
                title="Spans (by total time)",
            )
        )
    counters = metrics.get("counters", {})
    if counters:
        blocks.append(
            format_table(
                ["counter", "value"],
                [[k, v] for k, v in sorted(counters.items())],
                title="Counters",
            )
        )
    gauges = metrics.get("gauges", {})
    if gauges:
        blocks.append(
            format_table(
                ["gauge", "value"],
                [[k, v] for k, v in sorted(gauges.items())],
                title="Gauges (process.* / mem.* sampled at export)",
            )
        )
    histograms = metrics.get("histograms", {})
    if histograms:
        blocks.append(
            format_table(
                ["histogram", "count", "mean", "p50", "p99", "max"],
                [
                    [
                        name,
                        h.get("count", 0),
                        f"{h.get('mean', 0.0):.6f}",
                        f"{h.get('p50', 0.0):.6f}",
                        f"{h.get('p99', 0.0):.6f}",
                        f"{h.get('max', 0.0):.6f}",
                    ]
                    for name, h in sorted(histograms.items())
                ],
                title="Histograms (seconds; p50/p99 bucket-approximate)",
            )
        )
    dropped = other.get("spans_dropped", 0)
    if dropped:
        blocks.append(
            f"note: ring buffer dropped {dropped} oldest spans "
            "(raise the tracing capacity to keep more)"
        )
    if not blocks:
        return "(empty trace: no spans, counters, or histograms)"
    return "\n\n".join(blocks)
