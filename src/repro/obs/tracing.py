"""Span tracing: nested timed regions with a bounded ring buffer.

A span is one timed region of one thread — a scheduling pass, a
campaign cell, a shard merge.  Spans nest: entering ``sim.pass`` while
``campaign.cell`` is open records the parent-child relation via per-
thread depth tracking, which is exactly what the Chrome trace-event /
Perfetto renderer needs to draw flame-style timelines
(:mod:`repro.obs.export`).

Memory is bounded by construction: completed spans land in a
``collections.deque(maxlen=capacity)`` ring, so a month-scale simulation
with millions of passes keeps only the newest ``capacity`` spans and a
counter of how many were started in total — the exporter reports the
truncation instead of the process OOMing.  The disabled path
(:class:`NullTracer`) hands out one shared no-op context manager, so an
always-wired ``with obs.span(...)`` costs two no-op calls when tracing
is off.

Timestamps are ``time.perf_counter()`` relative to the tracer's
creation, paired with one wall-clock anchor (``epoch_s``) so exported
traces can be correlated across processes.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, List, NamedTuple, Tuple

#: default ring capacity — ~8MB of spans at worst, far below sim state
DEFAULT_CAPACITY = 65_536


class SpanRecord(NamedTuple):
    """One completed span (times in seconds relative to tracer start).

    A NamedTuple, not a dataclass: span completion is on the traced hot
    path (one record per scheduling pass), and tuple construction is
    several times cheaper than a frozen dataclass ``__init__``.
    """

    name: str
    start_s: float
    duration_s: float
    thread_id: int
    depth: int
    attrs: Tuple[Tuple[str, object], ...] = ()

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s


class _SpanHandle:
    """The live context manager for one span; append-on-exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start", "_depth")

    def __init__(self, tracer: "Tracer", name: str, attrs) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_SpanHandle":
        tracer = self._tracer
        local = tracer._local
        self._depth = getattr(local, "depth", 0)
        local.depth = self._depth + 1
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end = time.perf_counter()
        tracer = self._tracer
        tracer._local.depth = self._depth
        tracer.n_started += 1
        attrs = self._attrs
        tracer.spans.append(
            SpanRecord(
                self._name,
                self._start - tracer.t0,
                end - self._start,
                threading.get_ident(),
                self._depth,
                tuple(attrs.items()) if attrs else (),
            )
        )


class Tracer:
    """Collects spans into a bounded ring buffer."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self.spans: Deque[SpanRecord] = deque(maxlen=capacity)
        #: spans ever completed, including ones the ring has dropped
        self.n_started = 0
        self.t0 = time.perf_counter()
        #: wall-clock instant matching relative time 0.0
        self.epoch_s = time.time()
        self._local = threading.local()

    def span(self, name: str, **attrs) -> _SpanHandle:
        return _SpanHandle(self, name, attrs)

    @property
    def n_dropped(self) -> int:
        return self.n_started - len(self.spans)

    def current_depth(self) -> int:
        """Nesting depth of the calling thread (0 outside any span)."""
        return getattr(self._local, "depth", 0)

    def records(self) -> List[SpanRecord]:
        """Completed spans, oldest first (ring order)."""
        return list(self.spans)

    def by_name(self) -> Dict[str, List[SpanRecord]]:
        out: Dict[str, List[SpanRecord]] = {}
        for rec in self.spans:
            out.setdefault(rec.name, []).append(rec)
        return out

    def clear(self) -> None:
        self.spans.clear()
        self.n_started = 0


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled default: ``span()`` returns one shared no-op."""

    capacity = 0
    n_started = 0
    n_dropped = 0
    epoch_s = 0.0
    spans: Deque[SpanRecord] = deque(maxlen=0)

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def current_depth(self) -> int:
        return 0

    def records(self) -> List[SpanRecord]:
        return []

    def by_name(self) -> Dict[str, List[SpanRecord]]:
        return {}

    def clear(self) -> None:
        pass
