"""Evaluation metrics (§IV-D).

1. **Job turnaround time** — submission to completion (user-level).
2. **On-demand instant start rate** — fraction of on-demand jobs whose
   start delay is within the instant threshold.
3. **Preemption ratio** — fraction of rigid (resp. malleable) jobs that
   were preempted at least once.
4. **System utilization** — node-hours of useful execution over elapsed
   node-hours, *excluding* computation wasted by preemption (lost compute
   and re-setups).

:func:`summarize` turns a :class:`~repro.sim.simulator.SimulationResult`
into a flat :class:`SummaryMetrics` record; :mod:`repro.metrics.report`
renders aligned text tables for the benchmark harness.
"""

from repro.metrics.breakdown import (
    NoticeClassOutcome,
    ondemand_by_notice_class,
    utilization_series,
    utilization_sparkline,
    waste_by_type,
)
from repro.metrics.summary import (
    SummaryMetrics,
    average_summaries,
    deterministic_view,
    replan_invariant_view,
    summarize,
)
from repro.metrics.report import format_table, format_summary_rows

__all__ = [
    "NoticeClassOutcome",
    "ondemand_by_notice_class",
    "utilization_series",
    "utilization_sparkline",
    "waste_by_type",
    "SummaryMetrics",
    "average_summaries",
    "deterministic_view",
    "replan_invariant_view",
    "summarize",
    "format_table",
    "format_summary_rows",
]
