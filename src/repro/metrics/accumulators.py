"""Streaming metric accumulators: O(in-flight) summaries for O(trace) runs.

The materialized metrics path (:func:`repro.metrics.summary.summarize`,
:mod:`repro.metrics.breakdown`) groups per-job lists after the run —
fine at 10k jobs, fatal at month-scale SWF volume where the job list
*is* the memory wall.  This module is the streaming replacement: the
simulator feeds every job through a :class:`SummaryAccumulator` exactly
once, at the moment it leaves the in-flight set (completion, or
admission for announced no-shows), and the accumulator keeps only
count/sum/min/max cells and fixed-bucket histograms per
job-type/notice-class group — O(1) state per group, O(1) work per job.

Both input paths share the funnel: a materialized run feeds the same
accumulator in the same completion order as a streamed run of the same
trace, which is what makes streamed and materialized summaries
byte-identical (asserted by the differential tests).  Group sums are
accumulated in job-completion order; totals across groups add the group
subtotals in :class:`~repro.jobs.job.JobType` declaration order.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.jobs.job import Job, JobType, NoticeClass
from repro.obs.registry import Histogram

#: turnaround histogram bucket bounds, seconds (log-spaced 1 min .. ~6 weeks)
TURNAROUND_BUCKETS_S: Tuple[float, ...] = tuple(
    60.0 * 4.0 ** e for e in range(0, 9)
)

#: on-demand start-delay histogram bucket bounds, seconds
DELAY_BUCKETS_S: Tuple[float, ...] = tuple(
    10.0 * 4.0 ** e for e in range(0, 9)
)


class RunningStat:
    """Count / sum / min / max of a value stream, O(1) state.

    ``mean`` reproduces :func:`repro.metrics.summary._mean` on the same
    stream: NaN for an empty stream, a left-fold sum divided by the
    count otherwise.
    """

    __slots__ = ("count", "total", "vmin", "vmax")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan


class TypeGroup:
    """Per-job-type accumulator cell."""

    __slots__ = (
        "turnaround",
        "preempted",
        "shrunk",
        "preemptions",
        "allocated_ns",
        "lost_ns",
        "wasted_setup_ns",
        "checkpoint_ns",
        "turnaround_hist",
    )

    def __init__(self, label: str) -> None:
        self.turnaround = RunningStat()
        #: jobs preempted / shrunk at least once
        self.preempted = 0
        self.shrunk = 0
        #: total preemption events (waste_by_type reports these)
        self.preemptions = 0
        self.allocated_ns = 0.0
        self.lost_ns = 0.0
        self.wasted_setup_ns = 0.0
        self.checkpoint_ns = 0.0
        self.turnaround_hist = Histogram(
            f"jobs.{label}.turnaround_s", bounds=TURNAROUND_BUCKETS_S
        )


class NoticeGroup:
    """Per-notice-class accumulator cell (arrived on-demand jobs)."""

    __slots__ = ("count", "instant", "delay", "turnaround", "delay_hist")

    def __init__(self, label: str) -> None:
        self.count = 0
        self.instant = 0
        self.delay = RunningStat()
        self.turnaround = RunningStat()
        self.delay_hist = Histogram(
            f"ondemand.{label}.start_delay_s", bounds=DELAY_BUCKETS_S
        )


class SummaryAccumulator:
    """The job-finish funnel feeding every summary and breakdown metric.

    The simulator calls :meth:`observe_noshow` when an announced
    no-show enters the trace and :meth:`observe_finished` exactly once
    per completed job, after its ``stats.end_time`` is final.  Nothing
    here retains a :class:`~repro.jobs.job.Job` reference.
    """

    __slots__ = (
        "instant_threshold_s",
        "n_noshow",
        "turnaround_all",
        "by_type",
        "od_delay",
        "od_instant",
        "by_notice",
    )

    def __init__(self, instant_threshold_s: float = 60.0) -> None:
        self.instant_threshold_s = float(instant_threshold_s)
        self.n_noshow = 0
        self.turnaround_all = RunningStat()
        self.by_type: Dict[JobType, TypeGroup] = {
            t: TypeGroup(t.value) for t in JobType
        }
        self.od_delay = RunningStat()
        self.od_instant = 0
        self.by_notice: Dict[NoticeClass, NoticeGroup] = {
            c: NoticeGroup(c.value) for c in NoticeClass
        }

    # ------------------------------------------------------------------
    def observe_noshow(self, job: Job) -> None:
        """Count an announced job that will never arrive."""
        self.n_noshow += 1

    def observe_finished(self, job: Job) -> None:
        """Fold one completed job into every group it belongs to."""
        st = job.stats
        group = self.by_type[job.job_type]
        turnaround = job.turnaround
        self.turnaround_all.observe(turnaround)
        group.turnaround.observe(turnaround)
        group.turnaround_hist.observe(turnaround)
        if st.preemptions > 0:
            group.preempted += 1
        if st.shrinks > 0:
            group.shrunk += 1
        group.preemptions += st.preemptions
        group.allocated_ns += st.allocated_node_seconds
        group.lost_ns += st.lost_node_seconds
        group.wasted_setup_ns += st.wasted_setup_node_seconds
        group.checkpoint_ns += st.checkpoint_node_seconds
        if job.is_ondemand:
            delay = job.start_delay
            instant = delay <= self.instant_threshold_s + 1e-9
            self.od_delay.observe(delay)
            if instant:
                self.od_instant += 1
            ng = self.by_notice[job.notice_class]
            ng.count += 1
            ng.delay.observe(delay)
            ng.delay_hist.observe(delay)
            ng.turnaround.observe(turnaround)
            if instant:
                ng.instant += 1

    # ------------------------------------------------------------------
    # Totals (group subtotals added in JobType declaration order)
    # ------------------------------------------------------------------
    @property
    def n_jobs(self) -> int:
        return self.turnaround_all.count

    def count_of(self, jtype: JobType) -> int:
        return self.by_type[jtype].turnaround.count

    def _total(self, attr: str) -> float:
        total = 0.0
        for t in JobType:
            total += getattr(self.by_type[t], attr)
        return total

    @property
    def allocated_node_seconds(self) -> float:
        return self._total("allocated_ns")

    @property
    def lost_node_seconds(self) -> float:
        return self._total("lost_ns")

    @property
    def wasted_setup_node_seconds(self) -> float:
        return self._total("wasted_setup_ns")

    @property
    def checkpoint_node_seconds(self) -> float:
        return self._total("checkpoint_ns")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Diagnostic snapshot: per-group stats + histogram buckets."""

        def stat(s: RunningStat) -> Dict[str, float]:
            return {
                "count": s.count,
                "sum": s.total,
                "min": s.vmin if s.count else 0.0,
                "max": s.vmax if s.count else 0.0,
            }

        return {
            "instant_threshold_s": self.instant_threshold_s,
            "n_noshow": self.n_noshow,
            "turnaround_s": stat(self.turnaround_all),
            "by_type": {
                t.value: {
                    "turnaround_s": stat(g.turnaround),
                    "turnaround_hist": g.turnaround_hist.to_dict(),
                    "preempted_jobs": g.preempted,
                    "shrunk_jobs": g.shrunk,
                    "preemptions": g.preemptions,
                    "allocated_node_s": g.allocated_ns,
                    "lost_node_s": g.lost_ns,
                    "wasted_setup_node_s": g.wasted_setup_ns,
                    "checkpoint_node_s": g.checkpoint_ns,
                }
                for t, g in self.by_type.items()
            },
            "ondemand": {
                "instant": self.od_instant,
                "start_delay_s": stat(self.od_delay),
                "by_notice_class": {
                    c.value: {
                        "count": g.count,
                        "instant": g.instant,
                        "start_delay_s": stat(g.delay),
                        "start_delay_hist": g.delay_hist.to_dict(),
                        "turnaround_s": stat(g.turnaround),
                    }
                    for c, g in self.by_notice.items()
                },
            },
        }
