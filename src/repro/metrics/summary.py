"""Aggregate metrics from one simulation run."""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.jobs.job import Job, JobType
from repro.sim.simulator import SimulationResult
from repro.util.timeconst import HOUR


@dataclass(frozen=True)
class SummaryMetrics:
    """Flat record of everything the paper's figures plot."""

    mechanism: Optional[str]
    n_jobs: int
    n_rigid: int
    n_malleable: int
    n_ondemand: int
    #: announced on-demand jobs that never arrived (excluded elsewhere)
    n_noshow: int

    #: hours, averaged over completed jobs
    avg_turnaround_h: float
    avg_turnaround_rigid_h: float
    avg_turnaround_malleable_h: float
    avg_turnaround_ondemand_h: float

    #: §IV-D.2 — fraction of on-demand jobs started within the threshold
    instant_start_rate: float
    #: mean start delay of on-demand jobs, seconds
    avg_ondemand_delay_s: float

    #: §IV-D.3 — fraction of jobs of the type preempted at least once
    preemption_ratio_rigid: float
    preemption_ratio_malleable: float
    #: fraction of malleable jobs shrunk at least once (SPAA footprint)
    shrink_ratio_malleable: float

    #: §IV-D.4 — (allocated - lost - wasted setup) / capacity
    system_utilization: float
    #: decomposition, as fractions of total capacity over the horizon
    allocated_frac: float
    lost_compute_frac: float
    wasted_setup_frac: float
    checkpoint_frac: float
    reserved_idle_frac: float

    #: Observation 10 — scheduler decision latency (seconds)
    decision_latency_p50_s: float
    decision_latency_max_s: float

    makespan_h: float
    lease_resumes: int
    lease_expands: int

    def as_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)

    def to_dict(self) -> Dict[str, object]:
        """Strict-JSON-safe dict: non-finite floats become sentinel strings.

        ``json.dumps`` would otherwise emit bare ``NaN``/``Infinity``
        literals, which are not valid JSON and break strict parsers; the
        campaign result store round-trips summaries through this form.
        Inverse of :meth:`from_dict`.
        """
        out: Dict[str, object] = {}
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            if isinstance(value, float) and not math.isfinite(value):
                if math.isnan(value):
                    value = "NaN"
                else:
                    value = "Infinity" if value > 0 else "-Infinity"
            out[name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SummaryMetrics":
        """Rebuild a summary from :meth:`to_dict` output, losslessly."""
        decode = {"NaN": math.nan, "Infinity": math.inf, "-Infinity": -math.inf}
        kwargs: Dict[str, object] = {}
        for name, fld in cls.__dataclass_fields__.items():
            value = data[name]
            if value in decode and fld.type != "Optional[str]":
                value = decode[value]  # type: ignore[index]
            elif fld.type == "float" and value is not None:
                value = float(value)  # type: ignore[arg-type]
            kwargs[name] = value
        return cls(**kwargs)  # type: ignore[arg-type]


#: metrics measured from the host's wall clock rather than simulation
#: state — the only SummaryMetrics fields that legitimately differ
#: between two runs of the same cell (O10 asserts their magnitude, so
#: they stay in the summary; equivalence checks should mask them)
WALLCLOCK_METRICS = frozenset(
    {"decision_latency_p50_s", "decision_latency_max_s"}
)


def deterministic_view(summary) -> dict:
    """A summary dict minus wall-clock metrics: equal across machines,
    processes, and runs for identical cells.  Accepts a
    :class:`SummaryMetrics` or its ``to_dict()`` shape."""
    if isinstance(summary, SummaryMetrics):
        summary = summary.to_dict()
    return {k: v for k, v in summary.items() if k not in WALLCLOCK_METRICS}


def _mean(values: Sequence[float]) -> float:
    vals = [v for v in values if not math.isnan(v)]
    return sum(vals) / len(vals) if vals else math.nan


def summarize(
    result: SimulationResult, instant_threshold_s: float = 60.0
) -> SummaryMetrics:
    """Reduce a run to the paper's metrics.

    ``instant_threshold_s`` should match the simulation config; instant
    starts in this model happen at the arrival instant (delay 0), so any
    small threshold gives identical rates — it exists to stay robust if a
    future mechanism staged starts by a bounded warning window.
    """
    noshows = [j for j in result.jobs if j.no_show]
    jobs = [j for j in result.jobs if not j.no_show]
    by_type: Dict[JobType, List[Job]] = {t: [] for t in JobType}
    for j in jobs:
        by_type[j.job_type].append(j)
    rigid = by_type[JobType.RIGID]
    malleable = by_type[JobType.MALLEABLE]
    ondemand = by_type[JobType.ONDEMAND]

    capacity = result.system_size * result.horizon
    allocated = sum(j.stats.allocated_node_seconds for j in jobs)
    lost = sum(j.stats.lost_node_seconds for j in jobs)
    wasted_setup = sum(j.stats.wasted_setup_node_seconds for j in jobs)
    ckpt = sum(j.stats.checkpoint_node_seconds for j in jobs)

    ods_started = [j for j in ondemand if j.stats.first_start is not None]
    instant = [
        j for j in ods_started if j.start_delay <= instant_threshold_s + 1e-9
    ]

    latencies = sorted(result.decision_latencies)

    def pct(p: float) -> float:
        if not latencies:
            return 0.0
        idx = min(len(latencies) - 1, int(p * len(latencies)))
        return latencies[idx]

    def ratio_preempted(group: List[Job]) -> float:
        if not group:
            return 0.0
        return sum(1 for j in group if j.stats.preemptions > 0) / len(group)

    return SummaryMetrics(
        mechanism=result.mechanism,
        n_jobs=len(jobs),
        n_rigid=len(rigid),
        n_malleable=len(malleable),
        n_ondemand=len(ondemand),
        n_noshow=len(noshows),
        avg_turnaround_h=_mean([j.turnaround for j in jobs]) / HOUR,
        avg_turnaround_rigid_h=_mean([j.turnaround for j in rigid]) / HOUR,
        avg_turnaround_malleable_h=_mean([j.turnaround for j in malleable])
        / HOUR,
        avg_turnaround_ondemand_h=_mean([j.turnaround for j in ondemand])
        / HOUR,
        instant_start_rate=(len(instant) / len(ondemand)) if ondemand else 0.0,
        avg_ondemand_delay_s=_mean([j.start_delay for j in ondemand]),
        preemption_ratio_rigid=ratio_preempted(rigid),
        preemption_ratio_malleable=ratio_preempted(malleable),
        shrink_ratio_malleable=(
            sum(1 for j in malleable if j.stats.shrinks > 0) / len(malleable)
            if malleable
            else 0.0
        ),
        system_utilization=max(0.0, (allocated - lost - wasted_setup))
        / capacity,
        allocated_frac=allocated / capacity,
        lost_compute_frac=lost / capacity,
        wasted_setup_frac=wasted_setup / capacity,
        checkpoint_frac=ckpt / capacity,
        reserved_idle_frac=result.reserved_idle_node_seconds / capacity,
        decision_latency_p50_s=pct(0.50),
        decision_latency_max_s=latencies[-1] if latencies else 0.0,
        makespan_h=result.makespan / HOUR,
        lease_resumes=result.lease_resumes,
        lease_expands=result.lease_expands,
    )


def average_summaries(summaries: Sequence[SummaryMetrics]) -> SummaryMetrics:
    """Field-wise mean across trace replicas (Fig. 6 averages ten traces)."""
    if not summaries:
        raise ValueError("no summaries to average")
    first = summaries[0]
    kwargs = {}
    for name in first.__dataclass_fields__:
        values = [getattr(s, name) for s in summaries]
        if name == "mechanism":
            kwargs[name] = first.mechanism
        elif isinstance(values[0], int):
            kwargs[name] = int(round(statistics.mean(values)))
        else:
            kwargs[name] = float(_mean(values))
    return SummaryMetrics(**kwargs)
