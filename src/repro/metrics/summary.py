"""Aggregate metrics from one simulation run."""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from typing import TYPE_CHECKING

from repro.jobs.job import Job, JobType
from repro.metrics.accumulators import SummaryAccumulator
from repro.util.timeconst import HOUR

if TYPE_CHECKING:  # runtime import would be circular: the simulator
    # imports the accumulator module, which lives in this package
    from repro.sim.simulator import SimulationResult


@dataclass(frozen=True)
class SummaryMetrics:
    """Flat record of everything the paper's figures plot."""

    mechanism: Optional[str]
    n_jobs: int
    n_rigid: int
    n_malleable: int
    n_ondemand: int
    #: announced on-demand jobs that never arrived (excluded elsewhere)
    n_noshow: int

    #: hours, averaged over completed jobs
    avg_turnaround_h: float
    avg_turnaround_rigid_h: float
    avg_turnaround_malleable_h: float
    avg_turnaround_ondemand_h: float

    #: §IV-D.2 — fraction of on-demand jobs started within the threshold
    instant_start_rate: float
    #: mean start delay of on-demand jobs, seconds
    avg_ondemand_delay_s: float

    #: §IV-D.3 — fraction of jobs of the type preempted at least once
    preemption_ratio_rigid: float
    preemption_ratio_malleable: float
    #: fraction of malleable jobs shrunk at least once (SPAA footprint)
    shrink_ratio_malleable: float

    #: §IV-D.4 — (allocated - lost - wasted setup) / capacity
    system_utilization: float
    #: decomposition, as fractions of total capacity over the horizon
    allocated_frac: float
    lost_compute_frac: float
    wasted_setup_frac: float
    checkpoint_frac: float
    reserved_idle_frac: float

    #: Observation 10 — scheduler decision latency (seconds)
    decision_latency_p50_s: float
    decision_latency_max_s: float

    makespan_h: float
    lease_resumes: int
    lease_expands: int

    # -- simulator throughput (defaults keep pre-existing stored
    #    summaries loadable; see PERF_METRICS) --------------------------
    decision_latency_p95_s: float = 0.0
    decision_latency_p99_s: float = 0.0
    decision_latency_mean_s: float = 0.0
    #: host wall-clock seconds the simulation took
    wall_time_s: float = 0.0
    #: events the simulator dispatched (identical across replan modes)
    events_processed: int = 0
    #: scheduling passes actually executed
    schedule_passes: int = 0
    #: passes short-circuited by the incremental core (0 when
    #: ``force_full_replan`` is set)
    passes_skipped: int = 0

    def as_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)

    def to_dict(self) -> Dict[str, object]:
        """Strict-JSON-safe dict: non-finite floats become sentinel strings.

        ``json.dumps`` would otherwise emit bare ``NaN``/``Infinity``
        literals, which are not valid JSON and break strict parsers; the
        campaign result store round-trips summaries through this form.
        Inverse of :meth:`from_dict`.
        """
        out: Dict[str, object] = {}
        for name in self.__dataclass_fields__:
            value = getattr(self, name)
            if isinstance(value, float) and not math.isfinite(value):
                if math.isnan(value):
                    value = "NaN"
                else:
                    value = "Infinity" if value > 0 else "-Infinity"
            out[name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SummaryMetrics":
        """Rebuild a summary from :meth:`to_dict` output, losslessly."""
        decode = {"NaN": math.nan, "Infinity": math.inf, "-Infinity": -math.inf}
        kwargs: Dict[str, object] = {}
        for name, fld in cls.__dataclass_fields__.items():
            if name not in data and name in PERF_METRICS:
                continue  # summary stored before the throughput fields
            value = data[name]
            if value in decode and fld.type != "Optional[str]":
                value = decode[value]  # type: ignore[index]
            elif fld.type == "float" and value is not None:
                value = float(value)  # type: ignore[arg-type]
            kwargs[name] = value
        return cls(**kwargs)  # type: ignore[arg-type]


#: metrics measured from the host's wall clock rather than simulation
#: state — the only SummaryMetrics fields that legitimately differ
#: between two runs of the same cell (O10 asserts their magnitude, so
#: they stay in the summary; equivalence checks should mask them)
WALLCLOCK_METRICS = frozenset(
    {
        "decision_latency_p50_s",
        "decision_latency_p95_s",
        "decision_latency_p99_s",
        "decision_latency_mean_s",
        "decision_latency_max_s",
        "wall_time_s",
    }
)

#: counters that depend on ``SimConfig.force_full_replan`` but on
#: nothing else: deterministic for a fixed config (so they stay inside
#: :func:`deterministic_view`), yet legitimately different between
#: incremental and full-replan runs of the same workload — the
#: differential equivalence check masks them via
#: :func:`replan_invariant_view`.
REPLAN_MODE_METRICS = frozenset({"schedule_passes", "passes_skipped"})

#: simulator-throughput fields added after the first stored campaigns;
#: :meth:`SummaryMetrics.from_dict` defaults them when absent so old
#: result stores keep loading
PERF_METRICS = (
    WALLCLOCK_METRICS | REPLAN_MODE_METRICS | frozenset({"events_processed"})
)


def deterministic_view(summary) -> dict:
    """A summary dict minus wall-clock metrics: equal across machines,
    processes, and runs for identical cells.  Accepts a
    :class:`SummaryMetrics` or its ``to_dict()`` shape."""
    if isinstance(summary, SummaryMetrics):
        summary = summary.to_dict()
    return {k: v for k, v in summary.items() if k not in WALLCLOCK_METRICS}


def replan_invariant_view(summary) -> dict:
    """:func:`deterministic_view` minus the replan-mode counters.

    Incremental scheduling and ``force_full_replan`` must agree on
    every field of this view, byte for byte — the contract the
    differential property tests and ``bench_sim_core`` assert.
    ``events_processed`` stays *in* the view deliberately: both modes
    dispatch the identical event stream.
    """
    if isinstance(summary, SummaryMetrics):
        summary = summary.to_dict()
    return {
        k: v
        for k, v in summary.items()
        if k not in WALLCLOCK_METRICS and k not in REPLAN_MODE_METRICS
    }


def _mean(values: Sequence[float]) -> float:
    vals = [v for v in values if not math.isnan(v)]
    return sum(vals) / len(vals) if vals else math.nan


def summarize(
    result: SimulationResult, instant_threshold_s: float = 60.0
) -> SummaryMetrics:
    """Reduce a run to the paper's metrics.

    ``instant_threshold_s`` should match the simulation config; instant
    starts in this model happen at the arrival instant (delay 0), so any
    small threshold gives identical rates — it exists to stay robust if a
    future mechanism staged starts by a bounded warning window.

    Results carrying a :class:`~repro.metrics.accumulators.SummaryAccumulator`
    (every simulator run since the streaming core landed) are summarised
    from its O(1) group cells — the only option for streamed runs, whose
    ``jobs`` list is empty.  The legacy per-job grouping below remains
    for hand-built results (unit tests, stored-result tooling) and for a
    threshold that differs from the one the accumulator was fed with.
    """
    acc = result.accumulator
    if acc is not None and math.isclose(
        acc.instant_threshold_s, instant_threshold_s, abs_tol=1e-12
    ):
        return _summarize_accumulated(result, acc)
    if acc is not None and not result.jobs and (acc.n_jobs or acc.n_noshow):
        raise ValueError(
            "streamed result has no per-job list; call summarize with "
            f"instant_threshold_s={acc.instant_threshold_s} (the value "
            "the simulation's accumulator was configured with)"
        )
    noshows = [j for j in result.jobs if j.no_show]
    jobs = [j for j in result.jobs if not j.no_show]
    by_type: Dict[JobType, List[Job]] = {t: [] for t in JobType}
    for j in jobs:
        by_type[j.job_type].append(j)
    rigid = by_type[JobType.RIGID]
    malleable = by_type[JobType.MALLEABLE]
    ondemand = by_type[JobType.ONDEMAND]

    capacity = result.system_size * result.horizon
    allocated = sum(j.stats.allocated_node_seconds for j in jobs)
    lost = sum(j.stats.lost_node_seconds for j in jobs)
    wasted_setup = sum(j.stats.wasted_setup_node_seconds for j in jobs)
    ckpt = sum(j.stats.checkpoint_node_seconds for j in jobs)

    ods_started = [j for j in ondemand if j.stats.first_start is not None]
    instant = [
        j for j in ods_started if j.start_delay <= instant_threshold_s + 1e-9
    ]

    def ratio_preempted(group: List[Job]) -> float:
        if not group:
            return 0.0
        return sum(1 for j in group if j.stats.preemptions > 0) / len(group)

    return SummaryMetrics(
        mechanism=result.mechanism,
        n_jobs=len(jobs),
        n_rigid=len(rigid),
        n_malleable=len(malleable),
        n_ondemand=len(ondemand),
        n_noshow=len(noshows),
        avg_turnaround_h=_mean([j.turnaround for j in jobs]) / HOUR,
        avg_turnaround_rigid_h=_mean([j.turnaround for j in rigid]) / HOUR,
        avg_turnaround_malleable_h=_mean([j.turnaround for j in malleable])
        / HOUR,
        avg_turnaround_ondemand_h=_mean([j.turnaround for j in ondemand])
        / HOUR,
        instant_start_rate=(len(instant) / len(ondemand)) if ondemand else 0.0,
        avg_ondemand_delay_s=_mean([j.start_delay for j in ondemand]),
        preemption_ratio_rigid=ratio_preempted(rigid),
        preemption_ratio_malleable=ratio_preempted(malleable),
        shrink_ratio_malleable=(
            sum(1 for j in malleable if j.stats.shrinks > 0) / len(malleable)
            if malleable
            else 0.0
        ),
        system_utilization=max(0.0, (allocated - lost - wasted_setup))
        / capacity,
        allocated_frac=allocated / capacity,
        lost_compute_frac=lost / capacity,
        wasted_setup_frac=wasted_setup / capacity,
        checkpoint_frac=ckpt / capacity,
        reserved_idle_frac=result.reserved_idle_node_seconds / capacity,
        decision_latency_p50_s=result.decision_latency.p50_s,
        decision_latency_p95_s=result.decision_latency.p95_s,
        decision_latency_p99_s=result.decision_latency.p99_s,
        decision_latency_mean_s=result.decision_latency.mean_s,
        decision_latency_max_s=result.decision_latency.max_s,
        makespan_h=result.makespan / HOUR,
        lease_resumes=result.lease_resumes,
        lease_expands=result.lease_expands,
        wall_time_s=result.wall_time_s,
        events_processed=result.events_processed,
        schedule_passes=result.schedule_passes,
        passes_skipped=result.passes_skipped,
    )


def _summarize_accumulated(
    result: SimulationResult, acc: SummaryAccumulator
) -> SummaryMetrics:
    """:func:`summarize` from the streaming funnel instead of job lists.

    Field-for-field the same quantities as the legacy grouping; sums are
    accumulated in job-completion order (the funnel's feed order), which
    is identical between streamed and materialized runs of one trace —
    the byte-identity the differential tests assert.
    """
    rigid = acc.by_type[JobType.RIGID]
    malleable = acc.by_type[JobType.MALLEABLE]
    ondemand = acc.by_type[JobType.ONDEMAND]
    n_rigid = rigid.turnaround.count
    n_malleable = malleable.turnaround.count
    n_ondemand = ondemand.turnaround.count

    capacity = result.system_size * result.horizon
    allocated = acc.allocated_node_seconds
    lost = acc.lost_node_seconds
    wasted_setup = acc.wasted_setup_node_seconds
    ckpt = acc.checkpoint_node_seconds

    return SummaryMetrics(
        mechanism=result.mechanism,
        n_jobs=acc.n_jobs,
        n_rigid=n_rigid,
        n_malleable=n_malleable,
        n_ondemand=n_ondemand,
        n_noshow=acc.n_noshow,
        avg_turnaround_h=acc.turnaround_all.mean / HOUR,
        avg_turnaround_rigid_h=rigid.turnaround.mean / HOUR,
        avg_turnaround_malleable_h=malleable.turnaround.mean / HOUR,
        avg_turnaround_ondemand_h=ondemand.turnaround.mean / HOUR,
        instant_start_rate=(
            acc.od_instant / n_ondemand if n_ondemand else 0.0
        ),
        avg_ondemand_delay_s=acc.od_delay.mean,
        preemption_ratio_rigid=(
            rigid.preempted / n_rigid if n_rigid else 0.0
        ),
        preemption_ratio_malleable=(
            malleable.preempted / n_malleable if n_malleable else 0.0
        ),
        shrink_ratio_malleable=(
            malleable.shrunk / n_malleable if n_malleable else 0.0
        ),
        system_utilization=max(0.0, (allocated - lost - wasted_setup))
        / capacity,
        allocated_frac=allocated / capacity,
        lost_compute_frac=lost / capacity,
        wasted_setup_frac=wasted_setup / capacity,
        checkpoint_frac=ckpt / capacity,
        reserved_idle_frac=result.reserved_idle_node_seconds / capacity,
        decision_latency_p50_s=result.decision_latency.p50_s,
        decision_latency_p95_s=result.decision_latency.p95_s,
        decision_latency_p99_s=result.decision_latency.p99_s,
        decision_latency_mean_s=result.decision_latency.mean_s,
        decision_latency_max_s=result.decision_latency.max_s,
        makespan_h=result.makespan / HOUR,
        lease_resumes=result.lease_resumes,
        lease_expands=result.lease_expands,
        wall_time_s=result.wall_time_s,
        events_processed=result.events_processed,
        schedule_passes=result.schedule_passes,
        passes_skipped=result.passes_skipped,
    )


def average_summaries(summaries: Sequence[SummaryMetrics]) -> SummaryMetrics:
    """Field-wise mean across trace replicas (Fig. 6 averages ten traces)."""
    if not summaries:
        raise ValueError("no summaries to average")
    first = summaries[0]
    kwargs = {}
    for name in first.__dataclass_fields__:
        values = [getattr(s, name) for s in summaries]
        if name == "mechanism":
            kwargs[name] = first.mechanism
        elif isinstance(values[0], int):
            kwargs[name] = int(round(statistics.mean(values)))
        else:
            kwargs[name] = float(_mean(values))
    return SummaryMetrics(**kwargs)
