"""Plain-text table rendering for the benchmark harness.

The benchmark scripts regenerate the paper's tables and figures as
aligned text (numpy-style, no plotting dependency): one call per
table/figure, printing the same rows/series the paper reports.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.metrics.summary import SummaryMetrics


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "  "
    lines.append(sep.join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append(sep.join("-" * w for w in widths))
    for row in cells:
        lines.append(sep.join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


#: column order of the standard mechanism-comparison table (Fig. 6 panels)
SUMMARY_COLUMNS: Dict[str, str] = {
    "mechanism": "mechanism",
    "avg_turnaround_h": "turnaround[h]",
    "avg_turnaround_rigid_h": "rigid[h]",
    "avg_turnaround_malleable_h": "malleable[h]",
    "system_utilization": "util",
    "instant_start_rate": "instant",
    "preemption_ratio_rigid": "preempt(R)",
    "preemption_ratio_malleable": "preempt(M)",
}


def format_summary_rows(
    summaries: Sequence[SummaryMetrics], title: str | None = None
) -> str:
    """The standard comparison table used by most benchmarks."""
    headers = list(SUMMARY_COLUMNS.values())
    rows = []
    for s in summaries:
        d = s.as_dict()
        rows.append(
            [d[key] if d[key] is not None else "baseline" for key in SUMMARY_COLUMNS]
        )
    return format_table(headers, rows, title=title)
