"""Fine-grained metric breakdowns beyond the paper's headline numbers.

* per-notice-class on-demand outcomes (how do ACCURATE vs LATE arrivals
  fare under each mechanism — the machinery behind Observations 11/12);
* per-type waste decomposition;
* an hourly utilization series (text sparkline) for eyeballing drain
  behaviour around on-demand bursts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from typing import TYPE_CHECKING

from repro.jobs.job import Job, JobType, NoticeClass
from repro.util.timeconst import HOUR

if TYPE_CHECKING:  # runtime import would be circular: the simulator
    # imports the accumulator module, which lives in this package
    from repro.sim.simulator import SimulationResult

#: sparkline glyphs from empty to full
_SPARK = " .:-=+*#%@"


@dataclass(frozen=True)
class NoticeClassOutcome:
    """On-demand outcomes for one Fig. 1 arrival category."""

    notice_class: str
    count: int
    instant_rate: float
    avg_delay_s: float
    avg_turnaround_h: float


def ondemand_by_notice_class(
    result: SimulationResult, instant_threshold_s: float = 60.0
) -> List[NoticeClassOutcome]:
    """Split the on-demand metrics by notice class (arrived jobs only).

    Accumulator-backed results (every simulator run) are read from the
    streaming funnel's per-notice-class cells; the per-job grouping
    below serves hand-built results and mismatched thresholds (not
    possible for streamed runs, which carry no job list).
    """
    acc = result.accumulator
    if acc is not None and abs(
        acc.instant_threshold_s - instant_threshold_s
    ) <= 1e-12:
        out = []
        for cls in NoticeClass:
            g = acc.by_notice[cls]
            out.append(
                NoticeClassOutcome(
                    notice_class=cls.value,
                    count=g.count,
                    instant_rate=(g.instant / g.count) if g.count else 0.0,
                    avg_delay_s=(
                        g.delay.total / g.delay.count if g.delay.count else 0.0
                    ),
                    avg_turnaround_h=(
                        g.turnaround.total / g.count / HOUR if g.count else 0.0
                    ),
                )
            )
        return out
    if acc is not None and not result.jobs and acc.n_jobs:
        raise ValueError(
            "streamed result has no per-job list; call "
            "ondemand_by_notice_class with "
            f"instant_threshold_s={acc.instant_threshold_s}"
        )
    groups: Dict[NoticeClass, List[Job]] = {c: [] for c in NoticeClass}
    for j in result.jobs:
        if j.is_ondemand and not j.no_show:
            groups[j.notice_class].append(j)
    out: List[NoticeClassOutcome] = []
    for cls, jobs in groups.items():
        started = [j for j in jobs if j.stats.first_start is not None]
        instant = [
            j for j in started if j.start_delay <= instant_threshold_s + 1e-9
        ]
        out.append(
            NoticeClassOutcome(
                notice_class=cls.value,
                count=len(jobs),
                instant_rate=(len(instant) / len(jobs)) if jobs else 0.0,
                avg_delay_s=(
                    sum(j.start_delay for j in started) / len(started)
                    if started
                    else 0.0
                ),
                avg_turnaround_h=(
                    sum(j.turnaround for j in jobs) / len(jobs) / HOUR
                    if jobs
                    else 0.0
                ),
            )
        )
    return out


def waste_by_type(result: SimulationResult) -> Dict[str, Dict[str, float]]:
    """Node-hour waste decomposition per job type."""
    acc = result.accumulator
    if acc is not None:
        return {
            t.value: {
                "lost_compute_node_h": g.lost_ns / HOUR,
                "wasted_setup_node_h": g.wasted_setup_ns / HOUR,
                "checkpoint_node_h": g.checkpoint_ns / HOUR,
                "preemptions": float(g.preemptions),
            }
            for t, g in ((t, acc.by_type[t]) for t in JobType)
        }
    out: Dict[str, Dict[str, float]] = {}
    for jtype in JobType:
        jobs = [
            j for j in result.jobs if j.job_type is jtype and not j.no_show
        ]
        out[jtype.value] = {
            "lost_compute_node_h": sum(
                j.stats.lost_node_seconds for j in jobs
            )
            / HOUR,
            "wasted_setup_node_h": sum(
                j.stats.wasted_setup_node_seconds for j in jobs
            )
            / HOUR,
            "checkpoint_node_h": sum(
                j.stats.checkpoint_node_seconds for j in jobs
            )
            / HOUR,
            "preemptions": float(sum(j.stats.preemptions for j in jobs)),
        }
    return out


def utilization_series(
    result: SimulationResult, bin_s: float = HOUR
) -> List[float]:
    """Fraction of the machine allocated, per time bin.

    Rebuilt from the exact per-segment records the simulator keeps
    (preemption gaps contribute nothing); node counts within a segment
    are the segment's mean, so a resize mid-segment is averaged.
    Requires a materialized run: streamed results retire jobs (and
    their segment records) at completion.
    """
    acc = result.accumulator
    if not result.jobs and acc is not None and acc.n_jobs:
        raise ValueError(
            "utilization_series needs per-job segment records; run the "
            "simulation with a materialized job list"
        )
    horizon = result.last_end
    if horizon <= 0:
        return []
    n_bins = max(1, int(horizon // bin_s) + 1)
    used = [0.0] * n_bins
    for j in result.jobs:
        for start, end, nodes in j.stats.segment_records:
            b0 = int(start // bin_s)
            b1 = min(n_bins - 1, int(end // bin_s))
            for b in range(b0, b1 + 1):
                lo = max(start, b * bin_s)
                hi = min(end, (b + 1) * bin_s)
                used[b] += nodes * max(0.0, hi - lo)
    cap = result.system_size * bin_s
    return [min(1.0, u / cap) for u in used]


def utilization_sparkline(
    result: SimulationResult, bin_s: float = HOUR, width: Optional[int] = None
) -> str:
    """A text sparkline of machine usage over time.

    >>> # '@' = full machine, ' ' = idle
    """
    series = utilization_series(result, bin_s=bin_s)
    if width is not None and len(series) > width > 0:
        # downsample by averaging fixed-size chunks
        chunk = len(series) / width
        series = [
            sum(series[int(i * chunk) : max(int((i + 1) * chunk), int(i * chunk) + 1)])
            / max(1, len(series[int(i * chunk) : max(int((i + 1) * chunk), int(i * chunk) + 1)]))
            for i in range(width)
        ]
    glyphs = []
    for u in series:
        idx = min(len(_SPARK) - 1, int(u * (len(_SPARK) - 1) + 0.5))
        glyphs.append(_SPARK[idx])
    return "".join(glyphs)
