"""Fine-grained metric breakdowns beyond the paper's headline numbers.

* per-notice-class on-demand outcomes (how do ACCURATE vs LATE arrivals
  fare under each mechanism — the machinery behind Observations 11/12);
* per-type waste decomposition;
* an hourly utilization series (text sparkline) for eyeballing drain
  behaviour around on-demand bursts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.jobs.job import Job, JobType, NoticeClass
from repro.sim.simulator import SimulationResult
from repro.util.timeconst import HOUR

#: sparkline glyphs from empty to full
_SPARK = " .:-=+*#%@"


@dataclass(frozen=True)
class NoticeClassOutcome:
    """On-demand outcomes for one Fig. 1 arrival category."""

    notice_class: str
    count: int
    instant_rate: float
    avg_delay_s: float
    avg_turnaround_h: float


def ondemand_by_notice_class(
    result: SimulationResult, instant_threshold_s: float = 60.0
) -> List[NoticeClassOutcome]:
    """Split the on-demand metrics by notice class (arrived jobs only)."""
    groups: Dict[NoticeClass, List[Job]] = {c: [] for c in NoticeClass}
    for j in result.jobs:
        if j.is_ondemand and not j.no_show:
            groups[j.notice_class].append(j)
    out: List[NoticeClassOutcome] = []
    for cls, jobs in groups.items():
        started = [j for j in jobs if j.stats.first_start is not None]
        instant = [
            j for j in started if j.start_delay <= instant_threshold_s + 1e-9
        ]
        out.append(
            NoticeClassOutcome(
                notice_class=cls.value,
                count=len(jobs),
                instant_rate=(len(instant) / len(jobs)) if jobs else 0.0,
                avg_delay_s=(
                    sum(j.start_delay for j in started) / len(started)
                    if started
                    else 0.0
                ),
                avg_turnaround_h=(
                    sum(j.turnaround for j in jobs) / len(jobs) / HOUR
                    if jobs
                    else 0.0
                ),
            )
        )
    return out


def waste_by_type(result: SimulationResult) -> Dict[str, Dict[str, float]]:
    """Node-hour waste decomposition per job type."""
    out: Dict[str, Dict[str, float]] = {}
    for jtype in JobType:
        jobs = [
            j for j in result.jobs if j.job_type is jtype and not j.no_show
        ]
        out[jtype.value] = {
            "lost_compute_node_h": sum(
                j.stats.lost_node_seconds for j in jobs
            )
            / HOUR,
            "wasted_setup_node_h": sum(
                j.stats.wasted_setup_node_seconds for j in jobs
            )
            / HOUR,
            "checkpoint_node_h": sum(
                j.stats.checkpoint_node_seconds for j in jobs
            )
            / HOUR,
            "preemptions": float(sum(j.stats.preemptions for j in jobs)),
        }
    return out


def utilization_series(
    result: SimulationResult, bin_s: float = HOUR
) -> List[float]:
    """Fraction of the machine allocated, per time bin.

    Rebuilt from the exact per-segment records the simulator keeps
    (preemption gaps contribute nothing); node counts within a segment
    are the segment's mean, so a resize mid-segment is averaged.
    """
    horizon = result.last_end
    if horizon <= 0:
        return []
    n_bins = max(1, int(horizon // bin_s) + 1)
    used = [0.0] * n_bins
    for j in result.jobs:
        for start, end, nodes in j.stats.segment_records:
            b0 = int(start // bin_s)
            b1 = min(n_bins - 1, int(end // bin_s))
            for b in range(b0, b1 + 1):
                lo = max(start, b * bin_s)
                hi = min(end, (b + 1) * bin_s)
                used[b] += nodes * max(0.0, hi - lo)
    cap = result.system_size * bin_s
    return [min(1.0, u / cap) for u in used]


def utilization_sparkline(
    result: SimulationResult, bin_s: float = HOUR, width: Optional[int] = None
) -> str:
    """A text sparkline of machine usage over time.

    >>> # '@' = full machine, ' ' = idle
    """
    series = utilization_series(result, bin_s=bin_s)
    if width is not None and len(series) > width > 0:
        # downsample by averaging fixed-size chunks
        chunk = len(series) / width
        series = [
            sum(series[int(i * chunk) : max(int((i + 1) * chunk), int(i * chunk) + 1)])
            / max(1, len(series[int(i * chunk) : max(int((i + 1) * chunk), int(i * chunk) + 1)]))
            for i in range(width)
        ]
    glyphs = []
    for u in series:
        idx = min(len(_SPARK) - 1, int(u * (len(_SPARK) - 1) + 0.5))
        glyphs.append(_SPARK[idx])
    return "".join(glyphs)
