"""Workload substrate: synthetic Theta-like traces (§IV-A).

The paper drives CQSim with a one-year Cobalt log from Theta (ALCF).  That
log is not publicly redistributable, so this package generates *synthetic*
traces fitted to every statistic the paper reports — system size, job
count, project count, size mix, runtime bounds, per-project bursty
submission — and layers the paper's job-type assignment on top:

* jobs are grouped by project and **all jobs of a project share one type**
  (10 % of projects on-demand, 60 % rigid, 30 % malleable by default);
* on-demand jobs larger than half the machine are randomly reassigned to
  rigid/malleable;
* each on-demand job gets one of the four Fig. 1 notice classes according
  to a :class:`~repro.workload.spec.NoticeMix` (Table III's W1–W5).
"""

from repro.workload.ondemand import (
    assign_notice_classes,
    ondemand_jobs_per_week,
)
from repro.workload.projects import ProjectTable, assign_project_types
from repro.workload.spec import (
    NOTICE_MIXES,
    NoticeMix,
    W1,
    W2,
    W3,
    W4,
    W5,
    WorkloadSpec,
    theta_spec,
)
from repro.workload.stream import DEFAULT_NOTICE_HORIZON_S, JobStream, as_stream
from repro.workload.swf import (
    iter_retyped,
    iter_swf,
    load_swf,
    retype_jobs,
    retype_stream,
    stream_swf,
)
from repro.workload.theta import (
    ThetaWorkloadGenerator,
    generate_trace,
    stream_jobs_from_rows,
)
from repro.workload.trace_cache import (
    TraceCache,
    get_trace_cache,
    reset_trace_cache,
)
from repro.workload.validate import Finding, assert_valid, validate_trace
from repro.workload.trace import (
    characterize_sizes,
    clone_jobs,
    load_trace_csv,
    save_trace_csv,
    type_shares,
)

__all__ = [
    "Finding",
    "assert_valid",
    "validate_trace",
    "assign_notice_classes",
    "ondemand_jobs_per_week",
    "ProjectTable",
    "assign_project_types",
    "NOTICE_MIXES",
    "NoticeMix",
    "W1",
    "W2",
    "W3",
    "W4",
    "W5",
    "WorkloadSpec",
    "theta_spec",
    "ThetaWorkloadGenerator",
    "generate_trace",
    "DEFAULT_NOTICE_HORIZON_S",
    "JobStream",
    "as_stream",
    "iter_retyped",
    "iter_swf",
    "load_swf",
    "retype_jobs",
    "retype_stream",
    "stream_swf",
    "stream_jobs_from_rows",
    "TraceCache",
    "get_trace_cache",
    "reset_trace_cache",
    "characterize_sizes",
    "clone_jobs",
    "load_trace_csv",
    "save_trace_csv",
    "type_shares",
]
