"""Project table: activity skew and project-level job-type assignment.

§IV-A: "we group jobs by their project names and assume that all jobs
belonging to one project have the same job types".  Project activity on
real machines is heavily skewed — a few projects submit most jobs — which
we model with Zipf weights.  Because the type assignment is uniform over
*projects* while activity is skewed, the per-trace share of on-demand /
rigid / malleable **jobs** varies a lot between seeds, exactly the spread
Fig. 4 shows (on-demand jobs are 3–15 % of different traces).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.jobs.job import JobType
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class ProjectTable:
    """Zipf activity weights and a type per project."""

    weights: np.ndarray  # shape (n_projects,), sums to 1
    types: Dict[int, JobType]

    @property
    def n_projects(self) -> int:
        return len(self.weights)

    def type_of(self, project: int) -> JobType:
        return self.types[project]


def zipf_weights(n: int, s: float, rng: np.random.Generator) -> np.ndarray:
    """Zipf(s) activity weights with a random rank permutation."""
    if n <= 0:
        raise ConfigurationError("need at least one project")
    ranks = np.arange(1, n + 1, dtype=float)
    w = ranks ** (-s)
    w /= w.sum()
    rng.shuffle(w)
    return w


def assign_project_types(
    n_projects: int,
    frac_ondemand: float,
    frac_rigid: float,
    rng: np.random.Generator,
) -> Dict[int, JobType]:
    """Randomly partition projects into the three classes (§IV-B).

    Counts are rounded so that at least one project of each non-zero class
    exists; the remainder after on-demand and rigid is malleable.
    """
    if n_projects <= 0:
        raise ConfigurationError("need at least one project")
    n_od = int(round(frac_ondemand * n_projects))
    n_rigid = int(round(frac_rigid * n_projects))
    if frac_ondemand > 0:
        n_od = max(1, n_od)
    if frac_rigid > 0:
        n_rigid = max(1, n_rigid)
    if n_od + n_rigid > n_projects:
        raise ConfigurationError(
            f"type fractions allocate {n_od}+{n_rigid} projects out of "
            f"{n_projects}"
        )
    order: List[int] = list(rng.permutation(n_projects))
    types: Dict[int, JobType] = {}
    for idx, project in enumerate(order):
        if idx < n_od:
            types[int(project)] = JobType.ONDEMAND
        elif idx < n_od + n_rigid:
            types[int(project)] = JobType.RIGID
        else:
            types[int(project)] = JobType.MALLEABLE
    return types


def build_project_table(
    n_projects: int,
    zipf_s: float,
    frac_ondemand: float,
    frac_rigid: float,
    rng: np.random.Generator,
) -> ProjectTable:
    """Weights + types in one call (the generator's entry point)."""
    return ProjectTable(
        weights=zipf_weights(n_projects, zipf_s, rng),
        types=assign_project_types(n_projects, frac_ondemand, frac_rigid, rng),
    )
