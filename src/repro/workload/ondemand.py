"""On-demand arrival mechanics: notice classes and burstiness measures.

Fig. 1 defines four arrival categories relative to the advance notice:
without notice, accurate, early, and late.  The generator treats a job's
originally-sampled submission instant as the *estimated* arrival the user
announces, then derives the actual arrival per category:

* accurate — actual == estimated;
* early — actual uniform in (notice, estimated);
* late — actual uniform in (estimated, estimated + 30 min];
* none — no notice exists; actual == the sampled instant.

The notice itself precedes the estimated arrival by 15–30 minutes
("it is often possible for on-demand jobs to determine their requests
within a short time (15-30 minutes) before their actual arrivals").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.jobs.job import Job, JobType, NoticeClass
from repro.util.timeconst import WEEK
from repro.workload.spec import NoticeMix

#: draw order for the class vector (matches NoticeMix.as_tuple order)
_CLASSES = (
    NoticeClass.NONE,
    NoticeClass.ACCURATE,
    NoticeClass.EARLY,
    NoticeClass.LATE,
)


def draw_notice_class(mix: NoticeMix, rng: np.random.Generator) -> NoticeClass:
    """Sample one Fig. 1 category according to the Table III mix."""
    return _CLASSES[int(rng.choice(4, p=mix.as_tuple()))]


def derive_arrival(
    base_time: float,
    notice_class: NoticeClass,
    rng: np.random.Generator,
    lead_range_s: Tuple[float, float],
    late_window_s: float,
) -> Tuple[float, Optional[float], Optional[float]]:
    """Turn a sampled instant into (actual, notice_time, estimated_arrival).

    ``base_time`` plays the role of the user's *estimated* arrival; the
    notice precedes it by a uniform 15–30 min lead (clamped at t=0 for
    jobs near the trace start).
    """
    if notice_class is NoticeClass.NONE:
        return base_time, None, None
    lead = rng.uniform(*lead_range_s)
    estimated = base_time
    notice = max(0.0, estimated - lead)
    if notice_class is NoticeClass.ACCURATE:
        actual = estimated
    elif notice_class is NoticeClass.EARLY:
        actual = rng.uniform(notice, estimated)
    else:  # LATE
        actual = estimated + rng.uniform(0.0, late_window_s)
    return actual, notice, estimated


def assign_notice_classes(
    ondemand_rows: Sequence[dict],
    mix: NoticeMix,
    rng: np.random.Generator,
    lead_range_s: Tuple[float, float],
    late_window_s: float,
) -> None:
    """Fill arrival fields in the generator's intermediate row dicts.

    Each row needs a ``submit`` key on entry; on exit it carries the
    actual ``submit``, ``notice_class``, ``notice_time`` and
    ``estimated_arrival`` fields used to build :class:`Job` objects.
    """
    for row in ondemand_rows:
        cls = draw_notice_class(mix, rng)
        actual, notice, estimated = derive_arrival(
            row["submit"], cls, rng, lead_range_s, late_window_s
        )
        row["submit"] = actual
        row["notice_class"] = cls
        row["notice_time"] = notice
        row["estimated_arrival"] = estimated


def ondemand_jobs_per_week(
    jobs: Sequence[Job], horizon_s: Optional[float] = None
) -> List[int]:
    """Weekly on-demand submission counts (the Fig. 5 series).

    The bursty project-session submission pattern shows up as large
    week-to-week swings; tests assert a high coefficient of variation.
    """
    ods = [j for j in jobs if j.job_type is JobType.ONDEMAND]
    if horizon_s is None:
        horizon_s = max((j.submit_time for j in jobs), default=0.0) + 1.0
    n_weeks = max(1, int(np.ceil(horizon_s / WEEK)))
    counts = [0] * n_weeks
    for j in ods:
        week = min(n_weeks - 1, int(j.submit_time // WEEK))
        counts[week] += 1
    return counts


def burstiness_cv(counts: Sequence[int]) -> float:
    """Coefficient of variation of a count series (burstiness score)."""
    arr = np.asarray(counts, dtype=float)
    if len(arr) == 0 or arr.mean() == 0:
        return 0.0
    return float(arr.std() / arr.mean())


def notice_class_shares(jobs: Sequence[Job]) -> Dict[str, float]:
    """Observed shares of the four notice classes among on-demand jobs."""
    ods = [j for j in jobs if j.job_type is JobType.ONDEMAND]
    if not ods:
        return {c.value: 0.0 for c in _CLASSES}
    return {
        c.value: sum(1 for j in ods if j.notice_class is c) / len(ods)
        for c in _CLASSES
    }
