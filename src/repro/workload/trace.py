"""Trace utilities: cloning, CSV persistence, and characterization.

``clone_jobs`` matters because :class:`~repro.sim.simulator.Simulation`
mutates jobs in place (state machine + statistics): comparing mechanisms
on the *same* trace requires a fresh copy per run.

The CSV format is a small self-describing superset of the fields a
Cobalt/SWF log would provide, so generated traces can be archived and
reloaded bit-exactly.
"""

from __future__ import annotations

import csv
from typing import Dict, List, Optional, Sequence, Tuple

from repro.jobs.job import Job, JobType, NoticeClass
from repro.util.errors import ConfigurationError
from repro.util.timeconst import HOUR

#: Theta nodes have 64 cores (KNL); used to express Fig. 3 in core-hours.
CORES_PER_NODE = 64

_FIELDS = [
    "job_id",
    "job_type",
    "submit_time",
    "size",
    "runtime",
    "estimate",
    "setup_time",
    "min_size",
    "project",
    "notice_class",
    "notice_time",
    "estimated_arrival",
    "no_show",
]


def clone_jobs(jobs: Sequence[Job]) -> List[Job]:
    """Fresh (state=PENDING, zeroed stats) copies of a trace."""
    return [
        Job(
            job_id=j.job_id,
            job_type=j.job_type,
            submit_time=j.submit_time,
            size=j.size,
            runtime=j.runtime,
            estimate=j.estimate,
            setup_time=j.setup_time,
            min_size=j.min_size,
            project=j.project,
            notice_class=j.notice_class,
            notice_time=j.notice_time,
            estimated_arrival=j.estimated_arrival,
            no_show=j.no_show,
        )
        for j in jobs
    ]


def save_trace_csv(jobs: Sequence[Job], path: str) -> None:
    """Write a trace to CSV (schema in ``_FIELDS``)."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_FIELDS)
        for j in jobs:
            writer.writerow(
                [
                    j.job_id,
                    j.job_type.value,
                    repr(j.submit_time),
                    j.size,
                    repr(j.runtime),
                    repr(j.estimate),
                    repr(j.setup_time),
                    "" if j.min_size is None else j.min_size,
                    j.project,
                    j.notice_class.value,
                    "" if j.notice_time is None else repr(j.notice_time),
                    ""
                    if j.estimated_arrival is None
                    else repr(j.estimated_arrival),
                    int(j.no_show),
                ]
            )


def load_trace_csv(path: str) -> List[Job]:
    """Read a trace written by :func:`save_trace_csv`."""
    jobs: List[Job] = []
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header != _FIELDS:
            raise ConfigurationError(
                f"{path}: unexpected header {header!r}; not a repro trace file"
            )
        for row in reader:
            rec = dict(zip(_FIELDS, row))
            jobs.append(
                Job(
                    job_id=int(rec["job_id"]),
                    job_type=JobType(rec["job_type"]),
                    submit_time=float(rec["submit_time"]),
                    size=int(rec["size"]),
                    runtime=float(rec["runtime"]),
                    estimate=float(rec["estimate"]),
                    setup_time=float(rec["setup_time"]),
                    min_size=int(rec["min_size"]) if rec["min_size"] else None,
                    project=int(rec["project"]),
                    notice_class=NoticeClass(rec["notice_class"]),
                    notice_time=float(rec["notice_time"])
                    if rec["notice_time"]
                    else None,
                    estimated_arrival=float(rec["estimated_arrival"])
                    if rec["estimated_arrival"]
                    else None,
                    no_show=bool(int(rec["no_show"])),
                )
            )
    return jobs


# ----------------------------------------------------------------------
# Characterization (Table I, Fig. 3, Fig. 4)
# ----------------------------------------------------------------------
def characterize_sizes(
    jobs: Sequence[Job],
    edges: Sequence[int] = (128, 256, 512, 1024, 2048),
) -> List[Tuple[str, int, float]]:
    """Per-size-bucket (label, job count, core-hours) — the Fig. 3 rings.

    ``edges`` are bucket lower bounds; the last bucket is open-ended.
    """
    edges = list(edges)
    labels = [
        f"{edges[i]}-{edges[i + 1] - 1}" if i + 1 < len(edges) else f">={edges[i]}"
        for i in range(len(edges))
    ]
    counts = [0] * len(edges)
    core_hours = [0.0] * len(edges)
    for j in jobs:
        bucket = 0
        for i, lo in enumerate(edges):
            if j.size >= lo:
                bucket = i
        counts[bucket] += 1
        core_hours[bucket] += j.size * CORES_PER_NODE * j.runtime / HOUR
    return [
        (labels[i], counts[i], core_hours[i]) for i in range(len(edges))
    ]


def type_shares(jobs: Sequence[Job]) -> Dict[str, float]:
    """Fraction of jobs per type (one bar of Fig. 4)."""
    if not jobs:
        return {t.value: 0.0 for t in JobType}
    return {
        t.value: sum(1 for j in jobs if j.job_type is t) / len(jobs)
        for t in JobType
    }


def table1_summary(jobs: Sequence[Job], system_size: int) -> Dict[str, object]:
    """The Table I row for a generated trace."""
    if not jobs:
        raise ConfigurationError("empty trace")
    horizon_days = max(j.submit_time for j in jobs) / (24 * HOUR)
    return {
        "compute_nodes": system_size,
        "trace_period_days": round(horizon_days, 1),
        "number_of_jobs": len(jobs),
        "number_of_projects": len({j.project for j in jobs}),
        "max_job_length_h": max(j.runtime for j in jobs) / HOUR,
        "min_job_size": min(j.size for j in jobs),
        "max_job_size": max(j.size for j in jobs),
    }


def offered_load(jobs: Sequence[Job], system_size: int, horizon_s: Optional[float] = None) -> float:
    """Total requested work over machine capacity in the window."""
    if not jobs:
        return 0.0
    if horizon_s is None:
        horizon_s = max(j.submit_time for j in jobs) - min(
            j.submit_time for j in jobs
        )
        horizon_s = max(horizon_s, 1.0)
    work = sum(j.size * j.runtime for j in jobs)
    return work / (system_size * horizon_s)
