"""Process-wide content-addressed cache of parsed workload traces.

Campaign grids re-read the same inputs for cell after cell: every cell
of an SWF campaign re-parsed the log, and every mechanism/backfill/
checkpoint variant of a synthetic cell re-ran the full generator
pipeline for the identical ``(spec, seed)`` trace.  This cache makes
both a once-per-worker-process cost:

* :meth:`TraceCache.swf_jobs` — the parsed rigid job tuple of an SWF
  log, keyed by ``(path, size, mtime_ns, options-hash)``.  The stat
  signature is re-checked on every lookup, so touching or rewriting
  the log invalidates the entry immediately — no TTLs, no staleness.
* :meth:`TraceCache.theta_rows` — the synthetic generator's submit-
  sorted intermediate rows, keyed by ``(workload-spec-hash, seed)``.
  Rows are pure data derived from the key, so entries never go stale;
  an LRU bound keeps the worker's footprint at a handful of traces.

Cached values are **shared and read-only**: consumers build fresh
:class:`~repro.jobs.job.Job` objects from them (``retype_jobs`` for SWF,
:func:`~repro.workload.theta.stream_jobs_from_rows` for rows) and must
never mutate the cached jobs or row dicts — the next cell sees them.

Instrumentation (:mod:`repro.obs`): ``workload.trace_cache.hits`` /
``.misses`` / ``.evictions`` counters, and a
``workload.trace_cache.parse`` span around each actual parse/generate,
so ``campaign report --trace`` timelines show exactly how the parse
cost amortizes across a worker's cells.
"""

from __future__ import annotations

import functools
import hashlib
import os
import threading
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Tuple

from repro.jobs.job import Job
from repro.obs import get_obs
from repro.workload.spec import WorkloadSpec

#: default LRU bound per cache family — a worker process rarely cycles
#: through more than a few distinct traces, and month-scale row lists
#: are small, but an unbounded cache would grow with the seed axis
DEFAULT_MAX_ENTRIES = 8


def _options_hash(options: Mapping[str, object]) -> str:
    """Stable digest of a JSON-shaped options mapping."""
    import json

    blob = json.dumps(dict(options), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@functools.lru_cache(maxsize=512)
def spec_hash(spec: WorkloadSpec) -> str:
    """Stable digest of a workload spec (the rows-cache key half).

    Memoized: specs are frozen dataclasses, and the json+sha digest is
    otherwise paid on every cache lookup of every cell — a measurable
    slice of a short cell's wall time.
    """
    import json

    blob = json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


class TraceCache:
    """LRU cache of parsed SWF traces and generated synthetic rows.

    Thread-safe (one lock; parses run outside it are not deduplicated
    across racing threads — both threads parse, last insert wins, which
    is correct if wasteful and cannot happen in the one-thread-per-
    process campaign workers).
    """

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES) -> None:
        self.max_entries = max_entries
        self._lock = threading.Lock()
        #: abspath -> (stat+options signature, parsed rigid jobs)
        self._swf: "OrderedDict[str, Tuple[Tuple, Tuple[Job, ...]]]" = (
            OrderedDict()
        )
        #: (spec hash, seed) -> generator rows
        self._rows: "OrderedDict[Tuple[str, int], List[dict]]" = OrderedDict()

    # ------------------------------------------------------------------
    def _swf_signature(
        self, path: str, options: Mapping[str, object]
    ) -> Tuple:
        st = os.stat(path)
        return (st.st_size, st.st_mtime_ns, _options_hash(options))

    def swf_jobs(
        self, path: str, options: Optional[Mapping[str, object]] = None
    ) -> Tuple[Job, ...]:
        """The parsed rigid jobs of an SWF log, cached per process.

        The returned tuple is shared across callers: treat the jobs as
        frozen — layer per-cell typing on with
        :func:`~repro.workload.swf.retype_jobs` /
        :func:`~repro.workload.swf.retype_stream`, never simulate them
        directly (simulations mutate job state in place).
        """
        options = options or {}
        obs = get_obs()
        abspath = os.path.abspath(path)
        sig = self._swf_signature(abspath, options)
        with self._lock:
            entry = self._swf.get(abspath)
            if entry is not None and entry[0] == sig:
                self._swf.move_to_end(abspath)
                obs.counter("workload.trace_cache.hits").inc()
                return entry[1]
        obs.counter("workload.trace_cache.misses").inc()
        from repro.workload.swf import load_swf

        with obs.span(
            "workload.trace_cache.parse", kind="swf", path=path
        ):
            jobs = tuple(load_swf(abspath, **dict(options)))
        with self._lock:
            if abspath in self._swf:
                del self._swf[abspath]
            self._swf[abspath] = (sig, jobs)
            self._evict(self._swf)
        return jobs

    def theta_rows(self, spec: WorkloadSpec, seed: int) -> List[dict]:
        """The synthetic generator's rows for ``(spec, seed)``, cached.

        Rows are the submit-sorted lightweight dicts the generator
        materialises Jobs from; every mechanism/backfill/checkpoint
        variant of a cell shares one generation.  Treat them as
        read-only — build jobs with
        :func:`~repro.workload.theta.stream_jobs_from_rows`.
        """
        key = (spec_hash(spec), int(seed))
        obs = get_obs()
        with self._lock:
            rows = self._rows.get(key)
            if rows is not None:
                self._rows.move_to_end(key)
                obs.counter("workload.trace_cache.hits").inc()
                return rows
        obs.counter("workload.trace_cache.misses").inc()
        from repro.workload.theta import ThetaWorkloadGenerator

        with obs.span(
            "workload.trace_cache.parse", kind="theta", seed=seed
        ):
            rows = ThetaWorkloadGenerator(spec, seed=seed).build_rows()
        with self._lock:
            self._rows[key] = rows
            self._evict(self._rows)
        return rows

    def _evict(self, table: OrderedDict) -> None:
        while len(table) > self.max_entries:
            table.popitem(last=False)
            get_obs().counter("workload.trace_cache.evictions").inc()

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "swf_entries": len(self._swf),
                "row_entries": len(self._rows),
            }

    def clear(self) -> None:
        with self._lock:
            self._swf.clear()
            self._rows.clear()


#: the process-wide singleton every campaign worker shares
_TRACE_CACHE: Optional[TraceCache] = None
_TRACE_CACHE_LOCK = threading.Lock()


def get_trace_cache() -> TraceCache:
    """The process-wide :class:`TraceCache` (created on first use).

    Counters and spans resolve against the active obs bundle at each
    call, so the cache works identically under the disabled default,
    ``--trace`` runs, and the traced pool's per-cell bundles.
    """
    global _TRACE_CACHE
    with _TRACE_CACHE_LOCK:
        if _TRACE_CACHE is None:
            _TRACE_CACHE = TraceCache()
        return _TRACE_CACHE


def reset_trace_cache() -> None:
    """Drop the singleton (tests; obs-bundle swaps)."""
    global _TRACE_CACHE
    with _TRACE_CACHE_LOCK:
        _TRACE_CACHE = None
